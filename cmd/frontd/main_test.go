package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/front"
	"repro/internal/serve"
)

// bootShards starts n in-process clusterd shards (each over one
// in-process schedd) for frontd to shard across.
func bootShards(t *testing.T, n int) []string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		schedd := httptest.NewServer(serve.New(serve.Config{}).Handler())
		t.Cleanup(schedd.Close)
		c, err := cluster.New(cluster.Config{Backends: []string{schedd.URL}})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		t.Cleanup(c.Close)
		shard := httptest.NewServer(c.Handler())
		t.Cleanup(shard.Close)
		urls = append(urls, shard.URL)
	}
	return urls
}

// TestRunServesAndShutsDown boots frontd over two live clusterd
// shards, exercises every endpoint, and checks clean drain on context
// cancellation.
func TestRunServesAndShutsDown(t *testing.T) {
	cfg := front.Config{Shards: bootShards(t, 2)}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", cfg, 5*time.Second, ready)
	}()

	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health front.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Shards) != 2 {
		t.Fatalf("healthz: %+v", health)
	}

	body := `{"requests":[
	  {"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5]}},
	  {"algorithm":"oracle-lpt","instance":{"m":2,"alpha":1,"estimates":[3,1,2]}}
	]}`
	resp, err = http.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var batch front.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(batch.Results) != 2 {
		t.Fatalf("batch: status %d results %d", resp.StatusCode, len(batch.Results))
	}
	for i, item := range batch.Results {
		if item.Error != "" || item.Response == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
	}

	resp, err = http.Post(base+"/v1/stream", "application/x-ndjson", strings.NewReader(
		`{"algorithm":"lpt-norestriction","instance":{"m":2,"alpha":1,"estimates":[3,1,2]}}`+"\n"))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	var item front.Item
	if err := json.NewDecoder(resp.Body).Decode(&item); err != nil {
		t.Fatalf("stream decode: %v", err)
	}
	resp.Body.Close()
	if item.Error != "" || item.Response == nil {
		t.Fatalf("stream item: %+v", item)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunRejectsBadConfig surfaces configuration errors instead of
// hanging the daemon.
func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(context.Background(), "127.0.0.1:0",
		front.Config{}, time.Second, nil); err == nil {
		t.Fatal("accepted empty shard list")
	}
	if err := run(context.Background(), "127.0.0.1:0",
		front.Config{Shards: []string{"http://a", "http://a"}}, time.Second, nil); err == nil {
		t.Fatal("accepted duplicate shard names")
	}
	if err := run(context.Background(), "256.256.256.256:99999",
		front.Config{Shards: bootShards(t, 1)}, time.Second, nil); err == nil {
		t.Fatal("accepted bad listen address")
	}
}

func TestSplitShards(t *testing.T) {
	got := splitShards(" http://a:9090/ ,, http://b:9090 ,")
	want := []string{"http://a:9090", "http://b:9090"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitShards = %v, want %v", got, want)
	}
}
