// Command frontd is the sharded front tier: an HTTP daemon that
// consistent-hash-shards work items across a fleet of clusterd shards,
// sheds load beyond its admission caps with 429 + Retry-After, and
// re-routes work off a dead shard to its ring successors. See
// internal/front and FRONTIER.md.
//
// Examples:
//
//	frontd -addr :9900 -shards http://10.0.1.7:9090,http://10.0.1.8:9090
//	frontd -shards http://a:9090,http://b:9090,http://c:9090 \
//	    -admit-max 4096 -shard-inflight 512
//
//	curl -s localhost:9900/healthz
//	curl -s -X POST localhost:9900/v1/batch -d '{
//	  "requests": [
//	    {"algorithm": "lpt-norestriction",
//	     "instance": {"m": 4, "alpha": 1.5, "estimates": [5,3,8,2,7,4]}}
//	  ]
//	}'
//
// Streaming: POST /v1/stream takes newline-delimited schedule requests
// and emits one NDJSON result line per item in input order; items
// beyond the admission cap are shed with an in-band error line rather
// than buffered.
//
// The daemon drains in-flight work on SIGINT/SIGTERM (bounded by
// -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/front"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":9900", "listen address")
		shards      = flag.String("shards", "", "comma-separated clusterd base URLs (required)")
		vnodes      = flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		workers     = flag.Int("workers", 0, "batch fan-out workers (0 = 2*GOMAXPROCS)")
		admitMax    = flag.Int("admit-max", 1024, "global admission cap (items in flight)")
		shardCap    = flag.Int("shard-inflight", 256, "per-shard in-flight item cap (0 disables)")
		noShed      = flag.Bool("no-shed", false, "disable admission control entirely")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-batch deadline")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		maxBody     = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxTasks    = flag.Int("max-tasks", 100000, "per-instance task cap")
		maxMachines = flag.Int("max-machines", 10000, "per-instance machine cap")
		maxBatch    = flag.Int("max-batch", 256, "items per /v1/batch request")
		maxStream   = flag.Int("max-stream-items", 10000, "items per /v1/stream request")
		streamTime  = flag.Duration("stream-timeout", 5*time.Minute, "per-stream deadline")
		failThresh  = flag.Int("fail-threshold", 3, "consecutive failures that mark a shard dead")
		failBase    = flag.Duration("fail-base", 100*time.Millisecond, "first dead-shard window")
		failMax     = flag.Duration("fail-max", 5*time.Second, "dead-shard backoff cap")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "shard /healthz probe spacing")
		retryCap    = flag.Duration("retry-after-cap", 2*time.Second, "longest honored 429 Retry-After")
		statsFlag   = flag.Bool("stats", false, "print internal counters and timers to stderr on exit")
	)
	flag.Parse()

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "frontd: -shards is required")
		os.Exit(2)
	}
	cfg := front.Config{
		Shards:          splitShards(*shards),
		VNodes:          *vnodes,
		Workers:         *workers,
		AdmitMax:        *admitMax,
		ShardInflight:   *shardCap,
		DisableShedding: *noShed,
		RetryAfterHint:  *retryAfter,
		MaxBatch:        *maxBatch,
		MaxStreamItems:  *maxStream,
		StreamTimeout:   *streamTime,
		MaxTasks:        *maxTasks,
		MaxMachines:     *maxMachines,
		MaxBodyBytes:    *maxBody,
		RequestTimeout:  *timeout,
		FailThreshold:   *failThresh,
		FailBaseBackoff: *failBase,
		FailMaxBackoff:  *failMax,
		ProbeInterval:   *probeEvery,
		RetryAfterCap:   *retryCap,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, *addr, cfg, *drain, nil)
	if *statsFlag {
		fmt.Fprintln(os.Stderr, "--- frontd internal stats ---")
		if werr := obs.Write(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "frontd: stats:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontd:", err)
		os.Exit(1)
	}
}

// splitShards parses the -shards list, dropping empty entries and
// trailing slashes so "url/" and "url" name the same shard.
func splitShards(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// run serves until ctx is cancelled, then drains in-flight work for at
// most drain. When ready is non-nil the bound address is sent on it
// once the listener is up (tests listen on port 0).
func run(ctx context.Context, addr string, cfg front.Config, drain time.Duration, ready chan<- net.Addr) error {
	f, err := front.New(cfg)
	if err != nil {
		return err
	}
	f.Start(ctx)
	defer f.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           f.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Detach from the cancelled signal context but keep its values:
	// the drain window must outlive the trigger that started it.
	shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
