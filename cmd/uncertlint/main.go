// Command uncertlint runs the repo-native static-analysis suite from
// internal/lint over the packages named on the command line and exits
// non-zero on any unsuppressed diagnostic.
//
// Usage:
//
//	go run ./cmd/uncertlint ./...
//	go run ./cmd/uncertlint -rules determinism,seed ./internal/sim
//
// Patterns are directories relative to the working directory; a
// trailing /... recurses. See LINTING.md for the rules and the
// //lint:ignore suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("uncertlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.NewAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "uncertlint: unknown rule %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are given relative to the working directory but Load
	// resolves them against the module root.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}
	for i, p := range patterns {
		patterns[i] = path.Join(filepath.ToSlash(rel), filepath.ToSlash(p))
	}

	pkgs, fset, err := lint.Load(lint.Config{Dir: root, ModulePath: modPath}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, fset, analyzers)
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(cwd, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "uncertlint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
