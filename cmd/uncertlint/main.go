// Command uncertlint runs the repo-native static-analysis suite from
// internal/lint over the packages named on the command line and exits
// non-zero on any unsuppressed diagnostic.
//
// Usage:
//
//	go run ./cmd/uncertlint ./...
//	go run ./cmd/uncertlint -rules determinism,seed ./internal/sim
//	go run ./cmd/uncertlint -json -budget 2m ./...
//
// Patterns are directories relative to the working directory; a
// trailing /... recurses. See LINTING.md for the rules and the
// //lint:ignore suppression syntax.
//
// -json emits one JSON object per diagnostic — including the
// suppressed ones, marked "suppressed": true, so CI artifacts record
// what the tree is silencing, not just what it is failing on. The
// exit code still reflects only unsuppressed findings. -budget fails
// the run when analysis wall-clock exceeds the given duration,
// keeping `make lint` latency an enforced property rather than a
// hope.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("uncertlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic, suppressed ones included")
	budget := fs.Duration("budget", 0, "fail if analysis wall-clock exceeds this duration (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.NewAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "uncertlint: unknown rule %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are given relative to the working directory but Load
	// resolves them against the module root.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}
	for i, p := range patterns {
		patterns[i] = path.Join(filepath.ToSlash(rel), filepath.ToSlash(p))
	}

	start := time.Now()
	pkgs, fset, err := lint.Load(lint.Config{Dir: root, ModulePath: modPath}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "uncertlint:", err)
		return 2
	}
	kept, suppressed := lint.RunAll(pkgs, fset, analyzers)
	elapsed := time.Since(start)

	relTo := func(file string) string {
		if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return file
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		emit := func(ds []lint.Diagnostic, sup bool) {
			for _, d := range ds {
				_ = enc.Encode(jsonDiag{
					Rule: d.Rule, File: relTo(d.Pos.Filename), Line: d.Pos.Line,
					Col: d.Pos.Column, Message: d.Message, Suppressed: sup,
				})
			}
		}
		emit(kept, false)
		emit(suppressed, true)
	} else {
		for _, d := range kept {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relTo(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}

	code := 0
	if len(kept) > 0 {
		fmt.Fprintf(stderr, "uncertlint: %d diagnostic(s)\n", len(kept))
		code = 1
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "uncertlint: analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		code = 1
	}
	return code
}

// jsonDiag is the -json line format: one object per diagnostic, with
// suppressed findings included and marked, so artifacts record what
// the tree silences as well as what it fails on.
type jsonDiag struct {
	Rule       string `json:"rule"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}
