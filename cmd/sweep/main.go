// Command sweep runs parameter sweeps over the model's knobs and
// emits CSV, for plotting with external tools.
//
// Modes:
//
//	ratio  — guarantee curves vs replication for a list of α values
//	         (the data behind Figure 3, for any m)
//	memory — SABO/ABO guarantee curves vs Δ (the data behind Figure 6)
//	emp    — measured makespan of each strategy as α sweeps, on a
//	         random workload (end-to-end pipeline)
//
// In emp mode the trials of each (α, strategy) cell run concurrently
// with pre-drawn seeds, so the CSV is byte-identical regardless of
// -workers. Profiling flags mirror cmd/paperfigs: -cpuprofile,
// -memprofile, and -stats (internal counters to stderr).
//
// Examples:
//
//	sweep -mode ratio -m 210 -alphas 1.1,1.5,2 > fig3.csv
//	sweep -mode memory -m 5 -alpha2 3 -rho 1 > fig6b.csv
//	sweep -mode emp -m 12 -n 240 -alphas 1,1.25,1.5,2,3 > emp.csv
//	sweep -mode emp -m 12 -trials 50 -stats -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func main() {
	var (
		mode       = flag.String("mode", "ratio", "ratio | memory | emp")
		m          = flag.Int("m", 210, "number of machines")
		n          = flag.Int("n", 0, "tasks (emp mode; 0 = 10·m)")
		alphas     = flag.String("alphas", "1.1,1.5,2", "comma-separated α list")
		alpha2     = flag.Float64("alpha2", 2, "α² (memory mode)")
		rho        = flag.Float64("rho", 4.0/3, "ρ1 = ρ2 (memory mode)")
		trials     = flag.Int("trials", 5, "trials per point (emp mode)")
		seed       = flag.Uint64("seed", 1, "RNG seed (emp mode)")
		wl         = flag.String("workload", "iterative", "workload generator (emp mode)")
		workers    = flag.Int("workers", 0, "max concurrent trials in emp mode (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write CPU profile to file")
		memprofile = flag.String("memprofile", "", "write heap profile to file on exit")
		statsFlag  = flag.Bool("stats", false, "print internal counters and timers to stderr on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: cpuprofile:", err)
			}
		}()
	}

	err := run(*mode, *m, *n, *alphas, *alpha2, *rho, *trials, *seed, *wl, *workers)

	if *memprofile != "" {
		if f, ferr := os.Create(*memprofile); ferr == nil {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", werr)
			}
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", cerr)
			}
		} else {
			fmt.Fprintln(os.Stderr, "sweep: memprofile:", ferr)
		}
	}
	if *statsFlag {
		fmt.Fprintln(os.Stderr, "--- sweep internal stats ---")
		if werr := obs.Write(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "sweep: stats:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseAlphas(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad alpha %q: %w", part, err)
		}
		// Centralized parameter check (same error every entry point uses).
		if err := task.CheckAlpha(v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty alpha list")
	}
	return out, nil
}

func run(mode string, m, n int, alphaList string, alpha2, rho float64,
	trials int, seed uint64, wl string, workers int) error {
	switch mode {
	case "ratio":
		alphas, err := parseAlphas(alphaList)
		if err != nil {
			return err
		}
		tb := report.NewTable("alpha", "series", "replicas", "guarantee")
		for _, alpha := range alphas {
			if err := bounds.Validate(m, 0, alpha); err != nil {
				return err
			}
			for _, s := range bounds.RatioReplication(m, alpha) {
				for _, pt := range s.Points {
					tb.AddRow(alpha, s.Name, pt.X, pt.Y)
				}
			}
		}
		return tb.WriteCSV(os.Stdout)

	case "memory":
		tb := report.NewTable("series", "memory_guarantee", "makespan_guarantee")
		deltas := bounds.DefaultDeltaGrid()
		for _, s := range bounds.MemoryMakespan(m, alpha2, rho, rho, deltas) {
			for _, pt := range s.Points {
				tb.AddRow(s.Name, pt.X, pt.Y)
			}
		}
		return tb.WriteCSV(os.Stdout)

	case "emp":
		alphas, err := parseAlphas(alphaList)
		if err != nil {
			return err
		}
		if n == 0 {
			n = 10 * m
		}
		cfgs := []struct {
			label string
			cfg   core.Config
		}{
			{"no-replication", core.Config{Strategy: core.NoReplication}},
			{"groups-k2", core.Config{Strategy: core.Groups, Groups: 2}},
			{"everywhere", core.Config{Strategy: core.ReplicateEverywhere}},
			{"oracle", core.Config{Strategy: core.Oracle}},
		}
		tb := report.NewTable("alpha", "strategy", "mean_makespan", "mean_ratio_ub")
		src := rng.New(seed)
		for _, alpha := range alphas {
			for _, c := range cfgs {
				trialSrc := rng.New(src.Uint64())
				// Pre-draw each trial's (workload, perturb) seed pair in
				// the sequential draw order, then fan the trials out; the
				// CSV stays byte-identical for any worker count.
				type trialSeeds struct{ base, perturb uint64 }
				seeds := make([]trialSeeds, trials)
				for t := range seeds {
					seeds[t].base = trialSrc.Uint64()
					seeds[t].perturb = trialSrc.Uint64()
				}
				type trialOut struct {
					makespan, ratio float64
					err             error
				}
				outs := par.Map(trials, workers, func(t int) trialOut {
					in, err := workload.New(workload.Spec{
						Name: wl, N: n, M: m, Alpha: alpha, Seed: seeds[t].base,
					})
					if err != nil {
						return trialOut{err: err}
					}
					uncertainty.Uniform{}.Perturb(in, nil, rng.New(seeds[t].perturb))
					// Centralized instance validation between perturbation
					// and the solvers, mirroring the serving layer.
					if err := in.Validate(true); err != nil {
						return trialOut{err: err}
					}
					out, err := core.Run(in, c.cfg)
					if err != nil {
						return trialOut{err: err}
					}
					return trialOut{makespan: out.Makespan, ratio: out.RatioUpper}
				})
				var mk, ratio []float64
				for _, res := range outs {
					if res.err != nil {
						return res.err
					}
					mk = append(mk, res.makespan)
					ratio = append(ratio, res.ratio)
				}
				tb.AddRow(alpha, c.label, stats.Summarize(mk).Mean, stats.Summarize(ratio).Mean)
			}
		}
		return tb.WriteCSV(os.Stdout)

	default:
		return fmt.Errorf("unknown mode %q (want ratio, memory or emp)", mode)
	}
}
