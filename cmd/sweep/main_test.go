package main

import "testing"

func TestParseAlphas(t *testing.T) {
	got, err := parseAlphas("1.1, 1.5,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1.1 || got[2] != 2 {
		t.Fatalf("parseAlphas = %v", got)
	}
}

func TestParseAlphasErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "0.5", "1.5,,2", "1.5,0.9"} {
		if _, err := parseAlphas(bad); err == nil {
			t.Errorf("parseAlphas(%q) accepted", bad)
		}
	}
}

func TestRunModes(t *testing.T) {
	// All three modes must complete without error on small parameters.
	if err := run("ratio", 12, 0, "1.5", 2, 1, 1, 1, "iterative", 0); err != nil {
		t.Errorf("ratio mode: %v", err)
	}
	if err := run("memory", 5, 0, "", 3, 1, 1, 1, "iterative", 0); err != nil {
		t.Errorf("memory mode: %v", err)
	}
	if err := run("emp", 4, 12, "1.25", 2, 1, 2, 1, "uniform", 0); err != nil {
		t.Errorf("emp mode: %v", err)
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run("nope", 4, 0, "1.5", 2, 1, 1, 1, "uniform", 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunRatioRejectsBadAlpha(t *testing.T) {
	if err := run("ratio", 4, 0, "0.5", 2, 1, 1, 1, "uniform", 0); err == nil {
		t.Fatal("alpha < 1 accepted")
	}
}

func TestRunEmpRejectsBadWorkload(t *testing.T) {
	if err := run("emp", 4, 10, "1.5", 2, 1, 1, 1, "bogus", 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
