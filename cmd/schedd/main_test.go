package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunServesAndShutsDown boots the daemon on a loopback port,
// exercises one request per endpoint family, and checks that context
// cancellation drains cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", serve.Config{}, 5*time.Second, ready)
	}()

	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}

	body := `{"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5]}}`
	resp, err = http.Post(base+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	var sched struct {
		Makespan float64 `json:"makespan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sched); err != nil {
		t.Fatalf("schedule decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || sched.Makespan <= 0 {
		t.Fatalf("schedule: status %d makespan %v", resp.StatusCode, sched.Makespan)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunRejectsBadAddr ensures listener errors surface instead of
// hanging the daemon.
func TestRunRejectsBadAddr(t *testing.T) {
	err := run(context.Background(), "256.256.256.256:99999", serve.Config{}, time.Second, nil)
	if err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestRunDrainsInflight starts a request, cancels the server context
// mid-flight, and checks the response still completes (Shutdown
// drains rather than aborts).
func TestRunDrainsInflight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", serve.Config{}, 10*time.Second, ready)
	}()
	addr := <-ready
	base := "http://" + addr.String()

	// A batch big enough to still be in flight when shutdown starts.
	var items []string
	for i := 0; i < 64; i++ {
		items = append(items,
			fmt.Sprintf(`{"algorithm":"ls-group:2","instance":{"m":4,"alpha":2,"estimates":[%d,3,9,1,7,5,2,8]}}`, i+1))
	}
	body := `{"requests":[` + strings.Join(items, ",") + `]}`

	respCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
		if err == nil {
			if resp.StatusCode != 200 {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		respCh <- err
	}()

	// Give the request a moment to reach the handler, then shut down.
	time.Sleep(50 * time.Millisecond)
	cancel()

	if err := <-respCh; err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
