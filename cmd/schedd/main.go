// Command schedd is the scheduling daemon: a long-running HTTP/JSON
// service exposing the paper's two-phase algorithms, the
// semi-clairvoyant simulator, and the optimum/bound engines (see
// internal/serve and SERVING.md for the endpoint reference).
//
// Examples:
//
//	schedd -addr :8080
//	schedd -addr 127.0.0.1:0 -max-inflight 8 -timeout 10s
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/schedule -d '{
//	  "algorithm": "lpt-norestriction",
//	  "instance": {"m": 4, "alpha": 1.5, "estimates": [5,3,8,2,7,4]}
//	}'
//
// Streaming: POST /v1/stream takes newline-delimited schedule requests
// and answers one NDJSON result line per item as each is computed, and
// POST /v1/simulate-open replays an instance under an arrival process
// (poisson, mmpp, trace) with replica cancellation, reporting the
// response-time distribution.
//
// The daemon drains in-flight requests on SIGINT/SIGTERM (bounded by
// -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 0, "solver-endpoint concurrency before 429 (0 = 2*GOMAXPROCS)")
		workers     = flag.Int("workers", 0, "worker pool per /v1/batch request (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		maxBody     = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxTasks    = flag.Int("max-tasks", 100000, "per-instance task cap")
		maxMachines = flag.Int("max-machines", 10000, "per-instance machine cap")
		maxBatch    = flag.Int("max-batch", 256, "items per /v1/batch request")
		maxStream   = flag.Int("max-stream-items", 10000, "items per /v1/stream request")
		streamTime  = flag.Duration("stream-timeout", 5*time.Minute, "per-stream deadline")
		exactLimit  = flag.Int("exact-limit", 0, "exact-optimum task cap (0 = default 20)")
		statsFlag   = flag.Bool("stats", false, "print internal counters and timers to stderr on exit")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxInflight:    *maxInflight,
		Workers:        *workers,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxTasks:       *maxTasks,
		MaxMachines:    *maxMachines,
		MaxBatch:       *maxBatch,
		MaxStreamItems: *maxStream,
		StreamTimeout:  *streamTime,
		ExactLimit:     *exactLimit,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, *addr, cfg, *drain, nil)
	if *statsFlag {
		fmt.Fprintln(os.Stderr, "--- schedd internal stats ---")
		if werr := obs.Write(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "schedd: stats:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains in-flight requests
// for at most drain. When ready is non-nil the bound address is sent
// on it once the listener is up (tests listen on port 0).
func run(ctx context.Context, addr string, cfg serve.Config, drain time.Duration, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := serve.New(cfg)
	hs := &http.Server{
		Handler: srv.Handler(),
		// Header reads are bounded independently of the solver
		// deadline so idle connections cannot pin goroutines.
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Detach from the cancelled signal context but keep its values:
	// the drain window must outlive the trigger that started it.
	shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
