// Command benchreport runs the curated benchmark set (see
// internal/benchsuite) outside the go-test harness and emits a
// machine-readable report, comparing it against a committed baseline
// and failing on regression.
//
// Usage:
//
//	benchreport [-baseline BENCH_5.json] [-out report.json]
//	            [-tolerance 1.3] [-benchtime 200ms] [-update] [-list]
//
// The report records ns/op, B/op, allocs/op, and tasks/s per
// benchmark. With -baseline, each benchmark's ns/op is compared to the
// baseline entry and the run fails (exit 1) if any exceeds
// baseline × tolerance; benchmarks missing from the baseline are
// reported but not gated. With -update the baseline file is rewritten
// with the fresh numbers instead. The JSON carries no timestamps or
// host details, so -update produces minimal diffs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/benchsuite"
)

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// TasksPerSec is derived from the spec's task count; 0 when the
	// benchmark has no task-throughput interpretation.
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
}

// Report is the BENCH_*.json schema.
type Report struct {
	// Benchmarks lists the curated set in its fixed order.
	Benchmarks []Measurement `json:"benchmarks"`
}

func main() {
	// Register the testing flags (test.benchtime and friends) before
	// defining ours: testing.Benchmark needs them parsed.
	testing.Init()
	var (
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (and rewrite with -update)")
		out       = flag.String("out", "", "write the fresh report to this file ('-' for stdout)")
		tolerance = flag.Float64("tolerance", 1.3, "fail when ns/op exceeds baseline by this factor")
		benchtime = flag.String("benchtime", "1s", "per-benchmark measuring time (test.benchtime syntax)")
		update    = flag.Bool("update", false, "rewrite the baseline with this run's numbers")
		list      = flag.Bool("list", false, "list curated benchmark names and exit")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime: %v", err)
	}

	specs := benchsuite.Curated()
	if *list {
		for _, s := range specs {
			fmt.Println(s.Name)
		}
		return
	}

	report := Report{Benchmarks: make([]Measurement, 0, len(specs))}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "running %-32s ", s.Name)
		r := testing.Benchmark(s.Run)
		m := Measurement{
			Name:        s.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if s.Tasks > 0 && m.NsPerOp > 0 {
			m.TasksPerSec = float64(s.Tasks) * 1e9 / m.NsPerOp
		}
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %10d B/op %8d allocs/op",
			m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		if m.TasksPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %12.0f tasks/s", m.TasksPerSec)
		}
		fmt.Fprintln(os.Stderr)
		report.Benchmarks = append(report.Benchmarks, m)
	}

	if *out != "" {
		if err := writeReport(*out, report); err != nil {
			fatalf("%v", err)
		}
	}

	if *baseline == "" {
		return
	}
	if *update {
		if err := writeReport(*baseline, report); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "baseline %s updated\n", *baseline)
		return
	}
	base, err := readReport(*baseline)
	if err != nil {
		fatalf("reading baseline: %v (run with -update to create it)", err)
	}
	if failed := compare(report, base, *tolerance); failed > 0 {
		fatalf("%d benchmark(s) regressed beyond %.0f%% of baseline", failed, (*tolerance-1)*100)
	}
}

// compare reports each benchmark against the baseline and returns the
// number of failures. Only ns/op gates the run — allocation counts are
// informative (they vary legitimately with pool warm-up) — but a
// regression message includes them for diagnosis.
func compare(fresh, base Report, tolerance float64) int {
	byName := make(map[string]Measurement, len(base.Benchmarks))
	for _, m := range base.Benchmarks {
		byName[m.Name] = m
	}
	failed := 0
	for _, m := range fresh.Benchmarks {
		b, ok := byName[m.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "NOTE  %s: not in baseline (run -update to add it)\n", m.Name)
			continue
		}
		ratio := m.NsPerOp / b.NsPerOp
		status := "ok  "
		if ratio > tolerance {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "%s  %-32s %.2fx baseline (%.0f vs %.0f ns/op, allocs %d vs %d)\n",
			status, m.Name, ratio, m.NsPerOp, b.NsPerOp, m.AllocsPerOp, b.AllocsPerOp)
	}
	return failed
}

func writeReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
