// Command benchreport runs the curated benchmark set (see
// internal/benchsuite) outside the go-test harness and emits a
// machine-readable report, comparing it against a committed baseline
// and failing on regression.
//
// Usage:
//
//	benchreport [-baseline BENCH_5.json] [-out report.json] [-format text|json]
//	            [-tolerance 1.3] [-benchtime 200ms] [-update] [-list]
//
// The report records ns/op, B/op, allocs/op, and tasks/s per
// benchmark. With -baseline, each benchmark's ns/op is compared to the
// baseline entry — every progress line and report row carries the
// delta as a ×-baseline ratio — and the run fails (exit 1) if any
// exceeds baseline × tolerance; benchmarks missing from the baseline
// are reported but not gated. With -update the baseline file is
// rewritten with the fresh numbers instead (ratios stripped: a
// baseline is 1.00× itself by definition). The JSON carries no
// timestamps or host details, so -update produces minimal diffs.
//
// -format json writes the fresh report, deltas included, to stdout —
// the same schema -out writes — so a CI run can archive a diffable
// artifact without a scratch file. The default text format prints
// nothing to stdout; progress and the comparison table go to stderr
// either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/benchsuite"
)

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// TasksPerSec is derived from the spec's task count; 0 when the
	// benchmark has no task-throughput interpretation.
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	// VsBaseline is ns/op relative to the -baseline entry of the same
	// name (1.0 = unchanged, 2.0 = twice as slow). 0 when no baseline
	// was given, the benchmark is missing from it, or the report IS the
	// baseline (-update strips it).
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// Report is the BENCH_*.json schema.
type Report struct {
	// Benchmarks lists the curated set in its fixed order.
	Benchmarks []Measurement `json:"benchmarks"`
}

func main() {
	// Register the testing flags (test.benchtime and friends) before
	// defining ours: testing.Benchmark needs them parsed.
	testing.Init()
	var (
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (and rewrite with -update)")
		out       = flag.String("out", "", "write the fresh report to this file ('-' for stdout)")
		tolerance = flag.Float64("tolerance", 1.3, "fail when ns/op exceeds baseline by this factor")
		benchtime = flag.String("benchtime", "1s", "per-benchmark measuring time (test.benchtime syntax)")
		update    = flag.Bool("update", false, "rewrite the baseline with this run's numbers")
		list      = flag.Bool("list", false, "list curated benchmark names and exit")
		format    = flag.String("format", "text", "stdout format: text (nothing) or json (the fresh report)")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime: %v", err)
	}
	if *format != "text" && *format != "json" {
		fatalf("bad -format %q (want text or json)", *format)
	}

	specs := benchsuite.Curated()
	if *list {
		for _, s := range specs {
			fmt.Println(s.Name)
		}
		return
	}

	// Load the baseline before running so every progress line (and the
	// report itself) carries the delta column. With -update the old
	// numbers are still worth comparing against; a missing file is only
	// fatal when it is needed for gating.
	var byName map[string]Measurement
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil && !*update {
			fatalf("reading baseline: %v (run with -update to create it)", err)
		}
		byName = make(map[string]Measurement, len(base.Benchmarks))
		for _, m := range base.Benchmarks {
			byName[m.Name] = m
		}
	}

	report := Report{Benchmarks: make([]Measurement, 0, len(specs))}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "running %-32s ", s.Name)
		r := testing.Benchmark(s.Run)
		m := Measurement{
			Name:        s.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if s.Tasks > 0 && m.NsPerOp > 0 {
			m.TasksPerSec = float64(s.Tasks) * 1e9 / m.NsPerOp
		}
		if b, ok := byName[m.Name]; ok && b.NsPerOp > 0 {
			m.VsBaseline = m.NsPerOp / b.NsPerOp
		}
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %10d B/op %8d allocs/op",
			m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		if m.TasksPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %12.0f tasks/s", m.TasksPerSec)
		}
		if m.VsBaseline > 0 {
			fmt.Fprintf(os.Stderr, " %6.2fx baseline", m.VsBaseline)
		}
		fmt.Fprintln(os.Stderr)
		report.Benchmarks = append(report.Benchmarks, m)
	}

	if *out != "" {
		if err := writeReport(*out, report); err != nil {
			fatalf("%v", err)
		}
	}
	if *format == "json" {
		if err := writeReport("-", report); err != nil {
			fatalf("%v", err)
		}
	}

	if *baseline == "" {
		return
	}
	if *update {
		// Strip the ratios: a baseline is 1.00× itself by definition,
		// and keeping stale deltas would make the committed file lie.
		stripped := Report{Benchmarks: make([]Measurement, len(report.Benchmarks))}
		copy(stripped.Benchmarks, report.Benchmarks)
		for i := range stripped.Benchmarks {
			stripped.Benchmarks[i].VsBaseline = 0
		}
		if err := writeReport(*baseline, stripped); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "baseline %s updated\n", *baseline)
		return
	}
	if failed := compare(report, byName, *tolerance); failed > 0 {
		fatalf("%d benchmark(s) regressed beyond %.0f%% of baseline", failed, (*tolerance-1)*100)
	}
}

// compare reports each benchmark against the baseline and returns the
// number of failures. Only ns/op gates the run — allocation counts are
// informative (they vary legitimately with pool warm-up) — but a
// regression message includes them for diagnosis.
func compare(fresh Report, byName map[string]Measurement, tolerance float64) int {
	failed := 0
	for _, m := range fresh.Benchmarks {
		b, ok := byName[m.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "NOTE  %s: not in baseline (run -update to add it)\n", m.Name)
			continue
		}
		status := "ok  "
		if m.VsBaseline > tolerance {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "%s  %-32s %.2fx baseline (%.0f vs %.0f ns/op, allocs %d vs %d)\n",
			status, m.Name, m.VsBaseline, m.NsPerOp, b.NsPerOp, m.AllocsPerOp, b.AllocsPerOp)
	}
	return failed
}

func writeReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
