// Command loadgen drives sustained load against a serving tier
// (frontd, clusterd, or schedd) and prints a machine-readable JSON
// report — throughput, latency quantiles, shed rate — to stdout. See
// internal/loadgen and FRONTIER.md.
//
// Two loop disciplines:
//
//	loadgen -url http://localhost:9900 -mode closed -requests 2000 -workers 16
//	loadgen -url http://localhost:9900 -mode open -qps 500 -duration 10s
//
// The closed loop keeps -workers requests in flight until -requests
// complete (sustainable-capacity measurement); the open loop fires
// Poisson arrivals at -qps regardless of completions (the open-system
// model, exposing shedding under overload). Both issue a deterministic
// request stream from -seed.
//
// -selftest boots a full in-process tier — two schedd instances, two
// clusterd shards over them, one frontd over the shards — and runs the
// configured load against it, so the whole stack is exercised with no
// external setup:
//
//	loadgen -selftest -mode closed -requests 200 -workers 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/front"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

func main() {
	var (
		url       = flag.String("url", "", "target base URL (required unless -selftest)")
		mode      = flag.String("mode", loadgen.ModeClosed, "loop discipline: open or closed")
		qps       = flag.Float64("qps", 100, "open-loop average arrival rate")
		duration  = flag.Duration("duration", time.Second, "open-loop arrival window")
		workers   = flag.Int("workers", 8, "closed-loop concurrency / open-loop in-flight cap")
		requests  = flag.Int("requests", 0, "closed-loop request count (optional arrival cap in open mode)")
		seed      = flag.Uint64("seed", 1, "deterministic request-stream seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		algorithm = flag.String("algorithm", "lpt-norestriction", "algorithm each request asks for")
		machines  = flag.Int("machines", 4, "machines per generated instance")
		tasks     = flag.Int("tasks", 6, "tasks per generated instance")
		selftest  = flag.Bool("selftest", false, "boot an in-process schedd→clusterd→frontd tier and load it")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target := *url
	if *selftest {
		tier, err := bootTier(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: selftest tier:", err)
			os.Exit(1)
		}
		defer tier.close()
		target = tier.frontURL
		fmt.Fprintln(os.Stderr, "loadgen: selftest tier up at", target)
	}
	if target == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url is required (or pass -selftest)")
		os.Exit(2)
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Mode:      *mode,
		URL:       target,
		QPS:       *qps,
		Duration:  *duration,
		Workers:   *workers,
		Requests:  *requests,
		Seed:      *seed,
		Timeout:   *timeout,
		Algorithm: *algorithm,
		Machines:  *machines,
		Tasks:     *tasks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: report:", err)
		os.Exit(1)
	}
	// Shedding is a measured outcome; errors mean the tier (or the run
	// configuration) is broken. Fail so smoke invocations gate on it.
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) errored (first: %s)\n", rep.Errors, rep.FirstError)
		os.Exit(1)
	}
}

// tier is the in-process selftest stack: every daemon mounted on its
// own loopback listener, torn down in reverse order.
type tier struct {
	frontURL string
	closers  []func()
}

func (t *tier) close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
}

// bootTier assembles schedd ×2 → clusterd ×2 → frontd ×1 on loopback
// listeners: each clusterd shard replicates over both schedd backends,
// and the front consistent-hash-shards across the two clusterds.
func bootTier(ctx context.Context) (*tier, error) {
	t := &tier{}
	ok := false
	defer func() {
		if !ok {
			t.close()
		}
	}()

	var schedds []string
	for i := 0; i < 2; i++ {
		url, err := t.listen(serve.New(serve.Config{}).Handler())
		if err != nil {
			return nil, err
		}
		schedds = append(schedds, url)
	}

	var shards []string
	for i := 0; i < 2; i++ {
		c, err := cluster.New(cluster.Config{Backends: schedds})
		if err != nil {
			return nil, err
		}
		c.Start(ctx)
		t.closers = append(t.closers, c.Close)
		url, err := t.listen(c.Handler())
		if err != nil {
			return nil, err
		}
		shards = append(shards, url)
	}

	f, err := front.New(front.Config{Shards: shards})
	if err != nil {
		return nil, err
	}
	f.Start(ctx)
	t.closers = append(t.closers, f.Close)
	if t.frontURL, err = t.listen(f.Handler()); err != nil {
		return nil, err
	}
	ok = true
	return t, nil
}

// listen mounts h on an ephemeral loopback port and returns its base
// URL, registering the server's shutdown with the tier.
func (t *tier) listen(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	t.closers = append(t.closers, func() { _ = hs.Close() })
	return "http://" + ln.Addr().String(), nil
}
