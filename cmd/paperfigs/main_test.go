package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunSingleExperimentWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig3", dir, experiments.Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "LS-Group") {
		t.Fatal("fig3.txt missing content")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "alpha,series,") {
		t.Fatalf("fig3.csv header wrong: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
	for _, name := range []string{"fig3a.svg", "fig3b.svg", "fig3c.svg"} {
		svg, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(svg), "</svg>") {
			t.Fatalf("%s incomplete", name)
		}
	}
}

func TestRunTableCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("table1", dir, experiments.Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArtifactDir(t *testing.T) {
	if err := run("table2", "", experiments.Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", "", experiments.Options{Quick: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestIDListNonEmpty(t *testing.T) {
	if ids := idList(); !strings.Contains(ids, "fig3") || !strings.Contains(ids, "table1") {
		t.Fatalf("idList = %q", ids)
	}
}
