// Command paperfigs regenerates the paper's tables and figures (plus
// the empirical extension experiments). Reports go to stdout; with
// -out DIR each experiment's report is also written to DIR/<id>.txt
// and the figure data series to DIR/<id>.csv where applicable.
//
// Experiments render concurrently (bounded by -workers) into private
// buffers and are printed in ID order, so stdout is byte-identical to
// a sequential run. Profiling and observability flags:
//
//	-cpuprofile f   write a pprof CPU profile to f
//	-memprofile f   write a pprof heap profile to f on exit
//	-stats          print internal counters/timers to stderr on exit
//
// Examples:
//
//	paperfigs -exp all
//	paperfigs -exp fig3,fig6 -out out/
//	paperfigs -exp e2 -quick -stats
//	paperfigs -exp all -cpuprofile cpu.pprof -workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/par"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id(s), comma separated, or all (ids: "+idList()+")")
		outDir     = flag.String("out", "", "also write per-experiment artifacts to this directory")
		quick      = flag.Bool("quick", false, "reduced trial counts (for smoke tests)")
		seed       = flag.Uint64("seed", 0, "seed offset (0 = published outputs)")
		workers    = flag.Int("workers", 0, "max concurrent experiments/trials (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write CPU profile to file")
		memprofile = flag.String("memprofile", "", "write heap profile to file on exit")
		stats      = flag.Bool("stats", false, "print internal counters and timers to stderr on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs: cpuprofile:", err)
			}
		}()
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	err := run(*exp, *outDir, opts)

	if *memprofile != "" {
		if f, ferr := os.Create(*memprofile); ferr == nil {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "paperfigs: memprofile:", werr)
			}
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "paperfigs: memprofile:", cerr)
			}
		} else {
			fmt.Fprintln(os.Stderr, "paperfigs: memprofile:", ferr)
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "--- paperfigs internal stats ---")
		if werr := obs.Write(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "paperfigs: stats:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func idList() string {
	s := ""
	for i, id := range experiments.IDs() {
		if i > 0 {
			s += " "
		}
		s += id
	}
	return s
}

func run(exp, outDir string, opts experiments.Options) error {
	var list []experiments.Experiment
	if exp == "all" {
		list = experiments.All()
	} else {
		for _, id := range strings.Split(exp, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			list = append(list, e)
		}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	// Render every requested experiment concurrently into its own
	// buffer, then emit reports and artifacts in request order so the
	// output is byte-identical to a sequential run.
	type rendered struct {
		report []byte
		err    error
	}
	results := par.Map(len(list), opts.Workers, func(i int) rendered {
		var buf strings.Builder
		//lint:ignore obsnames experiment IDs are a fixed compile-time set, so one timer per experiment stays bounded
		defer obs.GetTimer("experiment." + list[i].ID()).Start()()
		err := list[i].Run(&buf, opts)
		return rendered{report: []byte(buf.String()), err: err}
	})

	for i, e := range list {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", e.ID(), e.Title())
		fmt.Printf("==================================================================\n")
		if _, err := os.Stdout.Write(results[i].report); err != nil {
			return err
		}
		if outDir != "" {
			if err := os.WriteFile(filepath.Join(outDir, e.ID()+".txt"),
				results[i].report, 0o644); err != nil {
				return err
			}
		}
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", e.ID(), results[i].err)
		}
		if outDir != "" {
			if err := writeCSV(e.ID(), outDir, opts); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

// writeCSV exports machine-readable series and SVG figures for the
// experiments that have them.
func writeCSV(id, outDir string, opts experiments.Options) error {
	var gen func(io.Writer) error
	switch id {
	case "table1":
		gen = experiments.Table1CSV
	case "fig3":
		gen = experiments.Fig3CSV
	case "fig6":
		gen = experiments.Fig6CSV
	case "e1":
		gen = func(w io.Writer) error { return experiments.E1CSV(w, opts) }
	default:
		return nil
	}
	if err := writeFile(filepath.Join(outDir, id+".csv"), gen); err != nil {
		return err
	}
	switch id {
	case "fig3":
		for i, alpha := range experiments.Fig3Alphas() {
			alpha := alpha
			name := fmt.Sprintf("fig3%c.svg", 'a'+i)
			if err := writeFile(filepath.Join(outDir, name), func(w io.Writer) error {
				return experiments.Fig3SVG(w, alpha)
			}); err != nil {
				return err
			}
		}
	case "fig6":
		for i, cfg := range experiments.Table2Configs() {
			cfg := cfg
			name := fmt.Sprintf("fig6%c.svg", 'a'+i)
			if err := writeFile(filepath.Join(outDir, name), func(w io.Writer) error {
				return experiments.Fig6SVG(w, cfg)
			}); err != nil {
				return err
			}
		}
	case "e1":
		if err := writeFile(filepath.Join(outDir, "e1.svg"), func(w io.Writer) error {
			return experiments.E1SVG(w, opts)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, gen func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = gen(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
