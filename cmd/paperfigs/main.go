// Command paperfigs regenerates the paper's tables and figures (plus
// the empirical extension experiments). Reports go to stdout; with
// -out DIR each experiment's report is also written to DIR/<id>.txt
// and the figure data series to DIR/<id>.csv where applicable.
//
// Examples:
//
//	paperfigs -exp all
//	paperfigs -exp fig3,fig6 -out out/
//	paperfigs -exp e2 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id(s), comma separated, or all (ids: "+idList()+")")
		outDir = flag.String("out", "", "also write per-experiment artifacts to this directory")
		quick  = flag.Bool("quick", false, "reduced trial counts (for smoke tests)")
		seed   = flag.Uint64("seed", 0, "seed offset (0 = published outputs)")
	)
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if err := run(*exp, *outDir, opts); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func idList() string {
	s := ""
	for i, id := range experiments.IDs() {
		if i > 0 {
			s += " "
		}
		s += id
	}
	return s
}

func run(exp, outDir string, opts experiments.Options) error {
	var list []experiments.Experiment
	if exp == "all" {
		list = experiments.All()
	} else {
		for _, id := range strings.Split(exp, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			list = append(list, e)
		}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range list {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", e.ID(), e.Title())
		fmt.Printf("==================================================================\n")
		var w io.Writer = os.Stdout
		var file *os.File
		if outDir != "" {
			var err error
			file, err = os.Create(filepath.Join(outDir, e.ID()+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(os.Stdout, file)
		}
		err := e.Run(w, opts)
		if file != nil {
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID(), err)
		}
		if outDir != "" {
			if err := writeCSV(e.ID(), outDir, opts); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

// writeCSV exports machine-readable series and SVG figures for the
// experiments that have them.
func writeCSV(id, outDir string, opts experiments.Options) error {
	var gen func(io.Writer) error
	switch id {
	case "table1":
		gen = experiments.Table1CSV
	case "fig3":
		gen = experiments.Fig3CSV
	case "fig6":
		gen = experiments.Fig6CSV
	case "e1":
		gen = func(w io.Writer) error { return experiments.E1CSV(w, opts) }
	default:
		return nil
	}
	if err := writeFile(filepath.Join(outDir, id+".csv"), gen); err != nil {
		return err
	}
	switch id {
	case "fig3":
		for i, alpha := range experiments.Fig3Alphas() {
			alpha := alpha
			name := fmt.Sprintf("fig3%c.svg", 'a'+i)
			if err := writeFile(filepath.Join(outDir, name), func(w io.Writer) error {
				return experiments.Fig3SVG(w, alpha)
			}); err != nil {
				return err
			}
		}
	case "fig6":
		for i, cfg := range experiments.Table2Configs() {
			cfg := cfg
			name := fmt.Sprintf("fig6%c.svg", 'a'+i)
			if err := writeFile(filepath.Join(outDir, name), func(w io.Writer) error {
				return experiments.Fig6SVG(w, cfg)
			}); err != nil {
				return err
			}
		}
	case "e1":
		if err := writeFile(filepath.Join(outDir, "e1.svg"), func(w io.Writer) error {
			return experiments.E1SVG(w, opts)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, gen func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = gen(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
