// Command clusterd is the cluster dispatcher: an HTTP proxy that
// fronts a pool of schedd backends, places each incoming work item on
// a replica set of backends (phase 1), and dispatches
// semi-clairvoyantly with hedging, circuit breaking, and re-dispatch
// (phase 2). See internal/cluster and CLUSTER.md.
//
// Examples:
//
//	clusterd -addr :9090 -backends http://10.0.0.7:8080,http://10.0.0.8:8080
//	clusterd -backends http://a:8080,http://b:8080,http://c:8080,http://d:8080 \
//	    -strategy group:2 -hedge-quantile 0.95
//
//	curl -s localhost:9090/healthz
//	curl -s -X POST localhost:9090/v1/batch -d '{
//	  "requests": [
//	    {"algorithm": "lpt-norestriction",
//	     "instance": {"m": 4, "alpha": 1.5, "estimates": [5,3,8,2,7,4]}}
//	  ]
//	}'
//
// Streaming: POST /v1/stream takes newline-delimited schedule requests
// and emits one NDJSON result line per item in input order, dispatching
// concurrently under a bounded window; ?strategy=none|all|group:k
// overrides the configured replication strategy per stream.
//
// The daemon drains in-flight batches on SIGINT/SIGTERM (bounded by
// -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		backends    = flag.String("backends", "", "comma-separated schedd base URLs (required)")
		strategy    = flag.String("strategy", "all", "replication strategy: none, all, or group:k")
		workers     = flag.Int("workers", 0, "batch fan-out workers (0 = 2*GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-batch deadline")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		maxBody     = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxTasks    = flag.Int("max-tasks", 100000, "per-instance task cap")
		maxMachines = flag.Int("max-machines", 10000, "per-instance machine cap")
		maxBatch    = flag.Int("max-batch", 256, "items per /v1/batch request")
		maxStream   = flag.Int("max-stream-items", 10000, "items per /v1/stream request")
		streamTime  = flag.Duration("stream-timeout", 5*time.Minute, "per-stream deadline")
		noHedge     = flag.Bool("no-hedge", false, "disable duplicate dispatch of slow items")
		hedgeQ      = flag.Float64("hedge-quantile", 0.9, "latency quantile that triggers a hedge")
		hedgeMin    = flag.Duration("hedge-min-delay", 2*time.Millisecond, "hedge delay floor")
		hedgeMax    = flag.Duration("hedge-max-delay", time.Second, "hedge delay cap")
		maxHedges   = flag.Int("max-hedges", 1, "extra replicas per slow item")
		brkThresh   = flag.Int("breaker-threshold", 3, "consecutive failures that open a backend's breaker")
		brkBase     = flag.Duration("breaker-base", 100*time.Millisecond, "first breaker-open window")
		brkMax      = flag.Duration("breaker-max", 5*time.Second, "breaker backoff cap")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "backend /healthz probe spacing")
		retryCap    = flag.Duration("retry-after-cap", 2*time.Second, "longest honored 429 Retry-After")
		statsFlag   = flag.Bool("stats", false, "print internal counters and timers to stderr on exit")
	)
	flag.Parse()

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "clusterd: -backends is required")
		os.Exit(2)
	}
	cfg := cluster.Config{
		Backends:           splitBackends(*backends),
		Strategy:           *strategy,
		Workers:            *workers,
		MaxBatch:           *maxBatch,
		MaxStreamItems:     *maxStream,
		StreamTimeout:      *streamTime,
		MaxTasks:           *maxTasks,
		MaxMachines:        *maxMachines,
		MaxBodyBytes:       *maxBody,
		RequestTimeout:     *timeout,
		DisableHedging:     *noHedge,
		HedgeQuantile:      *hedgeQ,
		HedgeMinDelay:      *hedgeMin,
		HedgeMaxDelay:      *hedgeMax,
		MaxHedges:          *maxHedges,
		BreakerThreshold:   *brkThresh,
		BreakerBaseBackoff: *brkBase,
		BreakerMaxBackoff:  *brkMax,
		ProbeInterval:      *probeEvery,
		RetryAfterCap:      *retryCap,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, *addr, cfg, *drain, nil)
	if *statsFlag {
		fmt.Fprintln(os.Stderr, "--- clusterd internal stats ---")
		if werr := obs.Write(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "clusterd: stats:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(1)
	}
}

// splitBackends parses the -backends list, dropping empty entries and
// trailing slashes so "url/" and "url" name the same backend.
func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// run serves until ctx is cancelled, then drains in-flight batches for
// at most drain. When ready is non-nil the bound address is sent on it
// once the listener is up (tests listen on port 0).
func run(ctx context.Context, addr string, cfg cluster.Config, drain time.Duration, ready chan<- net.Addr) error {
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	c.Start(ctx)
	defer c.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Detach from the cancelled signal context but keep its values:
	// the drain window must outlive the trigger that started it.
	shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
