package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// bootBackends starts n in-process schedd instances for clusterd to
// front.
func bootBackends(t *testing.T, n int) []string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	return urls
}

// TestRunServesAndShutsDown boots clusterd against two live schedd
// backends, exercises every endpoint, and checks clean drain on
// context cancellation.
func TestRunServesAndShutsDown(t *testing.T) {
	cfg := cluster.Config{Backends: bootBackends(t, 2), Strategy: "group:2"}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", cfg, 5*time.Second, ready)
	}()

	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health cluster.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Backends) != 2 {
		t.Fatalf("healthz: %+v", health)
	}

	body := `{"requests":[
	  {"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5]}},
	  {"algorithm":"oracle-lpt","instance":{"m":2,"alpha":1,"estimates":[3,1,2]}}
	]}`
	resp, err = http.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var batch cluster.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(batch.Results) != 2 {
		t.Fatalf("batch: status %d results %d", resp.StatusCode, len(batch.Results))
	}
	for i, item := range batch.Results {
		if item.Error != "" || item.Response == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunRejectsBadConfig surfaces configuration errors instead of
// hanging the daemon.
func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(context.Background(), "127.0.0.1:0",
		cluster.Config{}, time.Second, nil); err == nil {
		t.Fatal("accepted empty backend list")
	}
	if err := run(context.Background(), "127.0.0.1:0",
		cluster.Config{Backends: []string{"http://a", "http://b"}, Strategy: "group:3"},
		time.Second, nil); err == nil {
		t.Fatal("accepted non-dividing group count")
	}
	if err := run(context.Background(), "256.256.256.256:99999",
		cluster.Config{Backends: bootBackends(t, 1)}, time.Second, nil); err == nil {
		t.Fatal("accepted bad listen address")
	}
}

func TestSplitBackends(t *testing.T) {
	got := splitBackends(" http://a:8080/ ,, http://b:8080 ,")
	want := []string{"http://a:8080", "http://b:8080"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitBackends = %v, want %v", got, want)
	}
}
