package main

import "testing"

func TestRunPerturbed(t *testing.T) {
	if err := run(2, 3, 2, "lpt-nochoice", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRaw(t *testing.T) {
	if err := run(2, 3, 2, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 3, 2, "lpt-nochoice", false); err == nil {
		t.Error("lambda=0 accepted")
	}
	if err := run(2, 3, 2, "bogus", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
