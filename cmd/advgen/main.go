// Command advgen emits adversarial problem instances as JSON, for
// feeding into uncertsched -in or external tooling.
//
// By default it builds the Theorem 1 instance (λ·m unit tasks) and —
// unless -raw is given — plays the adversary against the chosen
// placement algorithm: it plans the placement on estimates, inflates
// the tasks of the most loaded machine by α and deflates the rest.
//
// Examples:
//
//	advgen -lambda 3 -m 6 -alpha 2 > instance.json
//	advgen -lambda 10 -m 12 -alpha 1.5 -algo ls-nochoice
//	advgen -raw -lambda 5 -m 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/algo"
)

func main() {
	var (
		lambda   = flag.Int("lambda", 3, "tasks per machine (λ)")
		m        = flag.Int("m", 6, "number of machines")
		alpha    = flag.Float64("alpha", 2, "uncertainty factor")
		algoName = flag.String("algo", "lpt-nochoice", "placement algorithm the adversary attacks")
		raw      = flag.Bool("raw", false, "emit the unperturbed instance (actuals = estimates)")
	)
	flag.Parse()

	if err := run(*lambda, *m, *alpha, *algoName, *raw); err != nil {
		fmt.Fprintln(os.Stderr, "advgen:", err)
		os.Exit(1)
	}
}

func run(lambda, m int, alpha float64, algoName string, raw bool) error {
	in, err := adversary.Theorem1Instance(lambda, m, alpha)
	if err != nil {
		return err
	}
	if !raw {
		a, err := algo.New(algoName)
		if err != nil {
			return err
		}
		p, err := a.Place(in)
		if err != nil {
			return err
		}
		if err := adversary.Apply(in, p); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "advgen: inflated %d of %d tasks against %s\n",
			adversary.InflatedCount(in), in.N(), a.Name())
	}
	return in.Write(os.Stdout)
}
