package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSABOAndABO(t *testing.T) {
	for _, a := range []string{"sabo", "abo"} {
		if err := run(a, 1, "spmv", "", 20, 4, 1.5, 1, "lognormal", false, false); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
}

func TestRunSweep(t *testing.T) {
	if err := run("sabo", 1, "mapreduce", "", 16, 4, 1.5, 1, "uniform", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunExactSmall(t *testing.T) {
	if err := run("abo", 2, "uniform", "", 10, 3, 1.3, 1, "uniform", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	csv := "task,estimate,actual,size\n0,5,6,2\n1,3,2.5,4\n2,4,4,1\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("sabo", 1, "", path, 0, 2, 1.5, 1, "uniform", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 1, "spmv", "", 10, 2, 1.5, 1, "uniform", false, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("sabo", 0, "spmv", "", 10, 2, 1.5, 1, "uniform", false, false); err == nil {
		t.Error("delta=0 accepted")
	}
	if err := run("sabo", 1, "", "/nonexistent.csv", 0, 2, 1.5, 1, "uniform", false, false); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run("sabo", 1, "spmv", "", 10, 2, 1.5, 1, "bogus", false, false); err == nil {
		t.Error("unknown model accepted")
	}
}
