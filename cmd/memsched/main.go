// Command memsched runs the memory-aware bi-objective algorithms
// (SABO_Δ / ABO_Δ) on a workload or an imported CSV trace and reports
// makespan, per-machine memory occupation, and the distance to both
// single-objective optima.
//
// Examples:
//
//	memsched -algo sabo -delta 1 -workload spmv -n 100 -m 8
//	memsched -algo abo -delta 0.5 -trace tasks.csv -m 8 -alpha 1.5
//	memsched -sweep -workload mapreduce -n 200 -m 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func main() {
	var (
		algoName = flag.String("algo", "sabo", "sabo | abo")
		delta    = flag.Float64("delta", 1, "Δ threshold (> 0)")
		wlName   = flag.String("workload", "spmv", "workload generator")
		trace    = flag.String("trace", "", "CSV trace file (task,estimate,actual,size)")
		n        = flag.Int("n", 100, "number of tasks")
		m        = flag.Int("m", 8, "number of machines")
		alpha    = flag.Float64("alpha", 1.5, "uncertainty factor")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		model    = flag.String("model", "lognormal", "uncertainty model")
		sweep    = flag.Bool("sweep", false, "sweep Δ over a grid for both algorithms")
		exact    = flag.Bool("exact", false, "use exact reference schedules (small instances only)")
	)
	flag.Parse()

	if err := run(*algoName, *delta, *wlName, *trace, *n, *m, *alpha, *seed,
		*model, *sweep, *exact); err != nil {
		fmt.Fprintln(os.Stderr, "memsched:", err)
		os.Exit(1)
	}
}

func loadInstance(wlName, trace string, n, m int, alpha float64, seed uint64,
	model string) (*task.Instance, error) {
	if trace != "" {
		f, err := os.Open(trace)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f, m, alpha)
	}
	in, err := workload.New(workload.Spec{
		Name: wlName, N: n, M: m, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	mdl, err := uncertainty.New(model)
	if err != nil {
		return nil, err
	}
	mdl.Perturb(in, nil, rng.New(seed+1))
	return in, nil
}

func run(algoName string, delta float64, wlName, trace string, n, m int,
	alpha float64, seed uint64, model string, sweep, exact bool) error {
	in, err := loadInstance(wlName, trace, n, m, alpha, seed, model)
	if err != nil {
		return err
	}

	if sweep {
		tb := report.NewTable("algorithm", "delta", "makespan", "memory",
			"makespan bound", "memory bound")
		for _, replicate := range []bool{false, true} {
			name := "SABO"
			if replicate {
				name = "ABO"
			}
			for _, d := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
				out, err := core.RunMemoryAware(in, core.MemoryAwareConfig{
					Delta: d, Replicate: replicate, Exact: exact,
				})
				if err != nil {
					return err
				}
				tb.AddRow(name, d, out.Result.Makespan, out.Result.MemMax,
					out.MakespanRatioBound*out.OptMakespan.Upper,
					out.MemoryRatioBound*out.OptMemory.Upper)
			}
		}
		return tb.Render(os.Stdout)
	}

	var replicate bool
	switch algoName {
	case "sabo":
	case "abo":
		replicate = true
	default:
		return fmt.Errorf("unknown algorithm %q (want sabo or abo)", algoName)
	}
	out, err := core.RunMemoryAware(in, core.MemoryAwareConfig{
		Delta: delta, Replicate: replicate, Exact: exact,
	})
	if err != nil {
		return err
	}
	res := out.Result
	fmt.Printf("instance : %v\n", in)
	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("split    : %d time-intensive (S1), %d memory-intensive (S2)\n",
		len(res.TimeIntensive), len(res.MemoryIntensive))
	fmt.Printf("makespan : %.6g (C* in [%.6g, %.6g], ratio bound %.3g)\n",
		res.Makespan, out.OptMakespan.Lower, out.OptMakespan.Upper, out.MakespanRatioBound)
	fmt.Printf("memory   : %.6g (Mem* in [%.6g, %.6g], ratio bound %.3g)\n",
		res.MemMax, out.OptMemory.Lower, out.OptMemory.Upper, out.MemoryRatioBound)

	tb := report.NewTable("machine", "load", "memory")
	loads := res.Schedule.Loads()
	mems := res.Placement.MemoryLoads(in)
	for i := 0; i < in.M; i++ {
		tb.AddRow(i, loads[i], mems[i])
	}
	fmt.Println()
	return tb.Render(os.Stdout)
}
