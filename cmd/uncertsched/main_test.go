package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratedWorkload(t *testing.T) {
	err := run("ls-group:2", "uniform", "", 20, 4, 1.5, 0, 1, "uniform", false, true, "", 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithGanttAndSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "out.svg")
	err := run("lpt-norestriction", "zipf", "", 15, 3, 2, 0, 2, "extremes", true, false, svg, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "</svg>") {
		t.Fatal("SVG file incomplete")
	}
}

func TestRunFromInstanceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.json")
	payload := `{"m":2,"alpha":2,"estimates":[1,2,3],"actuals":[2,1,3]}`
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("lpt-nochoice", "", path, 0, 0, 0, 0, 0, "", false, true, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare("uniform", "", 24, 6, 1.5, 0, 1, "uniform"); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareErrors(t *testing.T) {
	if err := runCompare("bogus", "", 10, 2, 1.5, 0, 1, "uniform"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "uniform", "", 10, 2, 1.5, 0, 1, "uniform", false, true, "", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("lpt-nochoice", "bogus", "", 10, 2, 1.5, 0, 1, "uniform", false, true, "", 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("lpt-nochoice", "uniform", "", 10, 2, 1.5, 0, 1, "bogus", false, true, "", 0); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("lpt-nochoice", "", "/nonexistent.json", 0, 0, 0, 0, 0, "", false, true, "", 0); err == nil {
		t.Error("missing instance file accepted")
	}
}
