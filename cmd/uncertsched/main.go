// Command uncertsched runs one scheduling algorithm on one workload
// and reports the placement, the executed schedule, and the measured
// competitive ratio against the offline optimum estimate.
//
// Examples:
//
//	uncertsched -algo ls-group:4 -workload mapreduce -n 200 -m 8 -alpha 1.5 -model lognormal
//	uncertsched -algo lpt-norestriction -in instance.json -gantt
//	uncertsched -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algo"
	"repro/internal/bounds"
	"repro/internal/opt"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func main() {
	var (
		algoName = flag.String("algo", "lpt-norestriction", "algorithm (see -list)")
		wlName   = flag.String("workload", "uniform", "workload generator (see -list)")
		inFile   = flag.String("in", "", "read instance JSON instead of generating a workload")
		n        = flag.Int("n", 100, "number of tasks")
		m        = flag.Int("m", 8, "number of machines")
		alpha    = flag.Float64("alpha", 1.5, "uncertainty factor (>= 1)")
		param    = flag.Float64("param", 0, "workload shape parameter (0 = default)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		model    = flag.String("model", "uniform", "uncertainty model (see -list)")
		gantt    = flag.Bool("gantt", false, "render an ASCII Gantt chart")
		svgFile  = flag.String("svg", "", "write the schedule as an SVG Gantt chart to this file")
		list     = flag.Bool("list", false, "list algorithms, workloads and models")
		quiet    = flag.Bool("q", false, "print only the makespan")
		compare  = flag.Bool("compare", false, "run every replication strategy and print a comparison table")
		traceN   = flag.Int("trace", 0, "print the first N simulation events")
	)
	flag.Parse()

	if *list {
		fmt.Println("algorithms:", algo.Names())
		fmt.Println("workloads: ", workload.Names())
		fmt.Println("models:    ", uncertainty.Names())
		return
	}

	var err error
	if *compare {
		err = runCompare(*wlName, *inFile, *n, *m, *alpha, *param, *seed, *model)
	} else {
		err = run(*algoName, *wlName, *inFile, *n, *m, *alpha, *param, *seed,
			*model, *gantt, *quiet, *svgFile, *traceN)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertsched:", err)
		os.Exit(1)
	}
}

// loadInstance builds the problem instance from a JSON file or a
// generated workload plus perturbation model.
func loadInstance(wlName, inFile string, n, m int, alpha, param float64,
	seed uint64, model string) (*task.Instance, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in, err := task.Read(f)
		if err != nil {
			return nil, err
		}
		return in, in.Validate(true)
	}
	in, err := workload.New(workload.Spec{
		Name: wlName, N: n, M: m, Alpha: alpha, Seed: seed, Param: param,
	})
	if err != nil {
		return nil, err
	}
	mdl, err := uncertainty.New(model)
	if err != nil {
		return nil, err
	}
	mdl.Perturb(in, nil, rng.New(seed+1))
	return in, in.Validate(true)
}

// runCompare executes every strategy (no replication → everywhere,
// plus the oracle) on the same instance and prints a ranking table.
func runCompare(wlName, inFile string, n, m int, alpha, param float64,
	seed uint64, model string) error {
	in, err := loadInstance(wlName, inFile, n, m, alpha, param, seed, model)
	if err != nil {
		return err
	}
	names := []string{"lpt-nochoice", "ls-norestriction", "lpt-norestriction", "oracle-lpt"}
	for _, k := range bounds.Divisors(in.M) {
		if k != 1 && k != in.M {
			names = append(names, fmt.Sprintf("ls-group:%d", k))
		}
	}
	est := opt.Estimate(in.Actuals(), in.M, 0)
	tb := report.NewTable("algorithm", "replicas", "makespan", "ratio (ub)")
	for _, name := range names {
		a, err := algo.New(name)
		if err != nil {
			return err
		}
		res, err := algo.Execute(in, a)
		if err != nil {
			return err
		}
		ratio := "n/a"
		if est.Lower > 0 {
			ratio = fmt.Sprintf("%.4g", res.Makespan/est.Lower)
		}
		tb.AddRow(res.Algorithm, res.Placement.MaxReplication(), res.Makespan, ratio)
	}
	fmt.Printf("instance : %v\n", in)
	fmt.Printf("optimum  : C* in [%.6g, %.6g] (%s)\n\n", est.Lower, est.Upper, est.Method)
	return tb.Render(os.Stdout)
}

func run(algoName, wlName, inFile string, n, m int, alpha, param float64,
	seed uint64, model string, gantt, quiet bool, svgFile string, traceN int) error {
	a, err := algo.New(algoName)
	if err != nil {
		return err
	}
	in, err := loadInstance(wlName, inFile, n, m, alpha, param, seed, model)
	if err != nil {
		return err
	}

	res, err := algo.Execute(in, a)
	if err != nil {
		return err
	}
	if quiet {
		fmt.Printf("%g\n", res.Makespan)
		return writeSVG(res, in, svgFile, true)
	}

	fmt.Printf("instance : %v\n", in)
	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("placement: max %d replicas/task, %d replicas total\n",
		res.Placement.MaxReplication(), res.Placement.TotalReplicas())
	fmt.Printf("schedule : %s\n", res.Schedule.Summary())

	est := opt.Estimate(in.Actuals(), in.M, 0)
	fmt.Printf("optimum  : C* in [%.6g, %.6g] (%s)\n", est.Lower, est.Upper, est.Method)
	if est.Lower > 0 {
		fmt.Printf("ratio    : C/C* in [%.4g, %.4g]\n",
			res.Makespan/est.Upper, res.Makespan/est.Lower)
	}
	if gantt {
		fmt.Println()
		fmt.Print(res.Schedule.Gantt(72))
	}
	if traceN > 0 {
		if err := printTrace(in, a, traceN); err != nil {
			return err
		}
	}
	return writeSVG(res, in, svgFile, false)
}

// printTrace re-runs phase 2 with event tracing and prints the first
// limit events.
func printTrace(in *task.Instance, a algo.Algorithm, limit int) error {
	p, err := a.Place(in)
	if err != nil {
		return err
	}
	d, err := sim.NewListDispatcher(p, a.Order(in))
	if err != nil {
		return err
	}
	res, err := sim.Run(in, d, sim.Options{Trace: true})
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace (%d of %d events):\n", min(limit, len(res.Trace)), len(res.Trace))
	for i, ev := range res.Trace {
		if i >= limit {
			break
		}
		fmt.Printf("  t=%-10.4g %-6s task %-4d machine %d\n", ev.Time, ev.Kind, ev.Task, ev.Machine)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func writeSVG(res *algo.Result, in *task.Instance, svgFile string, quiet bool) error {
	if svgFile == "" {
		return nil
	}
	f, err := os.Create(svgFile)
	if err != nil {
		return err
	}
	err = res.Schedule.WriteSVG(f, sched.SVGOptions{
		Title: fmt.Sprintf("%s on %v", res.Algorithm, in),
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("svg      : wrote %s\n", svgFile)
	}
	return nil
}
