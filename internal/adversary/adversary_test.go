package adversary

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/bounds"
	"repro/internal/opt"
	"repro/internal/placement"
	"repro/internal/task"
)

func TestTheorem1InstanceShape(t *testing.T) {
	in, err := Theorem1Instance(3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 18 || in.M != 6 {
		t.Fatalf("shape n=%d m=%d", in.N(), in.M)
	}
	for _, tk := range in.Tasks {
		if tk.Estimate != 1 {
			t.Fatalf("non-unit estimate %v", tk.Estimate)
		}
	}
}

func TestTheorem1InstanceRejectsBadArgs(t *testing.T) {
	if _, err := Theorem1Instance(0, 5, 2); err == nil {
		t.Fatal("lambda=0 accepted")
	}
	if _, err := Theorem1Instance(2, 0, 2); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestApplyInflatesOneMachineLoad(t *testing.T) {
	in, err := Theorem1Instance(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(6, 3)
	// Machine 0 gets 3 tasks (most loaded), others split the rest.
	pref := []int{0, 0, 0, 1, 1, 2}
	for j, i := range pref {
		p.Assign(j, i)
	}
	if err := Apply(in, p); err != nil {
		t.Fatal(err)
	}
	if got := InflatedCount(in); got != 3 {
		t.Fatalf("inflated %d tasks, want 3", got)
	}
	for j := 0; j < 3; j++ {
		if in.Tasks[j].Actual != 2 {
			t.Fatalf("task %d actual %v, want 2", j, in.Tasks[j].Actual)
		}
	}
	for j := 3; j < 6; j++ {
		if in.Tasks[j].Actual != 0.5 {
			t.Fatalf("task %d actual %v, want 0.5", j, in.Tasks[j].Actual)
		}
	}
	if err := in.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1BoundFormulas(t *testing.T) {
	// λ=3, m=6, B=3 (balanced placement), α=2:
	// C* ≤ ceil(15/6)/2 + 2·ceil(3/6) = 3/2 + 2 = 3.5; ratio = 6/3.5.
	upper := Theorem1OptimalUpper(3, 6, 3, 2)
	if math.Abs(upper-3.5) > 1e-12 {
		t.Fatalf("optimal upper = %v, want 3.5", upper)
	}
	ratio := Theorem1Ratio(3, 6, 3, 2)
	if math.Abs(ratio-6/3.5) > 1e-12 {
		t.Fatalf("ratio = %v, want %v", ratio, 6/3.5)
	}
}

func TestAdversaryRatioApproachesTheorem1Bound(t *testing.T) {
	// As λ grows the certified ratio of a balanced placement tends to
	// α²m/(α²+m−1).
	m, alpha := 6, 2.0
	want := bounds.LowerBoundNoReplication(m, alpha)
	ratio := Theorem1Ratio(200, m, 200, alpha)
	if math.Abs(ratio-want)/want > 0.02 {
		t.Fatalf("λ=200 ratio %v, theorem bound %v", ratio, want)
	}
	// And the certified ratio never exceeds the theorem's bound.
	for _, lambda := range []int{1, 2, 5, 10, 100} {
		r := Theorem1Ratio(lambda, m, lambda, alpha)
		if r > want+1e-9 {
			t.Fatalf("λ=%d certified ratio %v exceeds theorem bound %v", lambda, r, want)
		}
	}
}

func TestEndToEndAdversaryAgainstLPTNoChoice(t *testing.T) {
	// Run the full pipeline: place, perturb, execute, and compare the
	// measured ratio with the exact optimum. The measured ratio must
	// (a) exceed 1 (the adversary hurts) and (b) respect Theorem 2.
	in, err := Theorem1Instance(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := algo.LPTNoChoice()
	p, err := a.Place(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(in, p); err != nil {
		t.Fatal(err)
	}
	res, err := algo.Execute(in, a)
	if err != nil {
		t.Fatal(err)
	}
	star, ok := opt.Exact(in.Actuals(), in.M, 50_000_000)
	if !ok {
		t.Fatal("exact solver exhausted")
	}
	ratio := res.Makespan / star
	if ratio <= 1.2 {
		t.Fatalf("adversary ineffective: ratio %v", ratio)
	}
	if bound := bounds.LPTNoChoice(in.M, in.Alpha); ratio > bound+1e-9 {
		t.Fatalf("ratio %v exceeds Theorem 2 bound %v", ratio, bound)
	}
	// The adversary also certifies at least the Theorem 1 trend: with a
	// balanced LPT placement B=λ, so expect ratio ≥ Theorem1Ratio.
	if cert := Theorem1Ratio(3, 4, 3, 2); ratio < cert-1e-9 {
		t.Fatalf("measured ratio %v below certified %v", ratio, cert)
	}
}

func TestApplyToGroups(t *testing.T) {
	est := []float64{4, 1, 1, 1}
	in, err := task.NewEstimated(4, 2, est)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := placement.PartitionGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(4, 4)
	p.Groups = groups
	p.GroupOf = []int{0, 1, 1, 1}
	for j, g := range p.GroupOf {
		p.AssignSet(j, groups[g])
	}
	if err := ApplyToGroups(in, p); err != nil {
		t.Fatal(err)
	}
	// Group 0 (load 4) is inflated, group 1 (load 3) deflated.
	if in.Tasks[0].Actual != 8 {
		t.Fatalf("task 0 actual %v, want 8", in.Tasks[0].Actual)
	}
	for j := 1; j < 4; j++ {
		if in.Tasks[j].Actual != 0.5 {
			t.Fatalf("task %d actual %v, want 0.5", j, in.Tasks[j].Actual)
		}
	}
}

func TestApplyToGroupsRequiresGroups(t *testing.T) {
	in, err := Theorem1Instance(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(2, 2)
	p.Assign(0, 0)
	p.Assign(1, 1)
	if err := ApplyToGroups(in, p); err == nil {
		t.Fatal("placement without groups accepted")
	}
}

func TestApplyShapeMismatch(t *testing.T) {
	in, _ := Theorem1Instance(1, 2, 2)
	p := placement.New(1, 2)
	p.Assign(0, 0)
	if err := Apply(in, p); err == nil {
		t.Fatal("mismatched placement accepted")
	}
}
