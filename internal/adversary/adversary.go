// Package adversary constructs the worst-case instances used in the
// paper's proofs, so the experiments can measure how close each
// algorithm's empirical competitive ratio comes to its analytic bound.
//
// The central construction is the Theorem 1 adversary: λ·m tasks of
// estimated time 1. After observing the phase-1 placement, the
// adversary multiplies the processing times of the tasks on the most
// loaded machine by α and divides everything else by α. The blind
// schedule then pays α·B (B = tasks on that machine) while an
// offline optimum can redistribute, giving the ratio
// α²m/(α²+m−1) in the λ→∞ limit.
package adversary

import (
	"fmt"
	"math"

	"repro/internal/placement"
	"repro/internal/task"
	"repro/internal/uncertainty"
)

// Theorem1Instance returns the proof's instance: λ·m unit-estimate
// tasks on m machines with uncertainty factor α. Actual times start
// equal to the estimates; call Apply (after phase 1) to let the
// adversary set them.
func Theorem1Instance(lambda, m int, alpha float64) (*task.Instance, error) {
	if lambda < 1 || m < 1 {
		return nil, fmt.Errorf("adversary: lambda and m must be positive, got %d, %d", lambda, m)
	}
	est := make([]float64, lambda*m)
	for i := range est {
		est[i] = 1
	}
	return task.NewEstimated(m, alpha, est)
}

// Apply perturbs the instance the way the Theorem 1 adversary does,
// given the algorithm's phase-1 placement: tasks whose (single or
// first-choice) machine is the most estimated-loaded machine are
// inflated by α, all others deflated by 1/α. For replicated
// placements the "preferred" machine of a task is the lowest-indexed
// machine of its replica set, which matches the deterministic
// dispatcher's first choice for uniform instances.
func Apply(in *task.Instance, p *placement.Placement) error {
	if p.N() != in.N() {
		return fmt.Errorf("adversary: placement covers %d tasks, instance has %d", p.N(), in.N())
	}
	pref := make([]int, in.N())
	for j, set := range p.Sets {
		if len(set) == 0 {
			return fmt.Errorf("adversary: task %d has no replicas", j)
		}
		pref[j] = set[0]
	}
	uncertainty.LoadedMachineAdversary{}.Perturb(in,
		&uncertainty.Context{Preferred: pref, M: in.M}, nil)
	return nil
}

// ApplyToGroups perturbs a group placement: the adversary inflates
// every task assigned to the group with the largest estimated load
// and deflates the rest, the worst case of Theorem 4's analysis.
func ApplyToGroups(in *task.Instance, p *placement.Placement) error {
	if p.Groups == nil || len(p.GroupOf) != in.N() {
		return fmt.Errorf("adversary: placement has no group structure")
	}
	loads := make([]float64, len(p.Groups))
	for j, g := range p.GroupOf {
		loads[g] += in.Tasks[j].Estimate
	}
	worst := 0
	for g := 1; g < len(loads); g++ {
		if loads[g] > loads[worst] {
			worst = g
		}
	}
	for j := range in.Tasks {
		if p.GroupOf[j] == worst {
			in.Tasks[j].Actual = in.Tasks[j].Estimate * in.Alpha
		} else {
			in.Tasks[j].Actual = in.Tasks[j].Estimate / in.Alpha
		}
	}
	return nil
}

// Theorem1OptimalUpper returns the proof's upper bound on the offline
// optimum for the Theorem 1 instance after the adversary inflated B
// unit tasks: C* ≤ ⌈(λm−B)/m⌉/α + α·⌈B/m⌉ (distribute both classes
// evenly).
func Theorem1OptimalUpper(lambda, m, b int, alpha float64) float64 {
	total := lambda * m
	short := total - b
	return math.Ceil(float64(short)/float64(m))/alpha +
		alpha*math.Ceil(float64(b)/float64(m))
}

// Theorem1Ratio returns the competitive-ratio lower bound the
// adversary certifies for a blind schedule that put B unit tasks on
// one machine: (α·B) / Theorem1OptimalUpper.
func Theorem1Ratio(lambda, m, b int, alpha float64) float64 {
	return alpha * float64(b) / Theorem1OptimalUpper(lambda, m, b, alpha)
}

// InflatedCount returns how many tasks the adversary inflated (their
// actual exceeds their estimate).
func InflatedCount(in *task.Instance) int {
	n := 0
	for _, t := range in.Tasks {
		if t.Actual > t.Estimate {
			n++
		}
	}
	return n
}
