package placement

import (
	"encoding/json"
	"io"
)

// placementJSON is the wire form of a Placement.
type placementJSON struct {
	M       int     `json:"m"`
	Sets    [][]int `json:"sets"`
	Groups  [][]int `json:"groups,omitempty"`
	GroupOf []int   `json:"group_of,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Placement) MarshalJSON() ([]byte, error) {
	return json.Marshal(placementJSON{
		M: p.M, Sets: p.Sets, Groups: p.Groups, GroupOf: p.GroupOf,
	})
}

// UnmarshalJSON implements json.Unmarshaler. Structural validation is
// deferred to Validate, which needs the instance.
func (p *Placement) UnmarshalJSON(data []byte) error {
	var w placementJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	p.M = w.M
	p.Sets = w.Sets
	p.Groups = w.Groups
	p.GroupOf = w.GroupOf
	return nil
}

// Write encodes the placement as JSON to w.
func (p *Placement) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(p)
}

// Read decodes a placement from JSON.
func Read(r io.Reader) (*Placement, error) {
	var p Placement
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return &p, nil
}
