// Package placement represents the output of phase 1: for every task j
// a replica set M_j ⊆ M of machines that hold the task's input data,
// plus (for the group strategy) the partition of machines into groups.
//
// Phase 2 may only run task j on a machine in M_j. The package
// validates the structural constraints of each replication strategy:
//
//   - no replication:       |M_j| = 1
//   - replicate everywhere: |M_j| = m
//   - replication bound k:  |M_j| ≤ k
//   - groups:               M_j is exactly one of the k groups
package placement

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/task"
)

// Placement is a phase-1 decision.
type Placement struct {
	// M is the machine count.
	M int
	// Sets[j] lists the machines holding task j's data, sorted
	// ascending without duplicates.
	Sets [][]int
	// Groups, when non-nil, partitions machines into groups; Groups[g]
	// lists group g's machines. Only the group strategy sets it.
	Groups [][]int
	// GroupOf, when Groups is non-nil, maps each task to its group.
	GroupOf []int

	// backing is a shared slab for singleton replica sets: Assign
	// carves one-element sets out of it instead of allocating a fresh
	// []int per task (previously n allocations for a no-replication
	// placement). Invisible to JSON and to readers of Sets.
	backing []int
}

// Validation errors.
var (
	ErrShape        = errors.New("placement: wrong number of tasks or machines")
	ErrEmptySet     = errors.New("placement: task has empty replica set")
	ErrBadMachine   = errors.New("placement: replica set references invalid machine")
	ErrUnsorted     = errors.New("placement: replica set not sorted or has duplicates")
	ErrBound        = errors.New("placement: replica set exceeds replication bound")
	ErrGroupShape   = errors.New("placement: groups do not partition the machines")
	ErrGroupMapping = errors.New("placement: task replica set is not its group")
)

// New returns an empty placement for n tasks on m machines.
func New(n, m int) *Placement {
	return &Placement{M: m, Sets: make([][]int, n)}
}

// N returns the number of tasks covered by the placement.
func (p *Placement) N() int { return len(p.Sets) }

// Reset re-initializes the placement as an empty n-task, m-machine
// decision, reusing the Sets and backing buffers. Every field is
// rebuilt or cleared — Groups and GroupOf are dropped, all replica
// sets are nil — so a pooled Placement cannot leak sets from a
// previous trial.
func (p *Placement) Reset(n, m int) {
	p.M = m
	if cap(p.Sets) < n {
		p.Sets = make([][]int, n)
	} else {
		p.Sets = p.Sets[:n]
		clear(p.Sets)
	}
	p.Groups = nil
	p.GroupOf = nil
	p.backing = p.backing[:0]
}

// Assign sets task j's replica set to exactly machine i.
func (p *Placement) Assign(j, i int) {
	if cap(p.backing) == len(p.backing) {
		// Grow the slab to cover the whole instance at once. Earlier
		// sets keep pointing into the previous slab, which stays valid.
		grow := len(p.Sets)
		if grow < 16 {
			grow = 16
		}
		p.backing = make([]int, 0, grow)
	}
	p.backing = append(p.backing, i)
	p.Sets[j] = p.backing[len(p.backing)-1 : len(p.backing) : len(p.backing)]
}

// AssignSet sets task j's replica set to a copy of machines, sorted
// and deduplicated.
func (p *Placement) AssignSet(j int, machines []int) {
	set := make([]int, len(machines))
	copy(set, machines)
	sort.Ints(set)
	out := set[:0]
	for idx, mach := range set {
		if idx == 0 || mach != set[idx-1] {
			out = append(out, mach)
		}
	}
	p.Sets[j] = out
}

// Everywhere places every task on all machines.
func Everywhere(n, m int) *Placement {
	p := New(n, m)
	EverywhereInto(n, m, p)
	return p
}

// EverywhereInto writes the full-replication placement into p, reusing
// its buffers: the all-machines set is carved from the backing slab and
// shared by every task (replica sets are read-only by convention).
func EverywhereInto(n, m int, p *Placement) {
	p.Reset(n, m)
	if cap(p.backing) < m {
		p.backing = make([]int, 0, m)
	}
	p.backing = p.backing[:m:m]
	all := p.backing
	for i := range all {
		all[i] = i
	}
	for j := range p.Sets {
		p.Sets[j] = all
	}
}

// MaxReplication returns max_j |M_j|.
func (p *Placement) MaxReplication() int {
	max := 0
	for _, set := range p.Sets {
		if len(set) > max {
			max = len(set)
		}
	}
	return max
}

// TotalReplicas returns Σ_j |M_j|, the total number of data copies.
func (p *Placement) TotalReplicas() int {
	total := 0
	for _, set := range p.Sets {
		total += len(set)
	}
	return total
}

// MemoryLoads returns, for each machine, the total size of the tasks
// replicated on it: Mem_i = Σ_{j: i ∈ M_j} s_j (memory-aware model).
func (p *Placement) MemoryLoads(in *task.Instance) []float64 {
	loads := make([]float64, p.M)
	for j, set := range p.Sets {
		for _, i := range set {
			loads[i] += in.Tasks[j].Size
		}
	}
	return loads
}

// MaxMemory returns max_i Mem_i.
func (p *Placement) MaxMemory(in *task.Instance) float64 {
	max := 0.0
	for _, l := range p.MemoryLoads(in) {
		if l > max {
			max = l
		}
	}
	return max
}

// EstimatedLoads returns, for each machine, the summed estimates of
// tasks whose replica set is exactly that machine (meaningful for
// no-replication placements).
func (p *Placement) EstimatedLoads(in *task.Instance) []float64 {
	loads := make([]float64, p.M)
	for j, set := range p.Sets {
		if len(set) == 1 {
			loads[set[0]] += in.Tasks[j].Estimate
		}
	}
	return loads
}

// CheckSets validates a slice of replica sets against a machine count
// m, independently of any instance: every set must be non-empty,
// reference only machines in [0, m), and be strictly ascending (sorted
// with no duplicates). It is the shared structural check behind
// Validate and external consumers of phase-1 replica sets — notably
// the cluster dispatcher, which reuses the same set shape with
// backends standing in for machines.
func CheckSets(sets [][]int, m int) error {
	for j, set := range sets {
		if len(set) == 0 {
			return fmt.Errorf("%w: task %d", ErrEmptySet, j)
		}
		for idx, i := range set {
			if i < 0 || i >= m {
				return fmt.Errorf("%w: task %d machine %d", ErrBadMachine, j, i)
			}
			if idx > 0 && set[idx-1] >= i {
				return fmt.Errorf("%w: task %d", ErrUnsorted, j)
			}
		}
	}
	return nil
}

// Validate checks structural soundness against the instance: one set
// per task, sets non-empty, machine indices valid, sets sorted and
// duplicate-free, and group bookkeeping consistent when present.
func (p *Placement) Validate(in *task.Instance) error {
	if len(p.Sets) != in.N() || p.M != in.M {
		return fmt.Errorf("%w: placement %dx%d vs instance %dx%d",
			ErrShape, len(p.Sets), p.M, in.N(), in.M)
	}
	if err := CheckSets(p.Sets, p.M); err != nil {
		return err
	}
	if p.Groups != nil {
		if err := p.validateGroups(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Placement) validateGroups() error {
	seen := make([]bool, p.M)
	count := 0
	for g, ms := range p.Groups {
		if len(ms) == 0 {
			return fmt.Errorf("%w: group %d empty", ErrGroupShape, g)
		}
		for _, i := range ms {
			if i < 0 || i >= p.M || seen[i] {
				return fmt.Errorf("%w: group %d machine %d", ErrGroupShape, g, i)
			}
			seen[i] = true
			count++
		}
	}
	if count != p.M {
		return fmt.Errorf("%w: %d machines covered of %d", ErrGroupShape, count, p.M)
	}
	if len(p.GroupOf) != len(p.Sets) {
		return fmt.Errorf("%w: GroupOf has %d entries for %d tasks",
			ErrGroupMapping, len(p.GroupOf), len(p.Sets))
	}
	// Sets are ascending (CheckSets), and groups from the partition
	// constructors are too, so the per-task set-vs-group comparison is
	// a direct walk. A group stored unsorted (legal for hand-built
	// placements) gets one sorted copy — once per group, not once per
	// task, which used to dominate the allocation profile of
	// group-strategy runs (n allocations per Validate at n tasks).
	var sorted [][]int // lazily built, only when some group is unsorted
	for j, g := range p.GroupOf {
		if g < 0 || g >= len(p.Groups) {
			return fmt.Errorf("%w: task %d group %d", ErrGroupMapping, j, g)
		}
		ref := p.Groups[g]
		if !sort.IntsAreSorted(ref) {
			if sorted == nil {
				sorted = make([][]int, len(p.Groups))
			}
			if sorted[g] == nil {
				bs := make([]int, len(ref))
				copy(bs, ref)
				sort.Ints(bs)
				sorted[g] = bs
			}
			ref = sorted[g]
		}
		if !equalAscending(p.Sets[j], ref) {
			return fmt.Errorf("%w: task %d", ErrGroupMapping, j)
		}
	}
	return nil
}

// CheckBound verifies the replication-bound constraint |M_j| ≤ k.
func (p *Placement) CheckBound(k int) error {
	for j, set := range p.Sets {
		if len(set) > k {
			return fmt.Errorf("%w: task %d has %d replicas, bound %d", ErrBound, j, len(set), k)
		}
	}
	return nil
}

// equalAscending compares two ascending machine lists element-wise.
func equalAscending(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SingleMachineOf returns, for each task, the single machine of its
// replica set, or an error if any task is replicated. It is the bridge
// to uncertainty.Context.Preferred for adversarial perturbations of
// no-replication placements.
func (p *Placement) SingleMachineOf() ([]int, error) {
	out := make([]int, len(p.Sets))
	for j, set := range p.Sets {
		if len(set) != 1 {
			return nil, fmt.Errorf("placement: task %d has %d replicas, want 1", j, len(set))
		}
		out[j] = set[0]
	}
	return out, nil
}

// PartitionGroups splits m machines into k equal contiguous groups.
// It returns an error unless k divides m (the paper's simplifying
// assumption) and 1 ≤ k ≤ m.
func PartitionGroups(m, k int) ([][]int, error) {
	if k < 1 || k > m {
		return nil, fmt.Errorf("placement: k=%d out of range [1, %d]", k, m)
	}
	if m%k != 0 {
		return nil, fmt.Errorf("placement: k=%d does not divide m=%d", k, m)
	}
	size := m / k
	groups := make([][]int, k)
	for g := 0; g < k; g++ {
		ms := make([]int, size)
		for i := range ms {
			ms[i] = g*size + i
		}
		groups[g] = ms
	}
	return groups, nil
}

// PartitionGroupsBalanced splits m machines into k contiguous groups
// whose sizes differ by at most one (the first m mod k groups get the
// extra machine) — the generalization the paper's "k divides m"
// assumption sidesteps. It requires 1 ≤ k ≤ m.
func PartitionGroupsBalanced(m, k int) ([][]int, error) {
	if k < 1 || k > m {
		return nil, fmt.Errorf("placement: k=%d out of range [1, %d]", k, m)
	}
	groups := make([][]int, k)
	next := 0
	for g := 0; g < k; g++ {
		size := m / k
		if g < m%k {
			size++
		}
		ms := make([]int, size)
		for i := range ms {
			ms[i] = next
			next++
		}
		groups[g] = ms
	}
	return groups, nil
}
