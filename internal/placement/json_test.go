package placement

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlacementJSONRoundTrip(t *testing.T) {
	in := inst(t, 4, 6)
	groups, err := PartitionGroups(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := New(4, 6)
	p.Groups = groups
	p.GroupOf = []int{0, 1, 0, 1}
	for j, g := range p.GroupOf {
		p.AssignSet(j, groups[g])
	}

	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(in); err != nil {
		t.Fatalf("round-tripped placement invalid: %v", err)
	}
	if got.M != p.M || got.N() != p.N() {
		t.Fatalf("shape changed: %dx%d", got.N(), got.M)
	}
	for j := range p.Sets {
		if len(got.Sets[j]) != len(p.Sets[j]) {
			t.Fatalf("task %d set changed", j)
		}
		for i := range p.Sets[j] {
			if got.Sets[j][i] != p.Sets[j][i] {
				t.Fatalf("task %d set changed", j)
			}
		}
	}
	if len(got.GroupOf) != 4 || got.GroupOf[1] != 1 {
		t.Fatalf("group mapping lost: %v", got.GroupOf)
	}
}

func TestPlacementJSONWithoutGroups(t *testing.T) {
	p := New(2, 3)
	p.Assign(0, 1)
	p.Assign(1, 2)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "groups") {
		t.Fatalf("groups serialized for group-free placement: %s", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Groups != nil {
		t.Fatal("groups materialized from nothing")
	}
}

func TestPlacementReadGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}
