package placement

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/task"
)

func inst(t *testing.T, n, m int) *task.Instance {
	t.Helper()
	est := make([]float64, n)
	for i := range est {
		est[i] = float64(i + 1)
	}
	in, err := task.NewEstimated(m, 2, est)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAssignAndValidate(t *testing.T) {
	in := inst(t, 4, 3)
	p := New(4, 3)
	for j := 0; j < 4; j++ {
		p.Assign(j, j%3)
	}
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	if p.MaxReplication() != 1 || p.TotalReplicas() != 4 {
		t.Fatalf("replication counts wrong: max=%d total=%d", p.MaxReplication(), p.TotalReplicas())
	}
}

func TestAssignSetSortsAndDedups(t *testing.T) {
	p := New(1, 5)
	p.AssignSet(0, []int{3, 1, 3, 0})
	want := []int{0, 1, 3}
	if len(p.Sets[0]) != len(want) {
		t.Fatalf("got %v", p.Sets[0])
	}
	for i, v := range want {
		if p.Sets[0][i] != v {
			t.Fatalf("got %v, want %v", p.Sets[0], want)
		}
	}
}

func TestEverywhere(t *testing.T) {
	in := inst(t, 3, 4)
	p := Everywhere(3, 4)
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	if p.MaxReplication() != 4 || p.TotalReplicas() != 12 {
		t.Fatalf("everywhere counts: max=%d total=%d", p.MaxReplication(), p.TotalReplicas())
	}
}

func TestValidateCatchesEmptySet(t *testing.T) {
	in := inst(t, 2, 2)
	p := New(2, 2)
	p.Assign(0, 0)
	err := p.Validate(in)
	if !errors.Is(err, ErrEmptySet) {
		t.Fatalf("got %v, want ErrEmptySet", err)
	}
}

func TestValidateCatchesBadMachine(t *testing.T) {
	in := inst(t, 1, 2)
	p := New(1, 2)
	p.Sets[0] = []int{5}
	if err := p.Validate(in); !errors.Is(err, ErrBadMachine) {
		t.Fatalf("got %v, want ErrBadMachine", err)
	}
	p.Sets[0] = []int{-1}
	if err := p.Validate(in); !errors.Is(err, ErrBadMachine) {
		t.Fatalf("got %v, want ErrBadMachine", err)
	}
}

func TestValidateCatchesUnsorted(t *testing.T) {
	in := inst(t, 1, 3)
	p := New(1, 3)
	p.Sets[0] = []int{2, 1}
	if err := p.Validate(in); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("got %v, want ErrUnsorted", err)
	}
	p.Sets[0] = []int{1, 1}
	if err := p.Validate(in); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("got %v, want ErrUnsorted", err)
	}
}

func TestValidateCatchesShapeMismatch(t *testing.T) {
	in := inst(t, 3, 2)
	p := New(2, 2)
	p.Assign(0, 0)
	p.Assign(1, 1)
	if err := p.Validate(in); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestCheckBound(t *testing.T) {
	p := New(2, 4)
	p.AssignSet(0, []int{0, 1})
	p.AssignSet(1, []int{0, 1, 2})
	if err := p.CheckBound(3); err != nil {
		t.Fatalf("bound 3 rejected: %v", err)
	}
	if err := p.CheckBound(2); !errors.Is(err, ErrBound) {
		t.Fatalf("got %v, want ErrBound", err)
	}
}

func TestPartitionGroups(t *testing.T) {
	groups, err := PartitionGroups(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[1][0] != 3 {
		t.Fatalf("second group starts at %d, want 3", groups[1][0])
	}
}

func TestPartitionGroupsRejectsNonDivisors(t *testing.T) {
	if _, err := PartitionGroups(6, 4); err == nil {
		t.Fatal("k=4, m=6 accepted")
	}
	if _, err := PartitionGroups(6, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PartitionGroups(6, 7); err == nil {
		t.Fatal("k>m accepted")
	}
}

func TestGroupValidation(t *testing.T) {
	in := inst(t, 4, 6)
	groups, _ := PartitionGroups(6, 2)
	p := New(4, 6)
	p.Groups = groups
	p.GroupOf = []int{0, 1, 0, 1}
	for j, g := range p.GroupOf {
		p.AssignSet(j, groups[g])
	}
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Corrupt the mapping: task 0 claims group 0 but sits in group 1's
	// machines.
	p.AssignSet(0, groups[1])
	if err := p.Validate(in); !errors.Is(err, ErrGroupMapping) {
		t.Fatalf("got %v, want ErrGroupMapping", err)
	}
}

func TestGroupValidationCatchesNonPartition(t *testing.T) {
	in := inst(t, 1, 4)
	p := New(1, 4)
	p.Assign(0, 0)
	p.Groups = [][]int{{0, 1}, {1, 2}} // overlap, and machine 3 uncovered
	p.GroupOf = []int{0}
	p.AssignSet(0, p.Groups[0])
	if err := p.Validate(in); !errors.Is(err, ErrGroupShape) {
		t.Fatalf("got %v, want ErrGroupShape", err)
	}
}

func TestMemoryLoads(t *testing.T) {
	in := inst(t, 3, 2)
	if err := in.SetSizes([]float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	p := New(3, 2)
	p.Assign(0, 0)              // 10 on machine 0
	p.AssignSet(1, []int{0, 1}) // 20 on both
	p.Assign(2, 1)              // 30 on machine 1
	loads := p.MemoryLoads(in)
	if loads[0] != 30 || loads[1] != 50 {
		t.Fatalf("memory loads = %v, want [30 50]", loads)
	}
	if p.MaxMemory(in) != 50 {
		t.Fatalf("MaxMemory = %v, want 50", p.MaxMemory(in))
	}
}

func TestEstimatedLoads(t *testing.T) {
	in := inst(t, 3, 2) // estimates 1, 2, 3
	p := New(3, 2)
	p.Assign(0, 0)
	p.Assign(1, 1)
	p.Assign(2, 1)
	loads := p.EstimatedLoads(in)
	if loads[0] != 1 || loads[1] != 5 {
		t.Fatalf("estimated loads = %v", loads)
	}
}

func TestSingleMachineOf(t *testing.T) {
	p := New(2, 3)
	p.Assign(0, 2)
	p.Assign(1, 0)
	pref, err := p.SingleMachineOf()
	if err != nil {
		t.Fatal(err)
	}
	if pref[0] != 2 || pref[1] != 0 {
		t.Fatalf("pref = %v", pref)
	}
	p.AssignSet(1, []int{0, 1})
	if _, err := p.SingleMachineOf(); err == nil {
		t.Fatal("replicated placement accepted")
	}
}

func TestPartitionGroupsProperty(t *testing.T) {
	f := func(mRaw, kRaw uint8) bool {
		m := int(mRaw%64) + 1
		k := int(kRaw%uint8(m)) + 1
		groups, err := PartitionGroups(m, k)
		if m%k != 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		seen := make([]bool, m)
		for _, g := range groups {
			if len(g) != m/k {
				return false
			}
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckSets exercises the raw-set validator the cluster layer uses
// for replica sets over backends (no Placement struct involved).
func TestCheckSets(t *testing.T) {
	cases := []struct {
		name string
		sets [][]int
		m    int
		want error
	}{
		{"valid", [][]int{{0, 2}, {1}, {0, 1, 2}}, 3, nil},
		{"empty list", [][]int{}, 3, nil},
		{"empty set", [][]int{{0}, {}}, 3, ErrEmptySet},
		{"negative machine", [][]int{{-1}}, 3, ErrBadMachine},
		{"machine at m", [][]int{{3}}, 3, ErrBadMachine},
		{"unsorted", [][]int{{2, 1}}, 3, ErrUnsorted},
		{"duplicate", [][]int{{1, 1}}, 3, ErrUnsorted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckSets(tc.sets, tc.m)
			if tc.want == nil && err != nil {
				t.Fatalf("CheckSets = %v, want nil", err)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("CheckSets = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestCheckSetsAgreesWithValidate: any placement Validate accepts,
// CheckSets accepts on the raw sets, and vice versa (same m, matching
// lengths).
func TestCheckSetsAgreesWithValidate(t *testing.T) {
	in := inst(t, 4, 3)
	p := Everywhere(4, 3)
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	if err := CheckSets(p.Sets, 3); err != nil {
		t.Fatalf("Validate accepted but CheckSets rejected: %v", err)
	}
	p.Sets[2] = []int{2, 0}
	if CheckSets(p.Sets, 3) == nil {
		t.Fatal("CheckSets accepted unsorted set")
	}
	if p.Validate(in) == nil {
		t.Fatal("Validate accepted unsorted set")
	}
}
