package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeBatch fuzzes clusterd's single request entry point.
// Invariants:
//
//   - no input panics the decoder;
//   - anything accepted is dispatch-safe: bounded non-empty batch,
//     every item validated, and any placement override structurally
//     sound against the backend count — so replicaSets cannot fail on
//     an accepted request;
//   - acceptance is stable: the canonical re-encoding of an accepted
//     batch decodes again with the same shape and replica sets.
func FuzzDecodeBatch(f *testing.F) {
	item := `{"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5]}}`
	f.Add([]byte(`{"requests":[` + item + `]}`))
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"strategy":"group:2"}}`))
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"replicas":[[0,3]]}}`))
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"replicas":[[1,0]]}}`))                 // unsorted
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"replicas":[[0,0]]}}`))                 // duplicate
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"replicas":[[9]]}}`))                   // out of range
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"replicas":[[]]}}`))                    // empty set
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"replicas":[[0],[1]]}}`))               // wrong count
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"strategy":"none","replicas":[[0]]}}`)) // both
	f.Add([]byte(`{"requests":[` + item + `],"placement":{"strategy":"group:3"}}`))               // 3 does not divide 4
	f.Add([]byte(`{"requests":[` + item + `],"placement":{}}`))                                   // empty spec
	f.Add([]byte(`{"requests":[]}`))
	f.Add([]byte(`{"requests":[` + item + `]}garbage`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := New(Config{
			Backends:    []string{"http://a", "http://b", "http://c", "http://d"},
			MaxBatch:    16,
			MaxTasks:    256,
			MaxMachines: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		req, err := c.DecodeBatch(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.Requests) == 0 || len(req.Requests) > 16 {
			t.Fatalf("accepted batch of %d items: %s", len(req.Requests), data)
		}
		for i := range req.Requests {
			r := &req.Requests[i]
			if r.Algorithm == "" || r.Instance == nil {
				t.Fatalf("accepted unvalidated item %d: %s", i, data)
			}
			if r.Instance.N() > 256 || r.Instance.M > 64 {
				t.Fatalf("accepted oversized instance %d: %s", i, data)
			}
			if err := r.Instance.Validate(true); err != nil {
				t.Fatalf("accepted invalid instance %d: %v\ninput: %s", i, err, data)
			}
		}
		// Accepted ⇒ placeable: phase 1 must never fail downstream of a
		// successful decode.
		sets, err := c.replicaSets(req)
		if err != nil {
			t.Fatalf("accepted batch fails placement: %v\ninput: %s", err, data)
		}
		if len(sets) != len(req.Requests) {
			t.Fatalf("%d replica sets for %d items: %s", len(sets), len(req.Requests), data)
		}
		// Stability under re-encoding.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		again, err := c.DecodeBatch(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanonical: %s\noriginal: %s", err, enc, data)
		}
		if len(again.Requests) != len(req.Requests) {
			t.Fatalf("round trip changed batch size: %s", data)
		}
		sets2, err := c.replicaSets(again)
		if err != nil {
			t.Fatalf("canonical form fails placement: %v", err)
		}
		for i := range sets {
			if len(sets[i]) != len(sets2[i]) {
				t.Fatalf("round trip changed replica set %d: %v vs %v", i, sets[i], sets2[i])
			}
			for j := range sets[i] {
				if sets[i][j] != sets2[i][j] {
					t.Fatalf("round trip changed replica set %d: %v vs %v", i, sets[i], sets2[i])
				}
			}
		}
	})
}
