// Package cluster lifts the paper's two-phase model into a networked
// dispatch proxy: a pool of schedd backends plays the role of the
// machine set M, each incoming work item (a schedule request with an
// uncertain cost estimate) is assigned a replica set M_j over the
// backends using the phase-1 placement package, and phase 2 dispatches
// semi-clairvoyantly — the first idle backend holding a replica runs
// the item, duplicates are cancelled via context, and slow replicas
// are hedged after a quantile-based delay (the tail-at-scale trick the
// paper's replication theorems justify analytically).
//
// Robustness mirrors sim.RunWithFailures at the network layer:
//
//   - per-backend health probes against /healthz re-admit restarted
//     backends quickly;
//   - consecutive failures open a per-backend circuit breaker with
//     exponential backoff, so a dead backend stops eating dispatches;
//   - 429 responses are honored via Retry-After instead of hammering a
//     saturated backend;
//   - items stranded on a failed backend are re-dispatched to another
//     member of their replica set — an item is lost only when its
//     whole replica set is unavailable for the full request deadline,
//     the networked analogue of ErrUnsurvivable.
//
// Observability: obs counters/gauges for per-backend in-flight, hedges
// fired and won, re-dispatches, 429 retries, and breaker state, all
// exposed on clusterd's /metrics.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Cluster-wide metrics. Counters are monotone; per-backend gauges are
// registered in newBackend.
var (
	mItems       = obs.GetCounter("cluster.items_total")
	mDispatches  = obs.GetCounter("cluster.dispatches_total")
	mHedges      = obs.GetCounter("cluster.hedges_fired")
	mHedgeWins   = obs.GetCounter("cluster.hedge_wins")
	mRedispatch  = obs.GetCounter("cluster.redispatches")
	mRetry429    = obs.GetCounter("cluster.retries_429")
	mBreakOpens  = obs.GetCounter("cluster.breaker_opens")
	mStreamItems = obs.GetCounter("cluster.stream_items")
	tBatch       = obs.GetTimer("cluster.batch")
	tStream      = obs.GetTimer("cluster.stream")
)

// Config parameterizes the dispatcher. The zero value of every field
// except Backends selects the documented default.
type Config struct {
	// Backends lists the schedd base URLs (e.g. "http://10.0.0.7:8080")
	// that form the machine pool. At least one is required.
	Backends []string
	// Strategy is the phase-1 replication strategy over the backends:
	// "all" (replicate everywhere, the default), "none" (each item on
	// the least-loaded single backend), or "group:k" (backends
	// partitioned into k groups via placement.PartitionGroups; k must
	// divide the backend count).
	Strategy string
	// Workers bounds the batch fan-out (par.MapCtx). Default:
	// 2·GOMAXPROCS — dispatch workers mostly wait on the network.
	Workers int
	// MaxBatch caps the items of one /v1/batch request. Default: 256.
	MaxBatch int
	// MaxStreamItems caps the items of one /v1/stream request; the
	// stream is cut off with an error line beyond it. Default: 10000.
	MaxStreamItems int
	// StreamTimeout is the end-to-end deadline of one /v1/stream
	// request. Streams are long-lived by design, so they get their own
	// budget instead of RequestTimeout. Default: 5m.
	StreamTimeout time.Duration
	// MaxTasks and MaxMachines cap submitted instances, mirroring the
	// schedd limits so the proxy rejects what its backends would.
	// Defaults: 100000 and 10000.
	MaxTasks    int
	MaxMachines int
	// MaxBodyBytes caps the request body size. Default: 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout is the end-to-end deadline of one batch; items
	// still retrying when it expires are reported as lost. Default: 60s.
	RequestTimeout time.Duration
	// DisableHedging turns duplicate dispatch off: each item runs on
	// exactly one backend at a time (still re-dispatched on failure).
	// The metamorphic tests rely on this mode being deterministic.
	DisableHedging bool
	// HedgeQuantile picks the latency quantile after which a slow
	// dispatch is duplicated onto another replica. Default: 0.9.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay so cold starts (no latency
	// observations yet) do not hedge instantly. Default: 2ms.
	HedgeMinDelay time.Duration
	// HedgeMaxDelay caps the hedge delay. Default: 1s.
	HedgeMaxDelay time.Duration
	// MaxHedges bounds the extra replicas one item may be hedged onto.
	// Default: 1.
	MaxHedges int
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker. Default: 3.
	BreakerThreshold int
	// BreakerBaseBackoff is the first open window; it doubles on every
	// failed half-open trial up to BreakerMaxBackoff.
	// Defaults: 100ms and 5s.
	BreakerBaseBackoff time.Duration
	BreakerMaxBackoff  time.Duration
	// ProbeInterval spaces the background /healthz probes that close
	// breakers of recovered backends. Default: 500ms.
	ProbeInterval time.Duration
	// RetryAfterCap bounds how long a 429 Retry-After is honored before
	// re-dispatching. Default: 2s.
	RetryAfterCap time.Duration
	// Transport overrides the HTTP transport (tests inject failure
	// modes here). Default: http.DefaultTransport.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxTasks <= 0 {
		c.MaxTasks = 100000
	}
	if c.MaxMachines <= 0 {
		c.MaxMachines = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxStreamItems <= 0 {
		c.MaxStreamItems = 10000
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 5 * time.Minute
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 2 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = time.Second
	}
	if c.MaxHedges <= 0 {
		c.MaxHedges = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBaseBackoff <= 0 {
		c.BreakerBaseBackoff = 100 * time.Millisecond
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	return c
}

// Cluster is the dispatch proxy. Create one with New, optionally call
// Start for background health probing, and mount Handler (or call
// RunBatch directly).
type Cluster struct {
	cfg      Config
	strat    strategy
	backends []*backend
	lat      *latencyWindow

	probeMu   sync.Mutex
	probeStop context.CancelFunc
	probeWG   sync.WaitGroup
}

// New validates the configuration (backend list and strategy) and
// returns a ready dispatcher. Health probing starts only with Start.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	strat, err := parseStrategy(cfg.Strategy, len(cfg.Backends))
	if err != nil {
		return nil, err
	}
	client := &http.Client{Transport: cfg.Transport}
	c := &Cluster{cfg: cfg, strat: strat, lat: newLatencyWindow(256)}
	for i, url := range cfg.Backends {
		c.backends = append(c.backends, newBackend(i, url, client, breakerConfig{
			Threshold:   cfg.BreakerThreshold,
			BaseBackoff: cfg.BreakerBaseBackoff,
			MaxBackoff:  cfg.BreakerMaxBackoff,
		}))
	}
	return c, nil
}

// Config returns the effective (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Start launches one background health-probe loop per backend. Probes
// close the breaker of a recovered backend without waiting for a live
// dispatch to discover it. The probes stop when ctx is cancelled or
// when Close is called, whichever comes first.
func (c *Cluster) Start(ctx context.Context) {
	c.probeMu.Lock()
	defer c.probeMu.Unlock()
	if c.probeStop != nil {
		return
	}
	ctx, cancel := context.WithCancel(ctx)
	c.probeStop = cancel
	for _, b := range c.backends {
		b := b
		c.probeWG.Add(1)
		go func() {
			defer c.probeWG.Done()
			c.probeLoop(ctx, b)
		}()
	}
}

// Close stops the health probes started by Start.
func (c *Cluster) Close() {
	c.probeMu.Lock()
	stop := c.probeStop
	c.probeStop = nil
	c.probeMu.Unlock()
	if stop != nil {
		stop()
		c.probeWG.Wait()
	}
}

// probeLoop polls one backend's /healthz until ctx is done.
func (c *Cluster) probeLoop(ctx context.Context, b *backend) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeInterval)
		err := b.probe(pctx)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			b.recordFailure(time.Now())
		} else {
			b.recordSuccess()
		}
	}
}

// Handler returns the proxy's HTTP surface:
//
//	POST /v1/batch   dispatch a batch across the backend pool
//	POST /v1/stream  NDJSON: one schedule request per line in, one
//	                 result line out per item, in input order, dispatched
//	                 concurrently under a bounded window
//	GET  /healthz    per-backend breaker and in-flight view
//	GET  /metrics    internal/obs snapshot
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler())
	mux.HandleFunc("POST /v1/batch", c.handleBatch)
	mux.HandleFunc("POST /v1/stream", c.handleStream)
	return mux
}

func (c *Cluster) handleBatch(w http.ResponseWriter, r *http.Request) {
	defer tBatch.Start()()
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	}
	req, err := c.DecodeBatch(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, serve.ErrorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()
	resp, err := c.RunBatch(ctx, req)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, serve.ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := HealthResponse{Status: "ok"}
	live := 0
	for _, b := range c.backends {
		st := b.status(now)
		if st.Breaker != "open" {
			live++
		}
		resp.Backends = append(resp.Backends, st)
	}
	if live == 0 {
		// Every breaker open: the pool cannot place anything right now.
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// jsonBufPool recycles response-encoding buffers, mirroring serve's
// writer path. Oversized buffers are dropped instead of pooled.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const jsonBufMax = 1 << 20

// writeJSON mirrors serve's writer byte-for-byte (json.Encoder with a
// trailing newline), which the metamorphic byte-identity tests depend
// on; the pooled staging buffer changes only the number of Write
// calls, not the bytes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= jsonBufMax {
			buf.Reset()
			jsonBufPool.Put(buf)
		}
	}()
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

var errNoBackend = fmt.Errorf("cluster: no live replica")
