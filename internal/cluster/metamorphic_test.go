package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// Metamorphic relations for the dispatch proxy:
//
//  1. Transparency: with hedging off and a single backend, clusterd's
//     /v1/batch response is byte-identical to schedd's own /v1/batch
//     for the same body — the proxy adds no observable behavior.
//  2. Pool invariance: under full replication, the response bytes are
//     invariant to the backend count and to the kill schedule, because
//     every backend computes the same deterministic answer.

// randomBatchBody builds a random but valid /v1/batch body (no
// placement field, so schedd accepts it too). Actuals stay inside the
// instance's uncertainty band [e/α, e·α].
func randomBatchBody(t *testing.T, rng *rand.Rand, k int) []byte {
	t.Helper()
	algos := []string{
		"lpt-norestriction", "ls-norestriction", "oracle-lpt",
		"lpt-nochoice", "ls-group:2",
	}
	var items []string
	for i := 0; i < k; i++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(3)*2 // even, so ls-group:2 is valid
		alpha := 1.0 + rng.Float64()
		ests := make([]string, n)
		acts := make([]string, n)
		for j := 0; j < n; j++ {
			e := 1 + rng.Float64()*9
			// Uniform factor in [1/alpha, alpha].
			f := 1/alpha + rng.Float64()*(alpha-1/alpha)
			ests[j] = fmt.Sprintf("%.4f", e)
			acts[j] = fmt.Sprintf("%.4f", e*f)
		}
		items = append(items, fmt.Sprintf(
			`{"algorithm":%q,"instance":{"m":%d,"alpha":%.4f,"estimates":[%s],"actuals":[%s]}}`,
			algos[rng.Intn(len(algos))], m, alpha,
			strings.Join(ests, ","), strings.Join(acts, ",")))
	}
	return []byte(`{"requests":[` + strings.Join(items, ",") + `]}`)
}

func postBatch(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestMetamorphicProxyTransparency: single backend, hedging off ⇒
// clusterd response bytes == direct schedd response bytes.
func TestMetamorphicProxyTransparency(t *testing.T) {
	direct := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(direct.Close)

	backend := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(backend.Close)
	c := mustCluster(t, Config{Backends: []string{backend.URL}, DisableHedging: true})
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		body := randomBatchBody(t, rng, 1+rng.Intn(6))
		sCode, sHdr, sBytes := postBatch(t, direct.URL, body)
		cCode, cHdr, cBytes := postBatch(t, front.URL, body)
		if sCode != cCode {
			t.Fatalf("trial %d: status %d (schedd) vs %d (clusterd)", trial, sCode, cCode)
		}
		if got, want := cHdr.Get("Content-Type"), sHdr.Get("Content-Type"); got != want {
			t.Fatalf("trial %d: content-type %q vs %q", trial, got, want)
		}
		if !bytes.Equal(sBytes, cBytes) {
			t.Fatalf("trial %d: proxy response differs from direct schedd:\n schedd: %s\ncluster: %s",
				trial, sBytes, cBytes)
		}
	}

	// Items with deterministic errors must also proxy transparently.
	bad := []byte(`{"requests":[
	  {"algorithm":"no-such-algo","instance":{"m":2,"alpha":1,"estimates":[1,2]}},
	  {"algorithm":"ls-group:3","instance":{"m":4,"alpha":1,"estimates":[1,2,3]}},
	  {"algorithm":"oracle-lpt","instance":{"m":2,"alpha":1,"estimates":[1,2,3]}}
	]}`)
	sCode, _, sBytes := postBatch(t, direct.URL, bad)
	cCode, _, cBytes := postBatch(t, front.URL, bad)
	if sCode != cCode || !bytes.Equal(sBytes, cBytes) {
		t.Fatalf("error batch differs: %d %s vs %d %s", sCode, sBytes, cCode, cBytes)
	}
}

// TestMetamorphicPoolInvariance: under full replication the batch
// response must not depend on how many backends serve it or on which
// of them are killed mid-batch (as long as one survives).
func TestMetamorphicPoolInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	body := randomBatchBody(t, rng, 12)

	run := func(nb int, kill func([]*testBackend)) []byte {
		bs, urls := newTestBackends(t, nb, serve.Config{})
		c := mustCluster(t, Config{
			Backends:           urls,
			Strategy:           "all",
			DisableHedging:     true,
			BreakerThreshold:   1,
			BreakerBaseBackoff: 5 * time.Millisecond,
			ProbeInterval:      10 * time.Millisecond,
		})
		c.Start(context.Background())
		front := httptest.NewServer(c.Handler())
		t.Cleanup(front.Close)
		if kill != nil {
			go kill(bs)
		}
		code, _, data := postBatch(t, front.URL, body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, data)
		}
		return data
	}

	want := run(1, nil)
	for _, nb := range []int{2, 3, 5} {
		if got := run(nb, nil); !bytes.Equal(got, want) {
			t.Fatalf("%d-backend response differs from 1-backend:\n%s\nvs\n%s", nb, got, want)
		}
	}

	// Kill schedules: each leaves at least one live backend.
	kills := []func([]*testBackend){
		func(bs []*testBackend) { // one down before traffic
			bs[0].down.Store(true)
		},
		func(bs []*testBackend) { // flap mid-batch
			time.Sleep(5 * time.Millisecond)
			bs[1].down.Store(true)
			time.Sleep(30 * time.Millisecond)
			bs[1].down.Store(false)
			bs[2].down.Store(true)
		},
		func(bs []*testBackend) { // all but one down
			bs[0].down.Store(true)
			bs[2].down.Store(true)
		},
	}
	for i, kill := range kills {
		if got := run(3, kill); !bytes.Equal(got, want) {
			t.Fatalf("kill schedule %d changed the response:\n%s\nvs\n%s", i, got, want)
		}
	}

	// Hedging on must not change the bytes either — duplicates are
	// cancelled, and every backend computes the same answer.
	bs, urls := newTestBackends(t, 3, serve.Config{})
	bs[0].delay.Store(int64(50 * time.Millisecond)) // force hedges
	c := mustCluster(t, Config{
		Backends:      urls,
		Strategy:      "all",
		HedgeMinDelay: time.Millisecond,
	})
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)
	code, _, got := postBatch(t, front.URL, body)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("hedged response differs (status %d):\n%s\nvs\n%s", code, got, want)
	}
}
