package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/placement"
	"repro/internal/serve"
)

// Strategy kinds, mirroring the paper's phase-1 menu with backends
// standing in for machines.
const (
	stratAll = iota // replicate everywhere (|M_j| = m)
	stratNone
	stratGroup // group replication (|M_j| = m/k)
)

type strategy struct {
	kind int
	k    int // group count for stratGroup
}

// parseStrategy resolves a strategy name against nb backends. The
// empty string selects full replication — robustness is the point of
// the proxy, so it is the default.
func parseStrategy(s string, nb int) (strategy, error) {
	switch name := strings.ToLower(strings.TrimSpace(s)); {
	case name == "" || name == "all" || name == "full":
		return strategy{kind: stratAll}, nil
	case name == "none" || name == "single":
		return strategy{kind: stratNone}, nil
	case strings.HasPrefix(name, "group:"):
		k, err := strconv.Atoi(name[len("group:"):])
		if err != nil {
			return strategy{}, fmt.Errorf("cluster: bad group count in strategy %q", s)
		}
		// PartitionGroups enforces 1 ≤ k ≤ nb and k | nb; run it once
		// here so misconfiguration fails at startup, not mid-batch.
		if _, err := placement.PartitionGroups(nb, k); err != nil {
			return strategy{}, err
		}
		return strategy{kind: stratGroup, k: k}, nil
	default:
		return strategy{}, fmt.Errorf("cluster: unknown strategy %q (want none, all, or group:k)", s)
	}
}

// replicaSets computes the phase-1 placement of a batch over the
// backend pool: Sets[i] lists the backends allowed to run item i. An
// explicit request override wins, then a request strategy, then the
// configured default. The computation is deterministic (greedy least
// estimated load, ties to the lowest index) so identical batches place
// identically — the metamorphic tests rely on it.
func (c *Cluster) replicaSets(req *BatchRequest) ([][]int, error) {
	n := len(req.Requests)
	nb := len(c.backends)
	strat := c.strat
	if req.Placement != nil {
		if req.Placement.Replicas != nil {
			// Re-validate: RunBatch is also a library entry point, so it
			// cannot assume DecodeBatch ran.
			if len(req.Placement.Replicas) != n {
				return nil, fmt.Errorf("placement: %d replica sets for %d items", len(req.Placement.Replicas), n)
			}
			if err := placement.CheckSets(req.Placement.Replicas, nb); err != nil {
				return nil, err
			}
			return req.Placement.Replicas, nil
		}
		if req.Placement.Strategy != "" {
			var err error
			if strat, err = parseStrategy(req.Placement.Strategy, nb); err != nil {
				return nil, err
			}
		}
	}

	p := placement.New(n, nb)
	switch strat.kind {
	case stratAll:
		p = placement.Everywhere(n, nb)
	case stratNone:
		// Greedy least-estimated-load: the semi-clairvoyant analogue of
		// the paper's no-replication placement, using the only cost
		// signal available before execution.
		loads := make([]float64, nb)
		for i := range req.Requests {
			best := argminLoad(loads)
			p.Assign(i, best)
			loads[best] += itemEstimate(&req.Requests[i])
		}
	case stratGroup:
		groups, err := placement.PartitionGroups(nb, strat.k)
		if err != nil {
			return nil, err
		}
		p.Groups = groups
		p.GroupOf = make([]int, n)
		loads := make([]float64, strat.k)
		for i := range req.Requests {
			g := argminLoad(loads)
			p.GroupOf[i] = g
			p.AssignSet(i, groups[g])
			loads[g] += itemEstimate(&req.Requests[i])
		}
	}
	if err := placement.CheckSets(p.Sets, nb); err != nil {
		// Structural bug in the strategy code, not user input.
		return nil, fmt.Errorf("cluster: internal placement invalid: %w", err)
	}
	return p.Sets, nil
}

// itemEstimate is the uncertain cost estimate of one work item: the
// summed estimated processing time of its instance. Actual cost is
// revealed only when a backend finishes the item — the cluster-level
// semi-clairvoyant model.
func itemEstimate(r *serve.ScheduleRequest) float64 {
	if r.Instance == nil {
		return 0
	}
	return r.Instance.TotalEstimate()
}

func argminLoad(loads []float64) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	return best
}
