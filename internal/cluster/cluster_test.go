package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// testBackend wraps a real serve handler with fault injection: down
// simulates a fail-stop crash (connections are hijacked and closed
// without a response, before any work happens), delay simulates work,
// and served counts successful /v1/schedule executions per batch item
// so tests can assert exactly-once completion.
type testBackend struct {
	ts    *httptest.Server
	inner http.Handler
	down  atomic.Bool
	delay atomic.Int64 // nanoseconds of simulated work per request

	mu     sync.Mutex
	served map[string]int // ItemHeader value -> 200 responses
}

func (tb *testBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if tb.down.Load() {
		hijackClose(w)
		return
	}
	if d := tb.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	// A crash that lands mid-work loses the in-flight request, like a
	// machine failure in sim.RunWithFailures loses the running task.
	if tb.down.Load() {
		hijackClose(w)
		return
	}
	sw := &statusCapture{ResponseWriter: w}
	tb.inner.ServeHTTP(sw, r)
	if sw.code == http.StatusOK && r.URL.Path == "/v1/schedule" {
		if item := r.Header.Get(ItemHeader); item != "" {
			tb.mu.Lock()
			tb.served[item]++
			tb.mu.Unlock()
		}
	}
}

func (tb *testBackend) executions() map[string]int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	out := make(map[string]int, len(tb.served))
	for k, v := range tb.served {
		out[k] = v
	}
	return out
}

func hijackClose(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test backend: ResponseWriter not hijackable")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}

type statusCapture struct {
	http.ResponseWriter
	code int
}

func (s *statusCapture) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusCapture) Write(p []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

// Unwrap lets http.NewResponseController reach the real writer's
// extension methods through the capture.
func (s *statusCapture) Unwrap() http.ResponseWriter { return s.ResponseWriter }

// newTestBackends boots n loopback schedd instances behind fault
// injectors and returns them with their URLs.
func newTestBackends(t *testing.T, n int, scfg serve.Config) ([]*testBackend, []string) {
	t.Helper()
	var bs []*testBackend
	var urls []string
	for i := 0; i < n; i++ {
		tb := &testBackend{
			inner:  serve.New(scfg).Handler(),
			served: map[string]int{},
		}
		tb.ts = httptest.NewServer(tb)
		t.Cleanup(tb.ts.Close)
		bs = append(bs, tb)
		urls = append(urls, tb.ts.URL)
	}
	return bs, urls
}

// testBatch builds a deterministic batch of k small valid items.
func testBatch(k int) *BatchRequest {
	req := &BatchRequest{}
	algos := []string{"lpt-norestriction", "ls-norestriction", "oracle-lpt", "ls-group:2"}
	for i := 0; i < k; i++ {
		body := fmt.Sprintf(
			`{"algorithm":%q,"instance":{"m":4,"alpha":1.5,"estimates":[%d,3,9,1,7,5,2,8]}}`,
			algos[i%len(algos)], i+1)
		var r serve.ScheduleRequest
		if err := serve.DecodeStrict(strings.NewReader(body), &r); err != nil {
			panic(err)
		}
		req.Requests = append(req.Requests, r)
	}
	return req
}

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		nb   int
		kind int
		k    int
		ok   bool
	}{
		{"", 4, stratAll, 0, true},
		{"all", 4, stratAll, 0, true},
		{"full", 4, stratAll, 0, true},
		{"none", 4, stratNone, 0, true},
		{"single", 4, stratNone, 0, true},
		{"group:2", 4, stratGroup, 2, true},
		{"GROUP:4", 4, stratGroup, 4, true},
		{"group:3", 4, 0, 0, false}, // 3 does not divide 4
		{"group:0", 4, 0, 0, false},
		{"group:5", 4, 0, 0, false}, // k > nb
		{"group:x", 4, 0, 0, false},
		{"bogus", 4, 0, 0, false},
	}
	for _, tc := range cases {
		got, err := parseStrategy(tc.in, tc.nb)
		if tc.ok != (err == nil) {
			t.Errorf("parseStrategy(%q, %d): err = %v, want ok=%v", tc.in, tc.nb, err, tc.ok)
			continue
		}
		if tc.ok && (got.kind != tc.kind || got.k != tc.k) {
			t.Errorf("parseStrategy(%q, %d) = %+v", tc.in, tc.nb, got)
		}
	}
}

func TestReplicaSetsStrategies(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c", "http://d"}
	req := testBatch(8)

	t.Run("all", func(t *testing.T) {
		c := mustCluster(t, Config{Backends: urls, Strategy: "all"})
		sets, err := c.replicaSets(req)
		if err != nil {
			t.Fatal(err)
		}
		for i, set := range sets {
			if len(set) != 4 {
				t.Fatalf("item %d: |M_j| = %d, want 4", i, len(set))
			}
		}
	})

	t.Run("none", func(t *testing.T) {
		c := mustCluster(t, Config{Backends: urls, Strategy: "none"})
		sets, err := c.replicaSets(req)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for i, set := range sets {
			if len(set) != 1 {
				t.Fatalf("item %d: |M_j| = %d, want 1", i, len(set))
			}
			counts[set[0]]++
		}
		// Greedy least-load must spread 8 uniform-ish items over 4
		// backends, not pile onto one.
		for b, n := range counts {
			if n > 4 {
				t.Fatalf("backend %d took %d of 8 items", b, n)
			}
		}
		// Determinism.
		again, _ := c.replicaSets(req)
		for i := range sets {
			if sets[i][0] != again[i][0] {
				t.Fatal("none strategy not deterministic")
			}
		}
	})

	t.Run("group", func(t *testing.T) {
		c := mustCluster(t, Config{Backends: urls, Strategy: "group:2"})
		sets, err := c.replicaSets(req)
		if err != nil {
			t.Fatal(err)
		}
		for i, set := range sets {
			if len(set) != 2 {
				t.Fatalf("item %d: |M_j| = %d, want 2", i, len(set))
			}
			if !(set[0] == 0 && set[1] == 1) && !(set[0] == 2 && set[1] == 3) {
				t.Fatalf("item %d: set %v is not a group", i, set)
			}
		}
	})

	t.Run("request-override", func(t *testing.T) {
		c := mustCluster(t, Config{Backends: urls, Strategy: "all"})
		r := testBatch(2)
		r.Placement = &PlacementSpec{Replicas: [][]int{{0, 2}, {1}}}
		sets, err := c.replicaSets(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets[0]) != 2 || sets[0][0] != 0 || sets[0][1] != 2 || len(sets[1]) != 1 {
			t.Fatalf("override ignored: %v", sets)
		}
		r.Placement = &PlacementSpec{Strategy: "none"}
		sets, err = c.replicaSets(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets[0]) != 1 {
			t.Fatalf("strategy override ignored: %v", sets)
		}
	})
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBackend(0, "http://x", nil, breakerConfig{
		Threshold:   2,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  300 * time.Millisecond,
	})
	t0 := time.Unix(1000, 0)
	if b.state(t0) != breakerClosed {
		t.Fatal("new backend not closed")
	}
	b.recordFailure(t0)
	if b.state(t0) != breakerClosed {
		t.Fatal("opened below threshold")
	}
	b.recordFailure(t0)
	if b.state(t0) != breakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.selectable(t0) {
		t.Fatal("open breaker selectable")
	}
	// Window elapses -> half-open, selectable again.
	t1 := t0.Add(150 * time.Millisecond)
	if b.state(t1) != breakerHalfOpen || !b.selectable(t1) {
		t.Fatal("breaker did not half-open after backoff")
	}
	// Failed trial doubles the window.
	b.recordFailure(t1)
	if b.state(t1) != breakerOpen {
		t.Fatal("failed trial did not re-open")
	}
	if got := b.reopenAt(t1).Sub(t1); got != 200*time.Millisecond {
		t.Fatalf("second window = %v, want 200ms", got)
	}
	// A straggling failure inside the window must not extend it.
	b.recordFailure(t1.Add(50 * time.Millisecond))
	if got := b.reopenAt(t1).Sub(t1); got != 200*time.Millisecond {
		t.Fatalf("straggler extended window to %v", got)
	}
	// Another failed trial hits the cap.
	t2 := t1.Add(250 * time.Millisecond)
	b.recordFailure(t2)
	if got := b.reopenAt(t2).Sub(t2); got != 300*time.Millisecond {
		t.Fatalf("third window = %v, want capped 300ms", got)
	}
	// Success closes and resets.
	b.recordSuccess()
	if b.state(t2) != breakerClosed {
		t.Fatal("success did not close breaker")
	}
	b.recordFailure(t2)
	b.recordFailure(t2)
	if got := b.reopenAt(t2).Sub(t2); got != 100*time.Millisecond {
		t.Fatalf("backoff not reset after success: %v", got)
	}
}

func TestDecodeBatchRejections(t *testing.T) {
	c := mustCluster(t, Config{
		Backends: []string{"http://a", "http://b", "http://c", "http://d"},
		MaxBatch: 4, MaxTasks: 8, MaxMachines: 8,
	})
	item := `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1]}}`
	cases := []struct{ name, body string }{
		{"invalid json", `{`},
		{"trailing garbage", `{"requests":[` + item + `]}x`},
		{"unknown field", `{"requests":[` + item + `],"bogus":1}`},
		{"empty batch", `{"requests":[]}`},
		{"too many items", `{"requests":[` + strings.Repeat(item+",", 4) + item + `]}`},
		{"missing algorithm", `{"requests":[{"instance":{"m":1,"alpha":1,"estimates":[1]}}]}`},
		{"missing instance", `{"requests":[{"algorithm":"oracle-lpt"}]}`},
		{"invalid instance", `{"requests":[{"algorithm":"x","instance":{"m":0,"alpha":1,"estimates":[1]}}]}`},
		{"too many tasks", `{"requests":[{"algorithm":"x","instance":{"m":1,"alpha":1,"estimates":[1,1,1,1,1,1,1,1,1]}}]}`},
		{"too many machines", `{"requests":[{"algorithm":"x","instance":{"m":9,"alpha":1,"estimates":[1]}}]}`},
		{"empty placement", `{"requests":[` + item + `],"placement":{}}`},
		{"both strategy and replicas", `{"requests":[` + item + `],"placement":{"strategy":"all","replicas":[[0]]}}`},
		{"bad strategy", `{"requests":[` + item + `],"placement":{"strategy":"group:3"}}`},
		{"replica count mismatch", `{"requests":[` + item + `],"placement":{"replicas":[[0],[1]]}}`},
		{"empty replica set", `{"requests":[` + item + `],"placement":{"replicas":[[]]}}`},
		{"replica out of range", `{"requests":[` + item + `],"placement":{"replicas":[[7]]}}`},
		{"replica unsorted", `{"requests":[` + item + `],"placement":{"replicas":[[1,0]]}}`},
		{"replica duplicate", `{"requests":[` + item + `],"placement":{"replicas":[[0,0]]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.DecodeBatch(strings.NewReader(tc.body)); err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
		})
	}
	// And the valid shapes pass.
	for _, body := range []string{
		`{"requests":[` + item + `]}`,
		`{"requests":[` + item + `],"placement":{"strategy":"group:2"}}`,
		`{"requests":[` + item + `],"placement":{"replicas":[[0,3]]}}`,
	} {
		if _, err := c.DecodeBatch(strings.NewReader(body)); err != nil {
			t.Fatalf("rejected valid body %s: %v", body, err)
		}
	}
}

func TestRunBatchAgainstLiveBackends(t *testing.T) {
	_, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true})
	req := testBatch(6)
	resp, err := c.RunBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("%d results", len(resp.Results))
	}
	s := serve.New(serve.Config{})
	for i, item := range resp.Results {
		if item.Index != i || item.Error != "" || item.Response == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		// The proxied response must be byte-identical to a direct
		// library run of the same request.
		want, err := s.RunSchedule(&req.Requests[i])
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, item.Response); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(compact.Bytes(), wantBytes) {
			t.Fatalf("item %d response differs from direct execution", i)
		}
	}
}

func TestItemErrorMatchesDirectError(t *testing.T) {
	_, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true})
	req := testBatch(2)
	req.Requests[1].Algorithm = "ls-group:7" // 7 never divides m=4
	resp, err := c.RunBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" {
		t.Fatalf("item 0 failed: %s", resp.Results[0].Error)
	}
	s := serve.New(serve.Config{})
	_, wantErr := s.RunSchedule(&req.Requests[1])
	if wantErr == nil {
		t.Fatal("expected direct error")
	}
	if resp.Results[1].Error != wantErr.Error() {
		t.Fatalf("proxied error %q != direct %q", resp.Results[1].Error, wantErr.Error())
	}
}

func TestRedispatchAroundDeadBackend(t *testing.T) {
	bs, urls := newTestBackends(t, 2, serve.Config{})
	bs[0].down.Store(true) // dead from the start
	c := mustCluster(t, Config{
		Backends:           urls,
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: 10 * time.Millisecond,
		RequestTimeout:     10 * time.Second,
	})
	before := mRedispatch.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.RunBatch(ctx, testBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Results {
		if item.Error != "" || item.Response == nil {
			t.Fatalf("item %d lost despite live replica: %+v", i, item)
		}
	}
	if mRedispatch.Load() == before {
		t.Fatal("no re-dispatch recorded despite a dead backend")
	}
	if got := bs[0].executions(); len(got) != 0 {
		t.Fatalf("dead backend executed items: %v", got)
	}
}

func TestHedgeWinsAgainstSlowBackend(t *testing.T) {
	bs, urls := newTestBackends(t, 2, serve.Config{})
	bs[0].delay.Store(int64(400 * time.Millisecond)) // slow primary
	c := mustCluster(t, Config{
		Backends:      urls,
		HedgeMinDelay: 5 * time.Millisecond,
	})
	beforeFired, beforeWon := mHedges.Load(), mHedgeWins.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req := testBatch(1)
	resp, err := c.RunBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Response == nil {
		t.Fatalf("hedged item failed: %+v", resp.Results[0])
	}
	if mHedges.Load() == beforeFired {
		t.Fatal("no hedge fired against a 400ms backend with a 5ms delay")
	}
	if mHedgeWins.Load() == beforeWon {
		t.Fatal("hedge did not win against a 400ms primary")
	}
}

func TestHonors429RetryAfter(t *testing.T) {
	// A backend that throttles the first two attempts, then serves.
	var calls atomic.Int64
	inner := serve.New(serve.Config{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/schedule" && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"saturated"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c := mustCluster(t, Config{Backends: []string{ts.URL}, DisableHedging: true})
	before := mRetry429.Load()
	resp, err := c.RunBatch(context.Background(), testBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" {
		t.Fatalf("throttled item not retried: %+v", resp.Results[0])
	}
	if mRetry429.Load()-before < 2 {
		t.Fatalf("retries_429 delta = %d, want >= 2", mRetry429.Load()-before)
	}
}

func TestNoLiveReplicaTimesOut(t *testing.T) {
	bs, urls := newTestBackends(t, 2, serve.Config{})
	bs[0].down.Store(true)
	bs[1].down.Store(true)
	c := mustCluster(t, Config{
		Backends:           urls,
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	resp, err := c.RunBatch(ctx, testBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error == "" {
		t.Fatal("item succeeded with every replica dead")
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	bs, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{
		Backends:           urls,
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: time.Minute,
	})
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)

	// Run traffic so per-backend gauges exist, with one backend dead so
	// the breaker view is interesting.
	bs[1].down.Store(true)
	body, _ := json.Marshal(testBatch(4))
	resp, err := http.Post(front.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	resp, err = http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(health.Backends) != 2 {
		t.Fatalf("healthz lists %d backends", len(health.Backends))
	}
	if health.Backends[1].Breaker != "open" {
		t.Fatalf("dead backend breaker %q, want open", health.Backends[1].Breaker)
	}

	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, name := range []string{
		"cluster.backend.0.inflight", "cluster.backend.0.breaker",
		"cluster.hedges_fired", "cluster.hedge_wins",
		"cluster.redispatches", "cluster.items_total",
	} {
		if !strings.Contains(data.String(), name) {
			t.Fatalf("/metrics missing %s:\n%s", name, data.String())
		}
	}
}

func TestProbeReadmitsRestartedBackend(t *testing.T) {
	bs, urls := newTestBackends(t, 1, serve.Config{})
	c := mustCluster(t, Config{
		Backends:           urls,
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: time.Hour, // only a probe can close it in time
		ProbeInterval:      5 * time.Millisecond,
	})
	c.Start(context.Background())
	bs[0].down.Store(true)
	c.backends[0].recordFailure(time.Now())
	c.backends[0].recordFailure(time.Now())
	if c.backends[0].state(time.Now()) != breakerOpen {
		t.Fatal("breaker not open")
	}
	bs[0].down.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for c.backends[0].state(time.Now()) != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("probe never closed the breaker of a recovered backend")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLatencyWindowQuantile(t *testing.T) {
	w := newLatencyWindow(4)
	if got := w.quantile(0.9); got != 0 {
		t.Fatalf("empty window quantile = %v", got)
	}
	for _, ms := range []int{10, 20, 30, 40} {
		w.observe(time.Duration(ms) * time.Millisecond)
	}
	q := w.quantile(1.0)
	if q != 40*time.Millisecond {
		t.Fatalf("max quantile = %v, want 40ms", q)
	}
	// The ring wraps: a fifth observation evicts the first.
	w.observe(50 * time.Millisecond)
	if q := w.quantile(1.0); q != 50*time.Millisecond {
		t.Fatalf("post-wrap max = %v, want 50ms", q)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"1":   time.Second,
		"0":   0,
		"":    0,
		"x":   0,
		"-5":  0,
		" 2 ": 2 * time.Second,
	}
	for in, want := range cases {
		if got := serve.ParseRetryAfter(in); got != want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
