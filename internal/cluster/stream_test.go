package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"repro/internal/serve"
	"strings"
	"testing"
)

// streamPost submits NDJSON to a mounted cluster handler and returns
// the decoded result lines.
func streamPost(t *testing.T, url, body string) (*http.Response, []Item) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []Item
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var item Item
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		items = append(items, item)
	}
	return resp, items
}

// streamLines renders batch items as NDJSON input.
func streamLines(req *BatchRequest) string {
	var sb strings.Builder
	for i := range req.Requests {
		b, err := json.Marshal(&req.Requests[i])
		if err != nil {
			panic(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestClusterStreamOrderedResults(t *testing.T) {
	backends, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true, Workers: 3})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	req := testBatch(8)
	resp, items := streamPost(t, ts.URL+"/v1/stream", streamLines(req))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if len(items) != 8 {
		t.Fatalf("got %d items, want 8", len(items))
	}
	for i, item := range items {
		if item.Index != i {
			t.Fatalf("item %d has index %d (stream out of order)", i, item.Index)
		}
		if item.Error != "" || item.Response == nil {
			t.Fatalf("item %d failed: %+v", i, item)
		}
	}
	// Exactly-once under disabled hedging: every item executed once
	// across the pool.
	total := map[string]int{}
	for _, b := range backends {
		for k, v := range b.executions() {
			total[k] += v
		}
	}
	for i := 0; i < 8; i++ {
		if total[itoa(i)] != 1 {
			t.Fatalf("item %d executed %d times: %v", i, total[itoa(i)], total)
		}
	}
}

// TestClusterStreamMatchesBatch pins the proxy-level metamorphic
// contract: the same items streamed and batched produce byte-identical
// backend responses, item for item (both paths carry the backend body
// verbatim).
func TestClusterStreamMatchesBatch(t *testing.T) {
	_, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true, Strategy: "none"})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	req := testBatch(6)
	_, streamItems := streamPost(t, ts.URL+"/v1/stream", streamLines(req))

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(streamItems) != len(batch.Results) {
		t.Fatalf("stream %d items vs batch %d", len(streamItems), len(batch.Results))
	}
	for i := range streamItems {
		if string(streamItems[i].Response) != string(batch.Results[i].Response) {
			t.Fatalf("item %d diverges:\nstream %s\nbatch  %s",
				i, streamItems[i].Response, batch.Results[i].Response)
		}
	}
}

func TestClusterStreamPerItemErrors(t *testing.T) {
	_, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	lines := streamLines(testBatch(1)) +
		"{not json}\n" +
		`{"algorithm":"nope","instance":{"m":1,"alpha":1,"estimates":[1]}}` + "\n" +
		streamLines(testBatch(1))
	_, items := streamPost(t, ts.URL+"/v1/stream", lines)
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4: %+v", len(items), items)
	}
	if items[0].Error != "" || items[3].Error != "" {
		t.Fatalf("valid items failed: %+v", items)
	}
	if items[1].Error == "" {
		t.Fatal("bad JSON line not reported")
	}
	if items[2].Error == "" {
		t.Fatal("unknown algorithm not reported")
	}
}

func TestClusterStreamStrategyOverride(t *testing.T) {
	backends, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true, Strategy: "all"})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	// group:2 over 2 backends is singleton groups: items alternate by
	// least estimated load, so both backends must see work.
	req := testBatch(6)
	_, items := streamPost(t, ts.URL+"/v1/stream?strategy=group:2", streamLines(req))
	if len(items) != 6 {
		t.Fatalf("got %d items", len(items))
	}
	for _, item := range items {
		if item.Error != "" {
			t.Fatalf("item failed: %+v", item)
		}
	}
	for i, b := range backends {
		if len(b.executions()) == 0 {
			t.Fatalf("backend %d idle under group:2 streaming", i)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/stream?strategy=group:3", "application/x-ndjson",
		strings.NewReader(streamLines(req)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy accepted: status %d", resp.StatusCode)
	}
}

func TestClusterStreamItemCap(t *testing.T) {
	_, urls := newTestBackends(t, 1, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true, MaxStreamItems: 2})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	_, items := streamPost(t, ts.URL+"/v1/stream", streamLines(testBatch(4)))
	if len(items) != 3 {
		t.Fatalf("got %d items, want 2 results + 1 cap error: %+v", len(items), items)
	}
	if items[0].Error != "" || items[1].Error != "" {
		t.Fatalf("capped stream lost valid items: %+v", items)
	}
	if !strings.Contains(items[2].Error, "exceeds 2 items") {
		t.Fatalf("cap error missing: %+v", items[2])
	}
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// TestClusterStreamLongBody regression-tests stream truncation at the
// proxy: the dispatcher reads the request body while result lines are
// being written, so without full-duplex mode the HTTP/1.x server
// closes the unread body at the first response write and long streams
// silently lose their tail.
func TestClusterStreamLongBody(t *testing.T) {
	_, urls := newTestBackends(t, 2, serve.Config{})
	c := mustCluster(t, Config{Backends: urls, DisableHedging: true, Workers: 2})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	const n = 120
	req := testBatch(n)
	resp, items := streamPost(t, ts.URL+"/v1/stream", streamLines(req))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(items) != n {
		t.Fatalf("stream truncated: %d result lines for %d inputs", len(items), n)
	}
	for i, item := range items {
		if item.Index != i || item.Error != "" || item.Response == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
	}
}
