package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/par"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ItemHeader carries the batch index of a dispatched item to the
// backend. Purely observational (chaos tests use it to count
// executions per item); schedd ignores unknown headers.
const ItemHeader = "X-Cluster-Item"

// outcome kinds of one dispatch attempt.
const (
	oOK         = iota // 200: body is the response
	oItemErr           // deterministic 4xx: the item itself is bad
	oThrottled         // 429: honor Retry-After
	oBackendErr        // 5xx: the backend is unhealthy
	oTransport         // connection-level failure
	oCancelled         // outer context done
)

type outcome struct {
	kind       int
	backendID  int
	body       []byte
	errMsg     string
	retryAfter time.Duration
	err        error
}

// RunBatch dispatches every item of a validated batch across the
// backend pool and returns the results in input order. Items are
// fanned out under par.MapCtx; each item independently walks its
// replica set with hedging, breaker checks, and re-dispatch until it
// succeeds, deterministically fails, or ctx expires.
func (c *Cluster) RunBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	sets, err := c.replicaSets(req)
	if err != nil {
		return nil, err
	}
	type slot struct {
		done bool
		item Item
	}
	outs, ctxErr := par.MapCtx(ctx, len(req.Requests), c.cfg.Workers, func(i int) slot {
		return slot{done: true, item: c.dispatchItem(ctx, i, &req.Requests[i], sets[i])}
	})
	resp := &BatchResponse{Results: make([]Item, len(outs))}
	for i, s := range outs {
		if !s.done {
			// Never dispatched: the deadline beat the fan-out.
			if ctxErr == nil {
				ctxErr = context.DeadlineExceeded
			}
			resp.Results[i] = Item{Index: i, Error: "cancelled: " + ctxErr.Error()}
			continue
		}
		resp.Results[i] = s.item
	}
	return resp, nil
}

// dispatchItem runs one item to completion: pick the least-loaded
// selectable replica, attempt (with hedging), and on backend failure
// re-dispatch to another member of the replica set. It gives up only
// on a deterministic item error or when ctx expires — mirroring
// sim.RunWithFailures, where a task is lost solely when its whole
// replica set is dead.
func (c *Cluster) dispatchItem(ctx context.Context, idx int, req *serve.ScheduleRequest, set []int) Item {
	body, err := json.Marshal(req)
	if err != nil {
		return Item{Index: idx, Error: err.Error()}
	}
	mItems.Inc()
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return Item{Index: idx, Error: "cancelled: " + ctx.Err().Error()}
		}
		primary := c.pick(set, -1, time.Now())
		if primary == nil {
			// Whole replica set unavailable: wait for the earliest
			// breaker to half-open, then retry. A permanent loss
			// surfaces as ctx expiry here.
			if !sleepCtx(ctx, c.reopenDelay(set, time.Now())) {
				return Item{Index: idx, Error: errNoBackend.Error() +
					": all of " + fmtSet(set) + " unavailable: " + ctx.Err().Error()}
			}
			continue
		}
		if attempt > 0 {
			mRedispatch.Inc()
		}
		out := c.runReplicas(ctx, idx, body, set, primary)
		switch out.kind {
		case oOK:
			return Item{Index: idx, Response: json.RawMessage(out.body)}
		case oItemErr:
			return Item{Index: idx, Error: out.errMsg}
		case oThrottled:
			mRetry429.Inc()
			d := out.retryAfter
			if d <= 0 {
				d = 100 * time.Millisecond
			}
			if d > c.cfg.RetryAfterCap {
				d = c.cfg.RetryAfterCap
			}
			if !sleepCtx(ctx, d) {
				return Item{Index: idx, Error: "cancelled: " + ctx.Err().Error()}
			}
		case oCancelled:
			return Item{Index: idx, Error: "cancelled: " + ctx.Err().Error()}
			// oBackendErr/oTransport: loop re-dispatches.
		}
	}
}

// runReplicas performs one attempt of an item: the primary dispatch,
// plus up to MaxHedges duplicates fired after the quantile hedge
// delay. The first decisive outcome (success or deterministic item
// error) wins and cancels the duplicates via cctx; backend failures
// are decisive only once every launched replica has failed.
func (c *Cluster) runReplicas(ctx context.Context, idx int, body []byte, set []int, primary *backend) outcome {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan outcome, 1+c.cfg.MaxHedges)
	go c.send(cctx, primary, idx, body, ch)
	outstanding := 1
	hedged := map[int]bool{}
	used := primary.id

	var hedgeC <-chan time.Time
	hedgesLeft := 0
	if !c.cfg.DisableHedging && len(set) > 1 {
		hedgesLeft = c.cfg.MaxHedges
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	var last outcome
	for {
		select {
		case out := <-ch:
			outstanding--
			switch out.kind {
			case oOK:
				c.backends[out.backendID].recordSuccess()
				if hedged[out.backendID] {
					mHedgeWins.Inc()
				}
				return out
			case oItemErr:
				// The backend answered authoritatively; it is healthy
				// and the item is bad everywhere.
				c.backends[out.backendID].recordSuccess()
				return out
			case oThrottled:
				last = out
			case oBackendErr, oTransport:
				c.backends[out.backendID].recordFailure(time.Now())
				if last.kind != oThrottled {
					last = out
				}
			}
			if outstanding == 0 {
				return last
			}
		case <-hedgeC:
			hedgeC = nil
			if hedgesLeft > 0 {
				if hb := c.pick(set, used, time.Now()); hb != nil {
					hedged[hb.id] = true
					hedgesLeft--
					outstanding++
					mHedges.Inc()
					go c.send(cctx, hb, idx, body, ch)
				}
			}
		case <-ctx.Done():
			return outcome{kind: oCancelled}
		}
	}
}

// send posts one item to one backend and classifies the result.
func (c *Cluster) send(ctx context.Context, b *backend, idx int, body []byte, ch chan<- outcome) {
	b.inflight.Add(1)
	b.gInflight.Inc()
	defer func() {
		b.inflight.Add(-1)
		b.gInflight.Dec()
	}()
	mDispatches.Inc()

	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		ch <- outcome{kind: oTransport, backendID: b.id, err: err}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ItemHeader, strconv.Itoa(idx))
	resp, err := b.client.Do(req)
	if err != nil {
		ch <- outcome{kind: oTransport, backendID: b.id, err: err}
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		ch <- outcome{kind: oTransport, backendID: b.id, err: err}
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		c.lat.observe(time.Since(start))
		ch <- outcome{kind: oOK, backendID: b.id, body: data}
	case resp.StatusCode == http.StatusTooManyRequests:
		ch <- outcome{kind: oThrottled, backendID: b.id,
			retryAfter: serve.ParseRetryAfter(resp.Header.Get("Retry-After"))}
	case resp.StatusCode >= 500:
		ch <- outcome{kind: oBackendErr, backendID: b.id}
	default:
		// Deterministic 4xx: surface the backend's error envelope
		// verbatim so proxied errors match direct ones.
		msg := strings.TrimSpace(string(data))
		var e serve.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		ch <- outcome{kind: oItemErr, backendID: b.id, errMsg: msg}
	}
}

// pick returns the selectable replica-set member with the fewest
// in-flight dispatches (ties to the lowest id), skipping the exclude
// id; nil when every member's breaker is open.
func (c *Cluster) pick(set []int, exclude int, now time.Time) *backend {
	var best *backend
	for _, i := range set {
		b := c.backends[i]
		if b.id == exclude || !b.selectable(now) {
			continue
		}
		if best == nil || b.inflight.Load() < best.inflight.Load() {
			best = b
		}
	}
	return best
}

// reopenDelay returns how long to wait before some member of the set
// becomes selectable again, clamped to keep the retry loop responsive
// to restarts the breaker horizon does not know about.
func (c *Cluster) reopenDelay(set []int, now time.Time) time.Duration {
	const floor, ceil = time.Millisecond, 100 * time.Millisecond
	d := ceil
	for _, i := range set {
		if at := c.backends[i].reopenAt(now); !at.IsZero() {
			if until := at.Sub(now); until < d {
				d = until
			}
		}
	}
	if d < floor {
		d = floor
	}
	return d
}

// hedgeDelay derives the duplicate-dispatch delay from the observed
// latency distribution: the configured quantile of recent successful
// dispatches, clamped to [HedgeMinDelay, HedgeMaxDelay].
func (c *Cluster) hedgeDelay() time.Duration {
	d := c.lat.quantile(c.cfg.HedgeQuantile)
	if d < c.cfg.HedgeMinDelay {
		d = c.cfg.HedgeMinDelay
	}
	if d > c.cfg.HedgeMaxDelay {
		d = c.cfg.HedgeMaxDelay
	}
	return d
}

// latencyWindow is a fixed-size ring of recent successful dispatch
// latencies feeding the hedge-delay quantile.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []float64 // seconds
	next int
	full bool
}

func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{buf: make([]float64, size)}
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.next] = d.Seconds()
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// quantile returns the q-quantile of the window, or 0 with no
// observations yet (the caller's MinDelay floor covers cold starts).
func (w *latencyWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	sorted := make([]float64, n)
	copy(sorted, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(sorted)
	return time.Duration(stats.Quantile(sorted, q) * float64(time.Second))
}

// sleepCtx sleeps d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func fmtSet(set []int) string {
	parts := make([]string, len(set))
	for i, v := range set {
		parts[i] = strconv.Itoa(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
