// Streaming dispatch: the open-system counterpart of /v1/batch. The
// proxy reads newline-delimited schedule requests, places each item on
// a replica set the moment it arrives (online greedy, the streaming
// analogue of replicaSets' batch greedy), dispatches items
// concurrently under a bounded window, and emits one NDJSON result
// line per item in input order, flushed as each completes. The window
// is the backpressure: when Workers items are in flight the reader
// stops consuming the request body, so a fast client is throttled to
// the pool's service rate by TCP flow control alone.

package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/placement"
	"repro/internal/serve"
)

// streamPlacer assigns replica sets to items as they arrive. For
// "none" and "group:k" it carries the running estimated load per
// choice, so the stream placement is the online greedy least-loaded
// rule — on identical input it matches replicaSets item for item,
// which the metamorphic stream-vs-batch tests pin down.
type streamPlacer struct {
	strat  strategy
	all    []int     // stratAll: the full backend set, shared by every item
	groups [][]int   // stratGroup: backend partition
	loads  []float64 // running estimated load per backend (none) or group
}

func (c *Cluster) newStreamPlacer(strat strategy) (*streamPlacer, error) {
	p := &streamPlacer{strat: strat}
	nb := len(c.backends)
	switch strat.kind {
	case stratAll:
		p.all = make([]int, nb)
		for i := range p.all {
			p.all[i] = i
		}
	case stratNone:
		p.loads = make([]float64, nb)
	case stratGroup:
		groups, err := placement.PartitionGroups(nb, strat.k)
		if err != nil {
			return nil, err
		}
		p.groups = groups
		p.loads = make([]float64, strat.k)
	}
	return p, nil
}

// place returns the replica set of the next item. Not safe for
// concurrent use; the stream reader calls it from one goroutine.
func (p *streamPlacer) place(req *serve.ScheduleRequest) []int {
	switch p.strat.kind {
	case stratNone:
		best := argminLoad(p.loads)
		p.loads[best] += itemEstimate(req)
		return []int{best}
	case stratGroup:
		g := argminLoad(p.loads)
		p.loads[g] += itemEstimate(req)
		return p.groups[g]
	default:
		return p.all
	}
}

// handleStream serves POST /v1/stream. The optional ?strategy= query
// parameter overrides the configured replication strategy for this
// stream (the streaming analogue of the batch placement override;
// explicit replica sets need the whole batch up front, so they have no
// streaming form).
func (c *Cluster) handleStream(w http.ResponseWriter, r *http.Request) {
	defer tStream.Start()()
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	}
	strat := c.strat
	if qs := r.URL.Query().Get("strategy"); qs != "" {
		var err error
		if strat, err = parseStrategy(qs, len(c.backends)); err != nil {
			writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
			return
		}
	}
	placer, err := c.newStreamPlacer(strat)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.StreamTimeout)
	defer cancel()

	// The stream reads the request body while writing response lines;
	// without full-duplex mode the HTTP/1.x server closes the unread
	// body at the first response write, truncating any stream longer
	// than the server's read-ahead. Errors mean the transport cannot do
	// full-duplex; the short-stream behavior is unchanged then.
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// The reader goroutine turns lines into single-use future channels
	// and enqueues them in input order; items needing a backend are
	// dispatched concurrently, invalid ones resolve immediately. The
	// bounded queue is both the ordering buffer and the in-flight
	// window.
	futures := make(chan chan Item, c.cfg.Workers)
	go func() {
		defer close(futures)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64<<10), int(c.cfg.MaxBodyBytes))
		idx := 0
		emit := func(fut chan Item) bool {
			select {
			case futures <- fut:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			fut := make(chan Item, 1)
			if idx >= c.cfg.MaxStreamItems {
				fut <- Item{Index: idx, Error: fmt.Sprintf("stream exceeds %d items", c.cfg.MaxStreamItems)}
				emit(fut)
				return
			}
			if ctx.Err() != nil {
				return
			}
			mStreamItems.Inc()
			var req serve.ScheduleRequest
			if err := serve.DecodeStrict(bytes.NewReader(line), &req); err != nil {
				fut <- Item{Index: idx, Error: err.Error()}
			} else if err := c.checkItem(&req); err != nil {
				fut <- Item{Index: idx, Error: err.Error()}
			} else {
				set := placer.place(&req)
				i, r := idx, req
				go func() { fut <- c.dispatchItem(ctx, i, &r, set) }()
			}
			if !emit(fut) {
				return
			}
			idx++
		}
		if err := sc.Err(); err != nil {
			fut := make(chan Item, 1)
			fut <- Item{Index: idx, Error: "stream read: " + err.Error()}
			emit(fut)
		}
	}()

	// Drain in order. Every future receives exactly one Item —
	// dispatchItem returns promptly once ctx expires — so this loop
	// terminates even when the deadline cuts the stream short.
	for fut := range futures {
		item := <-fut
		writeNDJSON(w, flusher, item)
	}
}

// writeNDJSON emits one result line through the pooled-buffer path and
// flushes it, so the client observes each item as it completes.
func writeNDJSON(w http.ResponseWriter, flusher http.Flusher, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= jsonBufMax {
			buf.Reset()
			jsonBufPool.Put(buf)
		}
	}()
	_ = json.NewEncoder(buf).Encode(v)
	_, _ = w.Write(buf.Bytes())
	if flusher != nil {
		flusher.Flush()
	}
}
