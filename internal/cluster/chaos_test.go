package cluster

import (
	"context"
	"encoding/json"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// The chaos harness: an in-process cluster of loopback schedd backends
// whose fault injectors are flipped mid-batch. Run with -race; the
// dispatcher, probers, hedges, and the kill goroutine all interleave.
//
// Invariants asserted, mirroring sim.RunWithFailures at the network
// layer:
//
//  1. exactly-once completion — no item is *executed* to a 200 more
//     than once across the pool (hedging is off, so duplicates could
//     only come from dispatch bugs);
//  2. results come back in input order with Index == position;
//  3. no item is lost while its replica group keeps >= 1 live member
//     (ErrUnsurvivable's negation).

// chaosBatch builds a batch whose per-item solver work is trivial; the
// injected backend delay is what keeps items in flight long enough for
// kills to land mid-batch.
func chaosBatch(k int) *BatchRequest {
	return testBatch(k)
}

func runChaosBatch(t *testing.T, c *Cluster, req *BatchRequest, timeout time.Duration) *BatchResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	resp, err := c.RunBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// assertExactlyOnce sums 200-executions per item across the pool and
// fails on any duplicate, any miss, and any out-of-order index.
func assertExactlyOnce(t *testing.T, bs []*testBackend, resp *BatchResponse, n int) {
	t.Helper()
	if len(resp.Results) != n {
		t.Fatalf("%d results for %d items", len(resp.Results), n)
	}
	execs := map[string]int{}
	for _, b := range bs {
		for item, cnt := range b.executions() {
			execs[item] += cnt
		}
	}
	for i, item := range resp.Results {
		if item.Index != i {
			t.Fatalf("result %d has index %d: order broken", i, item.Index)
		}
		if item.Error != "" || item.Response == nil {
			t.Errorf("item %d lost: %+v", i, item)
			continue
		}
		if got := execs[strconv.Itoa(i)]; got != 1 {
			t.Errorf("item %d executed %d times, want exactly once", i, got)
		}
	}
}

// TestChaosKillAndRestartMidBatch runs group:2 over four backends and
// kills one member of each group mid-batch, restarting them before the
// deadline. Every group keeps a live member throughout, so every item
// must complete exactly once, in order.
func TestChaosKillAndRestartMidBatch(t *testing.T) {
	bs, urls := newTestBackends(t, 4, serve.Config{})
	for _, b := range bs {
		b.delay.Store(int64(3 * time.Millisecond)) // keep items in flight
	}
	c := mustCluster(t, Config{
		Backends:           urls,
		Strategy:           "group:2",
		DisableHedging:     true, // exactly-once accounting needs single dispatch
		BreakerThreshold:   1,
		BreakerBaseBackoff: 5 * time.Millisecond,
		ProbeInterval:      10 * time.Millisecond,
	})
	c.Start(context.Background())

	const n = 60
	req := chaosBatch(n)

	// Kill schedule: one backend per group goes down mid-batch and
	// comes back shortly after. Groups are {0,1} and {2,3}.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		bs[0].down.Store(true)
		bs[3].down.Store(true)
		time.Sleep(60 * time.Millisecond)
		bs[0].down.Store(false)
		bs[3].down.Store(false)
	}()

	resp := runChaosBatch(t, c, req, 30*time.Second)
	wg.Wait()
	assertExactlyOnce(t, bs, resp, n)
}

// TestChaosRollingKills cycles a kill across every backend of a
// 3-backend full-replication pool. At any instant two members live, so
// nothing may be lost.
func TestChaosRollingKills(t *testing.T) {
	bs, urls := newTestBackends(t, 3, serve.Config{})
	for _, b := range bs {
		b.delay.Store(int64(2 * time.Millisecond))
	}
	c := mustCluster(t, Config{
		Backends:           urls,
		Strategy:           "all",
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: 5 * time.Millisecond,
		ProbeInterval:      10 * time.Millisecond,
	})
	c.Start(context.Background())

	const n = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 2; round++ {
			for i := range bs {
				bs[i].down.Store(true)
				time.Sleep(15 * time.Millisecond)
				bs[i].down.Store(false)
			}
		}
	}()

	resp := runChaosBatch(t, c, chaosBatch(n), 30*time.Second)
	wg.Wait()
	assertExactlyOnce(t, bs, resp, n)
}

// TestChaosWholeGroupDownIsReported kills both members of one group
// permanently: its items must be reported as errors naming the dead
// replica set — never silently dropped or misordered — while the other
// group's items all complete.
func TestChaosWholeGroupDownIsReported(t *testing.T) {
	bs, urls := newTestBackends(t, 4, serve.Config{})
	bs[2].down.Store(true)
	bs[3].down.Store(true)
	c := mustCluster(t, Config{
		Backends:           urls,
		Strategy:           "group:2",
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: 5 * time.Millisecond,
		// Dead-group items spin until the deadline; give the fan-out
		// enough workers that they cannot starve the live group's items.
		Workers: 16,
	})

	req := chaosBatch(8)
	sets, err := c.replicaSets(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := c.RunBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	deadGroup := 0
	for i, item := range resp.Results {
		if item.Index != i {
			t.Fatalf("result %d has index %d", i, item.Index)
		}
		onDead := sets[i][0] == 2
		switch {
		case onDead && item.Error == "":
			t.Errorf("item %d completed on a dead group", i)
		case onDead:
			deadGroup++
		case item.Error != "" || item.Response == nil:
			t.Errorf("item %d on the live group failed: %+v", i, item)
		}
	}
	if deadGroup == 0 {
		t.Fatal("placement never used the dead group; test exercised nothing")
	}
	// Exactly-once still holds for what did run.
	execs := map[string]int{}
	for _, b := range bs {
		for item, cnt := range b.executions() {
			execs[item] += cnt
		}
	}
	for item, cnt := range execs {
		if cnt != 1 {
			t.Errorf("item %s executed %d times", item, cnt)
		}
	}
}

// TestChaosConcurrentBatches hammers the dispatcher with overlapping
// batches while one backend flaps, checking order and completeness per
// batch (exactly-once cannot be asserted across batches because item
// headers collide, by design — indices restart per batch).
func TestChaosConcurrentBatches(t *testing.T) {
	bs, urls := newTestBackends(t, 3, serve.Config{})
	c := mustCluster(t, Config{
		Backends:           urls,
		Strategy:           "all",
		DisableHedging:     true,
		BreakerThreshold:   1,
		BreakerBaseBackoff: 5 * time.Millisecond,
		ProbeInterval:      10 * time.Millisecond,
	})
	c.Start(context.Background())

	stop := make(chan struct{})
	var flap sync.WaitGroup
	flap.Add(1)
	go func() {
		defer flap.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			bs[1].down.Store(true)
			time.Sleep(8 * time.Millisecond)
			bs[1].down.Store(false)
			time.Sleep(8 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := runChaosBatch(t, c, chaosBatch(16), 30*time.Second)
			for i, item := range resp.Results {
				if item.Index != i {
					t.Errorf("result %d has index %d", i, item.Index)
				}
				if item.Error != "" || item.Response == nil {
					t.Errorf("item %d lost with 2 live replicas: %+v", i, item)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flap.Wait()

	// Sanity: results are real schedule responses.
	resp := runChaosBatch(t, c, chaosBatch(1), 10*time.Second)
	var sched struct {
		Makespan float64 `json:"makespan"`
	}
	if err := json.Unmarshal(resp.Results[0].Response, &sched); err != nil || sched.Makespan <= 0 {
		t.Fatalf("response payload not a schedule: %v %v", err, sched)
	}
}
