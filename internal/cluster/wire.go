package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/placement"
	"repro/internal/serve"
)

// BatchRequest is clusterd's /v1/batch body. It is a strict superset
// of schedd's: the same "requests" array, plus an optional "placement"
// override — so any payload schedd accepts, clusterd accepts too (the
// byte-identity metamorphic tests depend on this).
type BatchRequest struct {
	Requests []serve.ScheduleRequest `json:"requests"`
	// Placement optionally overrides the cluster's configured
	// replication strategy for this batch.
	Placement *PlacementSpec `json:"placement,omitempty"`
}

// PlacementSpec selects the phase-1 replica sets for a batch. Exactly
// one of Strategy and Replicas must be set.
type PlacementSpec struct {
	// Strategy is "none", "all", or "group:k" (see Config.Strategy).
	Strategy string `json:"strategy,omitempty"`
	// Replicas gives explicit replica sets: Replicas[i] lists the
	// backend indices allowed to run item i, sorted ascending without
	// duplicates — the same structural rules placement.CheckSets
	// enforces for machines.
	Replicas [][]int `json:"replicas,omitempty"`
}

// Item is the outcome of one batch entry, wire-compatible with
// schedd's BatchItem. Response carries the backend's /v1/schedule
// body verbatim (json.Marshal compacts it), so a proxied item is
// byte-identical to a directly served one.
type Item struct {
	Index    int             `json:"index"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchResponse reports a whole batch, in input order.
type BatchResponse struct {
	Results []Item `json:"results"`
}

// HealthResponse is clusterd's /healthz payload: the pool view.
type HealthResponse struct {
	Status   string          `json:"status"`
	Backends []BackendStatus `json:"backends"`
}

// BackendStatus is one backend's health row.
type BackendStatus struct {
	ID                  int    `json:"id"`
	URL                 string `json:"url"`
	Breaker             string `json:"breaker"`
	Inflight            int64  `json:"inflight"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
}

// DecodeBatch decodes and fully validates a /v1/batch body: strict
// JSON, non-empty bounded batch, every instance validated, and any
// placement override structurally checked against the backend count.
// Anything it accepts is safe to dispatch (and stable under
// re-encoding — the fuzz target enforces that).
func (c *Cluster) DecodeBatch(r io.Reader) (*BatchRequest, error) {
	var req BatchRequest
	if err := serve.DecodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := c.validateBatch(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

func (c *Cluster) validateBatch(req *BatchRequest) error {
	if len(req.Requests) == 0 {
		return errors.New("empty batch")
	}
	if len(req.Requests) > c.cfg.MaxBatch {
		return fmt.Errorf("batch has %d items, limit %d", len(req.Requests), c.cfg.MaxBatch)
	}
	for i := range req.Requests {
		if err := c.checkItem(&req.Requests[i]); err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
	}
	if req.Placement != nil {
		if err := c.validatePlacementSpec(req.Placement, len(req.Requests)); err != nil {
			return err
		}
	}
	return nil
}

// checkItem applies the proxy's per-item limits and the centralized
// instance validation to one work item. Shared by the batch and
// streaming paths so both admit exactly the same items.
func (c *Cluster) checkItem(req *serve.ScheduleRequest) error {
	if req.Algorithm == "" {
		return errors.New("missing algorithm")
	}
	in := req.Instance
	if in == nil {
		return errors.New("missing instance")
	}
	if in.N() > c.cfg.MaxTasks {
		return fmt.Errorf("instance has %d tasks, limit %d", in.N(), c.cfg.MaxTasks)
	}
	if in.M > c.cfg.MaxMachines {
		return fmt.Errorf("instance has %d machines, limit %d", in.M, c.cfg.MaxMachines)
	}
	return in.Validate(true)
}

func (c *Cluster) validatePlacementSpec(spec *PlacementSpec, n int) error {
	switch {
	case spec.Strategy != "" && spec.Replicas != nil:
		return errors.New("placement: strategy and replicas are mutually exclusive")
	case spec.Strategy != "":
		_, err := parseStrategy(spec.Strategy, len(c.backends))
		return err
	case spec.Replicas != nil:
		if len(spec.Replicas) != n {
			return fmt.Errorf("placement: %d replica sets for %d items", len(spec.Replicas), n)
		}
		return placement.CheckSets(spec.Replicas, len(c.backends))
	default:
		return errors.New("placement: empty spec (set strategy or replicas)")
	}
}
