package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// breakerConfig bounds one backend's circuit breaker.
type breakerConfig struct {
	Threshold   int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Breaker states, also the values of the per-backend breaker gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// backend is one schedd instance in the pool, with its failure
// bookkeeping. The in-flight count drives the "first idle replica"
// selection; the breaker keeps dead backends out of the rotation.
type backend struct {
	id     int
	url    string
	client *http.Client
	bcfg   breakerConfig

	// inflight is the local dispatch count used for selection; the
	// gauges mirror it (and the breaker state) into /metrics.
	inflight  atomic.Int64
	gInflight *obs.Gauge
	gBreaker  *obs.Gauge

	mu          sync.Mutex
	consecFails int
	backoff     time.Duration
	openUntil   time.Time
}

func newBackend(id int, url string, client *http.Client, bcfg breakerConfig) *backend {
	return &backend{
		id:        id,
		url:       url,
		client:    client,
		bcfg:      bcfg,
		gInflight: backendGauge(id, "inflight"),
		gBreaker:  backendGauge(id, "breaker"),
	}
}

// backendGauge returns the per-backend gauge cluster.backend.<id>.<kind>.
// The name is computed, but its cardinality is bounded by the
// configured pool size, which is fixed for the life of the process.
func backendGauge(id int, kind string) *obs.Gauge {
	//lint:ignore obsnames per-backend gauge names are bounded by the configured backend pool size
	return obs.GetGauge(fmt.Sprintf("cluster.backend.%d.%s", id, kind))
}

// state reports the breaker position at now: closed while the
// consecutive-failure count is below threshold, open inside the
// backoff window, half-open once the window elapses (dispatches are
// admitted again as trials; one more failure re-opens with a doubled
// window).
func (b *backend) state(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(now)
}

func (b *backend) stateLocked(now time.Time) int {
	if b.consecFails < b.bcfg.Threshold {
		return breakerClosed
	}
	if now.Before(b.openUntil) {
		return breakerOpen
	}
	return breakerHalfOpen
}

// selectable reports whether a dispatch may be sent at now.
func (b *backend) selectable(now time.Time) bool {
	return b.state(now) != breakerOpen
}

// reopenAt returns when an open breaker admits its next trial (zero
// time when not open).
func (b *backend) reopenAt(now time.Time) time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stateLocked(now) != breakerOpen {
		return time.Time{}
	}
	return b.openUntil
}

// recordSuccess closes the breaker and resets the backoff.
func (b *backend) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	b.backoff = 0
	b.openUntil = time.Time{}
	b.gBreaker.Set(breakerClosed)
}

// recordFailure counts one transport/5xx failure; crossing the
// threshold opens the breaker, and a failed half-open trial re-opens
// it with a doubled (capped) window.
func (b *backend) recordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.stateLocked(now) == breakerOpen
	b.consecFails++
	if b.consecFails < b.bcfg.Threshold {
		return
	}
	switch {
	case b.backoff == 0:
		b.backoff = b.bcfg.BaseBackoff
	case !wasOpen:
		// A failure after the open window elapsed: the half-open trial
		// failed, so back off harder.
		b.backoff *= 2
		if b.backoff > b.bcfg.MaxBackoff {
			b.backoff = b.bcfg.MaxBackoff
		}
	default:
		// Still inside the window (a straggling in-flight failure):
		// keep the current horizon.
		return
	}
	b.openUntil = now.Add(b.backoff)
	b.gBreaker.Set(breakerOpen)
	mBreakOpens.Inc()
}

// probe checks the backend's /healthz once.
func (b *backend) probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: healthz status %d", resp.StatusCode)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("cluster: healthz decode: %w", err)
	}
	return nil
}

// status renders the backend for /healthz.
func (b *backend) status(now time.Time) BackendStatus {
	b.mu.Lock()
	fails := b.consecFails
	b.mu.Unlock()
	names := [...]string{"closed", "open", "half-open"}
	return BackendStatus{
		ID:                  b.id,
		URL:                 b.url,
		Breaker:             names[b.state(now)],
		Inflight:            b.inflight.Load(),
		ConsecutiveFailures: fails,
	}
}
