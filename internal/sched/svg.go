package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SVGOptions configures WriteSVG.
type SVGOptions struct {
	// Width and RowHeight are pixel dimensions (defaults 800 and 28).
	Width, RowHeight int
	// Title is rendered above the chart.
	Title string
	// Highlight marks task IDs to fill in a distinct color (e.g. the
	// adversary-inflated tasks or a memory-intensive set).
	Highlight map[int]bool
}

// palette cycles fill colors per task so adjacent tasks are
// distinguishable; colors are colorblind-safe Okabe–Ito hues.
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#CC79A7",
	"#56B4E9", "#D55E00", "#F0E442", "#999999",
}

// WriteSVG renders the schedule as a self-contained SVG Gantt chart,
// one row per machine, with task rectangles labeled by ID. It is the
// publication-quality counterpart of Gantt.
func (s *Schedule) WriteSVG(w io.Writer, opts SVGOptions) error {
	width := opts.Width
	if width <= 0 {
		width = 800
	}
	rowH := opts.RowHeight
	if rowH <= 0 {
		rowH = 28
	}
	const marginLeft, marginTop, axisH = 48, 28, 22
	makespan := s.Makespan()
	chartW := width - marginLeft - 8
	height := marginTop + s.M*rowH + axisH

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n",
			marginLeft, escapeXML(opts.Title))
	}

	perMachine := make([][]Assignment, s.M)
	for _, a := range s.Assignments {
		perMachine[a.Machine] = append(perMachine[a.Machine], a)
	}
	scale := 0.0
	if makespan > 0 {
		scale = float64(chartW) / makespan
	}
	for i := 0; i < s.M; i++ {
		y := marginTop + i*rowH
		fmt.Fprintf(&b, `<text x="4" y="%d">m%d</text>`+"\n", y+rowH/2+4, i)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			marginLeft, y+rowH, marginLeft+chartW, y+rowH)
		as := perMachine[i]
		sort.Slice(as, func(x, yi int) bool {
			if as[x].Start != as[yi].Start {
				return as[x].Start < as[yi].Start
			}
			return as[x].Task < as[yi].Task
		})
		for _, a := range as {
			x := marginLeft + int(a.Start*scale)
			wpx := int((a.End - a.Start) * scale)
			if wpx < 1 {
				wpx = 1
			}
			fill := palette[a.Task%len(palette)]
			stroke := "#333"
			if opts.Highlight[a.Task] {
				fill = "#D55E00"
				stroke = "#000"
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s" stroke-width="0.5" opacity="0.85"/>`+"\n",
				x, y+2, wpx, rowH-4, fill, stroke)
			if wpx >= 18 {
				fmt.Fprintf(&b, `<text x="%d" y="%d" fill="white">%d</text>`+"\n",
					x+3, y+rowH/2+4, a.Task)
			}
		}
	}
	axisY := marginTop + s.M*rowH + 14
	fmt.Fprintf(&b, `<text x="%d" y="%d">0</text>`+"\n", marginLeft, axisY)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.4g</text>`+"\n",
		marginLeft+chartW, axisY, makespan)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
