// Package sched represents the output of phase 2: an executed
// schedule, i.e. for every task the machine that ran it and its start
// and completion times (using actual processing times). It computes
// the paper's objectives — makespan C_max = max_i Σ_{j∈E_i} p_j and
// memory occupation Mem_max — and verifies feasibility against a
// phase-1 placement.
package sched

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/placement"
	"repro/internal/task"
)

// Assignment records one executed task.
type Assignment struct {
	// Task is the task ID.
	Task int
	// Machine is the machine that executed the task.
	Machine int
	// Start is the time execution began.
	Start float64
	// End is the completion time; End-Start is the actual processing
	// time p_j.
	End float64
}

// Schedule is an executed phase-2 schedule.
type Schedule struct {
	// M is the machine count.
	M int
	// Assignments holds one entry per task, indexed by task ID.
	Assignments []Assignment
}

// Verification errors.
var (
	ErrShapeMismatch  = errors.New("sched: schedule shape does not match instance")
	ErrBadDuration    = errors.New("sched: assignment duration differs from actual time")
	ErrOverlap        = errors.New("sched: two tasks overlap on one machine")
	ErrOutsideReplica = errors.New("sched: task ran on a machine outside its replica set")
	ErrNegativeTime   = errors.New("sched: negative start time")
)

// New returns a schedule shell for n tasks on m machines.
func New(n, m int) *Schedule {
	return &Schedule{M: m, Assignments: make([]Assignment, n)}
}

// Reset re-initializes the schedule as an n-task, m-machine shell,
// reusing the Assignments backing array when its capacity allows. It
// zeroes every field that influences output — M is overwritten and all
// n assignments are cleared — so a pooled Schedule cycling through
// trials can never leak state from a previous run.
func (s *Schedule) Reset(n, m int) {
	s.M = m
	if cap(s.Assignments) < n {
		s.Assignments = make([]Assignment, n)
	} else {
		s.Assignments = s.Assignments[:n]
		clear(s.Assignments)
	}
}

// Makespan returns max over machines of the last completion time,
// which for contiguous schedules equals max_i Σ_{j ∈ E_i} p_j.
func (s *Schedule) Makespan() float64 {
	max := 0.0
	for _, a := range s.Assignments {
		if a.End > max {
			max = a.End
		}
	}
	return max
}

// Loads returns per-machine total actual processing time.
func (s *Schedule) Loads() []float64 {
	loads := make([]float64, s.M)
	for _, a := range s.Assignments {
		loads[a.Machine] += a.End - a.Start
	}
	return loads
}

// MachineOf returns the executing machine of each task.
func (s *Schedule) MachineOf() []int {
	out := make([]int, len(s.Assignments))
	for j, a := range s.Assignments {
		out[j] = a.Machine
	}
	return out
}

// Imbalance returns C_max · m / Σp_j − 1: zero for a perfectly
// balanced schedule, growing with the gap between the longest machine
// and the average.
func (s *Schedule) Imbalance() float64 {
	total := 0.0
	for _, a := range s.Assignments {
		total += a.End - a.Start
	}
	if total == 0 {
		return 0
	}
	return s.Makespan()*float64(s.M)/total - 1
}

// Verify checks that the schedule is a feasible execution of the
// instance under the placement:
//
//   - one assignment per task, machines in range, starts ≥ 0;
//   - each duration equals the task's actual processing time;
//   - tasks on one machine do not overlap in time;
//   - every task runs on a machine in its replica set (when p != nil).
func (s *Schedule) Verify(in *task.Instance, p *placement.Placement) error {
	return s.VerifyDurations(in, p, nil)
}

// VerifyDurations is Verify with a custom expected-duration function,
// for schedules executed under a duration model other than the plain
// actual times (e.g. remote execution with a fetch penalty). A nil
// dur means the task's actual time on any machine. When dur is
// non-nil the replica-set check is skipped for tasks whose machine is
// outside M_j — running remotely is the point of such models — unless
// p is nil anyway.
func (s *Schedule) VerifyDurations(in *task.Instance, p *placement.Placement,
	dur func(taskID, machine int) float64) error {
	if len(s.Assignments) != in.N() || s.M != in.M {
		return fmt.Errorf("%w: schedule %dx%d vs instance %dx%d",
			ErrShapeMismatch, len(s.Assignments), s.M, in.N(), in.M)
	}
	const tol = 1e-9
	vs := verifyPool.Get().(*verifyScratch)
	defer verifyPool.Put(vs)
	counts := vs.counts(s.M + 1)
	for j, a := range s.Assignments {
		if a.Task != j {
			return fmt.Errorf("%w: assignment %d has task %d", ErrShapeMismatch, j, a.Task)
		}
		if a.Machine < 0 || a.Machine >= s.M {
			return fmt.Errorf("%w: task %d machine %d", ErrShapeMismatch, j, a.Machine)
		}
		if a.Start < -tol {
			return fmt.Errorf("%w: task %d starts at %v", ErrNegativeTime, j, a.Start)
		}
		got := a.End - a.Start
		want := in.Tasks[j].Actual
		if dur != nil {
			want = dur(j, a.Machine)
		}
		if math.Abs(got-want) > tol*math.Max(1, want) {
			return fmt.Errorf("%w: task %d ran %v, expected %v", ErrBadDuration, j, got, want)
		}
		if p != nil && dur == nil && !contains(p.Sets[j], a.Machine) {
			return fmt.Errorf("%w: task %d on machine %d, replicas %v",
				ErrOutsideReplica, j, a.Machine, p.Sets[j])
		}
		counts[a.Machine+1]++
	}
	// Group assignments by machine with a counting sort into one pooled
	// buffer (the previous per-machine append slices allocated O(n)
	// per Verify), then check each contiguous machine segment.
	for i := 1; i <= s.M; i++ {
		counts[i] += counts[i-1]
	}
	grouped := vs.grouped(len(s.Assignments))
	next := vs.next(s.M)
	copy(next, counts[:s.M])
	for _, a := range s.Assignments {
		grouped[next[a.Machine]] = a
		next[a.Machine]++
	}
	for i := 0; i < s.M; i++ {
		as := grouped[counts[i]:counts[i+1]]
		slices.SortFunc(as, func(a, b Assignment) int {
			if a.Start != b.Start {
				if a.Start < b.Start {
					return -1
				}
				return 1
			}
			return a.Task - b.Task
		})
		for idx := 1; idx < len(as); idx++ {
			if as[idx].Start < as[idx-1].End-tol*math.Max(1, as[idx-1].End) {
				return fmt.Errorf("%w: machine %d tasks %d and %d",
					ErrOverlap, i, as[idx-1].Task, as[idx].Task)
			}
		}
	}
	return nil
}

// verifyScratch pools the buffers VerifyDurations needs: a grouped
// copy of the assignments plus per-machine counters. Every buffer is
// fully overwritten before use, so pooling cannot affect results.
type verifyScratch struct {
	groupedBuf []Assignment
	countsBuf  []int
	nextBuf    []int
}

func (vs *verifyScratch) grouped(n int) []Assignment {
	if cap(vs.groupedBuf) < n {
		vs.groupedBuf = make([]Assignment, n)
	}
	return vs.groupedBuf[:n]
}

func (vs *verifyScratch) counts(n int) []int {
	if cap(vs.countsBuf) < n {
		vs.countsBuf = make([]int, n)
	} else {
		vs.countsBuf = vs.countsBuf[:n]
		clear(vs.countsBuf)
	}
	return vs.countsBuf
}

func (vs *verifyScratch) next(n int) []int {
	if cap(vs.nextBuf) < n {
		vs.nextBuf = make([]int, n)
	}
	return vs.nextBuf[:n]
}

var verifyPool = sync.Pool{New: func() any { return new(verifyScratch) }}

func contains(set []int, x int) bool {
	for _, v := range set {
		if v == x {
			return true
		}
	}
	return false
}

// FromMapping builds a contiguous schedule from a task→machine map,
// executing each machine's tasks back to back in task-ID order using
// actual processing times. It is the canonical way to materialize a
// static (no-choice) schedule.
func FromMapping(in *task.Instance, machineOf []int) (*Schedule, error) {
	if len(machineOf) != in.N() {
		return nil, fmt.Errorf("%w: mapping has %d entries for %d tasks",
			ErrShapeMismatch, len(machineOf), in.N())
	}
	s := New(in.N(), in.M)
	clock := make([]float64, in.M)
	for j, t := range in.Tasks {
		i := machineOf[j]
		if i < 0 || i >= in.M {
			return nil, fmt.Errorf("%w: task %d machine %d", ErrShapeMismatch, j, i)
		}
		s.Assignments[j] = Assignment{Task: j, Machine: i, Start: clock[i], End: clock[i] + t.Actual}
		clock[i] += t.Actual
	}
	return s, nil
}
