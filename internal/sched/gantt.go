package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the schedule as an ASCII chart, one row per machine,
// time flowing left to right. width is the number of character cells
// representing the makespan (minimum 20). Each task is drawn as a run
// of its ID's last digit, bracketed when it is at least 3 cells wide.
// It is the textual equivalent of the paper's schedule figures
// (Figures 1, 2, and the SABO/ABO examples).
func (s *Schedule) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	makespan := s.Makespan()
	if makespan == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / makespan

	perMachine := make([][]Assignment, s.M)
	for _, a := range s.Assignments {
		perMachine[a.Machine] = append(perMachine[a.Machine], a)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 %s %.4g\n", strings.Repeat("-", width-4), makespan)
	for i := 0; i < s.M; i++ {
		as := perMachine[i]
		sort.Slice(as, func(x, y int) bool {
			if as[x].Start != as[y].Start {
				return as[x].Start < as[y].Start
			}
			return as[x].Task < as[y].Task
		})
		row := make([]byte, width)
		for c := range row {
			row[c] = '.'
		}
		for _, a := range as {
			lo := int(a.Start * scale)
			hi := int(a.End * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			label := fmt.Sprintf("%d", a.Task)
			fill := label[len(label)-1]
			for c := lo; c < hi; c++ {
				row[c] = fill
			}
			if hi-lo >= 3 {
				row[lo] = '['
				row[hi-1] = ']'
			}
		}
		fmt.Fprintf(&b, "m%-3d |%s|\n", i, row)
	}
	return b.String()
}

// Summary returns a one-line metrics summary of the schedule.
func (s *Schedule) Summary() string {
	return fmt.Sprintf("makespan=%.4g imbalance=%.3f machines=%d tasks=%d",
		s.Makespan(), s.Imbalance(), s.M, len(s.Assignments))
}
