package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/task"
)

func TestComputeMetricsKnown(t *testing.T) {
	// 2 machines: m0 runs 3 then 1 (ends 4); m1 runs 2 (ends 2).
	in := inst(t, 2, 3, 1, 2)
	s, err := FromMapping(in, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := s.ComputeMetrics()
	if m.Makespan != 4 {
		t.Errorf("makespan = %v", m.Makespan)
	}
	if m.TotalWork != 6 {
		t.Errorf("total work = %v", m.TotalWork)
	}
	if m.AvgLoad != 3 {
		t.Errorf("avg load = %v", m.AvgLoad)
	}
	if math.Abs(m.Utilization-6.0/8) > 1e-12 {
		t.Errorf("utilization = %v, want 0.75", m.Utilization)
	}
	if math.Abs(m.IdleTime-2) > 1e-12 {
		t.Errorf("idle = %v, want 2", m.IdleTime)
	}
	// Completion times: 3, 4, 2 → sum 9.
	if m.SumFlow != 9 {
		t.Errorf("sumflow = %v, want 9", m.SumFlow)
	}
	if m.MaxStart != 3 {
		t.Errorf("max start = %v, want 3", m.MaxStart)
	}
	if !strings.Contains(m.String(), "util=0.750") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMachineStats(t *testing.T) {
	in := inst(t, 2, 3, 1, 2)
	s, _ := FromMapping(in, []int{0, 0, 1})
	stats := s.MachineStats()
	if stats[0].Tasks != 2 || stats[0].Load != 4 || stats[0].LastEnd != 4 || stats[0].Idle != 0 {
		t.Fatalf("machine 0 stats %+v", stats[0])
	}
	if stats[1].Tasks != 1 || stats[1].Load != 2 {
		t.Fatalf("machine 1 stats %+v", stats[1])
	}
}

func TestMachineStatsWithGap(t *testing.T) {
	s := New(2, 1)
	s.Assignments[0] = Assignment{Task: 0, Machine: 0, Start: 0, End: 1}
	s.Assignments[1] = Assignment{Task: 1, Machine: 0, Start: 2, End: 3}
	stats := s.MachineStats()
	if stats[0].Idle != 1 {
		t.Fatalf("idle = %v, want 1 (gap)", stats[0].Idle)
	}
}

func TestCriticalPath(t *testing.T) {
	in := inst(t, 2, 3, 1, 2)
	s, _ := FromMapping(in, []int{0, 0, 1})
	cp := s.CriticalPath()
	if len(cp) != 2 {
		t.Fatalf("critical path has %d tasks", len(cp))
	}
	if cp[0].Task != 0 || cp[1].Task != 1 {
		t.Fatalf("critical path order %v", cp)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	s := New(0, 2)
	if cp := s.CriticalPath(); cp != nil {
		t.Fatalf("empty schedule critical path %v", cp)
	}
}

func TestMetricsInvariantsProperty(t *testing.T) {
	f := func(raw []uint8, mRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		m := int(mRaw%6) + 1
		actuals := make([]float64, len(raw))
		mapping := make([]int, len(raw))
		for i, v := range raw {
			actuals[i] = float64(v%40) + 1
			mapping[i] = int(v) % m
		}
		in, err := task.New(m, 1, actuals, actuals)
		if err != nil {
			return false
		}
		s, err := FromMapping(in, mapping)
		if err != nil {
			return false
		}
		mt := s.ComputeMetrics()
		if mt.Utilization <= 0 || mt.Utilization > 1+1e-12 {
			return false
		}
		if mt.Makespan < mt.AvgLoad-1e-9 {
			return false
		}
		if mt.IdleTime < -1e-9 {
			return false
		}
		// Machine stats must sum to the total work.
		sum := 0.0
		for _, st := range s.MachineStats() {
			sum += st.Load
		}
		if math.Abs(sum-mt.TotalWork) > 1e-9 {
			return false
		}
		// The critical path's last completion is the makespan.
		cp := s.CriticalPath()
		return len(cp) > 0 && cp[len(cp)-1].End == mt.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
