package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVGBasics(t *testing.T) {
	in := inst(t, 2, 3, 1, 2)
	s, err := FromMapping(in, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf, SVGOptions{Title: "demo <run>"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "m0", "m1", "demo &lt;run&gt;", "<rect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// 3 task rectangles plus the background.
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Fatalf("SVG has %d rects, want 4", got)
	}
}

func TestWriteSVGHighlight(t *testing.T) {
	in := inst(t, 1, 5)
	s, _ := FromMapping(in, []int{0})
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf, SVGOptions{Highlight: map[int]bool{0: true}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#D55E00") {
		t.Fatal("highlight color missing")
	}
}

func TestWriteSVGEmptySchedule(t *testing.T) {
	s := New(0, 2)
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("empty schedule produced invalid SVG")
	}
}

func TestWriteSVGTinyTasksGetMinWidth(t *testing.T) {
	// A task of duration ~0 relative to the makespan must still render
	// a >= 1px rectangle.
	in := inst(t, 1, 1000, 0.0001)
	s, err := FromMapping(in, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf, SVGOptions{Width: 200}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `width="0"`) {
		t.Fatal("zero-width task rectangle")
	}
}
