package sched

import (
	"fmt"
	"sort"
)

// Metrics summarizes an executed schedule beyond the makespan. All
// quantities use actual (executed) durations.
type Metrics struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// TotalWork is Σ p_j.
	TotalWork float64
	// AvgLoad is TotalWork / m, the lower bound on the makespan.
	AvgLoad float64
	// Imbalance is Makespan/AvgLoad − 1 (0 = perfectly balanced).
	Imbalance float64
	// Utilization is TotalWork / (m · Makespan) ∈ (0, 1]: the busy
	// fraction of the machine-time rectangle.
	Utilization float64
	// IdleTime is m·Makespan − TotalWork: machine-time wasted waiting.
	IdleTime float64
	// SumFlow is Σ C_j (total completion time), the responsiveness
	// metric of queueing-oriented analyses.
	SumFlow float64
	// MaxStart is the latest task start time.
	MaxStart float64
}

// ComputeMetrics derives the metric set from the schedule.
func (s *Schedule) ComputeMetrics() Metrics {
	var m Metrics
	for _, a := range s.Assignments {
		dur := a.End - a.Start
		m.TotalWork += dur
		m.SumFlow += a.End
		if a.End > m.Makespan {
			m.Makespan = a.End
		}
		if a.Start > m.MaxStart {
			m.MaxStart = a.Start
		}
	}
	if s.M > 0 {
		m.AvgLoad = m.TotalWork / float64(s.M)
	}
	if m.AvgLoad > 0 {
		m.Imbalance = m.Makespan/m.AvgLoad - 1
	}
	if m.Makespan > 0 && s.M > 0 {
		m.Utilization = m.TotalWork / (float64(s.M) * m.Makespan)
		m.IdleTime = float64(s.M)*m.Makespan - m.TotalWork
	}
	return m
}

// String renders the metric set on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("makespan=%.4g util=%.3f imbalance=%.3f idle=%.4g sumflow=%.4g",
		m.Makespan, m.Utilization, m.Imbalance, m.IdleTime, m.SumFlow)
}

// MachineStat describes one machine's share of the schedule.
type MachineStat struct {
	// Machine is the machine index.
	Machine int
	// Tasks is the number of tasks executed.
	Tasks int
	// Load is the total busy time.
	Load float64
	// LastEnd is the machine's final completion time.
	LastEnd float64
	// Idle is LastEnd − Load: gaps before the machine went quiet.
	Idle float64
}

// MachineStats returns per-machine statistics, indexed by machine.
func (s *Schedule) MachineStats() []MachineStat {
	stats := make([]MachineStat, s.M)
	for i := range stats {
		stats[i].Machine = i
	}
	for _, a := range s.Assignments {
		st := &stats[a.Machine]
		st.Tasks++
		st.Load += a.End - a.Start
		if a.End > st.LastEnd {
			st.LastEnd = a.End
		}
	}
	for i := range stats {
		stats[i].Idle = stats[i].LastEnd - stats[i].Load
	}
	return stats
}

// CriticalPath returns the tasks of the machine that determines the
// makespan, in execution order — the chain an operator would inspect
// first when debugging a slow run.
func (s *Schedule) CriticalPath() []Assignment {
	makespan := s.Makespan()
	critical := -1
	for _, a := range s.Assignments {
		//lint:ignore floatcmp makespan is the max of these exact End values, so equality is exact, not rounded
		if a.End == makespan {
			critical = a.Machine
			break
		}
	}
	if critical < 0 {
		return nil
	}
	var out []Assignment
	for _, a := range s.Assignments {
		if a.Machine == critical {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Task < out[j].Task
	})
	return out
}
