package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	in := inst(t, 2, 3, 1, 2)
	s, err := FromMapping(in, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != s.M || len(got.Assignments) != len(s.Assignments) {
		t.Fatalf("shape changed: %+v", got)
	}
	for j := range s.Assignments {
		if got.Assignments[j] != s.Assignments[j] {
			t.Fatalf("assignment %d changed: %+v vs %+v", j, got.Assignments[j], s.Assignments[j])
		}
	}
	if err := got.Verify(in, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"m":2,"machines":[0],"starts":[],"ends":[]}`)); err == nil {
		t.Fatal("inconsistent arrays accepted")
	}
}

func TestScheduleJSONRejectsCorruptAssignments(t *testing.T) {
	s := New(1, 1)
	s.Assignments[0] = Assignment{Task: 5} // wrong ID
	if _, err := s.MarshalJSON(); err == nil {
		t.Fatal("corrupt assignment serialized")
	}
}
