package sched

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/task"
)

func inst(t *testing.T, m int, actuals ...float64) *task.Instance {
	t.Helper()
	est := make([]float64, len(actuals))
	copy(est, actuals)
	in, err := task.New(m, 1, est, actuals)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFromMappingAndMetrics(t *testing.T) {
	in := inst(t, 2, 3, 1, 2) // tasks 0,1,2
	s, err := FromMapping(in, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 3 {
		t.Fatalf("makespan = %v, want 3", got)
	}
	loads := s.Loads()
	if loads[0] != 3 || loads[1] != 3 {
		t.Fatalf("loads = %v", loads)
	}
	if got := s.Imbalance(); got != 0 {
		t.Fatalf("imbalance = %v, want 0", got)
	}
	if err := s.Verify(in, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromMappingSequencesTasks(t *testing.T) {
	in := inst(t, 1, 1, 2, 3)
	s, err := FromMapping(in, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Assignments[1].Start != 1 || s.Assignments[2].Start != 3 {
		t.Fatalf("starts = %v, %v", s.Assignments[1].Start, s.Assignments[2].Start)
	}
	if s.Makespan() != 6 {
		t.Fatalf("makespan = %v", s.Makespan())
	}
}

func TestFromMappingRejectsBadShape(t *testing.T) {
	in := inst(t, 2, 1, 1)
	if _, err := FromMapping(in, []int{0}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := FromMapping(in, []int{0, 7}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestVerifyCatchesWrongDuration(t *testing.T) {
	in := inst(t, 1, 2)
	s := New(1, 1)
	s.Assignments[0] = Assignment{Task: 0, Machine: 0, Start: 0, End: 1} // actual is 2
	if err := s.Verify(in, nil); !errors.Is(err, ErrBadDuration) {
		t.Fatalf("got %v, want ErrBadDuration", err)
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	in := inst(t, 1, 2, 2)
	s := New(2, 1)
	s.Assignments[0] = Assignment{Task: 0, Machine: 0, Start: 0, End: 2}
	s.Assignments[1] = Assignment{Task: 1, Machine: 0, Start: 1, End: 3}
	if err := s.Verify(in, nil); !errors.Is(err, ErrOverlap) {
		t.Fatalf("got %v, want ErrOverlap", err)
	}
}

func TestVerifyCatchesNegativeStart(t *testing.T) {
	in := inst(t, 1, 2)
	s := New(1, 1)
	s.Assignments[0] = Assignment{Task: 0, Machine: 0, Start: -1, End: 1}
	if err := s.Verify(in, nil); !errors.Is(err, ErrNegativeTime) {
		t.Fatalf("got %v, want ErrNegativeTime", err)
	}
}

func TestVerifyCatchesReplicaViolation(t *testing.T) {
	in := inst(t, 2, 1)
	p := placement.New(1, 2)
	p.Assign(0, 0)
	s := New(1, 2)
	s.Assignments[0] = Assignment{Task: 0, Machine: 1, Start: 0, End: 1}
	if err := s.Verify(in, p); !errors.Is(err, ErrOutsideReplica) {
		t.Fatalf("got %v, want ErrOutsideReplica", err)
	}
}

func TestVerifyAcceptsReplicaMember(t *testing.T) {
	in := inst(t, 2, 1)
	p := placement.New(1, 2)
	p.AssignSet(0, []int{0, 1})
	s := New(1, 2)
	s.Assignments[0] = Assignment{Task: 0, Machine: 1, Start: 0, End: 1}
	if err := s.Verify(in, p); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesShapeMismatch(t *testing.T) {
	in := inst(t, 2, 1, 1)
	s := New(1, 2)
	s.Assignments[0] = Assignment{Task: 0, Machine: 0, End: 1}
	if err := s.Verify(in, nil); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("got %v, want ErrShapeMismatch", err)
	}
}

func TestVerifyDurationsCustomModel(t *testing.T) {
	// A schedule with a 2x-penalized remote task fails plain Verify
	// but passes VerifyDurations with the matching model.
	in := inst(t, 2, 3, 1)
	s := New(2, 2)
	s.Assignments[0] = Assignment{Task: 0, Machine: 0, Start: 0, End: 6} // 3 * penalty 2
	s.Assignments[1] = Assignment{Task: 1, Machine: 1, Start: 0, End: 1}
	if err := s.Verify(in, nil); err == nil {
		t.Fatal("penalized schedule passed plain Verify")
	}
	dur := func(taskID, machine int) float64 {
		if taskID == 0 && machine == 0 {
			return 6
		}
		return in.Tasks[taskID].Actual
	}
	if err := s.VerifyDurations(in, nil, dur); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceUnbalanced(t *testing.T) {
	in := inst(t, 2, 4, 1)
	s, err := FromMapping(in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// C_max=4, total=5, m=2 → imbalance = 8/5 - 1 = 0.6
	if got := s.Imbalance(); got < 0.599 || got > 0.601 {
		t.Fatalf("imbalance = %v, want 0.6", got)
	}
}

func TestGanttRendersAllMachines(t *testing.T) {
	in := inst(t, 3, 2, 2, 2)
	s, err := FromMapping(in, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	g := s.Gantt(40)
	for _, row := range []string{"m0", "m1", "m2"} {
		if !strings.Contains(g, row) {
			t.Fatalf("Gantt missing row %s:\n%s", row, g)
		}
	}
	if !strings.Contains(g, "time 0") {
		t.Fatalf("Gantt missing time axis:\n%s", g)
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	s := New(0, 2)
	if g := s.Gantt(40); !strings.Contains(g, "empty") {
		t.Fatalf("empty schedule rendered as %q", g)
	}
}

func TestSummaryMentionsMakespan(t *testing.T) {
	in := inst(t, 1, 5)
	s, _ := FromMapping(in, []int{0})
	if got := s.Summary(); !strings.Contains(got, "makespan=5") {
		t.Fatalf("Summary() = %q", got)
	}
}

func TestFromMappingAlwaysVerifiesProperty(t *testing.T) {
	f := func(raw []uint8, mRaw uint8) bool {
		if len(raw) == 0 {
			raw = []uint8{1}
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		m := int(mRaw%8) + 1
		actuals := make([]float64, len(raw))
		mapping := make([]int, len(raw))
		for i, v := range raw {
			actuals[i] = float64(v%50) + 1
			mapping[i] = int(v) % m
		}
		in, err := task.New(m, 1, actuals, actuals)
		if err != nil {
			return false
		}
		s, err := FromMapping(in, mapping)
		if err != nil {
			return false
		}
		return s.Verify(in, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineOf(t *testing.T) {
	in := inst(t, 3, 1, 1)
	s, _ := FromMapping(in, []int{2, 0})
	mo := s.MachineOf()
	if mo[0] != 2 || mo[1] != 0 {
		t.Fatalf("MachineOf = %v", mo)
	}
}
