package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// scheduleJSON is the wire form of a Schedule: parallel arrays keyed
// by task ID, compact for large schedules and easy to load from
// plotting scripts.
type scheduleJSON struct {
	M        int       `json:"m"`
	Machines []int     `json:"machines"`
	Starts   []float64 `json:"starts"`
	Ends     []float64 `json:"ends"`
}

// MarshalJSON implements json.Marshaler.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	w := scheduleJSON{
		M:        s.M,
		Machines: make([]int, len(s.Assignments)),
		Starts:   make([]float64, len(s.Assignments)),
		Ends:     make([]float64, len(s.Assignments)),
	}
	for j, a := range s.Assignments {
		if a.Task != j {
			return nil, fmt.Errorf("sched: assignment %d holds task %d", j, a.Task)
		}
		w.Machines[j] = a.Machine
		w.Starts[j] = a.Start
		w.Ends[j] = a.End
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var w scheduleJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Machines) != len(w.Starts) || len(w.Starts) != len(w.Ends) {
		return fmt.Errorf("sched: inconsistent array lengths %d/%d/%d",
			len(w.Machines), len(w.Starts), len(w.Ends))
	}
	s.M = w.M
	s.Assignments = make([]Assignment, len(w.Machines))
	for j := range w.Machines {
		s.Assignments[j] = Assignment{
			Task: j, Machine: w.Machines[j], Start: w.Starts[j], End: w.Ends[j],
		}
	}
	return nil
}

// WriteJSON encodes the schedule to w.
func (s *Schedule) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// ReadJSON decodes a schedule from r. Feasibility is not checked;
// call Verify with the instance and placement for that.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
