package serve

import (
	"context"
	"net/http"

	"repro/internal/algo"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/sim"
)

// boundTol absorbs floating-point rounding in the guarantee check.
const boundTol = 1e-9

// RunSchedule is the pure core of /v1/schedule: resolve the
// algorithm, execute both phases, score against the optimum bracket,
// and check the analytic guarantee. The HTTP handler is a thin wrapper
// so tests (and the batch fan-out) call exactly the code the endpoint
// serves.
func (s *Server) RunSchedule(req *ScheduleRequest) (*ScheduleResponse, error) {
	a, err := algo.New(req.Algorithm)
	if err != nil {
		return nil, err
	}
	res, err := algo.Execute(req.Instance, a)
	if err != nil {
		return nil, err
	}
	// Clients may only lower the exact-solve cap: raising it would let
	// one request buy an arbitrarily large branch-and-bound solve.
	exactLimit := s.cfg.ExactLimit
	if exactLimit <= 0 {
		exactLimit = 20 // opt.Estimate's own default, made explicit for clamping
	}
	if req.ExactLimit > 0 && req.ExactLimit < exactLimit {
		exactLimit = req.ExactLimit
	}
	optimum := opt.Estimate(req.Instance.Actuals(), req.Instance.M, exactLimit)
	resp := &ScheduleResponse{
		Algorithm: res.Algorithm,
		N:         req.Instance.N(),
		M:         req.Instance.M,
		Alpha:     req.Instance.Alpha,
		Makespan:  res.Makespan,
		Placement: res.Placement,
		Schedule:  res.Schedule,
		Optimum: OptimumInfo{
			Lower:  optimum.Lower,
			Upper:  optimum.Upper,
			Exact:  optimum.Exact,
			Method: optimum.Method,
		},
	}
	if optimum.Upper > 0 {
		resp.RatioLower = res.Makespan / optimum.Upper
	}
	if optimum.Lower > 0 {
		resp.RatioUpper = res.Makespan / optimum.Lower
	}
	if g, ok := guaranteeFor(req.Algorithm, req.Instance.M, req.Instance.Alpha); ok {
		resp.Guarantee = &g
		// makespan > g·Upper certifies a violation (C* ≤ Upper); the
		// tolerance absorbs rounding on the boundary.
		ok := res.Makespan <= g*optimum.Upper*(1+boundTol)
		resp.BoundOK = &ok
	}
	return resp, nil
}

// RunSimulate is the pure core of /v1/simulate: a traced
// semi-clairvoyant replay, with the flat event trace regrouped into
// per-machine timelines.
func (s *Server) RunSimulate(req *SimulateRequest) (*SimulateResponse, error) {
	a, err := algo.New(req.Algorithm)
	if err != nil {
		return nil, err
	}
	p, err := a.Place(req.Instance)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(req.Instance); err != nil {
		return nil, err
	}
	d, err := sim.NewListDispatcher(p, a.Order(req.Instance))
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(req.Instance, d, sim.Options{Trace: true})
	if err != nil {
		return nil, err
	}
	if err := res.Schedule.Verify(req.Instance, p); err != nil {
		return nil, err
	}
	machines := make([]MachineTrace, req.Instance.M)
	for i := range machines {
		machines[i].Machine = i
	}
	for _, ev := range res.Trace {
		machines[ev.Machine].Events = append(machines[ev.Machine].Events,
			TraceEvent{Time: ev.Time, Task: ev.Task, Kind: ev.Kind})
	}
	return &SimulateResponse{
		Algorithm: a.Name(),
		Makespan:  res.Schedule.Makespan(),
		Placement: p,
		Schedule:  res.Schedule,
		Machines:  machines,
	}, nil
}

// RunBatch is the pure core of /v1/batch: every item goes through
// RunSchedule under a bounded worker pool, results stay in input
// order, and the fan-out stops dispatching once ctx is done.
func (s *Server) RunBatch(ctx context.Context, req *BatchRequest, workers int) *BatchResponse {
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	type itemOut struct {
		done bool
		resp *ScheduleResponse
		err  error
	}
	outs, ctxErr := par.MapCtx(ctx, len(req.Requests), workers, func(i int) itemOut {
		mBatchItems.Inc()
		if ctx.Err() != nil {
			return itemOut{done: true, err: ctx.Err()}
		}
		resp, err := s.RunSchedule(&req.Requests[i])
		return itemOut{done: true, resp: resp, err: err}
	})
	resp := &BatchResponse{Results: make([]BatchItem, len(outs))}
	for i, out := range outs {
		item := BatchItem{Index: i}
		switch {
		case !out.done:
			// Never dispatched: the context expired first.
			if ctxErr == nil {
				ctxErr = context.DeadlineExceeded
			}
			item.Error = "cancelled: " + ctxErr.Error()
		case out.err != nil:
			item.Error = out.err.Error()
		default:
			item.Response = out.resp
		}
		resp.Results[i] = item
	}
	return resp
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeScheduleRequest(r.Body)
	if err != nil {
		badRequest(w, err)
		return
	}
	resp, err := s.RunSchedule(req)
	if err != nil {
		// The request was well-formed JSON but the solver pipeline
		// rejected it (unknown algorithm, k not dividing m, ...).
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeSimulateRequest(r.Body)
	if err != nil {
		badRequest(w, err)
		return
	}
	resp, err := s.RunSimulate(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeBatchRequest(r.Body)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.RunBatch(r.Context(), req, 0))
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, AlgorithmsResponse{Algorithms: algo.Names()})
}
