package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bounds"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

const validSchedule = `{"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5],"actuals":[4.4,1.8,6.6,1.1,4.5]}}`

func TestScheduleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/schedule", validSchedule)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Algorithm != "LPT-NoRestriction" || out.N != 5 || out.M != 3 {
		t.Fatalf("shape: %+v", out)
	}
	if out.Makespan <= 0 || out.Optimum.Lower <= 0 || out.Optimum.Upper < out.Optimum.Lower {
		t.Fatalf("scoring: %+v", out)
	}
	if out.Guarantee == nil || out.BoundOK == nil {
		t.Fatal("guarantee missing for lpt-norestriction")
	}
	if !*out.BoundOK {
		t.Fatalf("theorem violated?! makespan %v guarantee %v optimum %+v",
			out.Makespan, *out.Guarantee, out.Optimum)
	}
	if out.Schedule == nil || out.Placement == nil {
		t.Fatal("schedule/placement missing")
	}
}

func TestScheduleRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTasks: 4, MaxMachines: 8})
	cases := []struct {
		name, body string
		status     int
	}{
		{"invalid json", `{`, 400},
		{"trailing garbage", validSchedule + `x`, 400},
		{"unknown field", `{"algorithm":"oracle-lpt","bogus":1,"instance":{"m":1,"alpha":1,"estimates":[1]}}`, 400},
		{"missing algorithm", `{"instance":{"m":1,"alpha":1,"estimates":[1]}}`, 400},
		{"missing instance", `{"algorithm":"oracle-lpt"}`, 400},
		{"zero machines", `{"algorithm":"oracle-lpt","instance":{"m":0,"alpha":1,"estimates":[1]}}`, 400},
		{"negative estimate", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[-1]}}`, 400},
		{"NaN alpha", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":null,"estimates":[1]}}`, 400},
		{"alpha below one", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":0.5,"estimates":[1]}}`, 400},
		{"actual outside band", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1],"actuals":[9]}}`, 400},
		{"overflowing times", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1e308,1e308,1e308]}}`, 400},
		{"too many tasks", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1,1,1,1,1]}}`, 400},
		{"too many machines", `{"algorithm":"oracle-lpt","instance":{"m":9,"alpha":1,"estimates":[1]}}`, 400},
		{"unknown algorithm", `{"algorithm":"nope","instance":{"m":1,"alpha":1,"estimates":[1]}}`, 422},
		{"group does not divide m", `{"algorithm":"ls-group:3","instance":{"m":4,"alpha":1,"estimates":[1,2,3]}}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/schedule", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			var e errorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", data)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedule status %d", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[` +
		strings.Repeat("1,", 500) + `1]}}`
	resp, data := post(t, ts, "/v1/schedule", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"algorithm":"ls-group:2","instance":{"m":4,"alpha":2,"estimates":[3,1,4,1,5,9,2,6]}}`
	resp, data := post(t, ts, "/v1/simulate", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out SimulateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Machines) != 4 {
		t.Fatalf("want 4 machine traces, got %d", len(out.Machines))
	}
	// Every task must appear exactly once as a start and once as a
	// finish across the machine timelines, in non-decreasing time per
	// machine.
	starts, finishes := map[int]int{}, map[int]int{}
	for _, mt := range out.Machines {
		last := math.Inf(-1)
		for _, ev := range mt.Events {
			if ev.Time < last {
				t.Fatalf("machine %d trace not time-ordered", mt.Machine)
			}
			last = ev.Time
			switch ev.Kind {
			case "start":
				starts[ev.Task]++
			case "finish":
				finishes[ev.Task]++
			default:
				t.Fatalf("bad event kind %q", ev.Kind)
			}
		}
	}
	for j := 0; j < 8; j++ {
		if starts[j] != 1 || finishes[j] != 1 {
			t.Fatalf("task %d: %d starts, %d finishes", j, starts[j], finishes[j])
		}
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AlgorithmsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Algorithms) == 0 {
		t.Fatal("no algorithms listed")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.MaxInflight != 7 {
		t.Fatalf("health: %+v", out)
	}
}

// TestSaturatedReturns429 is the acceptance check for backpressure: a
// server whose only solver slot is occupied answers 429 immediately on
// /v1/batch (and /v1/schedule) rather than queueing.
func TestSaturatedReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	// Occupy the single slot deterministically.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	batch := `{"requests":[` + validSchedule + `]}`
	for _, path := range []string{"/v1/batch", "/v1/schedule", "/v1/simulate"} {
		body := validSchedule
		if path == "/v1/batch" {
			body = batch
		}
		resp, data := post(t, ts, path, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429: %s", path, resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: missing Retry-After", path)
		}
	}

	// Health and metrics must stay reachable while saturated.
	for _, path := range []string{"/healthz", "/metrics", "/v1/algorithms"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d while saturated", path, resp.StatusCode)
		}
	}
}

// TestPanicRecovery wires a panicking algorithm through the batch
// fan-out and checks the daemon answers 500 and keeps serving.
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Hand-crafted handler path: panic inside the instrumented stack.
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("hostile instance")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/schedule", strings.NewReader("{}")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic produced status %d", rec.Code)
	}
	// The real server is still alive afterwards.
	resp, data := post(t, ts, "/v1/schedule", validSchedule)
	if resp.StatusCode != 200 {
		t.Fatalf("server dead after panic: %d %s", resp.StatusCode, data)
	}
}

func TestGuaranteeFor(t *testing.T) {
	m, alpha := 12, 1.5
	cases := []struct {
		name string
		want float64
		ok   bool
	}{
		{"lpt-nochoice", bounds.LPTNoChoice(m, alpha), true},
		{"lpt-norestriction", bounds.LPTNoRestriction(m, alpha), true},
		{"ls-norestriction", bounds.GrahamLS(m), true},
		{"oracle-lpt", bounds.LPTOffline(m), true},
		{"ls-group:3", bounds.LSGroup(m, 3, alpha), true},
		{"lpt-group:4", bounds.LSGroup(m, 4, alpha), true},
		{"ls-group-balanced:6", bounds.LSGroup(m, 6, alpha), true},
		{"ls-group-balanced:5", 0, false}, // 5 does not divide 12
		{"ls-group:99", 0, false},         // k > m
		{"ls-nochoice", 0, false},
		{"tail:2", 0, false},
		{"unknown", 0, false},
	}
	for _, tc := range cases {
		got, ok := guaranteeFor(tc.name, m, alpha)
		if ok != tc.ok || (ok && math.Abs(got-tc.want) > 1e-12) {
			t.Errorf("guaranteeFor(%q) = %v,%v want %v,%v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

// TestRequestTimeoutCancelsBatch gives the batch a deadline far too
// small for its items and checks the response arrives with cancelled
// items instead of hanging.
func TestRequestTimeoutCancelsBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond, Workers: 2})
	var items []string
	for i := 0; i < 16; i++ {
		items = append(items, validSchedule)
	}
	resp, data := post(t, ts, "/v1/batch", `{"requests":[`+strings.Join(items, ",")+`]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 16 {
		t.Fatalf("%d results", len(out.Results))
	}
	cancelled := 0
	for _, item := range out.Results {
		if item.Error != "" {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("nanosecond deadline cancelled nothing")
	}
}
