package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// randomInstance draws a perturbed instance from the workload
// generators, so the property tests cover realistic shapes.
func randomInstance(t *testing.T, seed uint64, n, m int, alpha float64) *task.Instance {
	t.Helper()
	in, err := workload.New(workload.Spec{Name: "iterative", N: n, M: m, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed+1))
	if err := in.Validate(true); err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
	return in
}

// TestPropertyInstanceRoundTrip: the JSON wire form of an instance is
// lossless — decode(encode(in)) reproduces every field bit-for-bit
// (encoding/json emits shortest round-tripping float literals).
func TestPropertyInstanceRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		in := randomInstance(t, seed, int(10+seed%40), int(2+seed%7), 1+float64(seed%4)/2)
		if seed%3 == 0 {
			// Exercise the sizes path too.
			sizes := make([]float64, in.N())
			for i := range sizes {
				sizes[i] = float64(i%5) / 2
			}
			if err := in.SetSizes(sizes); err != nil {
				t.Fatal(err)
			}
		}
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var again task.Instance
		if err := json.Unmarshal(data, &again); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if again.M != in.M || again.Alpha != in.Alpha || again.N() != in.N() {
			t.Fatalf("seed %d: shape changed", seed)
		}
		for j := range in.Tasks {
			a, b := in.Tasks[j], again.Tasks[j]
			if a != b {
				t.Fatalf("seed %d task %d: %+v != %+v", seed, j, a, b)
			}
		}
		// Second encode must be byte-identical (canonical form).
		data2, err := json.Marshal(&again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seed %d: re-encode differs:\n%s\n%s", seed, data, data2)
		}
	}
}

// TestPropertyScheduleMatchesDirectExecute: the HTTP response of
// /v1/schedule is byte-for-byte the JSON encoding of RunSchedule on
// the same request, and its makespan equals a direct algo.Execute.
func TestPropertyScheduleMatchesDirectExecute(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	algos := []string{"lpt-nochoice", "ls-nochoice", "lpt-norestriction",
		"ls-norestriction", "oracle-lpt", "ls-group:2", "lpt-group:2", "tail:1"}
	// n > 60 keeps opt.Estimate on its cheap bounds path: these tests
	// pin the serving layer, not the optimum solvers.
	for seed := uint64(1); seed <= 8; seed++ {
		in := randomInstance(t, seed, 64, 4, 1.5)
		name := algos[int(seed)%len(algos)]
		req := &ScheduleRequest{Algorithm: name, Instance: in}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}

		resp, got := post(t, ts, "/v1/schedule", string(body))
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, got)
		}

		want, err := s.RunSchedule(req)
		if err != nil {
			t.Fatalf("%s: direct run: %v", name, err)
		}
		var wantBuf bytes.Buffer
		if err := json.NewEncoder(&wantBuf).Encode(want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBuf.Bytes()) {
			t.Fatalf("%s seed %d: HTTP response differs from direct execution:\n%s\n%s",
				name, seed, got, wantBuf.Bytes())
		}

		a, err := algo.New(name)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := algo.Execute(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if want.Makespan != direct.Makespan {
			t.Fatalf("%s seed %d: makespan %v != direct %v", name, seed, want.Makespan, direct.Makespan)
		}
	}
}

// TestPropertyBatchOrderInvariant: batch results arrive in input
// order with the same bytes for every worker count, including 1.
func TestPropertyBatchOrderInvariant(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	const k = 12
	req := &BatchRequest{}
	for i := 0; i < k; i++ {
		in := randomInstance(t, uint64(100+i), 10+i, 2+i%3, 1.25)
		req.Requests = append(req.Requests, ScheduleRequest{
			Algorithm: []string{"lpt-norestriction", "ls-group:2", "oracle-lpt"}[i%3],
			Instance:  in,
		})
	}
	// Make the batch deliberately heterogeneous: one invalid algorithm
	// mid-batch must produce an in-place error, not shift its
	// neighbours.
	req.Requests[5].Algorithm = "ls-group:7" // 7 never divides 3..4 machines

	var reference []byte
	for _, workers := range []int{1, 2, 3, 8, 32} {
		out := s.RunBatch(context.Background(), req, workers)
		if len(out.Results) != k {
			t.Fatalf("workers=%d: %d results", workers, len(out.Results))
		}
		for i, item := range out.Results {
			if item.Index != i {
				t.Fatalf("workers=%d: result %d has index %d", workers, i, item.Index)
			}
		}
		if out.Results[5].Error == "" || out.Results[5].Response != nil {
			t.Fatalf("workers=%d: item 5 should have failed in place", workers)
		}
		data, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = data
		} else if !bytes.Equal(reference, data) {
			t.Fatalf("workers=%d: batch output differs from workers=1", workers)
		}
	}
}

// TestPropertyScheduleMakespanBounds: for every served schedule,
// max_j p_j ≤ makespan ≤ Σ_j p_j — a metamorphic sanity relation that
// needs no reference implementation.
func TestPropertyScheduleMakespanBounds(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	for seed := uint64(1); seed <= 10; seed++ {
		in := randomInstance(t, seed*7, 70, 5, 2)
		resp, err := s.RunSchedule(&ScheduleRequest{Algorithm: "ls-group:5", Instance: in})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := in.MaxActual(), in.TotalActual()
		if resp.Makespan < lo-1e-9 || resp.Makespan > hi+1e-9 {
			t.Fatalf("seed %d: makespan %v outside [%v, %v]", seed, resp.Makespan, lo, hi)
		}
		if resp.RatioLower > resp.RatioUpper+1e-12 {
			t.Fatalf("seed %d: ratio bracket inverted: %v > %v", seed, resp.RatioLower, resp.RatioUpper)
		}
	}
}

// TestPropertySimulateAgreesWithSchedule: /v1/simulate and
// /v1/schedule must execute the same schedule for the same input —
// the trace is extra observability, never a different computation.
func TestPropertySimulateAgreesWithSchedule(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	for seed := uint64(1); seed <= 6; seed++ {
		in := randomInstance(t, seed*13, 66, 4, 1.5)
		schedResp, err := s.RunSchedule(&ScheduleRequest{Algorithm: "lpt-norestriction", Instance: in})
		if err != nil {
			t.Fatal(err)
		}
		simResp, err := s.RunSimulate(&SimulateRequest{Algorithm: "lpt-norestriction", Instance: in})
		if err != nil {
			t.Fatal(err)
		}
		if schedResp.Makespan != simResp.Makespan {
			t.Fatalf("seed %d: makespans differ: %v vs %v", seed, schedResp.Makespan, simResp.Makespan)
		}
		a, _ := json.Marshal(schedResp.Schedule)
		b, _ := json.Marshal(simResp.Schedule)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: schedules differ", seed)
		}
	}
}

// TestPropertyWireFloatsSurviveHTTP pushes awkward float shapes
// (denormals, very large magnitudes) through the full HTTP path and
// checks the echoed schedule still verifies locally.
func TestPropertyWireFloatsSurviveHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	est := []float64{math.SmallestNonzeroFloat64 * 1e10, 1e-300, 1e300, 1, 3.141592653589793}
	parts := make([]string, len(est))
	for i, e := range est {
		parts[i] = fmt.Sprintf("%g", e)
	}
	body := fmt.Sprintf(`{"algorithm":"ls-norestriction","instance":{"m":2,"alpha":1,"estimates":[%s]}}`,
		strings.Join(parts, ","))
	resp, data := post(t, ts, "/v1/schedule", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	in, err := task.NewEstimated(2, 1, est)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Schedule.Verify(in, out.Placement); err != nil {
		t.Fatalf("round-tripped schedule fails verification: %v", err)
	}
	_ = http.StatusOK
}
