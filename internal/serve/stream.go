// Streaming surface: the open-system counterparts of the batch
// endpoints. /v1/stream accepts newline-delimited JSON — one schedule
// request per line — and answers with one NDJSON result line per item,
// flushed as soon as it is computed, so a client submitting an open
// stream of work sees results while later items are still in flight
// (or not yet written). /v1/simulate-open replays one instance under
// an arrival process with replica cancellation and reports the
// response-time distribution, the metric the open-system replication
// literature argues for instead of makespan.

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/algo"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// ArrivalSpec mirrors workload.ArrivalSpec on the wire: an arrival
// process name plus its parameters. "batch" (everything at t=0) needs
// none; "poisson" and "mmpp" need a rate; "trace" carries explicit
// times.
type ArrivalSpec struct {
	Process       string    `json:"process"`
	Rate          float64   `json:"rate,omitempty"`
	Seed          uint64    `json:"seed,omitempty"`
	BurstFactor   float64   `json:"burst_factor,omitempty"`
	BurstFraction float64   `json:"burst_fraction,omitempty"`
	Times         []float64 `json:"times,omitempty"`
}

func (a ArrivalSpec) toWorkload() workload.ArrivalSpec {
	return workload.ArrivalSpec{
		Process:       a.Process,
		Rate:          a.Rate,
		Seed:          a.Seed,
		BurstFactor:   a.BurstFactor,
		BurstFraction: a.BurstFraction,
		Times:         a.Times,
	}
}

// SimulateOpenRequest asks for one open-system replay.
type SimulateOpenRequest struct {
	Algorithm string         `json:"algorithm"`
	Instance  *task.Instance `json:"instance"`
	Arrivals  ArrivalSpec    `json:"arrivals"`
	// Policy is "cancel-on-start" (default) or "cancel-on-completion".
	Policy string `json:"policy,omitempty"`
	// CancelCost is the per-cancellation machine-time overhead charged
	// under cancel-on-completion.
	CancelCost float64 `json:"cancel_cost,omitempty"`
}

// ResponseStats summarizes a response-time distribution on the wire.
type ResponseStats struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// SimulateOpenResponse reports one open-system replay.
type SimulateOpenResponse struct {
	Algorithm string `json:"algorithm"`
	Policy    string `json:"policy"`
	// End is the last instant any machine is busy.
	End           float64       `json:"end"`
	ResponseStats ResponseStats `json:"response_stats"`
	// Responses[j] is task j's completion − arrival time.
	Responses         []float64       `json:"responses"`
	CancelledReplicas int             `json:"cancelled_replicas"`
	WastedTime        float64         `json:"wasted_time"`
	Schedule          *sched.Schedule `json:"schedule"`
}

// StreamItem is one NDJSON result line of /v1/stream, wire-compatible
// with BatchItem. Exactly one of Response and Error is set; Index is
// the zero-based input line position (blank lines not counted).
type StreamItem struct {
	Index    int               `json:"index"`
	Response *ScheduleResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// RunSimulateOpen is the pure core of /v1/simulate-open: generate (or
// validate) the arrival stream, run the open-system simulator with the
// requested cancellation policy, and summarize the response times.
func (s *Server) RunSimulateOpen(req *SimulateOpenRequest) (*SimulateOpenResponse, error) {
	a, err := algo.New(req.Algorithm)
	if err != nil {
		return nil, err
	}
	policy, err := sim.ParseCancelPolicy(req.Policy)
	if err != nil {
		return nil, err
	}
	arrive, err := workload.Arrivals(req.Instance.N(), req.Arrivals.toWorkload())
	if err != nil {
		return nil, err
	}
	p, err := a.Place(req.Instance)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(req.Instance); err != nil {
		return nil, err
	}
	out, err := sim.RunOpen(req.Instance, p, a.Order(req.Instance), arrive, sim.OpenOptions{
		Policy:     policy,
		CancelCost: req.CancelCost,
	})
	if err != nil {
		return nil, err
	}
	sum := stats.Summarize(out.Responses)
	return &SimulateOpenResponse{
		Algorithm: a.Name(),
		Policy:    policy.String(),
		End:       out.End,
		ResponseStats: ResponseStats{
			N:    sum.N,
			Mean: sum.Mean,
			P50:  sum.P50,
			P90:  sum.P90,
			P99:  sum.P99,
			P999: sum.P999,
			Max:  sum.Max,
		},
		Responses:         out.Responses,
		CancelledReplicas: out.CancelledReplicas,
		WastedTime:        out.WastedTime,
		Schedule:          out.Schedule,
	}, nil
}

// decodeSimulateOpenRequest decodes and validates a /v1/simulate-open
// body. The arrival spec itself is validated by workload.Arrivals at
// run time (the process registry owns those rules), so only the parts
// every endpoint checks are enforced here.
func (s *Server) decodeSimulateOpenRequest(r *http.Request) (*SimulateOpenRequest, error) {
	var req SimulateOpenRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		return nil, err
	}
	if req.Algorithm == "" {
		return nil, fmt.Errorf("missing algorithm")
	}
	if err := s.checkInstance(req.Instance); err != nil {
		return nil, err
	}
	return &req, nil
}

func (s *Server) handleSimulateOpen(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeSimulateOpenRequest(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	resp, err := s.RunSimulateOpen(req)
	if err != nil {
		// Well-formed JSON rejected by the pipeline: unknown algorithm,
		// bad arrival parameters, bad policy, NaN cancel cost, ...
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStream serves POST /v1/stream: newline-delimited JSON in, one
// result line out per item, in input order, flushed per item. Items
// are processed sequentially in the request goroutine, so the body is
// consumed at processing speed — the connection itself is the
// backpressure, and a slow client cannot force unbounded buffering.
// Per-item failures (bad JSON, bad instance, solver rejection) are
// reported on that item's line and the stream continues; only a
// transport-level read error, the item cap, or the deadline end it.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// The stream reads the request body while writing response lines;
	// without full-duplex mode the HTTP/1.x server closes the unread
	// body at the first response write, truncating any stream longer
	// than the server's read-ahead. Errors mean the transport cannot do
	// full-duplex; the short-stream behavior is unchanged then.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sc := bufio.NewScanner(r.Body)
	// One line must hold a whole request, so the line cap is the body
	// cap (MaxBytesReader has already bounded the total).
	sc.Buffer(make([]byte, 0, 64<<10), int(s.cfg.MaxBodyBytes))
	idx := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if idx >= s.cfg.MaxStreamItems {
			writeNDJSON(w, flusher, StreamItem{Index: idx,
				Error: fmt.Sprintf("stream exceeds %d items", s.cfg.MaxStreamItems)})
			return
		}
		if err := r.Context().Err(); err != nil {
			writeNDJSON(w, flusher, StreamItem{Index: idx, Error: "cancelled: " + err.Error()})
			return
		}
		mStreamItem.Inc()
		item := StreamItem{Index: idx}
		var req ScheduleRequest
		if err := DecodeStrict(bytes.NewReader(line), &req); err != nil {
			item.Error = err.Error()
		} else if err := s.validateScheduleRequest(&req); err != nil {
			item.Error = err.Error()
		} else if resp, err := s.RunSchedule(&req); err != nil {
			item.Error = err.Error()
		} else {
			item.Response = resp
		}
		writeNDJSON(w, flusher, item)
		idx++
	}
	if err := sc.Err(); err != nil {
		writeNDJSON(w, flusher, StreamItem{Index: idx, Error: "stream read: " + err.Error()})
	}
}

// writeNDJSON emits one result line through the pooled-buffer path and
// flushes it to the client, so each line is observable before the next
// item is computed.
func writeNDJSON(w http.ResponseWriter, flusher http.Flusher, v any) {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	_ = json.NewEncoder(buf).Encode(v)
	_, _ = w.Write(buf.Bytes())
	if flusher != nil {
		flusher.Flush()
	}
}
