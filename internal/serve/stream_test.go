package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postNDJSON submits body to path and returns the decoded result
// lines.
func postNDJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []StreamItem) {
	t.Helper()
	resp, data := post(t, ts, path, body)
	var items []StreamItem
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var item StreamItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		items = append(items, item)
	}
	return resp, items
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	lines := []string{
		validSchedule,
		`{"algorithm":"nope","instance":{"m":1,"alpha":1,"estimates":[1]}}`, // solver rejection
		``, // blank: skipped, not counted
		`{not json}`,
		`{"algorithm":"oracle-lpt","instance":{"m":2,"alpha":1,"estimates":[3,1,2]}}`,
	}
	resp, items := postNDJSON(t, ts, "/v1/stream", strings.Join(lines, "\n")+"\n")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4: %+v", len(items), items)
	}
	for i, item := range items {
		if item.Index != i {
			t.Fatalf("item %d has index %d (out of order)", i, item.Index)
		}
	}
	if items[0].Response == nil || items[0].Response.Algorithm != "LPT-NoRestriction" {
		t.Fatalf("item 0: %+v", items[0])
	}
	if items[1].Error == "" || items[1].Response != nil {
		t.Fatalf("item 1 should be a solver rejection: %+v", items[1])
	}
	if items[2].Error == "" || items[2].Response != nil {
		t.Fatalf("item 2 should be a decode error: %+v", items[2])
	}
	if items[3].Response == nil || items[3].Response.Makespan <= 0 {
		t.Fatalf("item 3: %+v", items[3])
	}
}

// TestStreamMatchesBatch pins the metamorphic contract: the same items
// submitted as one batch and as a stream produce identical responses,
// item for item.
func TestStreamMatchesBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqs := []string{
		validSchedule,
		`{"algorithm":"oracle-lpt","instance":{"m":2,"alpha":1,"estimates":[3,1,2]}}`,
		`{"algorithm":"ls-group:2","instance":{"m":4,"alpha":2,"estimates":[5,3,9,1,7,5,2,8]}}`,
	}
	_, streamItems := postNDJSON(t, ts, "/v1/stream", strings.Join(reqs, "\n"))

	batchBody := `{"requests":[` + strings.Join(reqs, ",") + `]}`
	resp, data := post(t, ts, "/v1/batch", batchBody)
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var batch BatchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(streamItems) != len(batch.Results) {
		t.Fatalf("stream %d items vs batch %d", len(streamItems), len(batch.Results))
	}
	for i := range streamItems {
		sj, _ := json.Marshal(streamItems[i].Response)
		bj, _ := json.Marshal(batch.Results[i].Response)
		if string(sj) != string(bj) {
			t.Fatalf("item %d diverges:\nstream %s\nbatch  %s", i, sj, bj)
		}
	}
}

func TestStreamItemCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStreamItems: 2})
	body := strings.Repeat(validSchedule+"\n", 4)
	_, items := postNDJSON(t, ts, "/v1/stream", body)
	if len(items) != 3 {
		t.Fatalf("got %d items, want 2 results + 1 cap error: %+v", len(items), items)
	}
	if items[0].Response == nil || items[1].Response == nil {
		t.Fatalf("capped stream lost valid items: %+v", items)
	}
	if !strings.Contains(items[2].Error, "exceeds 2 items") {
		t.Fatalf("cap error missing: %+v", items[2])
	}
}

const validSimulateOpen = `{"algorithm":"lpt-norestriction",` +
	`"instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5],"actuals":[4.4,1.8,6.6,1.1,4.5]},` +
	`"arrivals":{"process":"poisson","rate":2,"seed":7}}`

func TestSimulateOpenEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/simulate-open", validSimulateOpen)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out SimulateOpenResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "LPT-NoRestriction" || out.Policy != "cancel-on-start" {
		t.Fatalf("shape: %+v", out)
	}
	if out.ResponseStats.N != 5 || len(out.Responses) != 5 {
		t.Fatalf("response count: %+v", out.ResponseStats)
	}
	if out.ResponseStats.Mean <= 0 || out.ResponseStats.P999 < out.ResponseStats.P50 ||
		out.ResponseStats.Max < out.ResponseStats.P999 {
		t.Fatalf("stats not a distribution: %+v", out.ResponseStats)
	}
	if out.End <= 0 || out.Schedule == nil {
		t.Fatalf("missing schedule/end: %+v", out)
	}
	if out.CancelledReplicas != 0 || out.WastedTime != 0 {
		t.Fatalf("cancel-on-start must not waste: %+v", out)
	}
}

// TestSimulateOpenPolicyDivergence exercises the acceptance criterion
// on the wire: with replicate-everywhere placement, cancel-on-completion
// races replicas (cancellations and waste observable in the response)
// while cancel-on-start stays waste-free on the same input.
func TestSimulateOpenPolicyDivergence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const base = `{"algorithm":"lpt-norestriction",` +
		`"instance":{"m":4,"alpha":1.5,"estimates":[4,2,6,1,5,3,7,2],"actuals":[4.4,1.8,6.6,1.1,4.5,3.3,7.7,1.8]},` +
		`"arrivals":{"process":"batch"},"cancel_cost":0.25`
	var outs [2]SimulateOpenResponse
	for i, policy := range []string{"cancel-on-start", "cancel-on-completion"} {
		resp, data := post(t, ts, "/v1/simulate-open", base+`,"policy":"`+policy+`"}`)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", policy, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if outs[0].CancelledReplicas != 0 || outs[0].WastedTime != 0 {
		t.Fatalf("cancel-on-start wasted: %+v", outs[0])
	}
	if outs[1].CancelledReplicas == 0 || outs[1].WastedTime <= 0 {
		t.Fatalf("cancel-on-completion never raced: %+v", outs[1])
	}
}

func TestSimulateOpenRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"invalid json", `{`, 400},
		{"missing algorithm", `{"instance":{"m":1,"alpha":1,"estimates":[1]},"arrivals":{"process":"batch"}}`, 400},
		{"missing instance", `{"algorithm":"oracle-lpt","arrivals":{"process":"batch"}}`, 400},
		{"unknown algorithm", `{"algorithm":"nope","instance":{"m":1,"alpha":1,"estimates":[1]},"arrivals":{"process":"batch"}}`, 422},
		{"unknown process", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1]},"arrivals":{"process":"nope"}}`, 422},
		{"poisson without rate", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1]},"arrivals":{"process":"poisson"}}`, 422},
		{"unknown policy", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1]},"arrivals":{"process":"batch"},"policy":"nope"}`, 422},
		{"negative cancel cost", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1]},"arrivals":{"process":"batch"},"cancel_cost":-1}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/simulate-open", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			var e errorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", data)
			}
		})
	}
}

// TestStreamLongBodyFullDuplex regression-tests stream truncation: the
// handler writes result lines while the client is still sending, so
// without full-duplex mode the HTTP/1.x server closes the unread
// request body at the first response write and any stream longer than
// the server's read-ahead silently loses its tail.
func TestStreamLongBodyFullDuplex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 300
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(validSchedule)
		sb.WriteByte('\n')
	}
	resp, items := postNDJSON(t, ts, "/v1/stream", sb.String())
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(items) != n {
		t.Fatalf("stream truncated: %d result lines for %d inputs", len(items), n)
	}
	for i, item := range items {
		if item.Index != i || item.Error != "" {
			t.Fatalf("item %d: %+v", i, item)
		}
	}
}
