// Package serve exposes the algorithm library as a long-running
// HTTP/JSON scheduling service (the daemon behind cmd/schedd). It is
// the serving surface over the paper's two-phase pipeline: clients
// submit problem instances and receive placements, executed schedules,
// makespans, and analytic-bound checks.
//
// Endpoints:
//
//	POST /v1/schedule       run one named algorithm on one instance
//	POST /v1/simulate       semi-clairvoyant replay with per-machine trace
//	POST /v1/simulate-open  open-system replay: arrivals over time,
//	                        replica cancellation, response-time stats
//	POST /v1/batch          many schedule requests, bounded fan-out
//	POST /v1/stream         NDJSON: one schedule request per line in, one
//	                        result line out per item, flushed as computed
//	GET  /v1/algorithms     the algorithm registry
//	GET  /healthz           liveness and saturation
//	GET  /metrics           internal/obs counters, gauges and timers
//
// The server is built to take hostile, concurrent traffic without
// falling over:
//
//   - every request body is capped (http.MaxBytesReader) and decoded
//     strictly (unknown fields and trailing garbage rejected);
//   - instances are validated — NaN/Inf/negative/overflowing times,
//     bad α, bad m, and oversized shapes are rejected with a 400
//     before any solver runs;
//   - solver-heavy endpoints acquire a slot from a fixed-size
//     semaphore; a saturated server answers 429 with Retry-After
//     instead of queueing unboundedly;
//   - each request runs under a context deadline, and batch fan-outs
//     (internal/par.MapCtx) stop dispatching items the moment the
//     deadline expires;
//   - a recovery middleware turns handler panics into 500s so one
//     hostile instance cannot kill the daemon;
//   - graceful shutdown is plain http.Server.Shutdown — handlers hold
//     no state beyond the in-flight request.
package serve

import (
	"net/http"
	"runtime"
	"time"

	"repro/internal/obs"
)

// Service metrics. Counters are monotone (the stress tests assert
// this); the inflight gauge tracks occupied semaphore slots.
var (
	mReqTotal   = obs.GetCounter("serve.requests_total")
	mResp2xx    = obs.GetCounter("serve.responses_2xx")
	mResp4xx    = obs.GetCounter("serve.responses_4xx")
	mResp5xx    = obs.GetCounter("serve.responses_5xx")
	mRejected   = obs.GetCounter("serve.rejected_429")
	mPanics     = obs.GetCounter("serve.panics_recovered")
	mBatchItems = obs.GetCounter("serve.batch_items")
	mStreamItem = obs.GetCounter("serve.stream_items")
	mInflight   = obs.GetGauge("serve.inflight")
	tSchedule   = obs.GetTimer("serve.schedule")
	tSimulate   = obs.GetTimer("serve.simulate")
	tBatch      = obs.GetTimer("serve.batch")
	tStream     = obs.GetTimer("serve.stream")
	tSimOpen    = obs.GetTimer("serve.simulate_open")
)

// Config bounds the server. The zero value selects the defaults
// documented on each field.
type Config struct {
	// MaxInflight is the semaphore size shared by the solver-heavy
	// endpoints (/v1/schedule, /v1/simulate, /v1/batch). Requests
	// beyond it receive 429. Default: 2·GOMAXPROCS.
	MaxInflight int
	// Workers bounds the fan-out of one /v1/batch request.
	// Default: GOMAXPROCS.
	Workers int
	// MaxTasks caps the task count of a submitted instance.
	// Default: 100000.
	MaxTasks int
	// MaxMachines caps the machine count of a submitted instance (the
	// simulator allocates per-machine state). Default: 10000.
	MaxMachines int
	// MaxBatch caps the number of items in one /v1/batch request.
	// Default: 256.
	MaxBatch int
	// MaxBodyBytes caps the request body size. Default: 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout is the per-request context deadline.
	// Default: 30s.
	RequestTimeout time.Duration
	// MaxStreamItems caps the items of one /v1/stream request; the
	// stream is cut off with an error line beyond it. Default: 10000.
	MaxStreamItems int
	// StreamTimeout is the context deadline of one /v1/stream request.
	// Streams outlive ordinary requests by design (the client may trickle
	// items), so they get their own, longer budget. Default: 5m.
	StreamTimeout time.Duration
	// ExactLimit is passed to opt.Estimate: instances up to this many
	// tasks are scored against the exact optimum. 0 selects the opt
	// default (20). Keep it small — it bounds per-request CPU.
	ExactLimit int
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxTasks <= 0 {
		c.MaxTasks = 100000
	}
	if c.MaxMachines <= 0 {
		c.MaxMachines = 10000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxStreamItems <= 0 {
		c.MaxStreamItems = 10000
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 5 * time.Minute
	}
	return c
}

// Server is the scheduling service. Create one with New and mount
// Handler on an http.Server.
type Server struct {
	cfg   Config
	sem   chan struct{}
	start time.Time
}

// New returns a Server with the given configuration (zero fields get
// defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		start: time.Now(),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the service's HTTP handler. It is safe for
// concurrent use and holds no per-request state outside the request
// goroutine, so graceful shutdown is http.Server.Shutdown.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler())
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("POST /v1/schedule", s.gated(tSchedule, s.handleSchedule))
	mux.HandleFunc("POST /v1/simulate", s.gated(tSimulate, s.handleSimulate))
	mux.HandleFunc("POST /v1/simulate-open", s.gated(tSimOpen, s.handleSimulateOpen))
	mux.HandleFunc("POST /v1/batch", s.gated(tBatch, s.handleBatch))
	mux.HandleFunc("POST /v1/stream", s.gatedFor(tStream, s.cfg.StreamTimeout, s.handleStream))
	return s.instrument(mux)
}

// instrument is the outermost middleware: request counting, panic
// recovery, and the body-size cap. It wraps the ResponseWriter so the
// response class counters stay accurate even for handlers that never
// call WriteHeader explicitly.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mReqTotal.Inc()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				mPanics.Inc()
				// One hostile instance must not kill the daemon: swallow
				// the panic and answer 500 if the handler had not begun
				// responding.
				if !sw.wrote {
					http.Error(sw, "internal error", http.StatusInternalServerError)
				}
			}
			switch {
			case sw.status() >= 500:
				mResp5xx.Inc()
			case sw.status() == http.StatusTooManyRequests:
				mRejected.Inc()
				mResp4xx.Inc()
			case sw.status() >= 400:
				mResp4xx.Inc()
			default:
				mResp2xx.Inc()
			}
		}()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		next.ServeHTTP(sw, r)
	})
}

// gated wraps a solver-heavy handler with the shared backpressure
// semaphore, the per-request deadline, and a latency timer.
func (s *Server) gated(timer *obs.Timer, h http.HandlerFunc) http.HandlerFunc {
	return s.gatedFor(timer, s.cfg.RequestTimeout, h)
}

// gatedFor is gated with an explicit deadline; /v1/stream uses it to
// run under the longer StreamTimeout while holding one ordinary
// semaphore slot for the whole stream.
func (s *Server) gatedFor(timer *obs.Timer, timeout time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			mInflight.Inc()
			defer func() {
				mInflight.Dec()
				<-s.sem
			}()
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server saturated: all solver slots busy")
			return
		}
		defer timer.Start()()
		ctx, cancel := contextWithTimeout(r, timeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// statusWriter records the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap lets http.NewResponseController reach the underlying
// ResponseWriter's extension methods (flushing, deadlines, full-duplex
// mode) through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if !w.wrote {
		// Nothing written: ServeMux's 404/405 paths always write, so
		// this is an empty 200 (e.g. a HEAD-like handler).
		return http.StatusOK
	}
	return w.code
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Inflight:      mInflight.Load(),
		MaxInflight:   s.cfg.MaxInflight,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}
