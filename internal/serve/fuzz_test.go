package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeInstance fuzzes the single entry point every request body
// passes through. Invariants:
//
//   - no input panics the decoder;
//   - anything accepted is fully validated: non-nil instance within the
//     configured shape limits, Validate(true)-clean, named algorithm;
//   - acceptance is stable: re-encoding an accepted request and
//     decoding it again must succeed and reproduce the instance.
//
// Together these guarantee the handlers only ever see sanitized
// requests, which is what lets the solver layer stay assertion-free.
func FuzzDecodeInstance(f *testing.F) {
	f.Add([]byte(`{"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5]}}`))
	f.Add([]byte(`{"algorithm":"ls-group:2","instance":{"m":4,"alpha":2,"estimates":[1,2,3],"actuals":[2,1,6]},"exact_limit":5}`))
	f.Add([]byte(`{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[1e308]}}`))
	f.Add([]byte(`{"algorithm":"","instance":{"m":1,"alpha":1,"estimates":[1]}}`))
	f.Add([]byte(`{"algorithm":"x","instance":{"m":0,"alpha":0,"estimates":[-1]}}`))
	f.Add([]byte(`{"algorithm":"x","instance":{"m":1,"alpha":1,"estimates":[1]}}trailing`))
	f.Add([]byte(`{"algorithm":"x","unknown_field":1}`))
	f.Add([]byte(`{`))
	// Placement-bearing payloads: cluster-level fields must bounce off
	// the strict decoder, never leak into a schedule request.
	f.Add([]byte(`{"algorithm":"lpt-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[4,2,6,1,5]},"placement":{"strategy":"group:2"}}`))
	f.Add([]byte(`{"algorithm":"oracle-lpt","instance":{"m":2,"alpha":1,"estimates":[1,2]},"placement":{"replicas":[[0,1],[1]]}}`))
	f.Add([]byte(`{"algorithm":"sabo","instance":{"m":4,"alpha":1.5,"estimates":[4,2,6,1],"sizes":[2,8,1,3]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(Config{MaxTasks: 256, MaxMachines: 64})
		req, err := s.decodeScheduleRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		in := req.Instance
		if in == nil {
			t.Fatalf("accepted request with nil instance: %s", data)
		}
		if req.Algorithm == "" {
			t.Fatalf("accepted request with empty algorithm: %s", data)
		}
		if in.N() > 256 || in.M > 64 {
			t.Fatalf("accepted instance beyond limits (n=%d m=%d): %s", in.N(), in.M, data)
		}
		if err := in.Validate(true); err != nil {
			t.Fatalf("accepted invalid instance: %v\ninput: %s", err, data)
		}
		// Stability: the canonical re-encoding must decode to the same
		// request.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		again, err := s.decodeScheduleRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanonical: %s\noriginal: %s", err, enc, data)
		}
		if again.Algorithm != req.Algorithm || again.Instance.N() != in.N() ||
			again.Instance.M != in.M || again.Instance.Alpha != in.Alpha {
			t.Fatalf("round trip changed request shape: %s", data)
		}
		for j := range in.Tasks {
			if in.Tasks[j] != again.Instance.Tasks[j] {
				t.Fatalf("round trip changed task %d: %+v != %+v", j, in.Tasks[j], again.Instance.Tasks[j])
			}
		}
	})
}
