package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStressConcurrentTraffic is the service's long-running exercise
// regime in miniature: a real loopback listener, 32 goroutines firing
// mixed valid/invalid/oversized payloads at /v1/schedule and
// /v1/batch, then a graceful shutdown. It asserts
//
//   - no dropped responses: every request gets an HTTP status;
//   - only expected statuses appear (200/400/405/413/422/429);
//   - obs counters are monotone and account for every request;
//   - Shutdown drains cleanly under load.
//
// Run it under -race (make stress / CI) to sweep the handler stack,
// the semaphore, the batch fan-out, and the metrics for data races.
func TestStressConcurrentTraffic(t *testing.T) {
	const (
		goroutines  = 32
		perWorker   = 12
		maxBody     = 64 << 10
		maxInflight = 4
	)
	s := New(Config{
		MaxInflight:  maxInflight,
		Workers:      2,
		MaxBodyBytes: maxBody,
		MaxTasks:     2000,
	})
	hs := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Counter snapshot before the storm; deltas are asserted after.
	before := map[string]int64{}
	for _, st := range obs.Snapshot() {
		if !st.IsTimer && !st.IsGauge {
			before[st.Name] = st.Value
		}
	}

	oversized := `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[` +
		strings.Repeat("1,", maxBody/2) + `1]}}`
	batchBody := `{"requests":[` + strings.Join([]string{
		validSchedule, validSchedule, validSchedule,
	}, ",") + `]}`
	type shot struct {
		method, path, body string
	}
	payloads := []shot{
		{"POST", "/v1/schedule", validSchedule},
		{"POST", "/v1/schedule", `{"algorithm":"lpt-nochoice","instance":{"m":2,"alpha":2,"estimates":[5,1,4,2,3,6,2,2]}}`},
		{"POST", "/v1/batch", batchBody},
		{"POST", "/v1/schedule", `{broken json`},
		{"POST", "/v1/schedule", `{"algorithm":"oracle-lpt","instance":{"m":1,"alpha":1,"estimates":[-5]}}`},
		{"POST", "/v1/schedule", `{"algorithm":"who-knows","instance":{"m":1,"alpha":1,"estimates":[1]}}`},
		{"GET", "/v1/schedule", ""},
		{"POST", "/v1/schedule", oversized},
		{"POST", "/v1/simulate", `{"algorithm":"ls-norestriction","instance":{"m":3,"alpha":1.5,"estimates":[2,4,6,8,1,3,5]}}`},
		{"GET", "/healthz", ""},
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var sent, got atomic.Int64
	statuses := make([]map[int]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		statuses[g] = map[int]int{}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				p := payloads[(g+k)%len(payloads)]
				sent.Add(1)
				req, err := http.NewRequest(p.method, base+p.path, strings.NewReader(p.body))
				if err != nil {
					t.Errorf("build request: %v", err)
					continue
				}
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("worker %d: dropped response: %v", g, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				got.Add(1)
				statuses[g][resp.StatusCode]++
			}
		}(g)
	}
	wg.Wait()

	if sent.Load() != got.Load() {
		t.Fatalf("dropped responses: sent %d, answered %d", sent.Load(), got.Load())
	}
	total := map[int]int{}
	for _, m := range statuses {
		for code, n := range m {
			total[code] += n
		}
	}
	for code := range total {
		switch code {
		case 200, 400, 405, 413, 422, 429:
		default:
			t.Fatalf("unexpected status %d (distribution %v)", code, total)
		}
	}
	if total[200] == 0 {
		t.Fatalf("no successful requests at all: %v", total)
	}
	if total[400] == 0 {
		t.Fatalf("invalid payloads never rejected: %v", total)
	}

	// Counter accounting: every HTTP request hit the middleware once,
	// and the response-class counters partition them. Monotonicity is
	// implied by delta ≥ 0 on every counter.
	after := map[string]int64{}
	for _, st := range obs.Snapshot() {
		if !st.IsTimer && !st.IsGauge {
			after[st.Name] = st.Value
		}
	}
	for name, b := range before {
		if after[name] < b {
			t.Fatalf("counter %s went backwards: %d -> %d", name, b, after[name])
		}
	}
	delta := func(name string) int64 { return after[name] - before[name] }
	if d := delta("serve.requests_total"); d != sent.Load() {
		t.Fatalf("serve.requests_total delta %d, want %d", d, sent.Load())
	}
	classed := delta("serve.responses_2xx") + delta("serve.responses_4xx") + delta("serve.responses_5xx")
	if classed != sent.Load() {
		t.Fatalf("response classes account for %d of %d requests", classed, sent.Load())
	}
	if d := delta("serve.responses_5xx"); d != 0 {
		t.Fatalf("%d internal errors during stress", d)
	}
	if int(delta("serve.rejected_429")) != total[429] {
		t.Fatalf("429 counter %d vs observed %d", delta("serve.rejected_429"), total[429])
	}
	if mInflight.Load() != 0 {
		t.Fatalf("inflight gauge stuck at %d after drain", mInflight.Load())
	}

	// Graceful shutdown with nothing in flight must be immediate and
	// clean.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
}

// TestStressShutdownUnderLoad issues shutdown while requests are
// still arriving: in-flight requests complete, late ones fail at the
// connection level, and nothing hangs.
func TestStressShutdownUnderLoad(t *testing.T) {
	s := New(Config{MaxInflight: 8, Workers: 2})
	hs := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 10 * time.Second}
	stop := make(chan struct{})
	var inFlightOK, refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(base+"/v1/schedule", "application/json",
					strings.NewReader(validSchedule))
				if err != nil {
					// Connection refused after shutdown: acceptable, count it.
					refused.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 || resp.StatusCode == 429 {
					inFlightOK.Add(1)
				}
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	if inFlightOK.Load() == 0 {
		t.Fatal("no request completed before shutdown")
	}
	t.Logf("completed=%d refused-after-shutdown=%d", inFlightOK.Load(), refused.Load())
}
