package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/task"
)

// jsonBufPool recycles the byte buffers of the request/response paths:
// response bodies are encoded into a pooled buffer and written in one
// call, and request bodies are slurped into a pooled buffer before
// decoding, so the per-request garbage is bounded by buffer churn
// instead of body size. Buffers that grew beyond jsonBufMax are
// dropped rather than pooled, keeping one oversized batch from
// pinning megabytes for the server's lifetime.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const jsonBufMax = 1 << 20

func getJSONBuf() *bytes.Buffer { return jsonBufPool.Get().(*bytes.Buffer) }

func putJSONBuf(buf *bytes.Buffer) {
	if buf.Cap() > jsonBufMax {
		return
	}
	buf.Reset()
	jsonBufPool.Put(buf)
}

// ScheduleRequest asks for one algorithm run on one instance.
type ScheduleRequest struct {
	// Algorithm is a name accepted by the algo registry (see
	// GET /v1/algorithms).
	Algorithm string `json:"algorithm"`
	// Instance is the problem instance. Actual times default to the
	// estimates when omitted (the perfectly-estimated case).
	Instance *task.Instance `json:"instance"`
	// ExactLimit optionally overrides the server's exact-optimum task
	// cap for this request; it is clamped to the server's own limit.
	ExactLimit int `json:"exact_limit,omitempty"`
}

// OptimumInfo mirrors opt.Result on the wire.
type OptimumInfo struct {
	Lower  float64 `json:"lower"`
	Upper  float64 `json:"upper"`
	Exact  bool    `json:"exact"`
	Method string  `json:"method"`
}

// ScheduleResponse reports one executed algorithm run.
type ScheduleResponse struct {
	Algorithm string               `json:"algorithm"`
	N         int                  `json:"n"`
	M         int                  `json:"m"`
	Alpha     float64              `json:"alpha"`
	Makespan  float64              `json:"makespan"`
	Placement *placement.Placement `json:"placement"`
	Schedule  *sched.Schedule      `json:"schedule"`
	Optimum   OptimumInfo          `json:"optimum"`
	// RatioLower/RatioUpper bracket the empirical competitive ratio
	// makespan/C* using the optimum bracket.
	RatioLower float64 `json:"ratio_lower"`
	RatioUpper float64 `json:"ratio_upper"`
	// Guarantee is the paper's analytic competitive-ratio bound for
	// this algorithm on (m, α); omitted when no bound is stated.
	Guarantee *float64 `json:"guarantee,omitempty"`
	// BoundOK reports the guarantee check makespan ≤ guarantee·C*_upper
	// (with a relative tolerance); omitted with Guarantee. A false here
	// is a certified violation of the theorem — worth a bug report.
	BoundOK *bool `json:"bound_ok,omitempty"`
}

// SimulateRequest asks for a traced semi-clairvoyant replay.
type SimulateRequest struct {
	Algorithm string         `json:"algorithm"`
	Instance  *task.Instance `json:"instance"`
}

// TraceEvent is one start/finish event of a machine's timeline.
type TraceEvent struct {
	Time float64 `json:"time"`
	Task int     `json:"task"`
	Kind string  `json:"kind"`
}

// MachineTrace is the executed timeline of one machine.
type MachineTrace struct {
	Machine int          `json:"machine"`
	Events  []TraceEvent `json:"events"`
}

// SimulateResponse reports a traced replay.
type SimulateResponse struct {
	Algorithm string               `json:"algorithm"`
	Makespan  float64              `json:"makespan"`
	Placement *placement.Placement `json:"placement"`
	Schedule  *sched.Schedule      `json:"schedule"`
	Machines  []MachineTrace       `json:"machines"`
}

// BatchRequest bundles many schedule requests.
type BatchRequest struct {
	Requests []ScheduleRequest `json:"requests"`
}

// BatchItem is the outcome of one batch entry: exactly one of
// Response and Error is set. Items appear in input order.
type BatchItem struct {
	Index    int               `json:"index"`
	Response *ScheduleResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchResponse reports a whole batch.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// AlgorithmsResponse lists the registry's accepted name patterns.
type AlgorithmsResponse struct {
	Algorithms []string `json:"algorithms"`
}

// HealthResponse is the /healthz payload. Exported so HTTP clients of
// the daemon (the cluster dispatcher's health prober, ops tooling) can
// decode probes with the server's own type.
type HealthResponse struct {
	Status        string `json:"status"`
	Inflight      int64  `json:"inflight"`
	MaxInflight   int    `json:"max_inflight"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

type healthResponse = HealthResponse

// ErrorResponse is the JSON error envelope every non-2xx answer
// carries. Exported for clients that surface backend errors verbatim
// (the cluster dispatcher relies on this to keep batch items
// byte-identical whether they pass through a proxy or not).
type ErrorResponse struct {
	Error string `json:"error"`
}

type errorResponse = ErrorResponse

// DecodeStrict decodes exactly one JSON value from r into v,
// rejecting unknown fields and trailing garbage. It is the single
// entry point for every request body (and the fuzzing surface), and is
// exported so sibling services (the cluster dispatcher) share the same
// decoding discipline.
func DecodeStrict(r io.Reader, v any) error {
	// Slurp the body through a pooled buffer first: the decoder then
	// reads from memory (no repeated small network reads), and read
	// errors — including http.MaxBytesError — surface unchanged.
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	if _, err := buf.ReadFrom(r); err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second token means trailing garbage after the value.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// checkInstance applies the serving limits and the centralized
// task.Instance validation to a submitted instance. withActuals is
// always true here: the wire decoder defaults actuals to estimates,
// so a well-formed request always carries a fully-specified instance.
func (s *Server) checkInstance(in *task.Instance) error {
	if in == nil {
		return errors.New("missing instance")
	}
	if in.N() > s.cfg.MaxTasks {
		return fmt.Errorf("instance has %d tasks, limit %d", in.N(), s.cfg.MaxTasks)
	}
	if in.M > s.cfg.MaxMachines {
		return fmt.Errorf("instance has %d machines, limit %d", in.M, s.cfg.MaxMachines)
	}
	return in.Validate(true)
}

// validateScheduleRequest applies the full /v1/schedule validation to
// an already-decoded request. It is shared by the single, batch, and
// streaming entry points so every path admits exactly the same items.
func (s *Server) validateScheduleRequest(req *ScheduleRequest) error {
	if req.Algorithm == "" {
		return errors.New("missing algorithm")
	}
	return s.checkInstance(req.Instance)
}

// decodeScheduleRequest decodes and fully validates a /v1/schedule
// body. Anything it accepts is safe to hand to the solvers.
func (s *Server) decodeScheduleRequest(r io.Reader) (*ScheduleRequest, error) {
	var req ScheduleRequest
	if err := DecodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := s.validateScheduleRequest(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeSimulateRequest decodes and validates a /v1/simulate body.
func (s *Server) decodeSimulateRequest(r io.Reader) (*SimulateRequest, error) {
	var req SimulateRequest
	if err := DecodeStrict(r, &req); err != nil {
		return nil, err
	}
	if req.Algorithm == "" {
		return nil, errors.New("missing algorithm")
	}
	if err := s.checkInstance(req.Instance); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeBatchRequest decodes a /v1/batch body and validates every
// item, so a batch either starts fully-validated or not at all.
func (s *Server) decodeBatchRequest(r io.Reader) (*BatchRequest, error) {
	var req BatchRequest
	if err := DecodeStrict(r, &req); err != nil {
		return nil, err
	}
	if len(req.Requests) == 0 {
		return nil, errors.New("empty batch")
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch has %d items, limit %d", len(req.Requests), s.cfg.MaxBatch)
	}
	for i := range req.Requests {
		if err := s.validateScheduleRequest(&req.Requests[i]); err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	return &req, nil
}

// writeJSON encodes v with a trailing newline (json.Encoder
// convention, matching the repo's other writers). The body is staged
// in a pooled buffer and flushed with a single Write — byte-identical
// to encoding straight into the ResponseWriter (Encode marshals fully
// before writing, so a failed encode writes nothing in both versions).
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	// Unmarshalable values are programming errors covered by tests; the
	// empty-body behavior on failure matches the unbuffered version.
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// writeError answers with a JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// badRequest classifies a decode/validation error: oversized bodies
// keep the 413 the MaxBytesReader implies, everything else is a 400.
func badRequest(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// ParseRetryAfter reads a delay-seconds Retry-After value; anything
// unparsable yields 0 and the caller's default applies. Exported so
// HTTP clients of the daemons (the cluster dispatcher, the front
// tier, cmd/loadgen) honor throttle hints with one parser.
func ParseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// contextWithTimeout derives the per-request deadline.
func contextWithTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}
