package serve

import (
	"strconv"
	"strings"

	"repro/internal/bounds"
)

// guaranteeFor maps an algorithm name to the paper's analytic
// competitive-ratio bound on an (m, α) system. The second return is
// false when no finite guarantee is stated for the algorithm:
//
//   - lpt-nochoice        Theorem 2: 2α²m/(2α²+m−1)
//   - lpt-norestriction   min(Theorem 3, Graham): 1+(m−1)/m·α²/2 vs 2−1/m
//   - ls-norestriction    Graham's List Scheduling: 2−1/m (α-independent)
//   - ls-group:k          Theorem 4: kα²/(α²+k−1)·(1+(k−1)/m)+(m−k)/m
//   - lpt-group:k         Theorem 4 as well — its proof is a List
//     Scheduling argument that holds for any phase-2 priority order
//   - ls-group-balanced:k Theorem 4 only when k divides m (the paper's
//     simplification; unequal groups void the formula)
//   - oracle-lpt          Graham's offline LPT: 4/3−1/(3m), since the
//     oracle schedules the true times
//   - ls-nochoice, tail:c no stated bound
func guaranteeFor(name string, m int, alpha float64) (float64, bool) {
	lower := strings.ToLower(strings.TrimSpace(name))
	switch lower {
	case "lpt-nochoice":
		return bounds.LPTNoChoice(m, alpha), true
	case "lpt-norestriction":
		return bounds.LPTNoRestriction(m, alpha), true
	case "ls-norestriction":
		return bounds.GrahamLS(m), true
	case "oracle-lpt":
		return bounds.LPTOffline(m), true
	}
	for _, prefix := range []string{"ls-group:", "lpt-group:", "ls-group-balanced:"} {
		if !strings.HasPrefix(lower, prefix) {
			continue
		}
		k, err := strconv.Atoi(lower[len(prefix):])
		if err != nil || k < 1 || k > m {
			return 0, false
		}
		if prefix == "ls-group-balanced:" && m%k != 0 {
			return 0, false
		}
		return bounds.LSGroup(m, k, alpha), true
	}
	return 0, false
}
