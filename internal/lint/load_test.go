package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name    string
		dir     string
		pattern string
		wantErr string
	}{
		{"missing dir", "testdata/src", "nosuchpkg", "nosuchpkg"},
		{"parse error", "testdata/broken", "parse", "expected"},
		{"type error", "testdata/broken", "typeerr", "type-checking"},
		{"mixed packages", "testdata/broken", "mixed", "contains packages"},
		{"import cycle", "testdata/src", "cyca", "import cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Load(Config{Dir: tc.dir}, tc.pattern)
			if err == nil {
				t.Fatalf("Load(%s, %s): want error containing %q, got nil", tc.dir, tc.pattern, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Load(%s, %s): error %q does not contain %q", tc.dir, tc.pattern, err, tc.wantErr)
			}
		})
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	// internal/... under the fixture root picks up the rng and obs
	// stubs but must skip nothing else (there are no nested testdata
	// or hidden dirs there).
	pkgs, _, err := Load(Config{Dir: filepath.Join("testdata", "src")}, "internal/...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"internal/obs", "internal/rng", "internal/tick"}
	if len(paths) != len(want) {
		t.Fatalf("got packages %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("got packages %v, want %v", paths, want)
		}
	}
}

func TestLoadModulePathMapping(t *testing.T) {
	// Loading a real repo package through its module path exercises
	// the ModulePath branch of import resolution.
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod != "repro" {
		t.Fatalf("module path = %q, want repro", mod)
	}
	pkgs, _, err := Load(Config{Dir: root, ModulePath: mod}, "internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/rng" {
		t.Fatalf("got %+v, want the single package repro/internal/rng", pkgs)
	}
	if pkgs[0].Types == nil || pkgs[0].Info == nil {
		t.Fatal("package loaded without type information")
	}
}

func TestFindModuleRootFailsOutsideModule(t *testing.T) {
	if _, _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatal("want an error outside any module")
	}
}
