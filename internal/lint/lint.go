// Package lint is uncertlint: a repo-native static-analysis engine
// enforcing the invariants the reproduction's byte-identical
// regeneration guarantee rests on — no wall clock in deterministic
// packages, explicit seeds only, no map-iteration order leaking into
// output, contexts threaded through every dispatch path, no dropped
// errors, literal (bounded-cardinality) metric names, and Reset
// methods on pooled run state that touch every field.
//
// The engine is stdlib-only (go/parser, go/ast, go/types with the
// source importer); see LINTING.md for each rule's rationale and the
// suppression syntax:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A directive suppresses matching diagnostics on its own line and on
// the line immediately below, and must carry a non-empty reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one pluggable rule. NewAnalyzers returns fresh
// instances: an analyzer may carry cross-package state (obs-names
// tracks registrations over the whole run) inside its Run closure.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:ignore.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports findings on the pass.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Prog is the shared whole-run view: call graph, CFGs, and
	// interprocedural summaries over the roots and their transitive
	// repo-local dependencies. Analyzers still report only on
	// declarations in Pkg; Prog supplies the cross-package facts.
	Prog *Program

	rule  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// NewAnalyzers returns a fresh instance of every analyzer in the
// suite. Instances must not be reused across Run calls: some hold
// run-scoped state.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		newDeterminism(),
		newMapOrder(),
		newSeed(),
		newCtxFlow(),
		newErrDrop(),
		newObsNames(),
		newReset(),
		newTickConv(),
		newPoolPair(),
		newFloatCmp(),
		newLockSafe(),
		newHotAlloc(),
	}
}

// Run applies analyzers to pkgs (in sorted path order), applies
// //lint:ignore suppressions, validates the directives themselves,
// and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) []Diagnostic {
	kept, _ := RunAll(pkgs, fset, analyzers)
	return kept
}

// RunAll is Run, additionally returning the diagnostics that
// //lint:ignore directives suppressed (for the -json output mode,
// which reports suppression state per finding). Both slices are
// sorted by position.
func RunAll(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) (kept, suppressed []Diagnostic) {
	// A directive may legitimately name any rule of the suite, not
	// just the ones selected for this run: running -rules determinism
	// must not report the tree's obsnames suppressions as unknown.
	known := map[string]bool{}
	for _, a := range NewAnalyzers() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	prog := newProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Fset: fset, Pkg: pkg, Prog: prog, rule: a.Name, diags: &diags})
		}
	}
	if ran["hotalloc"] && len(prog.hotClosure()) == 0 {
		// No //perf:hotpath seed among the loaded roots: hotalloc had
		// nothing to suppress, so a package-subset run must not call the
		// full tree's hotalloc suppressions stale.
		ran["hotalloc"] = false
	}
	sup, dirDiags := collectDirectives(pkgs, fset, known)
	kept = dirDiags
	for _, d := range diags {
		if sup.matches(d) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	// A directive that suppressed nothing is itself a finding: stale
	// suppressions hide nothing today and mask real findings tomorrow.
	// Only judged when every rule the directive names actually ran —
	// a -rules subset run must not call the others' directives unused.
	for _, dir := range sup.directives {
		if dir.used {
			continue
		}
		allRan := true
		for _, r := range dir.rules {
			if !ran[r] {
				allRan = false
			}
		}
		if !allRan {
			continue
		}
		kept = append(kept, Diagnostic{
			Pos:     dir.pos,
			Rule:    directiveRule,
			Message: fmt.Sprintf("unused //lint:ignore %s: no diagnostic suppressed on this or the next line", strings.Join(dir.rules, ",")),
		})
	}
	sortDiags(kept)
	sortDiags(suppressed)
	return kept, suppressed
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// directiveRecord is one well-formed //lint:ignore comment, tracked so
// directives that suppress nothing can be reported.
type directiveRecord struct {
	pos   token.Position
	rules []string
	used  bool
}

// suppressions maps file -> line -> rule -> the directives covering
// that (line, rule). Matching marks the covering directives used.
type suppressions struct {
	byPos      map[string]map[int]map[string][]*directiveRecord
	directives []*directiveRecord
}

func (s *suppressions) add(file string, line int, rule string, dir *directiveRecord) {
	byLine, ok := s.byPos[file]
	if !ok {
		byLine = map[int]map[string][]*directiveRecord{}
		s.byPos[file] = byLine
	}
	rules, ok := byLine[line]
	if !ok {
		rules = map[string][]*directiveRecord{}
		byLine[line] = rules
	}
	rules[rule] = append(rules[rule], dir)
}

func (s *suppressions) matches(d Diagnostic) bool {
	dirs := s.byPos[d.Pos.Filename][d.Pos.Line][d.Rule]
	for _, dir := range dirs {
		dir.used = true
	}
	return len(dirs) > 0
}

// directiveRule names the pseudo-rule under which malformed
// //lint:ignore directives are reported. It is not itself
// suppressible.
const directiveRule = "directive"

// collectDirectives parses //lint:ignore comments. A well-formed
// directive suppresses its rules on the directive's own line and the
// next line; a malformed one (missing reason, unknown rule) becomes a
// diagnostic so suppressions can never silently rot.
func collectDirectives(pkgs []*Package, fset *token.FileSet, known map[string]bool) (*suppressions, []Diagnostic) {
	sup := &suppressions{byPos: map[string]map[int]map[string][]*directiveRecord{}}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     fset.Position(pos),
			Rule:    directiveRule,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						report(c.Pos(), "malformed //lint:ignore: want \"//lint:ignore <rule>[,<rule>] <reason>\"")
						continue
					}
					bad := false
					for _, rule := range strings.Split(fields[0], ",") {
						if !known[rule] {
							report(c.Pos(), "//lint:ignore names unknown rule %q", rule)
							bad = true
						}
					}
					if bad {
						continue
					}
					pos := fset.Position(c.Pos())
					dir := &directiveRecord{pos: pos, rules: strings.Split(fields[0], ",")}
					sup.directives = append(sup.directives, dir)
					for _, rule := range dir.rules {
						sup.add(pos.Filename, pos.Line, rule, dir)
						sup.add(pos.Filename, pos.Line+1, rule, dir)
					}
				}
			}
		}
	}
	return sup, diags
}

// inspectStack walks every file of the pass's package, handing fn each
// node together with the stack of its ancestors (outermost first,
// excluding the node itself). Returning false prunes the subtree.
func (p *Pass) inspectStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
