package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// locksafe enforces mutex discipline over the CFG, per lock key (the
// receiver expression plus read/write kind, so mu.Lock and mu.RLock
// are tracked independently):
//
//   - every Lock()/RLock() must be balanced by an Unlock()/RUnlock()
//     on every return path, either inline or registered with defer;
//   - no potentially blocking operation — channel send/receive,
//     select, network I/O, time.Sleep, sync.Pool.Put,
//     sync.WaitGroup.Wait, or a call to a local function the may-block
//     summary marks — while the lock is held.
//
// The dataflow tracks, per key, the set of possible (held, deferred)
// counter pairs on each path, unioned at joins. defer Unlock does not
// decrement the held count during the walk — the body really does
// hold the lock until return — so the blocking check stays armed; the
// exit check nets the deferred count off instead. Lock keys are
// syntactic (types.ExprString of the receiver), so aliasing a mutex
// through two names defeats the pairing; the repo locks through
// stable selector chains. Bodies with goto are skipped.
func newLockSafe() *Analyzer {
	return &Analyzer{
		Name: "locksafe",
		Doc:  "Lock must be released on every path and no blocking calls may run while a lock is held",
		Run:  runLockSafe,
	}
}

func runLockSafe(p *Pass) {
	p.Prog.summaries()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, body := range funcBodies(fd) {
				runLockSafeBody(p, body)
			}
		}
	}
}

// lockState is the set of possible (held, deferred) pairs for one
// key, both clamped to 0..2, encoded as a 9-bit mask.
type lockState uint16

func lockBit(held, def int) lockState { return 1 << (held*3 + def) }

func (s lockState) each(fn func(held, def int)) {
	for held := 0; held <= 2; held++ {
		for def := 0; def <= 2; def++ {
			if s&lockBit(held, def) != 0 {
				fn(held, def)
			}
		}
	}
}

func (s lockState) shift(dHeld, dDef int) lockState {
	var out lockState
	s.each(func(held, def int) {
		out |= lockBit(clamp02(held+dHeld), clamp02(def+dDef))
	})
	return out
}

func clamp02(v int) int {
	if v < 0 {
		return 0
	}
	if v > 2 {
		return 2
	}
	return v
}

// anyHeld reports whether some path holds the lock right now.
func (s lockState) anyHeld() bool {
	out := false
	s.each(func(held, def int) {
		if held > 0 {
			out = true
		}
	})
	return out
}

// anyLeaked reports whether some path ends with more Locks than
// Unlocks plus registered deferred Unlocks.
func (s lockState) anyLeaked() bool {
	out := false
	s.each(func(held, def int) {
		if held > def {
			out = true
		}
	})
	return out
}

type lockOp struct {
	key   string
	dHeld int
	dDef  int
}

func runLockSafeBody(p *Pass, body funcBody) {
	cfg := p.Prog.cfg(body.Body)
	if cfg.Unsupported {
		return
	}
	info := p.Pkg.Info

	// First pass: find the keys locked in this body and remember each
	// key's first Lock position for reporting.
	firstLock := map[string]token.Pos{}
	keyOrder := []string{}
	inspectShallow(body.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, kind := lockCallKey(info, call); kind == opLock {
			if _, seen := firstLock[key]; !seen {
				firstLock[key] = call.Pos()
				keyOrder = append(keyOrder, key)
			}
		}
		return true
	})
	if len(keyOrder) == 0 {
		return
	}

	for _, key := range keyOrder {
		checkLockKey(p, body, cfg, key, firstLock[key])
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockCallKey classifies call as a lock or unlock of a sync mutex and
// returns the key: the receiver expression plus "/R" for the reader
// side of an RWMutex.
func lockCallKey(info *types.Info, call *ast.CallExpr) (string, lockOpKind) {
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", opNone
	}
	recv := recvNamed(fn)
	if recv != "Mutex" && recv != "RWMutex" && recv != "Locker" {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return key, opLock
	case "Unlock":
		return key, opUnlock
	case "RLock":
		return key + "/R", opLock
	case "RUnlock":
		return key + "/R", opUnlock
	}
	return "", opNone
}

// nodeLockOps extracts the lock/unlock operations a CFG node performs
// on key: inline calls move the held count, deferred calls (direct or
// wrapped in a closure) move the deferred count.
func nodeLockOps(info *types.Info, n ast.Node, key string) (dHeld, dDef int) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		countUnlocks := func(root ast.Node) {
			ast.Inspect(root, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if k, kind := lockCallKey(info, call); k == key && kind == opUnlock {
						dDef++
					}
				}
				return true
			})
		}
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			countUnlocks(lit.Body)
		} else {
			countUnlocks(n.Call)
		}
		return 0, dDef
	default:
		inspectShallow(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if k, kind := lockCallKey(info, call); k == key {
					switch kind {
					case opLock:
						dHeld++
					case opUnlock:
						dHeld--
					}
				}
			}
			return true
		})
		return dHeld, 0
	}
}

// nodeBlocks returns a description of a potentially blocking operation
// in n (not descending into function literals), or "".
func nodeBlocks(p *Pass, n ast.Node) string {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		// Deferred work runs after the inline unlocks; judging it here
		// would misfire on the pooled-buffer defer-Put idiom.
		return ""
	}
	info := p.Pkg.Info
	why := ""
	inspectShallow(n, func(x ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := x.(type) {
		case *ast.SendStmt:
			why = "channel send"
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				why = "channel receive"
			}
		case *ast.SelectStmt:
			why = "select"
		case *ast.CallExpr:
			callee := calleeFunc(info, x)
			if desc := blockingCallee(callee); desc != "" {
				why = desc
			} else if callee != nil {
				if inner, ok := p.Prog.mayBlock[callee]; ok {
					why = "call to " + callee.Name() + " (" + inner + ")"
				}
			}
		}
		return why == ""
	})
	return why
}

func checkLockKey(p *Pass, body funcBody, cfg *CFG, key string, lockPos token.Pos) {
	info := p.Pkg.Info
	in := map[*Block]lockState{}
	in[cfg.Entry] = lockBit(0, 0)
	reportedBlock := false

	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		state := in[b]
		for _, n := range b.Nodes {
			dHeld, dDef := nodeLockOps(info, n, key)
			if dHeld == 0 && dDef == 0 && state.anyHeld() && !reportedBlock {
				if why := nodeBlocks(p, n); why != "" {
					p.Reportf(n.Pos(), "potentially blocking operation (%s) while %s is locked", why, key)
					reportedBlock = true
				}
			}
			state = state.shift(dHeld, dDef)
		}
		for _, succ := range b.Succs {
			if old, seen := in[succ]; !seen || old|state != old {
				in[succ] = old | state
				work = append(work, succ)
			}
		}
	}
	if exit, ok := in[cfg.Exit]; ok && exit.anyLeaked() {
		recv, lock, unlock := key, "Lock", "Unlock"
		if r, ok := strings.CutSuffix(key, "/R"); ok {
			recv, lock, unlock = r, "RLock", "RUnlock"
		}
		p.Reportf(lockPos, "%s.%s() is not released on every return path (add %s or defer %s)", recv, lock, unlock, unlock)
	}
}
