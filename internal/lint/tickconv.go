package lint

import (
	"go/ast"
	"go/types"
)

// newTickConv builds the tick-conversion analyzer. Simulated time in
// the flat engine is int64 fixed-point (tick.Tick), and the whole
// byte-identity argument — shard results merging independently of
// worker interleaving — rests on every float→tick conversion going
// through one rounding rule. tick.FromSeconds is that rule: round
// half-away-from-zero, NaN/Inf rejected, overflow saturated
// explicitly. A hand-rolled conversion (tick.Tick(sec * 1e9), or
// tick.Tick(int64(sec * float64(tick.PerSecond)))) silently picks
// truncation instead of rounding and drops the finiteness check, so
// two call sites converting the same duration can disagree by one
// tick — exactly the class of drift the differential suite cannot
// localize. The rule flags, outside internal/tick itself:
//
//   - any conversion to tick.Tick whose operand is floating-point;
//   - any conversion to tick.Tick whose operand is itself an integer
//     conversion of a floating-point expression (the truncate-then-
//     wrap idiom).
func newTickConv() *Analyzer {
	return &Analyzer{
		Name: "tickconv",
		Doc:  "require tick.FromSeconds for float-to-tick conversions",
		Run:  runTickConv,
	}
}

func runTickConv(p *Pass) {
	if pathTail(p.Pkg.Path, "internal/tick") {
		return
	}
	info := p.Pkg.Info
	p.inspectStack(func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if !isTickType(convTargetType(info, call)) {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if isFloatExpr(info, arg) {
			p.Reportf(call.Pos(), "float converted to tick.Tick directly: tick.FromSeconds is the only sanctioned float-to-tick path")
			return true
		}
		// The truncate-then-wrap idiom: tick.Tick(int64(floatExpr)).
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			t := convTargetType(info, inner)
			if t != nil && isIntegerType(t) && isFloatExpr(info, ast.Unparen(inner.Args[0])) {
				p.Reportf(call.Pos(), "float truncated to integer then converted to tick.Tick: tick.FromSeconds is the only sanctioned float-to-tick path")
			}
		}
		return true
	})
}

// convTargetType returns the type a single-argument call converts to,
// or nil when the call is an ordinary function call.
func convTargetType(info *types.Info, call *ast.CallExpr) types.Type {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	return tv.Type
}

// isTickType reports whether t is internal/tick's Tick.
func isTickType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tick" && obj.Pkg() != nil && pathTail(obj.Pkg().Path(), "internal/tick")
}

// isFloatExpr reports whether expr's type is floating-point. Untyped
// constants inside a conversion already carry the target type and are
// exempt: the compiler only admits them when exactly representable.
func isFloatExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
