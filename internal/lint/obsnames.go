package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// newObsNames builds the obs-names analyzer. Metric names passed to
// the internal/obs registry (GetCounter, GetGauge, GetTimer) must be
// compile-time constant strings: a name computed at call time can
// grow the registry without bound (per-request cardinality) and makes
// the /metrics surface impossible to audit statically. The analyzer
// also tracks every registration across the whole run and flags a
// name registered under two different metric kinds, which would split
// one logical metric into silently diverging entries.
//
// The analyzer carries run-scoped state, so NewAnalyzers must hand
// out a fresh instance per run.
func newObsNames() *Analyzer {
	type reg struct {
		kind string
		pos  token.Position
	}
	seen := map[string]reg{}
	return &Analyzer{
		Name: "obsnames",
		Doc:  "require constant obs metric names, one kind per name",
		Run: func(p *Pass) {
			info := p.Pkg.Info
			p.inspectStack(func(n ast.Node, _ []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !pathTail(funcPkgPath(fn), "internal/obs") {
					return true
				}
				var kind string
				switch fn.Name() {
				case "GetCounter":
					kind = "counter"
				case "GetGauge":
					kind = "gauge"
				case "GetTimer":
					kind = "timer"
				default:
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				name, ok := constStringArg(info, call.Args[0])
				if !ok {
					p.Reportf(call.Args[0].Pos(), "metric name passed to obs.%s must be a compile-time constant string", fn.Name())
					return true
				}
				if prev, ok := seen[name]; ok && prev.kind != kind {
					p.Reportf(call.Args[0].Pos(), "metric %q registered as %s here but as %s at %s", name, kind, prev.kind, compactPos(prev.pos))
					return true
				}
				if _, ok := seen[name]; !ok {
					seen[name] = reg{kind: kind, pos: p.Fset.Position(call.Args[0].Pos())}
				}
				return true
			})
		},
	}
}

func compactPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
