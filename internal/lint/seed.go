package lint

import (
	"go/ast"
	"go/types"
)

// newSeed builds the seed-discipline analyzer. Every random stream in
// the repo must come from internal/rng with an explicit, deterministic
// seed expression: the paper harness regenerates results from recorded
// seeds, so an RNG whose seed is implicit (math/rand's global state)
// or clock-derived (rng.New(uint64(time.Now().UnixNano()))) breaks the
// chain of reproducibility. The rule applies to every package — the
// serving layers included, whose hedging decisions must replay in the
// simulator — and flags, outside internal/rng itself:
//
//   - any reference to math/rand or math/rand/v2 (constructors and
//     global functions alike);
//   - an rng.New / rng.Source seed expression that reads the clock or
//     crypto/rand.
func newSeed() *Analyzer {
	return &Analyzer{
		Name: "seed",
		Doc:  "require internal/rng sources with explicit deterministic seeds",
		Run:  runSeed,
	}
}

func runSeed(p *Pass) {
	if pathTail(p.Pkg.Path, "internal/rng") {
		return
	}
	info := p.Pkg.Info
	p.inspectStack(func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Only qualified references (rand.X) count; method calls
			// on values would double-report every use site.
			x, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				p.Reportf(n.Pos(), "math/rand is off-limits (implicit or Go-version-dependent streams); use internal/rng with an explicit seed")
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Name() != "New" || !pathTail(funcPkgPath(fn), "internal/rng") {
				return true
			}
			for _, arg := range n.Args {
				if usesPackageFunc(info, arg, "time") {
					p.Reportf(arg.Pos(), "rng.New seeded from the clock: seeds must be explicit deterministic expressions")
				}
				if usesPackageFunc(info, arg, "crypto/rand") {
					p.Reportf(arg.Pos(), "rng.New seeded from crypto/rand: seeds must be explicit deterministic expressions")
				}
			}
		}
		return true
	})
}
