package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// newMapOrder builds the map-order analyzer. Go randomizes map
// iteration order, so a range over a map that appends to a slice or
// writes output directly leaks that randomness into results unless
// the collected slice is sorted afterwards. The analyzer flags, in
// every package:
//
//   - a range-over-map body that prints (fmt.Print*/Fprint*) or sends
//     on a channel — order reaches the output stream immediately;
//   - a range-over-map body that appends to a local slice which is
//     not subsequently passed to sort.* or slices.Sort* in the same
//     function.
//
// Writes keyed by the map's own key (m2[k] = v) are order-independent
// and stay legal.
func newMapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration whose order can leak into slices or output",
		Run:  runMapOrder,
	}
}

func runMapOrder(p *Pass) {
	info := p.Pkg.Info
	p.inspectStack(func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(p, rng, stack)
		return true
	})
}

func checkMapRange(p *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside range over map: delivery order follows map iteration order")
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if funcPkgPath(fn) == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				p.Reportf(n.Pos(), "fmt.%s inside range over map: output order follows map iteration order", fn.Name())
			}
		case *ast.AssignStmt:
			checkAppendInMapRange(p, n, rng, stack)
		}
		return true
	})
}

// checkAppendInMapRange flags `s = append(s, …)` where s is a plain
// identifier that is never sorted after the loop.
func checkAppendInMapRange(p *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, stack []ast.Node) {
	info := p.Pkg.Info
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			continue // shadowed append, not the builtin
		}
		if i >= len(as.Lhs) {
			continue
		}
		target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue // append into m[k] etc. is keyed, not ordered
		}
		obj := info.Uses[target]
		if obj == nil {
			obj = info.Defs[target]
		}
		if obj == nil {
			continue
		}
		if sortedAfter(info, rng, stack, obj) {
			continue
		}
		p.Reportf(as.Pos(), "append to %s inside range over map without a later sort: element order follows map iteration order", target.Name)
	}
}

// sortedAfter reports whether any statement after the range loop (in
// its enclosing block or an enclosing block further out, still within
// the same function) calls sort.* or slices.Sort* with the appended
// slice as (part of) an argument.
func sortedAfter(info *types.Info, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	// Walk outward: for each enclosing block, scan the statements that
	// come after the subtree containing the loop.
	inner := ast.Node(rng)
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			past := false
			for _, stmt := range n.List {
				if !past {
					if containsNode(stmt, inner) {
						past = true
					}
					continue
				}
				if stmtSorts(info, stmt, obj) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // don't escape the enclosing function
		}
		inner = stack[i]
	}
	return false
}

func containsNode(root, target ast.Node) bool {
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

func stmtSorts(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := calleeFunc(info, call)
		switch funcPkgPath(fn) {
		case "sort", "slices":
		default:
			return !found
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
