package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotalloc is the static counterpart of the 0-allocs/op benchmark
// gate: functions annotated //perf:hotpath in their doc comment, and
// everything statically reachable from them through the call graph,
// must be free of allocating constructs. Where the bench gate says
// "this run allocated", hotalloc names the line that would.
//
// The deny list covers the constructs that always (or almost always)
// hit the allocator:
//
//   - function-literal creation (closure capture)
//   - make of any kind, new, map and slice composite literals
//   - address-taken composite literals (&T{...})
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - calls into fmt
//   - explicit conversion of a concrete value to an interface type
//
// Deliberately allowed: append (the repo's hot loops append into
// capacity grown during prepare; amortized growth is pinned by the
// benchmark gate, which this rule complements rather than replaces),
// and by-value struct literals (stack-allocated).
//
// Blind spots: calls through function values and interface methods
// have no static callee, so their targets are not checked — the
// bench gate remains the backstop for those — and implicit interface
// boxing at call boundaries is not modeled.
func newHotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "functions reachable from //perf:hotpath annotations must not allocate",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(p *Pass) {
	hot := p.Prog.hotClosure()
	if len(hot) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			seed, ok := hot[fn]
			if !ok {
				continue
			}
			checkHotBody(p, fd, seed)
		}
	}
}

func checkHotBody(p *Pass, fd *ast.FuncDecl, seed string) {
	info := p.Pkg.Info
	report := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s in hot path (reachable from //perf:hotpath %s)", what, seed)
	}
	inspectShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure creation")
			// inspectShallow already skips the interior; the literal's
			// own body is only reachable dynamically.
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal")
				case *types.Slice:
					report(n.Pos(), "slice literal")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address-taken composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) && info.Types[n].Value == nil {
				report(n.OpPos, "string concatenation")
			}
		case *ast.CallExpr:
			checkHotCall(p, info, n, report)
		}
		return true
	})
}

func checkHotCall(p *Pass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				report(call.Pos(), "make")
				return
			}
		case "new":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				report(call.Pos(), "new")
				return
			}
		}
	}
	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if from == nil {
			return
		}
		if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return // T(nil) stores no value; nothing is boxed
		}
		switch {
		case isInterface(to) && !isInterface(from):
			report(call.Pos(), "interface conversion (boxing)")
		case isStringType(to) != isStringType(from) &&
			(isStringType(to) || isStringType(from)) &&
			(isByteOrRuneSlice(to) || isByteOrRuneSlice(from)):
			if info.Types[call.Args[0]].Value == nil {
				report(call.Pos(), "string conversion")
			}
		}
		return
	}
	if fn := calleeFunc(info, call); fn != nil && funcPkgPath(fn) == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" call")
	}
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && isStringType(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
