package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call expression
// invokes, or nil for calls through function values, conversions, and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or
// "" for builtins and method sets without a package.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathTail reports whether path's final element(s) equal suffix —
// "repro/internal/rng" and the fixture tree's "internal/rng" both
// match suffix "internal/rng"; "repro/internal/sim" matches "sim".
func pathTail(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// constStringArg returns the compile-time constant string value of
// expr, if it has one (a literal, a named constant, or a constant
// concatenation).
func constStringArg(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// usesPackageFunc reports whether expr contains a reference to any
// function of the named package (import path match).
func usesPackageFunc(info *types.Info, expr ast.Expr, pkgPath string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && funcPkgPath(fn) == pkgPath {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcHasCtxParam reports whether the function type declares a
// parameter of type context.Context.
func funcHasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// enclosingFuncs returns the innermost-last chain of function
// declarations and literals on the stack.
func enclosingFuncs(stack []ast.Node) []*ast.FuncType {
	var fts []*ast.FuncType
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			fts = append(fts, fn.Type)
		case *ast.FuncLit:
			fts = append(fts, fn.Type)
		}
	}
	return fts
}
