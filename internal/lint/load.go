package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package as seen by the
// analyzers. Test files (_test.go) are excluded by design: the
// invariants uncertlint enforces are about code that produces paper
// artifacts or serves traffic, and several rules (err-drop, ctx-flow)
// explicitly exempt tests.
type Package struct {
	// Path is the import path ("repro/internal/sim", or a path
	// relative to the load root for fixture trees).
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files holds the parsed files in filename order, so diagnostics
	// come out in a deterministic order.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
	// Deps maps the import paths of repo-local dependencies (direct
	// imports that resolved under Config.Dir) to their loaded packages.
	// Stdlib imports are not included. The call-graph layer walks this
	// to reach the transitive local closure of the analysis roots.
	Deps map[string]*Package
}

// Config controls Load.
type Config struct {
	// Dir is the root directory that import paths resolve under.
	Dir string
	// ModulePath is the module path declared in go.mod. Imports that
	// equal it or start with it + "/" resolve to subdirectories of
	// Dir. When empty, any import path whose corresponding directory
	// exists under Dir resolves locally (used for testdata fixture
	// trees, which have no go.mod).
	ModulePath string
}

// stdImporter is the shared stdlib importer. go/importer's source
// importer memoizes per instance and is tied to one FileSet, so the
// engine shares a single instance (and FileSet) across every Load:
// re-type-checking fmt and net/http from source once per fixture
// would dominate the test suite's runtime. Cgo is disabled up front
// so packages like net fall back to their pure-Go paths; uncertlint
// only needs signatures, not a buildable binary.
var (
	stdOnce sync.Once
	stdFset *token.FileSet
	stdImp  types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	stdOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	})
	return stdFset, stdImp
}

// loader resolves and type-checks repo-local packages, delegating
// everything else to the stdlib source importer.
type loader struct {
	cfg     Config
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks the packages matched by patterns, which
// are directory paths relative to cfg.Dir; a trailing "/..." matches
// the directory and everything below it (skipping testdata, vendor,
// hidden directories, and out/). The returned packages are sorted by
// import path and share the returned FileSet.
func Load(cfg Config, patterns ...string) ([]*Package, *token.FileSet, error) {
	fset, std := sharedImporter()
	abs, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	cfg.Dir = abs
	l := &loader{
		cfg:     cfg,
		fset:    fset,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	var dirs []string
	for _, p := range patterns {
		d, err := l.expand(p)
		if err != nil {
			return nil, nil, err
		}
		dirs = append(dirs, d...)
	}
	if len(dirs) == 0 {
		return nil, nil, fmt.Errorf("lint: no packages match %v under %s", patterns, cfg.Dir)
	}
	var out []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		path := l.pathForDir(dir)
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, fset, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod
// and returns it together with the declared module path.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// expand resolves one pattern to package directories.
func (l *loader) expand(pattern string) ([]string, error) {
	recursive := false
	p := pattern
	if p == "..." {
		recursive, p = true, "."
	} else if rest, ok := strings.CutSuffix(p, "/..."); ok {
		recursive = true
		p = rest
		if p == "" {
			p = "."
		}
	}
	base := filepath.Join(l.cfg.Dir, filepath.FromSlash(p))
	fi, err := os.Stat(base)
	if err != nil {
		return nil, fmt.Errorf("lint: pattern %q: %w", pattern, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("lint: pattern %q is not a directory", pattern)
	}
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no non-test Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "out") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if goSource(e) {
			return true
		}
	}
	return false
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// pathForDir maps an absolute directory under the root to its import
// path.
func (l *loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.cfg.Dir, dir)
	if err != nil || rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	if l.cfg.ModulePath == "" {
		return rel
	}
	if rel == "" {
		return l.cfg.ModulePath
	}
	return l.cfg.ModulePath + "/" + rel
}

// dirForPath maps an import path to a local directory, or "" when the
// path is not local.
func (l *loader) dirForPath(path string) string {
	switch {
	case l.cfg.ModulePath != "":
		if path == l.cfg.ModulePath {
			return l.cfg.Dir
		}
		rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/")
		if !ok {
			return ""
		}
		return filepath.Join(l.cfg.Dir, filepath.FromSlash(rest))
	default:
		dir := filepath.Join(l.cfg.Dir, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
		return ""
	}
}

// Import implements types.Importer over the loader, so repo-local
// dependencies of a package under analysis are themselves loaded from
// source with full fidelity.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := l.dirForPath(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one directory, memoized by import path.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range entries {
		if !goSource(e) {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s contains packages %q and %q", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Name: name, Dir: dir, Files: files, Types: tpkg, Info: info,
		Deps: map[string]*Package{}}
	// Local imports were loaded (and memoized) by Check via Import;
	// record them so analyzers can walk the local dependency graph.
	for _, f := range files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if dep, ok := l.pkgs[ip]; ok {
				pkg.Deps[ip] = dep
			}
		}
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
