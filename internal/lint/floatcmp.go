package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatcmp targets the bug class fixed twice in this repo already
// (the Karmarkar-Karp ldmHeap and the crash-queue sort): comparisons
// on floating-point values that make output depend on accumulated
// rounding or on sort instability.
//
// Two checks:
//
//  1. == and != on floating operands. The sanctioned tie-break-guard
//     idiom is exempt: when the enclosing function also contains an
//     ordering comparison (< <= > >=) of the same two operands (either
//     order), the equality is a guard around a deterministic ordering,
//     not a correctness decision. Comparisons against constants
//     (sentinels like 0) and self-comparisons (the x != x NaN probe)
//     are also exempt.
//
//  2. comparator functions whose result is decided entirely by float
//     ordering with no tie-break: a func-literal argument to
//     sort.Slice, or a declared Less-style method (named Less, less,
//     or *Less, returning bool), where every return statement is
//     exactly a float ordering expression. sort.SliceStable is exempt
//     (ties keep input order, which is deterministic); any return that
//     is not a bare float ordering — an integer comparison, a
//     delegation call, a boolean combination — counts as a tie-break
//     and silences the check.
func newFloatCmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "flags float ==/!= without a tie-break guard and float-keyed comparators with no deterministic tie-break",
		Run:  runFloatCmp,
	}
}

func runFloatCmp(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFloatEquality(p, fd)
			if isLessStyle(fd) && floatOnlyComparator(info, fd.Body) {
				p.Reportf(fd.Pos(), "comparator %s orders by floats with no deterministic tie-break; compare an integer key when equal", fd.Name.Name)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(info, call)
				if callee == nil || funcPkgPath(callee) != "sort" || callee.Name() != "Slice" {
					return true
				}
				if len(call.Args) != 2 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
				if !ok {
					return true
				}
				if floatOnlyComparator(info, lit.Body) {
					p.Reportf(call.Pos(), "sort.Slice comparator orders by floats with no deterministic tie-break; add one or use sort.SliceStable")
				}
				return true
			})
		}
	}
}

// checkFloatEquality flags ==/!= on float operands inside fd, except
// tie-break guards and constant comparisons.
func checkFloatEquality(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	// Collect the operand pairs of every ordering comparison in the
	// function (all nesting levels — guards and their orderings often
	// sit in different closures of the same function).
	ordered := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			ordered[pairKey(be.X, be.Y)] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(info, be.X) && !isFloat(info, be.Y) {
			return true
		}
		if isConstExpr(info, be.X) || isConstExpr(info, be.Y) {
			return true
		}
		// x == x / x != x is the stdlib-free NaN probe, not a rounding
		// hazard.
		if types.ExprString(ast.Unparen(be.X)) == types.ExprString(ast.Unparen(be.Y)) {
			return true
		}
		if ordered[pairKey(be.X, be.Y)] {
			return true
		}
		p.Reportf(be.OpPos, "floating-point %s comparison; floats differ by rounding — use an ordering with tie-break, an epsilon, or integer ticks", be.Op)
		return true
	})
}

// pairKey is an order-insensitive key for an operand pair.
func pairKey(x, y ast.Expr) string {
	a, b := types.ExprString(ast.Unparen(x)), types.ExprString(ast.Unparen(y))
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

// isLessStyle reports whether fd looks like a sort comparator: named
// Less, less, or ending in Less, with a single bool result.
func isLessStyle(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if name != "Less" && name != "less" && !strings.HasSuffix(name, "Less") {
		return false
	}
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 {
		return false
	}
	id, ok := res.List[0].Type.(*ast.Ident)
	return ok && id.Name == "bool"
}

// floatOnlyComparator reports whether every return in body is exactly
// a float ordering comparison — i.e. equal keys leave the result to
// the sort's whim. Any other return shape (integer ordering, call,
// boolean combination, named-result fallthrough) counts as a
// tie-break. Nested function literals are not descended into.
func floatOnlyComparator(info *types.Info, body *ast.BlockStmt) bool {
	sawReturn := false
	verdict := true
	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return verdict
		}
		if len(ret.Results) != 1 {
			verdict = false
			return false
		}
		sawReturn = true
		be, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
		if !ok {
			verdict = false
			return false
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if !isFloat(info, be.X) && !isFloat(info, be.Y) {
				verdict = false
			}
		default:
			verdict = false
		}
		return verdict
	})
	return sawReturn && verdict
}
