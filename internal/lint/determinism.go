package lint

import (
	"go/ast"
	"go/types"
)

// nondetAllowlist names the packages (by final import-path element)
// that are allowed to observe wall-clock time and to select over
// channels: the serving and dispatch layers (including the front
// tier), the observability layer (timers are write-only and never feed
// back into results), the fork-join engine, and the load generator
// (whose measurements are wall-clock by definition; its request stream
// stays seed-deterministic via internal/rng). Everything else in the repo — in particular algo,
// sim, opt, bounds, adversary, placement, experiments, and stats —
// is deterministic by default: its output must be a pure function of
// inputs and explicit seeds so paper tables regenerate byte-identically.
var nondetAllowlist = map[string]bool{
	"serve":   true,
	"cluster": true,
	"front":   true,
	"loadgen": true,
	"obs":     true,
	"par":     true,
}

// wallClockFuncs are the time-package entry points that read or wait
// on the wall clock / scheduler. Constants (time.Microsecond) and
// pure value types (time.Duration arithmetic) remain legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// that draw from the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true, "Int64": true,
	"Int64N": true, "Uint32": true, "Uint64": true, "Uint64N": true, "UintN": true,
	"Uint": true, "N": true, "Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// newDeterminism builds the determinism analyzer: in deterministic
// packages it forbids wall-clock reads, the global math/rand source,
// and select statements with more than one communication clause
// (whose completion order depends on the runtime scheduler).
func newDeterminism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall clock, global math/rand, and multi-way select in deterministic packages",
		Run:  runDeterminism,
	}
}

func runDeterminism(p *Pass) {
	if p.Pkg.Name == "main" || nondetAllowlist[lastPathElem(p.Pkg.Path)] {
		return
	}
	p.inspectStack(func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := p.Pkg.Info.Uses[n.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch funcPkgPath(fn) {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.Reportf(n.Pos(), "wall-clock call time.%s in deterministic package %s", fn.Name(), p.Pkg.Name)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					p.Reportf(n.Pos(), "global math/rand source (rand.%s) in deterministic package %s; draw from an explicitly seeded internal/rng.Source", fn.Name(), p.Pkg.Name)
				}
			}
		case *ast.SelectStmt:
			if n.Body != nil && len(n.Body.List) >= 2 {
				p.Reportf(n.Pos(), "select over %d cases in deterministic package %s: completion order is scheduler-dependent", len(n.Body.List), p.Pkg.Name)
			}
		}
		return true
	})
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
