package lint

import (
	"testing"
)

// TestRepoIsClean mirrors the CI gate from inside the test suite: the
// full analyzer suite over every package in the repository must come
// back empty. A failure here means a change introduced a violation of
// one of the rules — determinism, seed, ctx-flow, err-drop, map-order,
// obs-names, reset, tickconv, or the flow rules (poolpair, floatcmp,
// locksafe, hotalloc) — without either fixing it or suppressing it
// with a reasoned //lint:ignore; stale suppressions fail here too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset, err := Load(Config{Dir: root, ModulePath: mod}, "...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded; the pattern expansion lost most of the repo", len(pkgs))
	}
	diags := Run(pkgs, fset, NewAnalyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
