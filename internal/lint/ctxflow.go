package lint

import (
	"go/ast"
	"go/types"
)

// newCtxFlow builds the ctx-flow analyzer. Cancellation must flow
// from the edge of the process down through every dispatch path: a
// fresh context.Background() in library code detaches the work below
// it from the caller's deadline, which is exactly how hedged requests
// and health probes end up leaking after shutdown. The analyzer
// flags:
//
//   - context.Background() or context.TODO() anywhere outside a main
//     package (tests are not loaded, so they are exempt by
//     construction);
//   - in any package, main included: a function that already receives
//     a context.Context yet passes Background/TODO to a callee — the
//     caller's context must be threaded through instead.
//
// Go's type system makes the remaining ctx-flow mistake — calling a
// context-accepting callee without any context — uncompilable, so
// these two checks cover the dispatch paths end to end.
func newCtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "forbid context.Background/TODO outside main; thread received contexts through",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Pass) {
	info := p.Pkg.Info
	isMain := p.Pkg.Name == "main"
	p.inspectStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || funcPkgPath(fn) != "context" {
			return true
		}
		name := fn.Name()
		if name != "Background" && name != "TODO" {
			return true
		}
		ctxInScope := false
		for _, ft := range enclosingFuncs(stack) {
			if funcHasCtxParam(info, ft) {
				ctxInScope = true
			}
		}
		switch {
		case ctxInScope:
			p.Reportf(n.Pos(), "context.%s discards the context this function already receives; thread the caller's ctx through", name)
		case !isMain:
			p.Reportf(n.Pos(), "context.%s outside package main: accept a context.Context from the caller instead", name)
		}
		return true
	})
}
