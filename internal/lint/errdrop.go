package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// newErrDrop builds the err-drop analyzer: a call whose error result
// is silently discarded as a bare expression statement is forbidden in
// non-test code (tests are not loaded). Explicitly assigning to the
// blank identifier (`_ = f()`) remains legal — it is a visible,
// reviewable statement of intent — as do `defer`/`go` statements,
// whose results Go itself discards.
//
// Allowlisted as never-failing or best-effort by convention:
// fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln (diagnostic output;
// render paths that must be durable return the error from their
// enclosing function instead), and the Write* methods of
// strings.Builder and bytes.Buffer, which are documented to always
// return a nil error.
func newErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "forbid silently discarded error returns in non-test code",
		Run:  runErrDrop,
	}
}

var errorType = types.Universe.Lookup("error").Type()

func runErrDrop(p *Pass) {
	info := p.Pkg.Info
	p.inspectStack(func(n ast.Node, _ []ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !returnsError(info, call) || errDropAllowed(info, call) {
			return true
		}
		p.Reportf(stmt.Pos(), "unchecked error returned by %s", calleeLabel(info, call))
		return true
	})
}

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

func errDropAllowed(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if funcPkgPath(fn) == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				full := obj.Pkg().Path() + "." + obj.Name()
				if full == "strings.Builder" || full == "bytes.Buffer" {
					return true
				}
			}
		}
	}
	return false
}

func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return "(" + recv.Type().String() + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
