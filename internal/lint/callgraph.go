package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the flow layer: a static
// call graph over every repo-local package the loader reached (analysis
// roots plus their transitive local dependencies), and the function
// summaries the flow analyzers share — which functions release a
// pool-acquired parameter, which return a pool-acquired value, which
// may block, and which are reachable from a //perf:hotpath annotation.
//
// Resolution is deliberately static: direct calls and method calls on
// concrete receivers resolve through go/types; calls through function
// values and interface methods have no static callee and contribute no
// edge. Each analyzer documents how it treats that blind spot.

// HotPathDirective is the doc-comment annotation that seeds the
// hotalloc analyzer: a function whose doc comment contains a line
// starting with this marker, plus everything statically reachable from
// it, must be free of allocating constructs.
const HotPathDirective = "//perf:hotpath"

// Program is the whole-run view shared by every analyzer pass: the
// root packages under analysis plus their transitive repo-local
// dependencies, and the lazily built call graph and interprocedural
// summaries. The engine is single-goroutine, so the lazy builds need
// no locking.
type Program struct {
	roots  []*Package
	all    []*Package
	isRoot map[*Package]bool

	graph     map[*types.Func]*funcNode
	funcOrder []*types.Func // deterministic iteration order

	hotBuilt bool
	// hotFrom maps every function in the hot closure to the name of
	// the annotated seed it is reachable from (itself, for seeds).
	hotFrom map[*types.Func]string

	sumBuilt bool
	// releasers[f] is the set of parameter indices that f hands to
	// (*sync.Pool).Put (directly or through another releaser) on some
	// path.
	releasers map[*types.Func]map[int]bool
	// acquirers is the set of functions whose return value derives
	// from (*sync.Pool).Get (directly or through another acquirer).
	acquirers map[*types.Func]bool
	// mayBlock[f] holds a short description of the blocking construct
	// that makes calling f potentially blocking (channel op, select,
	// or a blocking stdlib call), directly or transitively.
	mayBlock map[*types.Func]string

	cfgs map[*ast.BlockStmt]*CFG
}

type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// callees are the statically resolved calls in the body, in
	// source order, including calls made inside nested function
	// literals (conservative: the literal usually runs on behalf of
	// the enclosing function — deferred cleanups, par.Map bodies).
	callees []*types.Func
}

// newProgram collects roots plus transitive local dependencies.
func newProgram(roots []*Package) *Program {
	p := &Program{
		roots:  roots,
		isRoot: map[*Package]bool{},
		cfgs:   map[*ast.BlockStmt]*CFG{},
	}
	seen := map[*Package]bool{}
	var walk func(pkg *Package)
	walk = func(pkg *Package) {
		if seen[pkg] {
			return
		}
		seen[pkg] = true
		p.all = append(p.all, pkg)
		paths := make([]string, 0, len(pkg.Deps))
		for path := range pkg.Deps {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			walk(pkg.Deps[path])
		}
	}
	for _, pkg := range roots {
		p.isRoot[pkg] = true
		walk(pkg)
	}
	sort.Slice(p.all, func(i, j int) bool { return p.all[i].Path < p.all[j].Path })
	return p
}

// cfg memoizes BuildCFG per body across analyzers.
func (p *Program) cfg(body *ast.BlockStmt) *CFG {
	if c, ok := p.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(body)
	p.cfgs[body] = c
	return c
}

// callGraph builds (once) the static call graph over p.all.
func (p *Program) callGraph() map[*types.Func]*funcNode {
	if p.graph != nil {
		return p.graph
	}
	p.graph = map[*types.Func]*funcNode{}
	for _, pkg := range p.all {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{fn: fn, decl: fd, pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if callee := calleeFunc(pkg.Info, call); callee != nil {
							node.callees = append(node.callees, callee)
						}
					}
					return true
				})
				p.graph[fn] = node
				p.funcOrder = append(p.funcOrder, fn)
			}
		}
	}
	return p.graph
}

// hotClosure computes (once) the set of functions reachable from a
// //perf:hotpath annotation, mapped to the name of the annotated seed
// each was reached from.
func (p *Program) hotClosure() map[*types.Func]string {
	if p.hotBuilt {
		return p.hotFrom
	}
	p.hotBuilt = true
	graph := p.callGraph()
	p.hotFrom = map[*types.Func]string{}
	var queue []*types.Func
	for _, fn := range p.funcOrder {
		if hasHotPathDirective(graph[fn].decl) {
			p.hotFrom[fn] = fn.Name()
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		seed := p.hotFrom[fn]
		node := graph[fn]
		if node == nil {
			continue
		}
		for _, callee := range node.callees {
			if _, ok := p.hotFrom[callee]; ok {
				continue
			}
			p.hotFrom[callee] = seed
			queue = append(queue, callee)
		}
	}
	return p.hotFrom
}

// hasHotPathDirective reports whether the declaration's doc comment
// contains a //perf:hotpath line.
func hasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, HotPathDirective) {
			return true
		}
	}
	return false
}

// isPoolGet / isPoolPut recognize the sync.Pool methods.
func isPoolGet(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Get" && funcPkgPath(fn) == "sync" &&
		recvNamed(fn) == "Pool"
}

func isPoolPut(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Put" && funcPkgPath(fn) == "sync" &&
		recvNamed(fn) == "Pool"
}

// recvNamed returns the name of fn's receiver type ("Pool" for
// (*sync.Pool).Get), or "" for non-methods.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// summaries computes (once) the interprocedural releaser, acquirer,
// and may-block summaries by fixpoint over the call graph.
func (p *Program) summaries() {
	if p.sumBuilt {
		return
	}
	p.sumBuilt = true
	graph := p.callGraph()
	p.releasers = map[*types.Func]map[int]bool{}
	p.acquirers = map[*types.Func]bool{}
	p.mayBlock = map[*types.Func]string{}

	for changed := true; changed; {
		changed = false
		for _, fn := range p.funcOrder {
			node := graph[fn]
			if p.updateReleaser(node) {
				changed = true
			}
			if !p.acquirers[fn] && p.isAcquirerBody(node) {
				p.acquirers[fn] = true
				changed = true
			}
			if _, ok := p.mayBlock[fn]; !ok {
				if why := p.blockingWitness(node); why != "" {
					p.mayBlock[fn] = why
					changed = true
				}
			}
		}
	}
}

// updateReleaser scans node's body for parameters handed to
// (*sync.Pool).Put or to another releaser's releasing position, and
// merges them into the summary. Reports whether the summary grew.
func (p *Program) updateReleaser(node *funcNode) bool {
	params := paramObjects(node.pkg.Info, node.decl.Type)
	if len(params) == 0 {
		return false
	}
	set := p.releasers[node.fn]
	grew := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(node.pkg.Info, call)
		for ai, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			pi := paramIndex(params, node.pkg.Info.Uses[id])
			if pi < 0 {
				continue
			}
			releasing := isPoolPut(callee) ||
				(callee != nil && p.releasers[callee][ai])
			if !releasing {
				continue
			}
			if set == nil {
				set = map[int]bool{}
				p.releasers[node.fn] = set
			}
			if !set[pi] {
				set[pi] = true
				grew = true
			}
		}
		return true
	})
	return grew
}

// isAcquirerBody reports whether some return value of the body aliases
// the result of (*sync.Pool).Get or of a call to a known acquirer,
// tracking strict aliasing only (v := pool.Get().(*T); ...; return v).
// An expression that merely mentions the pooled value — err :=
// enc.Encode(buf) — does not alias it.
func (p *Program) isAcquirerBody(node *funcNode) bool {
	info := node.pkg.Info
	tainted := map[types.Object]bool{}
	// aliases reports whether e evaluates to a pool-acquired value:
	// the value of an acquiring call, or a local already known to hold
	// one, through parens and type assertions.
	aliases := func(e ast.Expr) bool {
		for {
			e = ast.Unparen(e)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ta.X
				continue
			}
			break
		}
		switch e := e.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			callee := calleeFunc(info, e)
			return isPoolGet(callee) || p.acquirers[callee]
		}
		return false
	}
	// Local taint runs to a fixpoint so assignments reached before
	// their sources (in loops) still converge.
	for changed := true; changed; {
		changed = false
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 || !aliases(as.Rhs[0]) {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
			return true
		})
	}
	acquires := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if aliases(res) {
				acquires = true
			}
		}
		return !acquires
	})
	return acquires
}

// blockingWitness returns a short description of the construct that
// makes node potentially blocking, or "". Function literals are not
// descended into: a closure only blocks its creator when called, and
// the call site (when static) carries the edge.
func (p *Program) blockingWitness(node *funcNode) string {
	info := node.pkg.Info
	why := ""
	inspectShallow(node.decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			why = "channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				why = "channel receive"
			}
		case *ast.SelectStmt:
			why = "select"
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if desc := blockingCallee(callee); desc != "" {
				why = desc
			} else if callee != nil {
				if inner, ok := p.mayBlock[callee]; ok {
					why = "call to " + callee.Name() + " (" + inner + ")"
				}
			}
		}
		return why == ""
	})
	return why
}

// blockingCallee classifies directly blocking stdlib calls: network
// I/O, sleeps, pool hand-backs, and WaitGroup waits.
func blockingCallee(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := funcPkgPath(fn)
	switch {
	case pkg == "net" || strings.HasPrefix(pkg, "net/"):
		return "network call " + pkg + "." + fn.Name()
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case isPoolPut(fn):
		return "sync.Pool.Put"
	case pkg == "sync" && fn.Name() == "Wait" && recvNamed(fn) == "WaitGroup":
		return "sync.WaitGroup.Wait"
	}
	return ""
}

// paramObjects returns the declared parameter objects in order.
func paramObjects(info *types.Info, ft *ast.FuncType) []types.Object {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

func paramIndex(params []types.Object, obj types.Object) int {
	if obj == nil {
		return -1
	}
	for i, p := range params {
		if p == obj {
			return i
		}
	}
	return -1
}
