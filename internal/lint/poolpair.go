package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolpair enforces sync.Pool Get/Put hygiene with a path-sensitive
// dataflow over the CFG plus the interprocedural acquirer/releaser
// summaries:
//
//   - a value acquired from a pool (directly via (*sync.Pool).Get, or
//     through an acquirer function like getRunner) must reach a Put —
//     direct, via a releaser function like putRunner, or registered
//     with defer — on every path out of the acquiring function;
//   - a value must not be used (or Put again) after it was returned to
//     the pool;
//   - when the pooled type defines a Reset method, a direct Put must be
//     preceded by a Reset call on the same value (deferred Puts accept
//     a Reset anywhere in the function, including inside the deferred
//     closure).
//
// Escapes end the obligation: returning the value (that is what makes
// the function an acquirer — its callers inherit the duty, and the
// summary propagates it), storing it into a field/map/slice/channel,
// capturing it in a non-defer closure, or taking its address. Calls
// through function values or interfaces have no static callee and are
// treated as plain uses — the value stays held, so a wrapper the
// analyzer cannot see through must be suppressed with a reason.
//
// Bodies containing goto are skipped (CFG bail-out), as are
// acquisitions the analyzer cannot bind to a single identifier.
func newPoolPair() *Analyzer {
	return &Analyzer{
		Name: "poolpair",
		Doc:  "sync.Pool values must be Put on every path, never used after Put, and Reset before Put when the type defines Reset",
		Run:  runPoolPair,
	}
}

// Per-path status of one acquisition, unioned into a bitmask.
const (
	ppHeld    uint8 = 1 << iota // acquired, no release seen
	ppHeldDef                   // acquired, deferred release registered
	ppDone                      // released, escaped, or rebound — tracking over, use-after-put armed only for released
	ppFreed                     // released (subset of done used for use-after-put)
)

type acquisition struct {
	node ast.Node     // the acquiring AssignStmt
	obj  types.Object // the local the value is bound to
	pos  token.Pos    // report position (the Get/acquirer call)
}

func runPoolPair(p *Pass) {
	p.Prog.summaries()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, body := range funcBodies(fd) {
				runPoolPairBody(p, body)
			}
		}
	}
}

func runPoolPairBody(p *Pass, body funcBody) {
	cfg := p.Prog.cfg(body.Body)
	if cfg.Unsupported {
		return
	}
	acqs := findAcquisitions(p, body)
	for _, acq := range acqs {
		checkAcquisition(p, body, cfg, acq)
	}
	// The Reset-before-Put check walks nested literals itself, so it
	// runs once per declaration, not per funcBody.
	if _, isDecl := body.Node.(*ast.FuncDecl); isDecl {
		checkResetBeforePut(p, body)
	}
}

// findAcquisitions locates statements binding a pool-acquired value to
// a single local identifier: v := pool.Get().(*T), v := getX().
func findAcquisitions(p *Pass, body funcBody) []acquisition {
	info := p.Pkg.Info
	var out []acquisition
	inspectShallow(body.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call := acquiringCall(p, as.Rhs[0])
		if call == nil {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		out = append(out, acquisition{node: as, obj: obj, pos: call.Pos()})
		return true
	})
	return out
}

// acquiringCall unwraps type assertions/conversions around a call to
// (*sync.Pool).Get or an acquirer function, returning the call.
func acquiringCall(p *Pass, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return acquiringCall(p, ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	callee := calleeFunc(p.Pkg.Info, call)
	if isPoolGet(callee) || p.Prog.acquirers[callee] {
		return call
	}
	return nil
}

// checkAcquisition runs the per-acquisition dataflow to a fixpoint and
// reports leaks, double Puts, and uses after Put.
func checkAcquisition(p *Pass, body funcBody, cfg *CFG, acq acquisition) {
	in := map[*Block]uint8{}
	reportedUse := false

	transfer := func(state uint8, n ast.Node) uint8 {
		if n == acq.node {
			return state | ppHeld
		}
		if state&(ppHeld|ppHeldDef|ppFreed) == 0 {
			return state
		}
		switch kind := releaseKind(p, n, acq.obj); kind {
		case releaseNow:
			if state&ppFreed != 0 && !reportedUse {
				p.Reportf(n.Pos(), "%s may be returned to the pool twice", acq.obj.Name())
				reportedUse = true
			}
			return (state &^ (ppHeld | ppHeldDef)) | ppDone | ppFreed
		case releaseDeferred:
			if state&ppHeld != 0 {
				return (state &^ ppHeld) | ppHeldDef
			}
			return state
		}
		if rebindsObject(p.Pkg.Info, n, acq.obj) {
			// The name holds a fresh value now; the old acquisition's
			// tracking (including its freed flag) ends here.
			return (state &^ (ppHeld | ppHeldDef | ppFreed)) | ppDone
		}
		if state&ppFreed != 0 && nodeMentions(p.Pkg.Info, n, acq.obj) && !reportedUse {
			p.Reportf(n.Pos(), "use of %s after it was returned to the pool", acq.obj.Name())
			reportedUse = true
		}
		if escapesObject(p.Pkg.Info, n, acq.obj) {
			return (state &^ (ppHeld | ppHeldDef)) | ppDone
		}
		return state
	}

	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		state := in[b]
		for _, n := range b.Nodes {
			state = transfer(state, n)
		}
		for _, succ := range b.Succs {
			if old := in[succ]; old|state != old {
				in[succ] = old | state
				work = append(work, succ)
			}
		}
	}
	if in[cfg.Exit]&ppHeld != 0 {
		p.Reportf(acq.pos, "pool-acquired value %s is not returned to the pool on every path (missing Put or deferred Put)", acq.obj.Name())
	}
}

type releaseClass int

const (
	releaseNone releaseClass = iota
	releaseNow
	releaseDeferred
)

// releaseKind classifies a CFG node as releasing obj now (Put or
// releaser call executed inline), releasing it at function exit
// (deferred Put/releaser, possibly wrapped in a closure), or not at
// all.
func releaseKind(p *Pass, n ast.Node, obj types.Object) releaseClass {
	switch n := n.(type) {
	case *ast.DeferStmt:
		if callReleases(p, n.Call, obj) {
			return releaseDeferred
		}
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok && litReleases(p, lit, obj) {
			return releaseDeferred
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && callReleases(p, call, obj) {
			return releaseNow
		}
	case *ast.GoStmt:
		// A goroutine releasing the value takes over the obligation.
		if callReleases(p, n.Call, obj) {
			return releaseNow
		}
	}
	return releaseNone
}

// callReleases reports whether call hands obj to (*sync.Pool).Put or
// to a releasing parameter of a known releaser.
func callReleases(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	callee := calleeFunc(p.Pkg.Info, call)
	if callee == nil {
		return false
	}
	for ai, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || p.Pkg.Info.Uses[id] != obj {
			continue
		}
		if isPoolPut(callee) || p.Prog.releasers[callee][ai] {
			return true
		}
	}
	return false
}

// litReleases reports whether the literal's body contains a releasing
// call of obj (the deferred-closure conditional-Put idiom).
func litReleases(p *Pass, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && callReleases(p, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// rebindsObject reports whether n assigns a new value to obj (which
// ends the old acquisition's tracking).
func rebindsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}

// escapesObject reports whether n lets obj outlive the function or
// aliases it beyond the analyzer's sight: returning it, storing it in
// a non-local lvalue or composite, sending it on a channel, capturing
// it in a (non-defer) closure, appending it, or taking its address.
func escapesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		return nodeMentions(info, n, obj)
	case *ast.SendStmt:
		return nodeMentions(info, n.Value, obj)
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				// Storing through a selector/index/deref: if the RHS
				// mentions obj it escapes into that structure.
				for _, rhs := range n.Rhs {
					if nodeMentions(info, rhs, obj) {
						return true
					}
				}
			}
		}
	}
	escaped := false
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if deepMentions(info, x.Body, obj) {
				escaped = true
			}
			return false
		case *ast.CompositeLit:
			if deepMentions(info, x, obj) {
				escaped = true
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND && deepMentions(info, x.X, obj) {
				escaped = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range x.Args[1:] {
					if deepMentions(info, arg, obj) {
						escaped = true
					}
				}
			}
		}
		return !escaped
	})
	return escaped
}

// deepMentions reports whether n mentions obj anywhere, including
// inside nested function literals.
func deepMentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// nodeMentions is deepMentions without descending into nested
// function literals (whose uses run on their own schedule and are
// judged by escape analysis above).
func nodeMentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	inspectShallow(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkResetBeforePut requires a Reset call before every direct
// (*sync.Pool).Put of a value whose type defines Reset. The Reset may
// appear anywhere earlier in the function; for a Put inside a deferred
// closure, anywhere in the function at all (the closure runs last).
func checkResetBeforePut(p *Pass, body funcBody) {
	info := p.Pkg.Info
	type putSite struct {
		call     *ast.CallExpr
		obj      types.Object
		deferred bool
	}
	var puts []putSite
	var resets []struct {
		obj types.Object
		pos token.Pos
	}
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
					// Args evaluate at the defer statement, not at exit.
					for _, a := range x.Call.Args {
						walk(a, inDefer)
					}
					return false
				}
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				callee := calleeFunc(info, x)
				if isPoolPut(callee) && len(x.Args) == 1 {
					if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							puts = append(puts, putSite{call: x, obj: obj, deferred: inDefer})
						}
					}
				}
				if callee != nil && callee.Name() == "Reset" {
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								resets = append(resets, struct {
									obj types.Object
									pos token.Pos
								}{obj, x.Pos()})
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(body.Body, false)
	for _, put := range puts {
		if !typeHasReset(put.obj.Type()) {
			continue
		}
		ok := false
		for _, r := range resets {
			if r.obj != put.obj {
				continue
			}
			if put.deferred || r.pos < put.call.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			p.Reportf(put.call.Pos(), "%s is returned to the pool without a Reset; type %s defines Reset", put.obj.Name(), put.obj.Type().String())
		}
	}
}

// typeHasReset reports whether t (or *t) has a Reset method.
func typeHasReset(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, "Reset")
	_, isFn := obj.(*types.Func)
	return isFn
}
