package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<pkg>, runs the named analyzers, and
// checks the diagnostics against the fixture's // want "regexp"
// comments: every want must be matched by a diagnostic on its line
// (the pattern is applied to "rule: message"), and every diagnostic
// must be claimed by a want. Suppressed cases are simply lines with a
// //lint:ignore directive and no want.
func runFixture(t *testing.T, pkg string, rules ...string) {
	t.Helper()
	runFixtureMulti(t, []string{pkg}, rules...)
}

// runFixtureMulti loads several fixture packages as one program.
// Cross-package diagnostics (a leaked acquirer, a hot-path callee in a
// dependency) land in whichever package owns the offending line, so
// wants are parsed from every loaded package's directory.
func runFixtureMulti(t *testing.T, pkgPaths []string, rules ...string) {
	t.Helper()
	pkgs, fset, err := Load(Config{Dir: filepath.Join("testdata", "src")}, pkgPaths...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", pkgPaths, err)
	}
	diags := Run(pkgs, fset, selectAnalyzers(t, rules))

	var wants []*want
	for _, pkg := range pkgs {
		wants = append(wants, parseWants(t, pkg.Dir)...)
	}
	for _, d := range diags {
		got := d.Rule + ": " + d.Message
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(got) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s:%d: %s", d.Pos.Filename, d.Pos.Line, got)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

func selectAnalyzers(t *testing.T, rules []string) []*Analyzer {
	t.Helper()
	all := NewAnalyzers()
	if len(rules) == 0 {
		return all
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, r := range rules {
		a, ok := byName[r]
		if !ok {
			t.Fatalf("no analyzer named %q", r)
		}
		out = append(out, a)
	}
	return out
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", path, i+1, line)
			}
			for _, q := range quoted {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", path, i+1, q, err)
				}
				wants = append(wants, &want{file: abs, line: i + 1, re: regexp.MustCompile(pat)})
			}
		}
	}
	return wants
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "sim", "determinism", "seed")
}

func TestDeterminismAllowlistFixture(t *testing.T) {
	runFixture(t, "serve", "determinism", "seed")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, "maporder", "maporder")
}

func TestSeedFixture(t *testing.T) {
	runFixture(t, "seeds", "seed")
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, "ctxpkg", "ctxflow")
}

func TestCtxFlowMainFixture(t *testing.T) {
	runFixture(t, "mainpkg", "ctxflow")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, "errdrop", "errdrop")
}

func TestObsNamesFixture(t *testing.T) {
	runFixture(t, "obsnames", "obsnames")
}

func TestResetFixture(t *testing.T) {
	runFixture(t, "reset", "reset")
}

func TestTickConvFixture(t *testing.T) {
	runFixture(t, "tickconv", "tickconv")
}

func TestPoolPairFixture(t *testing.T) {
	runFixtureMulti(t, []string{"poolpair", "poolpairdep"}, "poolpair")
}

func TestFloatCmpFixture(t *testing.T) {
	runFixtureMulti(t, []string{"floatcmp", "floatcmpdep"}, "floatcmp")
}

func TestLockSafeFixture(t *testing.T) {
	runFixtureMulti(t, []string{"locksafe", "locksafedep"}, "locksafe")
}

func TestHotAllocFixture(t *testing.T) {
	runFixtureMulti(t, []string{"hotalloc", "hotallocdep"}, "hotalloc")
}

// TestUnusedDirectiveFixture exercises the stale-suppression check: a
// //lint:ignore that suppresses nothing is itself reported, but only
// when every rule it names was part of the run.
func TestUnusedDirectiveFixture(t *testing.T) {
	runFixture(t, "unuseddir", "errdrop")
}

// TestDirectiveValidation pins the malformed-directive diagnostics
// explicitly (a malformed directive cannot carry a want comment: the
// comment text would become its reason).
func TestDirectiveValidation(t *testing.T) {
	pkgs, fset, err := Load(Config{Dir: filepath.Join("testdata", "src")}, "directive")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, fset, selectAnalyzers(t, []string{"errdrop"}))
	var got []string
	for _, d := range diags {
		got = append(got, strings.TrimPrefix(d.String(), pkgs[0].Dir+string(filepath.Separator)))
	}
	want := []string{
		"directive.go:9:2: directive: malformed //lint:ignore: want \"//lint:ignore <rule>[,<rule>] <reason>\"",
		"directive.go:10:2: errdrop: unchecked error returned by os.Remove",
		"directive.go:14:2: directive: //lint:ignore names unknown rule \"nosuchrule\"",
		"directive.go:15:2: errdrop: unchecked error returned by os.Remove",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}
