package lint

import (
	"go/ast"
	"go/token"
)

// This file is the intraprocedural half of the flow layer: a small
// control-flow-graph builder over go/ast function bodies, shared by
// the flow-shaped analyzers (poolpair, locksafe). It is deliberately
// statement-granular — a Block holds the statements and controlling
// expressions that execute straight-line, and analyses walk the nodes
// of each block in order under a worklist until their transfer
// functions reach a fixpoint.
//
// The builder models if/for/range/switch/type-switch/select, labeled
// break and continue, return, and fallthrough. It does not model goto:
// a body containing one sets Unsupported, and flow analyses are
// expected to stay silent on such functions rather than guess (the
// repository has none; a fixture pins the bail-out).

// Block is one basic block: nodes execute in order, control leaves to
// one of Succs afterwards.
type Block struct {
	// Nodes are the statements and controlling expressions of the
	// block, in execution order. Control-structure bodies are not
	// nested inside: an *ast.IfStmt contributes only its Init and Cond
	// here, with the branches in successor blocks.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters at.
	Entry *Block
	// Exit is a synthetic, empty block every return statement and the
	// fall-off-the-end path lead to. Deferred calls conceptually run
	// on the Exit edge.
	Exit *Block
	// Blocks lists every block, Entry first (unreachable blocks
	// included; analyses seed at Entry so they never visit them).
	Blocks []*Block
	// Unsupported is set when the body contains goto, which the
	// builder does not model. Flow analyses should skip the function.
	Unsupported bool
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return.
	b.jump(b.cfg.Exit)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type cfgScope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select scopes
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	scopes []cfgScope
	// label pending for the next loop/switch/select statement.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge cur→to and leaves cur pointing at a fresh,
// unreachable block (code after a terminator).
func (b *cfgBuilder) jump(to *Block) {
	b.cur.Succs = append(b.cur.Succs, to)
	b.cur = b.newBlock()
}

// edge adds cur→to without abandoning cur's position in the walk.
func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a labelable statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// The label names the wrapped statement for break/continue.
		// A label that is a goto target is handled by the goto case:
		// the builder bails on the goto itself.
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(b.cur, thenB)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(b.cur, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(b.cur, after)
		}
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, post)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		// The range head evaluates X each iteration entry; the body
		// statements live in their own blocks, so only X goes here
		// (the whole statement would double-count the body).
		head.Nodes = append(head.Nodes, s.X)
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(label, s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, nil)
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.selectClauses(label, s.Body.List)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(s, false); t != nil {
				b.jump(t)
			} else {
				b.cfg.Unsupported = true
			}
		case token.CONTINUE:
			if t := b.findScope(s, true); t != nil {
				b.jump(t)
			} else {
				b.cfg.Unsupported = true
			}
		case token.GOTO:
			b.cfg.Unsupported = true
		}
		// FALLTHROUGH is handled by caseClauses.
	default:
		// Assignments, declarations, expression/send/defer/go
		// statements, and anything else without internal control flow.
		b.add(s)
	}
}

// findScope resolves the target of a break or continue, optionally
// labeled. Continue skips non-loop scopes.
func (b *cfgBuilder) findScope(s *ast.BranchStmt, isContinue bool) *Block {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if isContinue && sc.continueTo == nil {
			continue
		}
		if label != "" && sc.label != label {
			continue
		}
		if isContinue {
			return sc.continueTo
		}
		return sc.breakTo
	}
	return nil
}

// caseClauses builds the blocks of a switch or type-switch body.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, _ *Block) {
	after := b.newBlock()
	entry := b.cur
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(entry, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
			b.cur = b.newBlock()
		} else {
			b.edge(b.cur, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	if !hasDefault {
		b.edge(entry, after)
	}
	b.cur = after
}

// selectClauses builds the blocks of a select body. Each comm clause's
// communication and body form one branch; a select without a default
// still gets an entry→after edge only through its cases (an empty
// select blocks forever and keeps no successors).
func (b *cfgBuilder) selectClauses(label string, clauses []ast.Stmt) {
	after := b.newBlock()
	entry := b.cur
	b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
	for _, cs := range clauses {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.edge(entry, body)
		b.cur = body
		b.add(cc.Comm)
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// inspectShallow walks n without descending into function literals:
// flow analyses reason about the enclosing function's execution, and a
// closure's body runs on its own schedule. The literal itself is still
// visited (so callers can flag or inspect it deliberately).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if !fn(x) {
			return false
		}
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}

// funcBody pairs a function-like node with its body: the declaration
// itself or any function literal nested inside it. Flow analyses treat
// each independently.
type funcBody struct {
	// Name is a display name: the declaration's name, with "func
	// literal" for nested literals.
	Name string
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Type is the function signature syntax.
	Type *ast.FuncType
	// Body is the function body.
	Body *ast.BlockStmt
}

// funcBodies returns the declaration's body followed by every
// function literal inside it, outermost first.
func funcBodies(fd *ast.FuncDecl) []funcBody {
	if fd.Body == nil {
		return nil
	}
	out := []funcBody{{Name: fd.Name.Name, Node: fd, Type: fd.Type, Body: fd.Body}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, funcBody{
				Name: "func literal in " + fd.Name.Name,
				Node: lit, Type: lit.Type, Body: lit.Body,
			})
		}
		return true
	})
	return out
}
