// Package cyca is half of an import cycle for loader error tests.
package cyca

import "cycb"

// X closes the cycle.
var X = cycb.Y
