// Package cycb is half of an import cycle for loader error tests.
package cycb

import "cyca"

// Y closes the cycle.
var Y = cyca.X
