// Package directive exercises validation of the //lint:ignore
// directives themselves: a malformed or unknown-rule directive is a
// diagnostic, and it suppresses nothing.
package directive

import "os"

func missingReason() {
	//lint:ignore errdrop
	os.Remove("a.tmp")
}

func unknownRule() {
	//lint:ignore nosuchrule reasons do not save an unknown rule
	os.Remove("b.tmp")
}
