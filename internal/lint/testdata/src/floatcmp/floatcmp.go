// Package floatcmp exercises the float-comparison analyzer: bare
// equality, the sanctioned tie-break-guard idiom, sentinel and NaN
// probes, and comparators with and without deterministic tie-breaks.
package floatcmp

import (
	"sort"

	"floatcmpdep"
)

type item struct {
	score float64
	id    int
}

// equalNoGuard decides something by float identity.
func equalNoGuard(a, b float64) bool {
	return a == b // want "floatcmp: floating-point == comparison"
}

// notEqualNoGuard is the != spelling of the same hazard.
func notEqualNoGuard(a, b float64) bool {
	return a != b // want "floatcmp: floating-point != comparison"
}

// tieBreakGuard is the sanctioned idiom: the != guards an ordering of
// the same pair, and equal keys fall through to a deterministic key.
func tieBreakGuard(a, b item) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.id < b.id
}

// sentinel compares against a constant: exempt.
func sentinel(x float64) bool {
	return x == 0
}

// nanProbe is the stdlib-free NaN test: exempt.
func nanProbe(x float64) bool {
	return x != x
}

// sortNoTieBreak leaves equal scores to the sort's whim.
func sortNoTieBreak(xs []item) {
	sort.Slice(xs, func(i, j int) bool { // want "floatcmp: sort.Slice comparator orders by floats"
		return xs[i].score < xs[j].score
	})
}

// sortWithTieBreak falls back to an integer key on equal scores.
func sortWithTieBreak(xs []item) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].score != xs[j].score {
			return xs[i].score < xs[j].score
		}
		return xs[i].id < xs[j].id
	})
}

// sortStableIsExempt: ties keep input order, which is deterministic.
func sortStableIsExempt(xs []item) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].score < xs[j].score })
}

type byScore []item

func (s byScore) Len() int      { return len(s) }
func (s byScore) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Less orders by floats alone.
func (s byScore) Less(i, j int) bool { // want "floatcmp: comparator Less orders by floats"
	return s[i].score < s[j].score
}

type byScoreThenIdx []item

func (s byScoreThenIdx) Len() int      { return len(s) }
func (s byScoreThenIdx) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Less has an index tie-break: exempt.
func (s byScoreThenIdx) Less(i, j int) bool {
	if s[i].score != s[j].score {
		return s[i].score < s[j].score
	}
	return i < j
}

// memoKeyEqual shows the escape hatch.
func memoKeyEqual(a, b float64) bool {
	//lint:ignore floatcmp exact bit-equality is the memo-key contract here
	return a == b
}

// usesDep keeps the dependency genuinely imported.
func usesDep(a, b float64) bool {
	return floatcmpdep.ExactEqual(a, b)
}
