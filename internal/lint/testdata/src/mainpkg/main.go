// Command mainpkg exercises the ctx-flow analyzer's main-package
// carve-out: roots of the context tree are created in main, so
// context.Background is legal here — unless the function already
// receives a context, in which case discarding it is still a bug.
package main

import "context"

func main() {
	ctx := context.Background() // legal: main owns the context root
	_ = run(ctx)
}

func run(ctx context.Context) error {
	return work(context.Background()) // want "ctxflow: context\\.Background discards the context this function already receives"
}

func work(ctx context.Context) error {
	_ = ctx
	return nil
}
