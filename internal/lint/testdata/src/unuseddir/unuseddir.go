// Package unuseddir exercises stale-suppression reporting: a
// //lint:ignore that suppresses nothing on its own or the next line is
// itself a finding, reported under the directive pseudo-rule.
package unuseddir

import "os"

// usedDirective suppresses a real errdrop finding: no report.
func usedDirective() {
	//lint:ignore errdrop best-effort cleanup on the failure path
	os.Remove("a.tmp")
}

// staleDirective suppresses nothing: the error below is returned, not
// dropped, so the directive itself is the finding.
func staleDirective() error {
	//lint:ignore errdrop nothing here drops an error // want "directive: unused //lint:ignore errdrop"
	return os.Remove("b.tmp")
}
