// Package maporder exercises the map-order analyzer: range-over-map
// bodies that let Go's randomized iteration order reach a slice or an
// output stream.
package maporder

import (
	"fmt"
	"sort"
)

// keysUnsorted leaks map order into the returned slice.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: append to keys inside range over map without a later sort"
	}
	return keys
}

// keysSorted is the idiomatic fix: collect, then sort.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysSortedOutside shows the sort being found past an enclosing
// block boundary, still within the function.
func keysSortedOutside(m map[string]int, collect bool) []string {
	var keys []string
	if collect {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// printDirect leaks map order straight into the output stream.
func printDirect(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "maporder: fmt\\.Println inside range over map"
	}
}

// send leaks map order into channel delivery order.
func send(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "maporder: channel send inside range over map"
	}
}

// keyed writes stay legal: the destination is indexed by the map's
// own key, so iteration order cannot matter.
func keyed(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// suppressed shows the escape hatch.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore maporder order is re-established by the caller before use
		keys = append(keys, k)
	}
	return keys
}
