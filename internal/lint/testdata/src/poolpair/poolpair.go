// Package poolpair exercises the pool-hygiene analyzer: leaks on some
// exit path, use-after-put, double put, Reset-before-Put, escapes via
// return, the goto bailout, and cross-package acquirer/releaser
// propagation through poolpairdep.
package poolpair

import (
	"bytes"
	"errors"
	"sync"

	"poolpairdep"
)

var errNope = errors.New("nope")

var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// leakOnErrorPath forgets the Put on the early return.
func leakOnErrorPath(fail bool) error {
	buf := bufPool.Get().(*bytes.Buffer) // want "poolpair: pool-acquired value buf is not returned to the pool on every path"
	if fail {
		return errNope
	}
	buf.Reset()
	bufPool.Put(buf)
	return nil
}

// deferredClosurePut releases on every path through a deferred
// closure; the Reset rides along inside it.
func deferredClosurePut() {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bufPool.Put(buf)
	}()
	buf.WriteString("x")
}

// putWithoutReset returns a resettable type to the pool dirty.
func putWithoutReset() {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.WriteString("x")
	bufPool.Put(buf) // want "poolpair: buf is returned to the pool without a Reset"
}

// useAfterPut reads the value after handing it back.
func useAfterPut() int {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	bufPool.Put(buf)
	return buf.Len() // want "poolpair: use of buf after it was returned to the pool"
}

// doublePut returns the same value twice.
func doublePut() {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	bufPool.Put(buf)
	bufPool.Put(buf) // want "poolpair: buf may be returned to the pool twice"
}

// escapeViaReturn transfers ownership out: this function becomes an
// acquirer itself, and its (nonexistent) callers would inherit the
// obligation.
func escapeViaReturn() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	return buf
}

// crossLeak acquires through the dependency's wrapper and loses the
// value on the early return: the acquirer summary crosses packages.
func crossLeak(fail bool) {
	t := poolpairdep.GetThing() // want "poolpair: pool-acquired value t is not returned to the pool on every path"
	if fail {
		return
	}
	poolpairdep.PutThing(t)
}

// crossClean releases through the dependency's releaser on the one
// path there is.
func crossClean() int {
	t := poolpairdep.GetThing()
	n := len(t.Buf)
	poolpairdep.PutThing(t)
	return n
}

// gotoBailout: goto is outside the CFG builder's model, so the whole
// function is skipped rather than misjudged.
func gotoBailout(fail bool) {
	buf := bufPool.Get().(*bytes.Buffer)
	if fail {
		goto out
	}
	buf.Reset()
	bufPool.Put(buf)
out:
	return
}

// suppressedLeak shows the escape hatch.
func suppressedLeak(fail bool) {
	//lint:ignore poolpair fixture: the early-return leak is acknowledged
	buf := bufPool.Get().(*bytes.Buffer)
	if fail {
		return
	}
	buf.Reset()
	bufPool.Put(buf)
}
