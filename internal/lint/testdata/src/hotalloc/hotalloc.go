// Package hotalloc exercises the zero-alloc analyzer: the deny-listed
// constructs inside annotated functions, propagation through local and
// cross-package calls, the allowed constructs, and the escape hatch.
package hotalloc

import (
	"fmt"

	"hotallocdep"
)

type point struct {
	x, y int
}

// Spin is an annotated seed; the obligation propagates to everything
// it statically reaches, including hotallocdep.Index.
//
//perf:hotpath
func Spin(keys []string, xs []int) int {
	m := hotallocdep.Index(keys)
	total := hotallocdep.Sum(xs) + localAlloc() + clean(xs)
	return total + len(m)
}

// localAlloc is unannotated but reachable from Spin.
func localAlloc() int {
	xs := []int{1, 2, 3} // want "hotalloc: slice literal in hot path .reachable from //perf:hotpath Spin."
	return len(xs)
}

// clean is reachable too, and allocation-free: no finding.
func clean(xs []int) int {
	acc := 0
	for _, x := range xs {
		acc += x
	}
	return acc
}

// notHot allocates freely: nothing annotated reaches it.
func notHot() []int {
	return make([]int, 8)
}

// constructs is its own seed and trips each deny-listed construct
// once; the by-value struct literal and the append are allowed.
//
//perf:hotpath
func constructs(s string, xs []int, v point) int {
	f := func() int { return 1 } // want "hotalloc: closure creation in hot path"
	m := map[int]int{}           // want "hotalloc: map literal in hot path"
	p := new(int)                // want "hotalloc: new in hot path"
	bp := &point{1, 2}           // want "hotalloc: address-taken composite literal in hot path"
	s2 := s + "!"                // want "hotalloc: string concatenation in hot path"
	bs := []byte(s)              // want "hotalloc: string conversion in hot path"
	var box interface{} = 0
	box = interface{}(v) // want "hotalloc: interface conversion .boxing. in hot path"
	fmt.Println(s2, box) // want "hotalloc: fmt.Println call in hot path"
	onStack := point{3, 4}
	xs = append(xs, onStack.x, onStack.y)
	return f() + len(m) + *p + bp.x + len(bs) + len(xs)
}

// coldError shows the escape hatch on a cold error path.
//
//perf:hotpath
func coldError(fail bool) error {
	if fail {
		//lint:ignore hotalloc cold error path: the run is over, allocation is fine
		return fmt.Errorf("spin failed")
	}
	return nil
}

// The remainder mirrors the shape of the simulator's open replay loop
// (FlatOpenRunner.replaySpan): an annotated method whose obligation
// flows through method calls and pointer-threaded scratch slices, with
// value-struct event pushes and cohort merges that must stay allowed,
// a lazy first-use init behind the escape hatch, and a per-call make
// that must still be caught through the method chain.

type event struct {
	t int64
	m int32
}

type cohort struct {
	t    int64
	mask uint64
}

type replayRunner struct {
	wheel  []event
	parks  []cohort
	lookup []int32
}

//perf:hotpath
func (r *replayRunner) replaySpan(ts []int64) int {
	r.ensureLookup(len(ts))
	for _, t := range ts {
		// Value literal into an append: the allowed steady-state push.
		r.wheel = append(r.wheel, event{t: t, m: int32(len(r.wheel))})
		r.parks = parkMerge(r.parks, t, 1)
	}
	return len(r.wheel) + r.scratch()
}

// parkMerge is reachable from the seed; its append reuses capacity in
// the steady state, so it carries no finding.
func parkMerge(parks []cohort, t int64, mask uint64) []cohort {
	for i := range parks {
		if parks[i].t == t {
			parks[i].mask |= mask
			return parks
		}
	}
	return append(parks, cohort{t: t, mask: mask})
}

// ensureLookup allocates only on a runner's first use, behind the
// escape hatch — the wheel's lazy ring init uses the same shape.
func (r *replayRunner) ensureLookup(n int) {
	if r.lookup == nil {
		//lint:ignore hotalloc one-time lazy init; steady-state calls reuse it
		r.lookup = make([]int32, n)
	}
}

// scratch allocates on every call and is reachable from the annotated
// method: the finding must name the method seed.
func (r *replayRunner) scratch() int {
	tmp := make([]int, 4) // want "hotalloc: make in hot path .reachable from //perf:hotpath replaySpan."
	return len(tmp)
}
