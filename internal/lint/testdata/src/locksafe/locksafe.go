// Package locksafe exercises the lock-discipline analyzer: unlocks
// missing on some return path, defer and all-paths release, RWMutex
// read locks, blocking operations while holding a lock (directly and
// through a cross-package call), and the control-flow shapes the CFG
// has to thread a lock state through.
package locksafe

import (
	"errors"
	"sync"
	"time"

	"locksafedep"
)

var errOops = errors.New("oops")

type counter struct {
	mu sync.Mutex
	n  int
}

// missingUnlockOnError forgets the Unlock on the early return.
func missingUnlockOnError(c *counter, fail bool) error {
	c.mu.Lock() // want "locksafe: c.mu.Lock\\(\\) is not released on every return path"
	if fail {
		return errOops
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// deferUnlockClean releases by defer.
func deferUnlockClean(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// inlineUnlockClean releases explicitly on every path.
func inlineUnlockClean(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errOops
	}
	c.n++
	c.mu.Unlock()
	return nil
}

type registry struct {
	mu sync.RWMutex
	m  map[string]int
}

// rlockLeak forgets the RUnlock on the miss path; read locks are
// tracked separately from write locks.
func rlockLeak(r *registry, key string) (int, bool) {
	r.mu.RLock() // want "locksafe: r.mu.RLock\\(\\) is not released on every return path"
	if v, ok := r.m[key]; ok {
		r.mu.RUnlock()
		return v, true
	}
	return 0, false
}

// sendWhileLocked performs a channel send with the mutex held.
func sendWhileLocked(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want "locksafe: potentially blocking operation .channel send. while c.mu is locked"
}

// sleepWhileLocked holds the mutex across a sleep.
func sleepWhileLocked(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want "locksafe: potentially blocking operation .time.Sleep. while c.mu is locked"
}

// blockingCrossPackage reaches a channel send two calls away, in
// another package.
func blockingCrossPackage(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	locksafedep.Relay(ch, c.n) // want "locksafe: potentially blocking operation .call to Relay"
}

// pureCallWhileLocked calls a summarized non-blocking helper: fine.
func pureCallWhileLocked(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = locksafedep.Pure(c.n)
}

// sendAfterUnlock releases first, then blocks: fine.
func sendAfterUnlock(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

// selectAfterUnlock exercises the select CFG shape outside any lock.
func selectAfterUnlock(c *counter, a, b chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	select {
	case v := <-a:
		_ = v
	case b <- n:
	}
}

// labeledLoops threads the held-state through labeled break and
// continue before a straightforward locked section.
func labeledLoops(c *counter, xs []int) int {
	total := 0
outer:
	for i := 0; i < len(xs); i++ {
		for _, v := range xs {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	c.mu.Lock()
	c.n = total
	c.mu.Unlock()
	return total
}

// switchFallthrough holds the lock across a switch with fallthrough:
// every arm reaches the Unlock.
func switchFallthrough(c *counter, k int) {
	c.mu.Lock()
	switch k {
	case 0:
		c.n++
		fallthrough
	case 1:
		c.n += 2
	default:
		c.n = 0
	}
	c.mu.Unlock()
}

// suppressedHandoff shows the escape hatch.
func suppressedHandoff(c *counter, fail bool) {
	//lint:ignore locksafe fixture: the unlock happens in a callback the analyzer cannot see
	c.mu.Lock()
	if fail {
		return
	}
	c.mu.Unlock()
}
