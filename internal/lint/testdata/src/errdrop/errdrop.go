// Package errdrop exercises the err-drop analyzer: error returns
// silently discarded as bare expression statements.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

// drop silently discards os.Remove's error.
func drop() {
	os.Remove("stale.tmp") // want "errdrop: unchecked error returned by os\\.Remove"
}

// dropMulti discards the error half of a multi-return.
func dropMulti() {
	os.Create("scratch.tmp") // want "errdrop: unchecked error returned by os\\.Create"
}

// checked handles the error and stays legal.
func checked() error {
	if err := os.Remove("stale.tmp"); err != nil {
		return err
	}
	return nil
}

// blankIsExplicit stays legal: assigning to _ is a visible,
// reviewable statement of intent, unlike a bare call.
func blankIsExplicit() {
	_ = os.Remove("stale.tmp")
}

// allowlisted: fmt's print family and the never-failing builders.
func printing(sb *strings.Builder) {
	fmt.Println("status")
	fmt.Fprintf(sb, "chunk %d", 1)
	sb.WriteString("chunk")
}

// suppressed shows the escape hatch.
func suppressed() {
	//lint:ignore errdrop best-effort cleanup on the failure path
	os.Remove("stale.tmp")
}

// suppressedInline shows the trailing-comment form of the directive.
func suppressedInline() {
	os.Remove("stale.tmp") //lint:ignore errdrop best-effort cleanup on the failure path
}
