// Package hotallocdep supplies callees for the cross-package
// hot-closure test: the annotation lives in the root package, the
// allocation in this one.
package hotallocdep

// Index allocates a map; it is only a finding because the root's
// annotated Spin reaches it through the call graph.
func Index(keys []string) map[string]int {
	out := make(map[string]int, len(keys)) // want "hotalloc: make in hot path .reachable from //perf:hotpath Spin."
	for i, k := range keys {
		out[k] = i
	}
	return out
}

// Sum is allocation-free and equally reachable: no finding.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
