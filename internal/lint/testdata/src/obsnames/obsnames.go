// Package obsnames exercises the obs-names analyzer: metric names
// passed to the obs registry must be compile-time constant strings,
// and one name must stay one metric kind.
package obsnames

import (
	"internal/obs"
)

// Literal and named-constant names are sanctioned.
var requests = obs.GetCounter("svc.requests")

const hitsName = "svc.cache." + "hits"

var hits = obs.GetCounter(hitsName)

var latency = obs.GetTimer("svc.latency")

// dynamic computes a name at call time: unbounded cardinality.
func dynamic(route string) {
	obs.GetCounter("svc.route." + route).Inc() // want "obsnames: metric name passed to obs\\.GetCounter must be a compile-time constant string"
}

// conflict re-registers a counter name as a gauge.
func conflict() {
	obs.GetGauge("svc.requests").Set(1) // want "obsnames: metric \"svc\\.requests\" registered as gauge here but as counter"
}

// suppressed shows the escape hatch for bounded computed names.
func suppressed(shard int) {
	//lint:ignore obsnames shard count is fixed at process start, so the name set is bounded
	obs.GetCounter(name(shard)).Inc()
}

func name(shard int) string {
	return "svc.shard." + string(rune('0'+shard))
}
