// Package ctxpkg exercises the ctx-flow analyzer in a non-main
// package: fresh root contexts are forbidden, and a received context
// must be threaded through.
package ctxpkg

import "context"

// fresh creates a root context in library code.
func fresh() context.Context {
	return context.Background() // want "ctxflow: context\\.Background outside package main"
}

// todo is no better.
func todo() context.Context {
	return context.TODO() // want "ctxflow: context\\.TODO outside package main"
}

// dropped receives a context and then discards it for a callee.
func dropped(ctx context.Context) error {
	return dial(context.Background()) // want "ctxflow: context\\.Background discards the context this function already receives"
}

// droppedInClosure shows the check seeing through function literals:
// the closure still has the caller's ctx in scope.
func droppedInClosure(ctx context.Context) func() error {
	return func() error {
		return dial(context.TODO()) // want "ctxflow: context\\.TODO discards the context this function already receives"
	}
}

// threaded is the sanctioned form.
func threaded(ctx context.Context) error {
	return dial(ctx)
}

func dial(ctx context.Context) error {
	_ = ctx
	return nil
}

// suppressed shows the escape hatch for genuinely detached lifecycles.
func suppressed() context.Context {
	//lint:ignore ctxflow fixture-sanctioned detached lifecycle context
	return context.Background()
}
