// Package serve is a determinism true-negative fixture: its
// import-path tail is on the nondeterminism allowlist (the serving
// layer genuinely needs deadlines and wall-clock time), so none of
// the reads below may produce a diagnostic.
package serve

import "time"

// stamp reads the wall clock, legally.
func stamp() time.Time { return time.Now() }

// race selects over two channels, legally.
func race(a, b <-chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
