// Package reset exercises the reset analyzer: pointer-receiver Reset
// methods must mention every field of their struct, or stale state
// from a previous pooled use can leak into the next run.
package reset

// Runner resets every field: clean.
type Runner struct {
	buf   []int
	count int
}

func (r *Runner) Reset(n int) {
	r.buf = r.buf[:0]
	r.count = 0
	_ = n
}

// Leaky forgets its trace field — the exact bug the analyzer targets:
// a field added after Reset was written.
type Leaky struct {
	buf   []int
	trace []string
}

func (l *Leaky) Reset() { // want "reset: Reset never mentions field \"trace\""
	l.buf = l.buf[:0]
}

// Wholesale uses the `*w = Wholesale{}` idiom: every field is
// overwritten at once, so no field-by-field mentions are needed.
type Wholesale struct {
	a int
	b string
}

func (w *Wholesale) Reset() {
	*w = Wholesale{}
}

// Embedded promotes Inner's fields; mentioning the embedded field
// itself (directly or via promotion) counts.
type Inner struct{ x int }

type Embedded struct {
	Inner
	y int
}

func (e *Embedded) Reset() {
	e.Inner = Inner{}
	e.y = 0
}

// Promoted touches the embedded struct only through a promoted field
// access; that still marks the embedded field as handled.
type Promoted struct {
	Inner
}

func (p *Promoted) Reset() {
	p.x = 0
}

// Valuer has a value receiver: it resets a copy, which is always a
// bug.
type Valuer struct {
	n int
}

func (v Valuer) Reset() { // want "reset: Reset has a value receiver"
	v.n = 0
}

// Delegated hides its reset behind a helper; the analyzer cannot see
// through the call, so the suppression documents the contract.
type Delegated struct {
	data []int
}

//lint:ignore reset clearAll re-initializes data; verified by TestDelegatedReset
func (d *Delegated) Reset() {
	d.clearAll()
}

func (d *Delegated) clearAll() {
	d.data = d.data[:0]
}

// NonStruct is not a struct; Reset on it is out of scope.
type NonStruct []int

func (n *NonStruct) Reset() {
	*n = (*n)[:0]
}
