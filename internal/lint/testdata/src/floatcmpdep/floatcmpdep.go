// Package floatcmpdep carries its own finding, so the multi-package
// fixture shows diagnostics landing in every loaded root.
package floatcmpdep

// ExactEqual compares floats for identity with no guard.
func ExactEqual(a, b float64) bool {
	return a == b // want "floatcmp: floating-point == comparison"
}
