// Package sim is a determinism fixture: its import-path tail matches
// the repo's deterministic simulator package, so the deny-by-default
// policy applies. Run with the determinism and seed analyzers.
package sim

import (
	"math/rand"
	"time"
)

// wallClock trips the wall-clock checks twice.
func wallClock() time.Duration {
	start := time.Now() // want "determinism: wall-clock call time\\.Now"
	return time.Since(start) // want "determinism: wall-clock call time\\.Since"
}

// pure shows that time.Duration arithmetic stays legal: only clock
// reads are flagged, not the time package's value types.
func pure(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

// globalRand trips both the determinism rule (global source) and the
// seed rule (math/rand at all) on the same token.
func globalRand() int {
	return rand.Intn(6) // want "determinism: global math/rand source" "seed: math/rand is off-limits"
}

// racy trips the multi-way select check.
func racy(a, b <-chan int) int {
	select { // want "determinism: select over 2 cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// single-case selects stay legal: there is only one way they can
// complete, so no scheduler choice leaks.
func blocking(a <-chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// suppressed shows the escape hatch: a well-formed //lint:ignore with
// a reason silences the rule on the next line.
func suppressed() time.Time {
	//lint:ignore determinism fixture demonstrates a sanctioned wall-clock read
	return time.Now()
}
