// Package locksafedep supplies blocking helpers, so the root fixture
// can exercise the cross-package may-block summary.
package locksafedep

// Notify blocks directly: it sends on an unbuffered channel.
func Notify(ch chan int, v int) {
	ch <- v
}

// Relay blocks transitively through Notify.
func Relay(ch chan int, v int) {
	Notify(ch, v)
}

// Pure is a non-blocking helper.
func Pure(v int) int {
	return v * 2
}
