// Package tickconv exercises the tick-conversion analyzer: every
// float→tick conversion must go through tick.FromSeconds so all call
// sites share one rounding rule. Run with the tickconv analyzer only.
package tickconv

import "internal/tick"

// direct hand-rolls the conversion: truncation instead of rounding,
// and no finiteness check.
func direct(sec float64) tick.Tick {
	return tick.Tick(sec * 1e9) // want "tickconv: float converted to tick.Tick directly"
}

// viaPerSecond is the same bug dressed up with the real constant.
func viaPerSecond(sec float64) tick.Tick {
	return tick.Tick(sec * float64(tick.PerSecond)) // want "tickconv: float converted to tick.Tick directly"
}

// truncateThenWrap launders the float through int64 first.
func truncateThenWrap(sec float64) tick.Tick {
	return tick.Tick(int64(sec * 1e9)) // want "tickconv: float truncated to integer then converted to tick.Tick"
}

// constConversion converts an untyped constant, which the compiler
// only admits when it is exactly representable: clean.
func constConversion() tick.Tick {
	return tick.Tick(1.5e9)
}

// sanctioned goes through FromSeconds: clean.
func sanctioned(sec float64) (tick.Tick, error) {
	return tick.FromSeconds(sec)
}

// integerMath converts plain integer state: clean. Tick arithmetic on
// already-converted values is the engine's whole point.
func integerMath(n int64) tick.Tick {
	return tick.Tick(n) * 2
}

// suppressed documents a deliberate raw conversion.
func suppressed(sec float64) tick.Tick {
	//lint:ignore tickconv fixture exercises the suppression path
	return tick.Tick(sec * 1e9)
}
