// Package poolpairdep supplies the pooled type and its acquire/release
// wrappers, so the root fixture can exercise the cross-package
// acquirer/releaser summaries.
package poolpairdep

import "sync"

// Thing is the pooled type. It defines Reset, so direct Puts of a
// Thing must be preceded by one.
type Thing struct {
	Buf []byte
}

// Reset clears the buffer for reuse.
func (t *Thing) Reset() { t.Buf = t.Buf[:0] }

var pool = sync.Pool{New: func() interface{} { return new(Thing) }}

// GetThing is an acquirer: its result strictly aliases pool.Get, so
// callers inherit the Put obligation.
func GetThing() *Thing {
	t := pool.Get().(*Thing)
	return t
}

// PutThing is a releaser for its parameter: Reset, then Put.
func PutThing(t *Thing) {
	t.Reset()
	pool.Put(t)
}
