// Package obs is a minimal stand-in for repro/internal/obs, just
// enough surface for the obs-names fixtures to type-check. The
// analyzers match it by its import-path tail, internal/obs.
package obs

// Counter mirrors the real monotone counter.
type Counter struct{}

// Inc bumps the counter.
func (*Counter) Inc() {}

// Gauge mirrors the real two-way level.
type Gauge struct{}

// Set overwrites the gauge.
func (*Gauge) Set(v int64) { _ = v }

// Timer mirrors the real duration accumulator.
type Timer struct{}

// GetCounter mirrors repro/internal/obs.GetCounter.
func GetCounter(name string) *Counter { _ = name; return new(Counter) }

// GetGauge mirrors repro/internal/obs.GetGauge.
func GetGauge(name string) *Gauge { _ = name; return new(Gauge) }

// GetTimer mirrors repro/internal/obs.GetTimer.
func GetTimer(name string) *Timer { _ = name; return new(Timer) }
