// Package tick is a minimal stand-in for repro/internal/tick, just
// enough surface for the tickconv fixtures to type-check. The
// analyzer matches it by its import-path tail, internal/tick.
package tick

// Tick mirrors the real fixed-point time unit.
type Tick int64

// PerSecond mirrors the real resolution constant.
const PerSecond Tick = 1_000_000_000

// FromSeconds mirrors the sanctioned conversion.
func FromSeconds(s float64) (Tick, error) { return Tick(s * float64(PerSecond)), nil }
