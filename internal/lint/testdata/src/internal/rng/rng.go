// Package rng is a minimal stand-in for repro/internal/rng, just
// enough surface for the seed-discipline fixtures to type-check. The
// analyzers match it by its import-path tail, internal/rng.
package rng

// Source mirrors the real deterministic generator.
type Source struct{ state uint64 }

// New mirrors repro/internal/rng.New.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.state++
	return s.state
}
