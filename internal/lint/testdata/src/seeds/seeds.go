// Package seeds exercises the seed-discipline analyzer: every random
// stream must come from internal/rng with an explicit deterministic
// seed expression. Run with the seed analyzer only.
package seeds

import (
	"time"

	"math/rand"

	"internal/rng"
)

// mathRand reaches for math/rand at all, which is off-limits
// everywhere: its streams are implicit or Go-version-dependent.
func mathRand() int64 {
	src := rand.NewSource(7) // want "seed: math/rand is off-limits"
	return src.Int63()
}

// clockSeed launders the wall clock into an rng seed.
func clockSeed() *rng.Source {
	return rng.New(uint64(time.Now().UnixNano())) // want "seed: rng\\.New seeded from the clock"
}

// explicit is the sanctioned form: a literal (or otherwise
// deterministic) seed expression.
func explicit() *rng.Source {
	return rng.New(42)
}

// derived seeds from another deterministic stream, also sanctioned.
func derived(parent *rng.Source) *rng.Source {
	return rng.New(parent.Uint64())
}

// suppressed shows the escape hatch.
func suppressed() *rng.Source {
	//lint:ignore seed fixture-sanctioned clock seed for a non-replayed path
	return rng.New(uint64(time.Now().UnixNano()))
}
