package alpha
