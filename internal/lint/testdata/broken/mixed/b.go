package beta
