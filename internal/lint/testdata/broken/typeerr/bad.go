// Package typeerr fails to type-check.
package typeerr

var x = undefinedIdentifier
