// Package parsebad fails to parse.
package parsebad

func broken( {
