package lint

import (
	"go/ast"
	"go/types"
)

// newReset builds the reset analyzer. The repo pools run state
// (sim.Runner, sched.Schedule, placement.Placement, …) and the byte-
// identity guarantee rests on each type's Reset method re-initializing
// every field: a field Reset forgets keeps its value from the previous
// pooled use, and whether that stale value reaches the output depends
// on pool hit patterns — the exact nondeterminism this suite exists to
// keep out of the tree.
//
// The analyzer flags every pointer-receiver method named Reset on a
// struct type whose body never mentions one of the struct's fields
// (through the receiver, or through a wholesale `*r = T{…}`
// overwrite). Mentioning a field is a deliberately weak proxy for
// resetting it — the analyzer cannot prove the mention re-initializes
// — but the failure mode it targets is a field *added later* and
// forgotten entirely, which mention-tracking catches exactly.
// Delegating a field's reset to a helper still counts when spelled
// r.field.helper() or helper(r.field); delegation that hides the
// field (r.clearAll()) needs a //lint:ignore with the reason.
func newReset() *Analyzer {
	return &Analyzer{
		Name: "reset",
		Doc:  "flag Reset methods that never mention a field of their struct",
		Run:  runReset,
	}
}

func runReset(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Reset" || fd.Recv == nil ||
				len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			checkReset(p, fd)
		}
	}
}

func checkReset(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	recv := fd.Recv.List[0]
	ptr, ok := info.TypeOf(recv.Type).(*types.Pointer)
	if !ok {
		// A value-receiver Reset cannot re-initialize the caller's copy
		// at all; that is a bug in its own right, worth its own report.
		if st, ok := info.TypeOf(recv.Type).Underlying().(*types.Struct); ok && st.NumFields() > 0 {
			p.Reportf(fd.Name.Pos(), "Reset has a value receiver: it mutates a copy, the caller's fields keep their stale state")
		}
		return
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return
	}
	var recvObj types.Object
	if len(recv.Names) == 1 {
		recvObj = info.Defs[recv.Names[0]]
	}

	touched := make(map[*types.Var]bool, st.NumFields())
	all := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// `*r = T{…}` overwrites every field at once.
			for _, lhs := range n.Lhs {
				if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok && recvObj != nil {
					if id, ok := ast.Unparen(star.X).(*ast.Ident); ok && info.Uses[id] == recvObj {
						all = true
					}
				}
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if recvObj == nil || !mentionsObject(info, n.X, recvObj) {
				return true
			}
			// For promoted fields the first index step names the
			// receiver struct's own (embedded) field.
			if idx := sel.Index(); len(idx) > 0 {
				touched[st.Field(idx[0])] = true
			}
		}
		return true
	})
	if all {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if touched[f] {
			continue
		}
		p.Reportf(fd.Name.Pos(), "Reset never mentions field %q of %s: stale state survives pooled reuse", f.Name(), ptr.Elem())
	}
}
