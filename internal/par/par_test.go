package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMapOrdering(t *testing.T) {
	got := Map(100, 0, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v", got)
	}
	if got := Map(-3, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(-3) = %v", got)
	}
}

func TestMapSingle(t *testing.T) {
	got := Map(1, 0, func(i int) string { return "x" })
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("Map(1) = %v", got)
	}
}

func TestMapLimitRespected(t *testing.T) {
	var active, peak int64
	Map(64, 2, func(i int) int {
		cur := atomic.AddInt64(&active, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&active, -1)
		return i
	})
	if p := atomic.LoadInt64(&peak); p > 2 {
		t.Fatalf("peak concurrency %d exceeds limit 2", p)
	}
}

func TestMapConcurrentWorkers(t *testing.T) {
	// With an explicit worker count the pool path runs even on a
	// single-core machine: sleeping workers overlap.
	var peak, active int64
	Map(16, 4, func(i int) int {
		cur := atomic.AddInt64(&active, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt64(&active, -1)
		return i
	})
	if p := atomic.LoadInt64(&peak); p < 2 {
		t.Fatalf("peak concurrency %d, want >= 2 with 4 workers", p)
	}
}

func TestMapPanicPropagatesFromPool(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated from pool path")
		}
	}()
	Map(32, 4, func(i int) int {
		if i == 17 {
			panic("boom")
		}
		time.Sleep(time.Millisecond)
		return i
	})
}

func TestMapDeterministicProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 200)
		a := Map(n, 0, func(i int) int { return 31*i + 7 })
		b := Map(n, 3, func(i int) int { return 31*i + 7 })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated")
		}
	}()
	Map(32, 0, func(i int) int {
		if i == 17 {
			panic("boom")
		}
		return i
	})
}
