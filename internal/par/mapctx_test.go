package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

type ctxItem struct {
	ran bool
	val int
}

func TestMapCtxCompletes(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out, err := MapCtx(context.Background(), 20, workers, func(i int) ctxItem {
			return ctxItem{ran: true, val: i * i}
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, it := range out {
			if !it.ran || it.val != i*i {
				t.Fatalf("workers=%d: out[%d] = %+v", workers, i, it)
			}
		}
	}
}

func TestMapCtxStopsFeedingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	// The very first item cancels the context; the feeder's select then
	// sees Done while ~98 indices remain. A handful of extra items may
	// still slip through the racing select, but feeding all of them has
	// probability 2^-98 — the assertions below are on the aggregate.
	out, err := MapCtx(ctx, 100, 2, func(i int) ctxItem {
		ran.Add(1)
		cancel()
		return ctxItem{ran: true}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 100 {
		t.Fatalf("cancellation did not stop the feeder: %d items ran", got)
	}
	undone := 0
	for _, it := range out {
		if !it.ran {
			undone++
		}
	}
	if undone == 0 {
		t.Fatal("expected some items to be skipped after cancel")
	}
}

func TestMapCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapCtx(ctx, 10, 1, func(i int) ctxItem {
		if i == 3 {
			cancel()
		}
		return ctxItem{ran: true}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i, it := range out {
		if it.ran != (i <= 3) {
			t.Fatalf("out[%d].ran = %v", i, it.ran)
		}
	}
}

func TestMapCtxPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	MapCtx(context.Background(), 8, 4, func(i int) int {
		if i == 5 {
			panic("boom")
		}
		return i
	})
}

func TestMapCtxZeroItems(t *testing.T) {
	out, err := MapCtx(context.Background(), 0, 4, func(i int) int { return i })
	if out != nil || err != nil {
		t.Fatalf("got %v, %v", out, err)
	}
}
