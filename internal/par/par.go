// Package par provides a small deterministic fork–join helper for the
// experiment harness: independent trials run concurrently on up to
// GOMAXPROCS goroutines while results land at their input index, so
// parallel runs are bit-identical to sequential ones. Determinism
// additionally requires that the work function not share mutable
// state — the harness achieves that by pre-drawing RNG seeds before
// fanning out.
package par

import (
	"runtime"
	"sync"
)

// Map computes fn(0..n-1) concurrently and returns the results in
// index order. workers > 0 sets the worker count explicitly;
// workers ≤ 0 selects GOMAXPROCS. The count is always capped at n.
// A panicking fn propagates to the caller.
func Map[T any](n int, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var wg sync.WaitGroup
	next := make(chan int)
	// Propagate the first panic after all workers stop.
	var panicOnce sync.Once
	var panicked interface{}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Drain remaining indices so the feeder can finish.
					for range next {
					}
				}
			}()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}
