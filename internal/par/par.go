// Package par provides a small deterministic fork–join helper for the
// experiment harness: independent trials run concurrently on up to
// GOMAXPROCS goroutines while results land at their input index, so
// parallel runs are bit-identical to sequential ones. Determinism
// additionally requires that the work function not share mutable
// state — the harness achieves that by pre-drawing RNG seeds before
// fanning out.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Map computes fn(0..n-1) concurrently and returns the results in
// index order. workers > 0 sets the worker count explicitly;
// workers ≤ 0 selects GOMAXPROCS. The count is always capped at n.
// A panicking fn propagates to the caller.
func Map[T any](n int, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var wg sync.WaitGroup
	next := make(chan int)
	// Propagate the first panic after all workers stop.
	var panicOnce sync.Once
	var panicked any

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Drain remaining indices so the feeder can finish.
					for range next {
					}
				}
			}()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// MapCtx is Map with cooperative cancellation: once ctx is done no new
// index is handed to a worker, already-running fn calls finish, and
// the ctx error is returned. Indices that were never dispatched keep
// their zero value in the result slice, so callers that must
// distinguish "ran" from "skipped" should have fn set a marker in T.
// The serving layer uses this to stop a batch fan-out the moment a
// request deadline expires instead of burning workers on doomed items.
func MapCtx[T any](ctx context.Context, n int, workers int, fn func(i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			out[i] = fn(i)
		}
		return out, ctx.Err()
	}

	var wg sync.WaitGroup
	next := make(chan int)
	var panicOnce sync.Once
	var panicked any

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					for range next {
					}
				}
			}()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out, ctx.Err()
}
