// Package loadgen drives sustained load against the serving tier
// (frontd, clusterd, or schedd — anything speaking POST /v1/batch) and
// reports throughput, latency quantiles, and shed rate in a
// machine-readable form.
//
// Two loop disciplines cover the classic load-testing split:
//
//   - the open loop fires requests at a fixed average rate with
//     Poisson (exponential) interarrivals, independent of how fast the
//     system answers — the arrival process of the paper's open-system
//     model, and the one that exposes shedding: when the tier cannot
//     keep up, work piles into 429s instead of silently stretching the
//     measurement;
//   - the closed loop keeps exactly Workers requests in flight,
//     issuing the next as soon as one completes — the discipline that
//     measures sustainable capacity (throughput at full pipeline).
//
// All randomness (interarrivals, per-request instance jitter) comes
// from internal/rng seeded by Config.Seed, so two runs against the
// same system issue byte-identical request sequences on identical
// schedules.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/task"
)

// Mode names the two loop disciplines.
const (
	ModeOpen   = "open"
	ModeClosed = "closed"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Mode selects the loop discipline: ModeOpen or ModeClosed.
	// Default: ModeClosed.
	Mode string
	// URL is the base URL of the target tier (required); requests go to
	// URL + "/v1/batch".
	URL string
	// QPS is the open loop's average arrival rate. Default: 100.
	QPS float64
	// Duration bounds the open loop's arrival window. Default: 1s.
	Duration time.Duration
	// Workers is the closed loop's concurrency (and the open loop's
	// in-flight cap, so a stalled target cannot spawn unbounded
	// goroutines). Default: 8.
	Workers int
	// Requests is the closed loop's total request count (required in
	// closed mode). In open mode it optionally caps arrivals; 0 means
	// arrivals are bounded by Duration alone.
	Requests int
	// Seed seeds the deterministic request stream. Default: 1.
	Seed uint64
	// Timeout is the per-request deadline. Default: 30s.
	Timeout time.Duration
	// Algorithm is the algorithm each generated request asks for.
	// Default: "lpt-norestriction".
	Algorithm string
	// Machines and Tasks shape the generated instances. Defaults: 4
	// machines, 6 tasks.
	Machines int
	Tasks    int
	// Transport overrides the HTTP transport (tests and the in-process
	// bench tier inject loopback handlers here).
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.QPS <= 0 {
		c.QPS = 100
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Algorithm == "" {
		c.Algorithm = "lpt-norestriction"
	}
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.Tasks <= 0 {
		c.Tasks = 6
	}
	return c
}

// Latency reports the request-latency distribution in seconds.
type Latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Report is the machine-readable outcome of one run. Counts partition:
// Requests = OK + Shed + Errors.
type Report struct {
	Mode            string  `json:"mode"`
	Seed            uint64  `json:"seed"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Shed            int     `json:"shed"`
	Errors          int     `json:"errors"`
	DurationSeconds float64 `json:"duration_seconds"`
	// ThroughputRPS counts completed-OK requests per wall second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ShedRate is Shed / Requests (0 with no requests).
	ShedRate float64 `json:"shed_rate"`
	// LatencySeconds summarizes OK-request latencies only; shed
	// round-trips are fast by design and would flatter the quantiles.
	LatencySeconds Latency `json:"latency_seconds"`
	// FirstError samples one error message for debugging; empty when
	// Errors is 0.
	FirstError string `json:"first_error,omitempty"`
}

// outcome classifications of one request.
const (
	outOK = iota
	outShed
	outErr
)

// gen builds the deterministic request stream: request i is a function
// of (seed, i) alone. Instances are jittered per request so the front
// tier's content-hash sharding spreads them across the ring — a
// constant body would pin the whole run to one shard.
type gen struct {
	cfg Config
}

// body renders the i-th single-item batch body.
func (g gen) body(r *rng.Source) []byte {
	tasks := make([]task.Task, g.cfg.Tasks)
	for j := range tasks {
		e := 1 + float64(r.Intn(97))
		tasks[j] = task.Task{ID: j, Estimate: e, Actual: e}
	}
	req := serve.BatchRequest{Requests: []serve.ScheduleRequest{{
		Algorithm: g.cfg.Algorithm,
		Instance:  &task.Instance{M: g.cfg.Machines, Alpha: 1.5, Tasks: tasks},
	}}}
	b, err := json.Marshal(&req)
	if err != nil {
		panic("loadgen: marshal request: " + err.Error())
	}
	return b
}

// sample is one completed request.
type sample struct {
	kind    int
	latency float64 // seconds, OK requests only
	errMsg  string
}

// collector accumulates samples under a lock; contention is negligible
// next to a network round trip.
type collector struct {
	mu      sync.Mutex
	samples []sample
}

func (c *collector) add(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// Run executes one load-generation run and reports it. The context
// bounds the whole run: cancellation stops issuing and waits for
// in-flight requests to resolve (each carries its own Timeout).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, errors.New("loadgen: URL is required")
	}
	if cfg.Mode != ModeOpen && cfg.Mode != ModeClosed {
		return nil, fmt.Errorf("loadgen: unknown mode %q (want %q or %q)", cfg.Mode, ModeOpen, ModeClosed)
	}
	if cfg.Mode == ModeClosed && cfg.Requests <= 0 {
		return nil, errors.New("loadgen: closed mode requires Requests > 0")
	}
	client := &http.Client{Transport: cfg.Transport, Timeout: cfg.Timeout}
	col := &collector{}
	start := time.Now()
	var err error
	if cfg.Mode == ModeOpen {
		err = runOpen(ctx, cfg, client, col)
	} else {
		err = runClosed(ctx, cfg, client, col)
	}
	if err != nil {
		return nil, err
	}
	return buildReport(cfg, col, time.Since(start)), nil
}

// runClosed keeps Workers requests in flight until Requests have been
// issued. Each worker derives its own rng stream from (seed, worker),
// so the issued set is deterministic regardless of completion order.
func runClosed(ctx context.Context, cfg Config, client *http.Client, col *collector) error {
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Requests; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		r := rng.New(cfg.Seed + uint64(w)*1e9)
		go func() {
			defer wg.Done()
			g := gen{cfg: cfg}
			for range next {
				col.add(issue(ctx, client, cfg.URL, g.body(r)))
			}
		}()
	}
	wg.Wait()
	return nil
}

// runOpen fires requests on a Poisson schedule at rate QPS for
// Duration (or Requests arrivals, whichever ends first). Workers caps
// the in-flight count: an arrival finding no free slot is recorded as
// shed by the generator itself — the open loop must not queue, or it
// degenerates into a closed loop with extra steps.
func runOpen(ctx context.Context, cfg Config, client *http.Client, col *collector) error {
	r := rng.New(cfg.Seed)
	g := gen{cfg: cfg}
	slots := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	deadline := time.Now().Add(cfg.Duration)
	issued := 0
	for cfg.Requests <= 0 || issued < cfg.Requests {
		wait := time.Duration(r.Exp(cfg.QPS) * float64(time.Second))
		if !sleepCtx(ctx, wait) {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		body := g.body(r)
		issued++
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				col.add(issue(ctx, client, cfg.URL, body))
				<-slots
			}()
		default:
			col.add(sample{kind: outShed, errMsg: "generator in-flight cap"})
		}
	}
	wg.Wait()
	return nil
}

// issue posts one single-item batch and classifies the outcome:
// HTTP 429 or an item-level "shed:" error is a shed; a 200 whose item
// succeeded is OK; everything else is an error.
func issue(ctx context.Context, client *http.Client, url string, body []byte) sample {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return sample{kind: outErr, errMsg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return sample{kind: outErr, errMsg: err.Error()}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return sample{kind: outErr, errMsg: err.Error()}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var br serve.BatchResponse
		if err := json.Unmarshal(data, &br); err != nil || len(br.Results) != 1 {
			return sample{kind: outErr, errMsg: "malformed batch response"}
		}
		if msg := br.Results[0].Error; msg != "" {
			if strings.HasPrefix(msg, "shed:") {
				return sample{kind: outShed, errMsg: msg}
			}
			return sample{kind: outErr, errMsg: msg}
		}
		return sample{kind: outOK, latency: time.Since(start).Seconds()}
	case resp.StatusCode == http.StatusTooManyRequests:
		return sample{kind: outShed, errMsg: strings.TrimSpace(string(data))}
	default:
		return sample{kind: outErr, errMsg: fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))}
	}
}

func buildReport(cfg Config, col *collector, elapsed time.Duration) *Report {
	rep := &Report{Mode: cfg.Mode, Seed: cfg.Seed, DurationSeconds: elapsed.Seconds()}
	var lats []float64
	for _, s := range col.samples {
		rep.Requests++
		switch s.kind {
		case outOK:
			rep.OK++
			lats = append(lats, s.latency)
		case outShed:
			rep.Shed++
		default:
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = s.errMsg
			}
		}
	}
	if rep.DurationSeconds > 0 {
		rep.ThroughputRPS = float64(rep.OK) / rep.DurationSeconds
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.LatencySeconds = Latency{
			P50: stats.Quantile(lats, 0.50),
			P90: stats.Quantile(lats, 0.90),
			P99: stats.Quantile(lats, 0.99),
			Max: lats[len(lats)-1],
		}
	}
	return rep
}

// sleepCtx sleeps d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
