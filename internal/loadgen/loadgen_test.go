package loadgen

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// okBatchHandler answers every /v1/batch with one successful item.
func okBatchHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"results":[{"index":0,"response":{}}]}`+"\n")
	})
}

func TestConfigValidation(t *testing.T) {
	ctx := t.Context()
	if _, err := Run(ctx, Config{Mode: ModeClosed, Requests: 1}); err == nil {
		t.Error("missing URL accepted")
	}
	if _, err := Run(ctx, Config{URL: "http://x", Mode: "half-open", Requests: 1}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(ctx, Config{URL: "http://x", Mode: ModeClosed}); err == nil {
		t.Error("closed mode without Requests accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Mode != ModeClosed || c.QPS != 100 || c.Workers != 8 || c.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.Algorithm != "lpt-norestriction" || c.Machines != 4 || c.Tasks != 6 {
		t.Fatalf("unexpected workload defaults: %+v", c)
	}
}

// TestClosedLoopReport drives the closed loop against a loopback target
// and checks the report arithmetic: the counts partition, throughput
// counts OK requests only, and the latency summary is ordered.
func TestClosedLoopReport(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		okBatchHandler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	const n = 20
	rep, err := Run(t.Context(), Config{URL: ts.URL, Mode: ModeClosed, Requests: n, Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeClosed || rep.Seed != 7 {
		t.Fatalf("report misattributed: %+v", rep)
	}
	if served.Load() != n {
		t.Fatalf("target served %d requests, want %d", served.Load(), n)
	}
	if rep.Requests != n || rep.OK != n || rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("counts do not partition: %+v", rep)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput %v for %d OK requests", rep.ThroughputRPS, rep.OK)
	}
	l := rep.LatencySeconds
	if l.P50 < 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		t.Fatalf("latency summary not ordered: %+v", l)
	}
	if rep.ShedRate != 0 || rep.FirstError != "" {
		t.Fatalf("clean run reported shedding or errors: %+v", rep)
	}
}

// TestOutcomeClassification scripts the target's responses and checks
// each lands in the right report bucket: item success ⇒ OK; HTTP 429 or
// an item-level "shed:" error ⇒ Shed; anything else ⇒ Errors.
func TestOutcomeClassification(t *testing.T) {
	responses := []func(w http.ResponseWriter){
		func(w http.ResponseWriter) { // OK
			_, _ = io.WriteString(w, `{"results":[{"index":0,"response":{}}]}`)
		},
		func(w http.ResponseWriter) { // shed: HTTP layer
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = io.WriteString(w, `{"error":"saturated"}`)
		},
		func(w http.ResponseWriter) { // shed: item layer
			_, _ = io.WriteString(w, `{"results":[{"index":0,"error":"shed: shard 0 at in-flight cap"}]}`)
		},
		func(w http.ResponseWriter) { // error: item failed
			_, _ = io.WriteString(w, `{"results":[{"index":0,"error":"unknown algorithm"}]}`)
		},
		func(w http.ResponseWriter) { // error: server blew up
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = io.WriteString(w, "boom")
		},
		func(w http.ResponseWriter) { // error: unparseable 200
			_, _ = io.WriteString(w, "not json")
		},
	}
	var i atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		responses[int(i.Add(1))-1](w)
	}))
	t.Cleanup(ts.Close)

	// Workers: 1 keeps the scripted order aligned with issue order.
	rep, err := Run(t.Context(), Config{URL: ts.URL, Mode: ModeClosed, Requests: len(responses), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(responses) {
		t.Fatalf("report covers %d requests, want %d", rep.Requests, len(responses))
	}
	if rep.OK != 1 || rep.Shed != 2 || rep.Errors != 3 {
		t.Fatalf("classification off: OK=%d Shed=%d Errors=%d", rep.OK, rep.Shed, rep.Errors)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("counts do not partition: %+v", rep)
	}
	if rep.FirstError == "" {
		t.Fatal("errors occurred but FirstError is empty")
	}
	if want := 2.0 / 6.0; rep.ShedRate != want {
		t.Fatalf("shed rate %v, want %v", rep.ShedRate, want)
	}
}

// capturingHandler records request bodies in arrival order.
type capturingHandler struct {
	mu     sync.Mutex
	bodies []string
}

func (h *capturingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	data, _ := io.ReadAll(r.Body)
	h.mu.Lock()
	h.bodies = append(h.bodies, string(data))
	h.mu.Unlock()
	okBatchHandler().ServeHTTP(w, r)
}

// TestDeterministicRequestStream: same seed ⇒ byte-identical request
// sequence; different seed ⇒ a different one.
func TestDeterministicRequestStream(t *testing.T) {
	capture := func(seed uint64) []string {
		h := &capturingHandler{}
		ts := httptest.NewServer(h)
		defer ts.Close()
		// Workers: 1 so arrival order equals issue order.
		_, err := Run(t.Context(), Config{URL: ts.URL, Mode: ModeClosed, Requests: 6, Workers: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return h.bodies
	}
	a, b := capture(42), capture(42)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("captured %d and %d bodies, want 6", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	c := capture(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds issued identical request streams")
	}
}

// TestOpenLoopArrivals: the open loop issues on its own schedule,
// honors the Requests cap, and reports a clean partition.
func TestOpenLoopArrivals(t *testing.T) {
	ts := httptest.NewServer(okBatchHandler())
	t.Cleanup(ts.Close)

	rep, err := Run(t.Context(), Config{
		URL: ts.URL, Mode: ModeOpen,
		QPS: 2000, Duration: 2 * time.Second, Requests: 30, Workers: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeOpen {
		t.Fatalf("mode %q", rep.Mode)
	}
	if rep.Requests == 0 || rep.Requests > 30 {
		t.Fatalf("open loop issued %d arrivals, cap 30", rep.Requests)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("counts do not partition: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("nothing completed: %+v", rep)
	}
}

// TestOpenLoopShedsAtInflightCap: a stalled target with a 1-slot
// in-flight cap forces the generator itself to shed arrivals rather
// than queue them.
func TestOpenLoopShedsAtInflightCap(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		okBatchHandler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = Run(context.Background(), Config{
			URL: ts.URL, Mode: ModeOpen,
			QPS: 1000, Duration: 100 * time.Millisecond, Requests: 20, Workers: 1, Seed: 3,
		})
	}()
	// Let the arrival window pass with the single slot occupied, then
	// release the stalled request so the run can drain.
	time.Sleep(150 * time.Millisecond)
	once.Do(func() { close(release) })
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("stalled target shed nothing: %+v", rep)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("counts do not partition: %+v", rep)
	}
	if rep.ShedRate <= 0 {
		t.Fatalf("shed rate %v with %d shed", rep.ShedRate, rep.Shed)
	}
}

// TestRunCancellation: cancelling the context stops the closed loop
// early without error.
func TestRunCancellation(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		time.Sleep(5 * time.Millisecond)
		okBatchHandler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, Config{URL: ts.URL, Mode: ModeClosed, Requests: 10000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests >= 10000 {
		t.Fatalf("cancellation did not stop the loop: %d requests", rep.Requests)
	}
}
