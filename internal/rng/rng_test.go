package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestKnownSplitMixValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 1234567, from the
	// public-domain reference implementation by Sebastiano Vigna.
	s := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if g := s.Uint64(); g != w {
			t.Fatalf("value %d: got %d, want %d", i, g, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Uniform(2.5, 7.5) = %v out of range", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(61)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 = %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(67)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestPanicsOnBadDistributionArgs(t *testing.T) {
	s := New(71)
	for name, f := range map[string]func(){
		"Uniform":                func() { s.Uniform(2, 1) },
		"Exp":                    func() { s.Exp(0) },
		"BoundedFactor":          func() { s.BoundedFactor(0.9) },
		"ClampedLogNormal-alpha": func() { s.ClampedLogNormalFactor(0.9, 1) },
		"ClampedLogNormal-sigma": func() { s.ClampedLogNormalFactor(2, -1) },
		"NewZipf-n":              func() { NewZipf(s, 0, 1) },
		"NewZipf-theta":          func() { NewZipf(s, 5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestZipfN(t *testing.T) {
	z := NewZipf(New(73), 42, 1)
	if z.N() != 42 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("Split child mirrors parent stream")
	}
}

func TestBoundedFactorRange(t *testing.T) {
	s := New(29)
	f := func(seed uint16) bool {
		alpha := 1 + float64(seed%300)/100 // alpha in [1, 4)
		v := s.BoundedFactor(alpha)
		return v >= 1/alpha-1e-12 && v <= alpha+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedFactorAlphaOne(t *testing.T) {
	s := New(31)
	for i := 0; i < 100; i++ {
		if v := s.BoundedFactor(1); v != 1 {
			t.Fatalf("BoundedFactor(1) = %v, want 1", v)
		}
	}
}

func TestBoundedFactorSymmetry(t *testing.T) {
	s := New(37)
	const n = 100000
	sumLog := 0.0
	for i := 0; i < n; i++ {
		sumLog += math.Log(s.BoundedFactor(2))
	}
	if mean := sumLog / n; math.Abs(mean) > 0.01 {
		t.Fatalf("E[log BoundedFactor(2)] = %v, want ~0", mean)
	}
}

func TestClampedLogNormalFactorRange(t *testing.T) {
	s := New(41)
	for i := 0; i < 10000; i++ {
		v := s.ClampedLogNormalFactor(1.5, 2.0)
		if v < 1/1.5-1e-12 || v > 1.5+1e-12 {
			t.Fatalf("clamped factor %v escaped [1/1.5, 1.5]", v)
		}
	}
}

func TestZipfRange(t *testing.T) {
	s := New(43)
	z := NewZipf(s, 100, 1.1)
	for i := 0; i < 10000; i++ {
		r := z.Draw()
		if r < 1 || r > 100 {
			t.Fatalf("Zipf rank %d out of [1,100]", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(47)
	z := NewZipf(s, 1000, 1.2)
	counts := make([]int, 1001)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[1] <= counts[1000] {
		t.Fatalf("Zipf(1.2) rank 1 count %d not above rank 1000 count %d", counts[1], counts[1000])
	}
	if counts[1] < 10*counts[100] {
		t.Fatalf("Zipf(1.2) insufficient skew: rank1=%d rank100=%d", counts[1], counts[100])
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	s := New(53)
	z := NewZipf(s, 10, 0)
	counts := make([]int, 11)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for r := 1; r <= 10; r++ {
		frac := float64(counts[r]) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("Zipf(theta=0) rank %d freq %v, want ~0.1", r, frac)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(59)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkBoundedFactor(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.BoundedFactor(1.5)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1<<16, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
