// Package rng provides a small, deterministic pseudo-random number
// generator and the distributions used by the workload generators and
// uncertainty models.
//
// The generator is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014). It is
// chosen over math/rand because its output is fully specified by this
// package alone: results are reproducible bit-for-bit across Go versions
// and platforms, which the experiment harness relies on to regenerate the
// paper's figures deterministically.
package rng

import "math"

// Source is a deterministic pseudo-random source. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield
// uncorrelated streams for all practical purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split returns a new Source whose stream is independent of s for all
// practical purposes. It advances s. Split is convenient for handing
// sub-generators to parallel workers while keeping determinism.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value of the SplitMix64 sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method would be marginally
	// faster; plain modulo bias is negligible for n << 2^64 and keeps
	// the sequence easy to reason about in tests.
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate via the Box–Muller transform.
func (s *Source) Norm() float64 {
	// Draw u in (0,1] to avoid log(0).
	u := 1 - s.Float64()
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
// It panics if lambda <= 0.
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp called with lambda <= 0")
	}
	return -math.Log(1-s.Float64()) / lambda
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using the
// Fisher–Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, as in math/rand.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
