package rng

import "math"

// Zipf draws integers in [1, n] with probability proportional to
// 1/rank^theta. It precomputes the cumulative distribution, so a value
// is drawn in O(log n) by binary search. theta = 0 degenerates to the
// uniform distribution on [1, n].
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent theta.
// It panics if n <= 0 or theta < 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if theta < 0 {
		panic("rng: NewZipf called with theta < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// Guard against floating-point shortfall at the top end.
	cdf[n-1] = 1
	return &Zipf{cdf: cdf, src: src}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [1, N] following the Zipf law.
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// BoundedFactor draws a multiplicative perturbation factor in
// [1/alpha, alpha]. The logarithm of the factor is uniform, so inflation
// and deflation are symmetric: E[log factor] = 0. It panics if
// alpha < 1.
func (s *Source) BoundedFactor(alpha float64) float64 {
	if alpha < 1 {
		panic("rng: BoundedFactor called with alpha < 1")
	}
	if alpha == 1 {
		return 1
	}
	logA := math.Log(alpha)
	return math.Exp(s.Uniform(-logA, logA))
}

// ClampedLogNormalFactor draws exp(N(0, sigma^2)) clamped to
// [1/alpha, alpha]. It models the common case where most tasks deviate
// only slightly from their estimates while the model's worst-case bound
// alpha still holds. It panics if alpha < 1 or sigma < 0.
func (s *Source) ClampedLogNormalFactor(alpha, sigma float64) float64 {
	if alpha < 1 {
		panic("rng: ClampedLogNormalFactor called with alpha < 1")
	}
	if sigma < 0 {
		panic("rng: ClampedLogNormalFactor called with sigma < 0")
	}
	f := s.LogNormal(0, sigma)
	if f < 1/alpha {
		return 1 / alpha
	}
	if f > alpha {
		return alpha
	}
	return f
}
