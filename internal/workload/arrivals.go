package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// ArrivalSpec describes an arrival process for the open-system
// simulation mode: instead of all n tasks being released at time zero
// (the paper's batch model), task j enters the system at a generated
// arrival time. The processes cover the settings of the open-system
// replication literature (Wang/Joshi/Wornell arXiv:1404.1328,
// Sun/Koksal/Shroff arXiv:1603.07322): memoryless Poisson traffic,
// bursty Markov-modulated traffic, and replayed real traces.
type ArrivalSpec struct {
	// Process selects the generator; see ArrivalProcesses.
	Process string
	// Rate is the mean arrival rate λ (tasks per simulated time unit).
	// Required (> 0) for the stochastic processes, ignored by "trace"
	// and "batch".
	Rate float64
	// Seed feeds the deterministic RNG.
	Seed uint64
	// BurstFactor multiplies Rate while an MMPP burst is active;
	// 0 selects the default 8. Ignored by other processes.
	BurstFactor float64
	// BurstFraction is the long-run fraction of time the MMPP spends in
	// the burst state; 0 selects the default 0.1. Ignored by other
	// processes.
	BurstFraction float64
	// Times holds explicit arrival times for the "trace" process, one
	// per task, non-negative and finite (any order; generation sorts a
	// copy). Ignored by other processes.
	Times []float64
}

// ArrivalGen produces n non-decreasing, non-negative arrival times.
type ArrivalGen func(n int, spec ArrivalSpec, src *rng.Source) ([]float64, error)

// ArrivalProcesses is the registry of named arrival processes.
var ArrivalProcesses = map[string]ArrivalGen{
	"batch":   BatchArrivals,
	"poisson": PoissonArrivals,
	"mmpp":    MMPPArrivals,
	"trace":   TraceArrivals,
}

// ArrivalNames returns the registered process names in sorted order.
func ArrivalNames() []string {
	names := make([]string, 0, len(ArrivalProcesses))
	for name := range ArrivalProcesses {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Arrivals draws n arrival times from the named process. The returned
// slice is sorted non-decreasing with Times[0] ≥ 0; index i is the
// arrival time of the i-th admitted task (callers map it onto task IDs
// in admission order). It returns an error for unknown processes,
// non-positive n, or invalid process parameters.
func Arrivals(n int, spec ArrivalSpec) ([]float64, error) {
	gen, ok := ArrivalProcesses[spec.Process]
	if !ok {
		return nil, fmt.Errorf("workload: unknown arrival process %q (have %v)", spec.Process, ArrivalNames())
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: n must be positive, got %d", n)
	}
	times, err := gen(n, spec, rng.New(spec.Seed))
	if err != nil {
		return nil, err
	}
	if err := CheckArrivals(times, n); err != nil {
		return nil, fmt.Errorf("workload: %s generator produced invalid times: %w", spec.Process, err)
	}
	return times, nil
}

// MustArrivals is Arrivals but panics on error; for tests, benchmarks
// and examples with hard-coded specs.
func MustArrivals(n int, spec ArrivalSpec) []float64 {
	times, err := Arrivals(n, spec)
	if err != nil {
		panic(err)
	}
	return times
}

// CheckArrivals validates an arrival-time slice against a task count:
// exactly n entries, every time finite and non-negative, and the
// sequence non-decreasing. It is the shared gate for generated times,
// trace input, and the serving layer's open-system requests.
func CheckArrivals(times []float64, n int) error {
	if len(times) != n {
		return fmt.Errorf("workload: %d arrival times for %d tasks", len(times), n)
	}
	prev := 0.0
	for i, t := range times {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fmt.Errorf("workload: arrival %d is %v (want finite, non-negative)", i, t)
		}
		if t < prev {
			return fmt.Errorf("workload: arrival %d (%v) precedes arrival %d (%v)", i, t, i-1, prev)
		}
		prev = t
	}
	return nil
}

// BatchArrivals releases every task at time zero — the degenerate
// closed-system case. An open-system run under batch arrivals and no
// replica duplication reproduces the batch simulator exactly (the
// metamorphic anchor of the open mode).
func BatchArrivals(n int, _ ArrivalSpec, _ *rng.Source) ([]float64, error) {
	return make([]float64, n), nil
}

// PoissonArrivals draws a homogeneous Poisson process of rate λ:
// i.i.d. exponential inter-arrival gaps with mean 1/λ, accumulated
// from time zero.
func PoissonArrivals(n int, spec ArrivalSpec, src *rng.Source) ([]float64, error) {
	if !(spec.Rate > 0) || math.IsInf(spec.Rate, 0) {
		return nil, fmt.Errorf("workload: poisson arrivals need a positive finite rate, got %v", spec.Rate)
	}
	times := make([]float64, n)
	t := 0.0
	for i := range times {
		t += src.Exp(spec.Rate)
		times[i] = t
	}
	return times, nil
}

// MMPPArrivals draws a two-state Markov-modulated Poisson process: a
// baseline state with rate λ·(1−f·b)/(1−f) chosen so the long-run mean
// rate stays λ, and a burst state with rate b·λ active a fraction f of
// the time. State sojourns are exponential with mean 10/λ in baseline
// and f/(1−f)·10/λ in burst. The result is bursty traffic with the
// same average intensity as the Poisson process — the shape that
// separates cancellation policies in the open-system experiments.
func MMPPArrivals(n int, spec ArrivalSpec, src *rng.Source) ([]float64, error) {
	if !(spec.Rate > 0) || math.IsInf(spec.Rate, 0) {
		return nil, fmt.Errorf("workload: mmpp arrivals need a positive finite rate, got %v", spec.Rate)
	}
	b := spec.BurstFactor
	if b <= 0 {
		b = 8
	}
	if b < 1 {
		return nil, fmt.Errorf("workload: mmpp burst factor %v < 1", b)
	}
	f := spec.BurstFraction
	if f <= 0 {
		f = 0.1
	}
	if f >= 1 {
		return nil, fmt.Errorf("workload: mmpp burst fraction %v outside (0,1)", f)
	}
	if f*b >= 1 {
		return nil, fmt.Errorf("workload: mmpp burst fraction %v times factor %v must stay below 1 (baseline rate would be non-positive)", f, b)
	}
	baseRate := spec.Rate * (1 - f*b) / (1 - f)
	burstRate := spec.Rate * b
	meanBase := 10 / spec.Rate          // baseline sojourn
	meanBurst := meanBase * f / (1 - f) // burst sojourn keeping fraction f

	times := make([]float64, n)
	t := 0.0
	inBurst := false
	// stateEnd is when the current modulating state expires.
	stateEnd := src.Exp(1 / meanBase)
	for i := range times {
		for {
			rate := baseRate
			if inBurst {
				rate = burstRate
			}
			gap := src.Exp(rate)
			if t+gap <= stateEnd {
				t += gap
				times[i] = t
				break
			}
			// The candidate arrival falls past the state switch: advance
			// to the switch and redraw in the next state (memorylessness
			// makes the discarded remainder exact, not an approximation).
			t = stateEnd
			inBurst = !inBurst
			mean := meanBase
			if inBurst {
				mean = meanBurst
			}
			stateEnd = t + src.Exp(1/mean)
		}
	}
	return times, nil
}

// TraceArrivals replays explicit arrival times (e.g. from a CSV trace
// read with ReadCSVArrivals). The spec's Times are copied and sorted;
// validation of shape and values happens in Arrivals via CheckArrivals.
func TraceArrivals(n int, spec ArrivalSpec, _ *rng.Source) ([]float64, error) {
	if len(spec.Times) != n {
		return nil, fmt.Errorf("workload: trace has %d arrival times for %d tasks", len(spec.Times), n)
	}
	times := make([]float64, n)
	copy(times, spec.Times)
	sort.Float64s(times)
	return times, nil
}
