package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	in := MustNew(Spec{Name: "spmv", N: 25, M: 4, Alpha: 1.5, Seed: 3})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != in.N() || got.M != 4 || got.Alpha != 1.5 {
		t.Fatalf("shape changed: %v", got)
	}
	for i := range in.Tasks {
		if got.Tasks[i] != in.Tasks[i] {
			t.Fatalf("task %d changed: %+v vs %+v", i, got.Tasks[i], in.Tasks[i])
		}
	}
}

func TestReadCSVDefaults(t *testing.T) {
	csv := "task,estimate,actual,size\n0,5,,\n1,3,,\n"
	in, err := ReadCSV(strings.NewReader(csv), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Tasks[0].Actual != 5 || in.Tasks[0].Size != 0 {
		t.Fatalf("defaults wrong: %+v", in.Tasks[0])
	}
}

func TestReadCSVReassignsIDs(t *testing.T) {
	csv := "task,estimate,actual,size\n99,5,5,0\n42,3,3,0\n"
	in, err := ReadCSV(strings.NewReader(csv), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Tasks[0].ID != 0 || in.Tasks[1].ID != 1 {
		t.Fatalf("IDs not reassigned: %+v", in.Tasks)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                     // no header
		"a,b,c,d\n",                            // wrong header
		"task,estimate,actual,size\nx,y\n",     // wrong column count
		"task,estimate,actual,size\n0,x,,\n",   // bad estimate
		"task,estimate,actual,size\n0,5,x,\n",  // bad actual
		"task,estimate,actual,size\n0,5,5,x\n", // bad size
		"task,estimate,actual,size\n0,-1,,\n",  // invalid instance
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), 2, 2); err == nil {
			t.Errorf("CSV %q accepted", c)
		}
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	// Header only: zero tasks is an invalid instance.
	if _, err := ReadCSV(strings.NewReader("task,estimate,actual,size\n"), 2, 2); err == nil {
		t.Fatal("empty instance accepted")
	}
}
