package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV
// importer and that accepted inputs survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("task,estimate,actual,size\n0,5,6,2\n")
	f.Add("task,estimate,actual,size\n0,5,,\n1,3,,\n")
	f.Add("task,estimate\n0,5\n")
	f.Add("")
	f.Add("task,estimate,actual,size\n0,-5,,\n")
	f.Add("task,estimate,actual,size\n0,nan,,\n")
	f.Fuzz(func(t *testing.T, input string) {
		in, err := ReadCSV(strings.NewReader(input), 4, 2)
		if err != nil {
			return // rejected input: fine
		}
		// Accepted input must be a valid instance and round-trip.
		if err := in.Validate(false); err != nil {
			t.Fatalf("ReadCSV accepted invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatalf("WriteCSV failed on accepted instance: %v", err)
		}
		again, err := ReadCSV(&buf, 4, 2)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.N() != in.N() {
			t.Fatalf("round trip changed task count %d → %d", in.N(), again.N())
		}
	})
}
