package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/task"
)

// WriteCSVArrivals exports an instance plus per-task arrival times as
// CSV with header "task,estimate,actual,size,arrival" — the
// trace-interchange format for the open-system streaming mode. The
// 4-column format of WriteCSV stays untouched (its fuzz corpus pins
// it); this is a separate, wider schema.
func WriteCSVArrivals(w io.Writer, in *task.Instance, arrivals []float64) error {
	if err := CheckArrivals(arrivals, len(in.Tasks)); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "estimate", "actual", "size", "arrival"}); err != nil {
		return err
	}
	for i, t := range in.Tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.FormatFloat(t.Estimate, 'g', -1, 64),
			strconv.FormatFloat(t.Actual, 'g', -1, 64),
			strconv.FormatFloat(t.Size, 'g', -1, 64),
			strconv.FormatFloat(arrivals[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVArrivals imports an instance and its arrival times from the
// WriteCSVArrivals format. Column order is fixed; the "actual" and
// "size" columns may be empty (actuals default to the estimates,
// sizes to zero) but "arrival" is required on every row. Task IDs are
// reassigned in row order; rows must already be sorted by arrival
// (CheckArrivals enforces it — a trace row order IS the admission
// order, so an out-of-order trace is a malformed file, not something
// to silently re-sort under the task IDs).
func ReadCSVArrivals(r io.Reader, m int, alpha float64) (*task.Instance, []float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if header[0] != "task" || header[1] != "estimate" || header[4] != "arrival" {
		return nil, nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	in := &task.Instance{M: m, Alpha: alpha}
	var arrivals []float64
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("workload: CSV row %d: %w", row, err)
		}
		est, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: CSV row %d estimate: %w", row, err)
		}
		t := task.Task{ID: len(in.Tasks), Estimate: est, Actual: est}
		if rec[2] != "" {
			if t.Actual, err = strconv.ParseFloat(rec[2], 64); err != nil {
				return nil, nil, fmt.Errorf("workload: CSV row %d actual: %w", row, err)
			}
		}
		if rec[3] != "" {
			if t.Size, err = strconv.ParseFloat(rec[3], 64); err != nil {
				return nil, nil, fmt.Errorf("workload: CSV row %d size: %w", row, err)
			}
		}
		arr, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: CSV row %d arrival: %w", row, err)
		}
		in.Tasks = append(in.Tasks, t)
		arrivals = append(arrivals, arr)
	}
	if err := in.Validate(false); err != nil {
		return nil, nil, err
	}
	if err := CheckArrivals(arrivals, len(in.Tasks)); err != nil {
		return nil, nil, err
	}
	return in, arrivals, nil
}
