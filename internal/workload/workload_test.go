package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllGeneratorsProduceValidInstances(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := New(Spec{Name: name, N: 200, M: 8, Alpha: 1.5, Seed: 1})
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			if in.N() != 200 || in.M != 8 || in.Alpha != 1.5 {
				t.Fatalf("wrong shape: %v", in)
			}
			if err := in.Validate(true); err != nil {
				t.Fatalf("invalid instance: %v", err)
			}
			for _, tk := range in.Tasks {
				if tk.Actual != tk.Estimate {
					t.Fatalf("task %d actual %v != estimate %v before perturbation",
						tk.ID, tk.Actual, tk.Estimate)
				}
			}
		})
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	for _, name := range Names() {
		a := MustNew(Spec{Name: name, N: 50, M: 4, Alpha: 2, Seed: 99})
		b := MustNew(Spec{Name: name, N: 50, M: 4, Alpha: 2, Seed: 99})
		for i := range a.Tasks {
			if a.Tasks[i] != b.Tasks[i] {
				t.Fatalf("%s: task %d differs between identical specs", name, i)
			}
		}
	}
}

func TestSeedChangesRandomWorkloads(t *testing.T) {
	for _, name := range []string{"uniform", "bimodal", "zipf", "spmv", "mapreduce", "exponential", "iterative"} {
		a := MustNew(Spec{Name: name, N: 100, M: 4, Alpha: 2, Seed: 1})
		b := MustNew(Spec{Name: name, N: 100, M: 4, Alpha: 2, Seed: 2})
		diff := false
		for i := range a.Tasks {
			if a.Tasks[i].Estimate != b.Tasks[i].Estimate {
				diff = true
				break
			}
		}
		if !diff {
			t.Errorf("%s: seeds 1 and 2 produced identical workloads", name)
		}
	}
}

func TestUnknownGenerator(t *testing.T) {
	if _, err := New(Spec{Name: "nope", N: 1, M: 1}); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestRejectsBadShape(t *testing.T) {
	if _, err := New(Spec{Name: "uniform", N: 0, M: 1}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(Spec{Name: "uniform", N: 1, M: 0}); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestAlphaDefaultsToOne(t *testing.T) {
	in := MustNew(Spec{Name: "unit", N: 3, M: 2})
	if in.Alpha != 1 {
		t.Fatalf("Alpha = %v, want 1", in.Alpha)
	}
}

func TestUnitAllOnes(t *testing.T) {
	in := MustNew(Spec{Name: "unit", N: 10, M: 3, Alpha: 2, Seed: 5})
	for _, tk := range in.Tasks {
		if tk.Estimate != 1 || tk.Size != 1 {
			t.Fatalf("unit task %d = %+v", tk.ID, tk)
		}
	}
}

func TestDecreasingIsNonIncreasing(t *testing.T) {
	in := MustNew(Spec{Name: "decreasing", N: 64, M: 4, Alpha: 1})
	for i := 1; i < in.N(); i++ {
		if in.Tasks[i].Estimate > in.Tasks[i-1].Estimate {
			t.Fatalf("decreasing not monotone at %d", i)
		}
	}
	if in.Tasks[0].Estimate != 100 {
		t.Fatalf("largest task %v, want 100 (default scale)", in.Tasks[0].Estimate)
	}
}

func TestBimodalModes(t *testing.T) {
	in := MustNew(Spec{Name: "bimodal", N: 5000, M: 4, Alpha: 1, Seed: 3})
	short, long := 0, 0
	for _, tk := range in.Tasks {
		switch tk.Estimate {
		case 1:
			short++
		case 50:
			long++
		default:
			t.Fatalf("unexpected estimate %v", tk.Estimate)
		}
	}
	frac := float64(long) / float64(long+short)
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("long fraction %v, want ~0.1", frac)
	}
}

func TestZipfSkewedWorkload(t *testing.T) {
	in := MustNew(Spec{Name: "zipf", N: 5000, M: 4, Alpha: 1, Seed: 7})
	maxEst := in.MaxEstimate()
	if maxEst != 1000 { // rank 1 must appear in 5000 draws at theta=1.1
		t.Fatalf("max estimate %v, want 1000", maxEst)
	}
	mean := in.TotalEstimate() / float64(in.N())
	if mean >= maxEst/2 {
		t.Fatalf("zipf not skewed: mean %v vs max %v", mean, maxEst)
	}
}

func TestSpMVPositiveAndSkewed(t *testing.T) {
	in := MustNew(Spec{Name: "spmv", N: 2000, M: 8, Alpha: 1, Seed: 11})
	var min, max = math.Inf(1), 0.0
	for _, tk := range in.Tasks {
		if tk.Estimate <= 0 || tk.Size <= 0 {
			t.Fatalf("non-positive spmv task %+v", tk)
		}
		min = math.Min(min, tk.Estimate)
		max = math.Max(max, tk.Estimate)
	}
	if max/min < 10 {
		t.Fatalf("spmv spread too small: min=%v max=%v", min, max)
	}
}

func TestIterativeSolverTightEstimates(t *testing.T) {
	in := MustNew(Spec{Name: "iterative", N: 1000, M: 8, Alpha: 1, Seed: 13})
	for _, tk := range in.Tasks {
		if tk.Estimate < 10*0.9-1e-9 || tk.Estimate > 10*1.1+1e-9 {
			t.Fatalf("iterative estimate %v outside ±10%%", tk.Estimate)
		}
	}
}

func TestMapReduceStartupFloor(t *testing.T) {
	in := MustNew(Spec{Name: "mapreduce", N: 1000, M: 8, Alpha: 1, Seed: 17})
	for _, tk := range in.Tasks {
		if tk.Estimate < 3-1e-9 {
			t.Fatalf("mapreduce estimate %v below startup+min partition", tk.Estimate)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(Generators) {
		t.Fatalf("Names() has %d entries, registry %d", len(names), len(Generators))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestPropertyAllGeneratorsAnySize(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed uint64, which uint8) bool {
		names := Names()
		spec := Spec{
			Name:  names[int(which)%len(names)],
			N:     int(nRaw%100) + 1,
			M:     int(mRaw%20) + 1,
			Alpha: 1.5,
			Seed:  seed,
		}
		in, err := New(spec)
		if err != nil {
			return false
		}
		return in.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
