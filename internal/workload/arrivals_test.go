package workload

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestArrivalNamesComplete(t *testing.T) {
	want := []string{"batch", "mmpp", "poisson", "trace"}
	if got := ArrivalNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ArrivalNames() = %v, want %v", got, want)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	// Every stochastic process must reproduce bit-for-bit under a fixed
	// seed and diverge under a different one.
	cases := []ArrivalSpec{
		{Process: "batch", Seed: 1},
		{Process: "poisson", Rate: 2, Seed: 1},
		{Process: "mmpp", Rate: 2, Seed: 1},
		{Process: "mmpp", Rate: 5, BurstFactor: 4, BurstFraction: 0.2, Seed: 1},
	}
	for _, spec := range cases {
		spec := spec
		t.Run(spec.Process, func(t *testing.T) {
			a := MustArrivals(500, spec)
			b := MustArrivals(500, spec)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different arrival streams")
			}
			if spec.Process == "batch" {
				return // seed-independent by construction
			}
			spec2 := spec
			spec2.Seed = spec.Seed + 1
			if reflect.DeepEqual(a, MustArrivals(500, spec2)) {
				t.Fatal("different seeds produced identical arrival streams")
			}
		})
	}
}

func TestArrivalsValidShape(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Process: "batch", Seed: 3},
		{Process: "poisson", Rate: 0.5, Seed: 3},
		{Process: "mmpp", Rate: 0.5, Seed: 3},
		{Process: "trace", Times: []float64{4, 0, 2}},
	} {
		spec := spec
		t.Run(spec.Process, func(t *testing.T) {
			n := 200
			if spec.Process == "trace" {
				n = len(spec.Times)
			}
			times := MustArrivals(n, spec)
			if err := CheckArrivals(times, n); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPoissonMeanRate(t *testing.T) {
	// Law of large numbers sanity: with n i.i.d. Exp(λ) gaps the final
	// arrival time concentrates around n/λ. 20k samples with λ=4 keeps
	// the relative error well under 5% at this seed (deterministic, so
	// no flake risk — the bound only needs to hold for this draw).
	const n, rate = 20000, 4.0
	times := MustArrivals(n, ArrivalSpec{Process: "poisson", Rate: rate, Seed: 42})
	mean := times[n-1] / n
	if rel := math.Abs(mean-1/rate) / (1 / rate); rel > 0.05 {
		t.Fatalf("empirical mean gap %v vs 1/rate %v (rel err %v)", mean, 1/rate, rel)
	}
}

func TestMMPPMeanRateAndBurstiness(t *testing.T) {
	const n, rate = 50000, 4.0
	spec := ArrivalSpec{Process: "mmpp", Rate: rate, Seed: 7}
	times := MustArrivals(n, spec)
	// The modulation is rate-preserving: long-run mean rate stays λ.
	mean := times[n-1] / n
	if rel := math.Abs(mean-1/rate) / (1 / rate); rel > 0.05 {
		t.Fatalf("empirical mean gap %v vs 1/rate %v (rel err %v)", mean, 1/rate, rel)
	}
	// Burstiness: the squared coefficient of variation of inter-arrival
	// gaps must exceed the Poisson value of 1 by a clear margin.
	gaps := make([]float64, n-1)
	var sum float64
	for i := 1; i < n; i++ {
		gaps[i-1] = times[i] - times[i-1]
		sum += gaps[i-1]
	}
	gm := sum / float64(len(gaps))
	var ss float64
	for _, g := range gaps {
		d := g - gm
		ss += d * d
	}
	scv := (ss / float64(len(gaps))) / (gm * gm)
	if scv < 1.5 {
		t.Fatalf("MMPP gaps SCV = %v, want > 1.5 (Poisson would be ~1)", scv)
	}
}

func TestTraceArrivalsSortsCopy(t *testing.T) {
	orig := []float64{4, 0, 2}
	times := MustArrivals(3, ArrivalSpec{Process: "trace", Times: orig})
	if !sort.Float64sAreSorted(times) {
		t.Fatalf("trace times not sorted: %v", times)
	}
	if want := []float64{4, 0, 2}; !reflect.DeepEqual(orig, want) {
		t.Fatalf("TraceArrivals mutated its input: %v", orig)
	}
}

func TestArrivalsErrors(t *testing.T) {
	cases := []struct {
		name string
		n    int
		spec ArrivalSpec
		frag string
	}{
		{"unknown process", 5, ArrivalSpec{Process: "nope"}, "unknown arrival process"},
		{"non-positive n", 0, ArrivalSpec{Process: "batch"}, "must be positive"},
		{"poisson zero rate", 5, ArrivalSpec{Process: "poisson"}, "positive finite rate"},
		{"poisson inf rate", 5, ArrivalSpec{Process: "poisson", Rate: math.Inf(1)}, "positive finite rate"},
		{"mmpp zero rate", 5, ArrivalSpec{Process: "mmpp"}, "positive finite rate"},
		{"mmpp burst factor below one", 5, ArrivalSpec{Process: "mmpp", Rate: 1, BurstFactor: 0.5}, "burst factor"},
		{"mmpp burst fraction one", 5, ArrivalSpec{Process: "mmpp", Rate: 1, BurstFraction: 1}, "outside (0,1)"},
		{"mmpp saturated burst", 5, ArrivalSpec{Process: "mmpp", Rate: 1, BurstFactor: 20, BurstFraction: 0.5}, "below 1"},
		{"trace length mismatch", 3, ArrivalSpec{Process: "trace", Times: []float64{1}}, "arrival times for"},
		{"trace negative time", 2, ArrivalSpec{Process: "trace", Times: []float64{-1, 2}}, "non-negative"},
		{"trace NaN time", 2, ArrivalSpec{Process: "trace", Times: []float64{math.NaN(), 2}}, "non-negative"},
		{"trace inf time", 2, ArrivalSpec{Process: "trace", Times: []float64{1, math.Inf(1)}}, "non-negative"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Arrivals(tc.n, tc.spec)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestBatchArrivalsAllZero(t *testing.T) {
	for _, v := range MustArrivals(10, ArrivalSpec{Process: "batch"}) {
		if v != 0 {
			t.Fatalf("batch arrival %v != 0", v)
		}
	}
}

func TestCSVArrivalsRoundTrip(t *testing.T) {
	in := MustNew(Spec{Name: "uniform", N: 20, M: 4, Alpha: 2, Seed: 9})
	arr := MustArrivals(20, ArrivalSpec{Process: "poisson", Rate: 3, Seed: 9})
	var buf bytes.Buffer
	if err := WriteCSVArrivals(&buf, in, arr); err != nil {
		t.Fatal(err)
	}
	got, gotArr, err := ReadCSVArrivals(&buf, in.M, in.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tasks) != len(in.Tasks) {
		t.Fatalf("round trip task count %d != %d", len(got.Tasks), len(in.Tasks))
	}
	for i := range in.Tasks {
		if got.Tasks[i].Estimate != in.Tasks[i].Estimate ||
			got.Tasks[i].Actual != in.Tasks[i].Actual ||
			got.Tasks[i].Size != in.Tasks[i].Size {
			t.Fatalf("task %d round trip mismatch: %+v vs %+v", i, got.Tasks[i], in.Tasks[i])
		}
	}
	if !reflect.DeepEqual(gotArr, arr) {
		t.Fatalf("arrival round trip mismatch:\n got %v\nwant %v", gotArr, arr)
	}
}

func TestWriteCSVArrivalsRejectsMismatch(t *testing.T) {
	in := MustNew(Spec{Name: "unit", N: 3, M: 2, Seed: 1})
	var buf bytes.Buffer
	if err := WriteCSVArrivals(&buf, in, []float64{0, 1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestReadCSVArrivalsRejectsUnsorted(t *testing.T) {
	const data = "task,estimate,actual,size,arrival\n0,1,1,1,5\n1,1,1,1,2\n"
	if _, _, err := ReadCSVArrivals(strings.NewReader(data), 2, 2); err == nil {
		t.Fatal("expected unsorted-arrival error")
	}
}

func TestReadCSVArrivalsRequiresArrivalColumn(t *testing.T) {
	const data = "task,estimate,actual,size\n0,1,1,1\n"
	if _, _, err := ReadCSVArrivals(strings.NewReader(data), 2, 2); err == nil {
		t.Fatal("expected header error for 4-column input")
	}
}
