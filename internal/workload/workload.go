// Package workload generates synthetic problem instances.
//
// The paper motivates its model with out-of-core sparse linear algebra
// (tasks iterate over matrix partitions whose runtimes are predictable
// only within a range) and Hadoop/MapReduce systems (replicated data,
// uncertain job sizes). This package provides generators for those
// scenarios plus the standard synthetic families used throughout the
// scheduling literature (uniform, non-increasing, bimodal, Zipf-skewed).
//
// A generator produces the *estimated* processing times p̃_j (and,
// where meaningful, memory sizes s_j). Actual processing times are
// produced separately by package uncertainty, so the same workload can
// be stressed under several perturbation models.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/task"
)

// Spec describes one workload draw.
type Spec struct {
	// Name selects the generator; see Generators for the registry.
	Name string
	// N is the number of tasks.
	N int
	// M is the number of machines recorded in the instance.
	M int
	// Alpha is the uncertainty factor recorded in the instance.
	Alpha float64
	// Seed feeds the deterministic RNG.
	Seed uint64
	// Param is a generator-specific shape parameter (for example the
	// Zipf exponent); 0 selects the generator's default.
	Param float64
}

// Generator builds the estimated times and sizes of an instance.
type Generator func(spec Spec, src *rng.Source) (estimates, sizes []float64)

// Generators is the registry of named workload families.
var Generators = map[string]Generator{
	"uniform":     Uniform,
	"decreasing":  Decreasing,
	"bimodal":     Bimodal,
	"zipf":        Zipf,
	"unit":        Unit,
	"spmv":        SpMV,
	"mapreduce":   MapReduce,
	"iterative":   IterativeSolver,
	"exponential": Exponential,
}

// Names returns the registered generator names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Generators))
	for name := range Generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New draws an instance from the named generator. Actual times are
// initialized to the estimates; apply an uncertainty model to perturb
// them. It returns an error for unknown names or invalid shapes.
func New(spec Spec) (*task.Instance, error) {
	gen, ok := Generators[spec.Name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown generator %q (have %v)", spec.Name, Names())
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("workload: n must be positive, got %d", spec.N)
	}
	if err := task.CheckMachines(spec.M); err != nil {
		return nil, err
	}
	alpha := spec.Alpha
	if alpha == 0 {
		alpha = 1
	}
	if err := task.CheckAlpha(alpha); err != nil {
		return nil, err
	}
	src := rng.New(spec.Seed)
	est, sizes := gen(spec, src)
	in, err := task.NewEstimated(spec.M, alpha, est)
	if err != nil {
		return nil, err
	}
	if sizes != nil {
		if err := in.SetSizes(sizes); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// MustNew is New but panics on error; for tests and examples with
// hard-coded specs.
func MustNew(spec Spec) *task.Instance {
	in, err := New(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// Unit produces n tasks of estimated time 1 — the shape used by the
// paper's Theorem 1 adversary. Sizes are all 1.
func Unit(spec Spec, _ *rng.Source) ([]float64, []float64) {
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		est[i] = 1
		sizes[i] = 1
	}
	return est, sizes
}

// Uniform draws estimates uniformly from [1, hi] where hi = Param
// (default 100). Sizes are drawn independently from the same range,
// modelling tasks whose memory footprint is uncorrelated with runtime.
func Uniform(spec Spec, src *rng.Source) ([]float64, []float64) {
	hi := spec.Param
	if hi <= 1 {
		hi = 100
	}
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		est[i] = src.Uniform(1, hi)
		sizes[i] = src.Uniform(1, hi)
	}
	return est, sizes
}

// Decreasing produces estimates 1/1, 1/2, ..., 1/n scaled so the
// largest is Param (default 100): a long-tail of shrinking tasks, the
// classic hard shape for LPT. Sizes equal the estimates.
func Decreasing(spec Spec, _ *rng.Source) ([]float64, []float64) {
	scale := spec.Param
	if scale <= 0 {
		scale = 100
	}
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		est[i] = scale / float64(i+1)
		sizes[i] = est[i]
	}
	return est, sizes
}

// Bimodal mixes short tasks (time 1) and long tasks (time Param,
// default 50) in a 9:1 ratio — a straggler-heavy population. Long tasks
// also carry 10x the memory.
func Bimodal(spec Spec, src *rng.Source) ([]float64, []float64) {
	long := spec.Param
	if long <= 1 {
		long = 50
	}
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		if src.Bool(0.1) {
			est[i] = long
			sizes[i] = 10
		} else {
			est[i] = 1
			sizes[i] = 1
		}
	}
	return est, sizes
}

// Zipf draws estimates proportional to a Zipf law with exponent Param
// (default 1.1) over 1000 ranks: few huge tasks, many tiny ones. Sizes
// follow the estimates, as in data-parallel systems where runtime
// scales with partition size.
func Zipf(spec Spec, src *rng.Source) ([]float64, []float64) {
	theta := spec.Param
	if theta <= 0 {
		theta = 1.1
	}
	z := rng.NewZipf(src, 1000, theta)
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		// Rank r maps to time 1000/r: rank 1 is the largest task.
		r := z.Draw()
		est[i] = 1000 / float64(r)
		sizes[i] = est[i]
	}
	return est, sizes
}

// Exponential draws i.i.d. exponential estimates with mean Param
// (default 10), clamped below at 0.01. Sizes are constant 1,
// modelling compute-bound tasks over equal-size partitions.
func Exponential(spec Spec, src *rng.Source) ([]float64, []float64) {
	mean := spec.Param
	if mean <= 0 {
		mean = 10
	}
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		e := src.Exp(1 / mean)
		if e < 0.01 {
			e = 0.01
		}
		est[i] = e
		sizes[i] = 1
	}
	return est, sizes
}

// SpMV models out-of-core sparse matrix–vector tasks (the paper's
// Zhou et al. motivation): each task processes a block of matrix rows.
// Row populations are log-normal (empirically matching scale-free
// matrices), runtime is proportional to the block's nonzero count, and
// memory size is proportional to nonzeros plus a fixed vector slice.
// Param scales the log-normal sigma (default 1).
func SpMV(spec Spec, src *rng.Source) ([]float64, []float64) {
	sigma := spec.Param
	if sigma <= 0 {
		sigma = 1
	}
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		nnz := src.LogNormal(math.Log(1000), sigma)
		if nnz < 1 {
			nnz = 1
		}
		// Runtime ~ flops ~ nnz; normalize to a convenient scale.
		est[i] = nnz / 100
		// Memory: nonzeros (value+index) plus the dense vector slice.
		sizes[i] = nnz/50 + 4
	}
	return est, sizes
}

// MapReduce models a reduce stage: key groups follow a Zipf law
// (exponent Param, default 1.05), so a few reducers receive huge
// partitions. Memory size equals the partition size; runtime is the
// partition size plus a per-task startup constant.
func MapReduce(spec Spec, src *rng.Source) ([]float64, []float64) {
	theta := spec.Param
	if theta <= 0 {
		theta = 1.05
	}
	z := rng.NewZipf(src, 4096, theta)
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		partition := 4096 / float64(z.Draw())
		est[i] = partition + 2 // startup overhead
		sizes[i] = partition
	}
	return est, sizes
}

// IterativeSolver models one sweep of an iterative out-of-core solver:
// tasks are matrix partitions balanced offline, so estimates cluster
// tightly around a common value (relative spread Param, default 0.1),
// while sizes vary more (partition padding). This is the regime where
// uncertainty, not size dispersion, dominates load imbalance.
func IterativeSolver(spec Spec, src *rng.Source) ([]float64, []float64) {
	spread := spec.Param
	if spread <= 0 {
		spread = 0.1
	}
	est := make([]float64, spec.N)
	sizes := make([]float64, spec.N)
	for i := range est {
		est[i] = 10 * src.Uniform(1-spread, 1+spread)
		sizes[i] = 10 * src.Uniform(0.5, 1.5)
	}
	return est, sizes
}
