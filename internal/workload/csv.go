package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/task"
)

// WriteCSV exports an instance as CSV with header
// "task,estimate,actual,size" — the interchange format for feeding
// real traces into the scheduler or exporting generated workloads to
// external analysis tools.
func WriteCSV(w io.Writer, in *task.Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "estimate", "actual", "size"}); err != nil {
		return err
	}
	for _, t := range in.Tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.FormatFloat(t.Estimate, 'g', -1, 64),
			strconv.FormatFloat(t.Actual, 'g', -1, 64),
			strconv.FormatFloat(t.Size, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports an instance from the WriteCSV format. The column
// order is fixed; the "actual" and "size" columns may be empty, in
// which case actuals default to the estimates and sizes to zero.
// Task IDs are reassigned in row order. m and alpha describe the
// system the trace targets.
func ReadCSV(r io.Reader, m int, alpha float64) (*task.Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if header[0] != "task" || header[1] != "estimate" {
		return nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	in := &task.Instance{M: m, Alpha: alpha}
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: CSV row %d: %w", row, err)
		}
		est, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV row %d estimate: %w", row, err)
		}
		t := task.Task{ID: len(in.Tasks), Estimate: est, Actual: est}
		if rec[2] != "" {
			if t.Actual, err = strconv.ParseFloat(rec[2], 64); err != nil {
				return nil, fmt.Errorf("workload: CSV row %d actual: %w", row, err)
			}
		}
		if rec[3] != "" {
			if t.Size, err = strconv.ParseFloat(rec[3], 64); err != nil {
				return nil, fmt.Errorf("workload: CSV row %d size: %w", row, err)
			}
		}
		in.Tasks = append(in.Tasks, t)
	}
	if err := in.Validate(false); err != nil {
		return nil, err
	}
	return in, nil
}
