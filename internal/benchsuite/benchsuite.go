// Package benchsuite defines the curated benchmark set shared by the
// repo's go-test benchmarks (bench_test.go) and the benchmark
// regression harness (cmd/benchreport). Keeping one definition of
// each workload means the numbers a developer sees from `go test
// -bench` and the numbers the regression gate compares are produced by
// the same code, not near-copies that drift apart.
//
// The set is curated, not exhaustive: each entry pins one hot path
// the performance work in this repo cares about — the end-to-end
// two-phase pipeline per strategy and size, the bare simulator event
// loop (the zero-allocation target), the memo-cache hit path, and one
// solver-heavy experiment.
package benchsuite

import (
	"io"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/opt"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// Spec is one curated benchmark.
type Spec struct {
	// Name is the stable identifier used in BENCH_*.json baselines and
	// as the sub-benchmark name under go test. Renaming one orphans its
	// baseline entry, so treat names as an interface.
	Name string
	// Tasks is the number of scheduling tasks one iteration processes;
	// the harness derives tasks/s from it. Zero for benchmarks where
	// the metric is meaningless.
	Tasks int
	// Run is the benchmark body, usable with b.Run and
	// testing.Benchmark alike. Bodies call b.ReportAllocs themselves so
	// allocation counts are recorded in every harness.
	Run func(b *testing.B)
}

// scalingInstance builds the perturbed uniform instance the scaling
// benchmarks share. Deterministic: fixed seeds.
func scalingInstance(n int) *task.Instance {
	in := workload.MustNew(workload.Spec{
		Name: "uniform", N: n, M: 64, Alpha: 1.5, Seed: 1,
	})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))
	return in
}

func scalingSpec(name string, n int, cfg core.Config) Spec {
	return Spec{
		Name:  "Scaling/" + name,
		Tasks: n,
		Run: func(b *testing.B) {
			in := scalingInstance(n)
			var r core.Runner
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(in, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		},
	}
}

// simLoopSpec benchmarks the bare simulator core on the flat engine:
// placement and priority order are computed once outside the timer, so
// the measured region is exactly state rebuild + shard execution
// (sequential workers so the number is per-core and stable across
// hosts). Under the no-replication placement every machine is an
// independent singleton shard, which is the engine's heap-free linear
// replay path — the ≥10M tasks/s, 0 allocs/op target BENCH_8.json
// gates. The event-heap reference engine keeps its own floor via
// SimLoopEvent below.
func simLoopSpec(n int) Spec {
	return Spec{
		Name:  "SimLoop/n=100k",
		Tasks: n,
		Run: func(b *testing.B) {
			in := scalingInstance(n)
			a := algo.LPTNoChoice()
			p, err := a.Place(in)
			if err != nil {
				b.Fatal(err)
			}
			order := a.Order(in)
			var runner sim.FlatRunner
			// One untimed pass grows every pooled buffer to size so the
			// timed region measures the steady state (the 0 allocs/op
			// invariant), not first-use slice growth.
			if _, err := runner.RunSharded(in, p, order, sim.FlatOptions{}, 1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.RunSharded(in, p, order, sim.FlatOptions{}, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		},
	}
}

// simLoopEventSpec keeps the pre-refactor float event loop measured:
// the reference engine still executes every analytic experiment and
// the open-system path, so its regressions matter even after the flat
// core took over the throughput-critical benchmarks.
func simLoopEventSpec(n int) Spec {
	return Spec{
		Name:  "SimLoopEvent/n=100k",
		Tasks: n,
		Run: func(b *testing.B) {
			in := scalingInstance(n)
			a := algo.LPTNoChoice()
			p, err := a.Place(in)
			if err != nil {
				b.Fatal(err)
			}
			order := a.Order(in)
			var disp sim.ListDispatcher
			var runner sim.Runner
			if err := disp.Reset(p, order); err != nil {
				b.Fatal(err)
			}
			if _, err := runner.Run(in, &disp, sim.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := disp.Reset(p, order); err != nil {
					b.Fatal(err)
				}
				if _, err := runner.Run(in, &disp, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		},
	}
}

// openSimLoopInputs builds the shared open-system workload: Poisson
// arrivals, replicate-everywhere placement, and cancel-on-completion
// racing — the heaviest configuration (every machine queues every
// task, and each completion scans for replicas to cancel).
func openSimLoopInputs(b *testing.B, n int) (*task.Instance, *placement.Placement,
	[]int, []float64, sim.OpenOptions) {
	in := scalingInstance(n)
	a := algo.LPTNoRestriction()
	p, err := a.Place(in)
	if err != nil {
		b.Fatal(err)
	}
	order := a.Order(in)
	arrive := workload.MustArrivals(n, workload.ArrivalSpec{
		Process: "poisson",
		Rate:    float64(in.M) / 4,
		Seed:    3,
	})
	opts := sim.OpenOptions{Policy: sim.CancelOnCompletion, CancelCost: 0.1}
	return in, p, order, arrive, opts
}

// openSimLoopSpec benchmarks the open-system loop on the flat engine:
// placement, order, and the arrival stream are computed once outside
// the timer, so the measured region is exactly state rebuild + wheel
// replay (sequential workers, as in simLoopSpec, so the number is
// per-core). Replicate-everywhere makes the whole cluster one uniform
// shard — the shared-position-heap path — which is the ≥1.5M tasks/s,
// 0 allocs/op target BENCH_10.json gates. The event-heap reference
// keeps its own floor via OpenSimLoopEvent below.
func openSimLoopSpec(n int) Spec {
	return Spec{
		Name:  "OpenSimLoop/n=10k",
		Tasks: n,
		Run: func(b *testing.B) {
			in, p, order, arrive, opts := openSimLoopInputs(b, n)
			var runner sim.FlatOpenRunner
			// Untimed warm-up pass, as in simLoopSpec: grow the pooled
			// buffers so the timed region measures the steady state.
			if _, err := runner.RunSharded(in, p, order, arrive, opts, 1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.RunSharded(in, p, order, arrive, opts, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		},
	}
}

// openSimLoopEventSpec keeps the float event-heap open loop measured:
// OpenRunner remains the differential reference for the flat open
// engine, so its regressions still matter. Same inputs as OpenSimLoop;
// the per-machine sorted-insert position queues make it quadratic in
// queue depth, which is exactly the gap the flat engine closes.
func openSimLoopEventSpec(n int) Spec {
	return Spec{
		Name:  "OpenSimLoopEvent/n=10k",
		Tasks: n,
		Run: func(b *testing.B) {
			in, p, order, arrive, opts := openSimLoopInputs(b, n)
			var runner sim.OpenRunner
			if _, err := runner.Run(in, p, order, arrive, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(in, p, order, arrive, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		},
	}
}

func estimateWarmSpec() Spec {
	return Spec{
		Name: "EstimateCache/warm",
		Run: func(b *testing.B) {
			src := rng.New(7)
			times := make([]float64, 64)
			for i := range times {
				times[i] = src.Uniform(1, 10)
			}
			opt.ResetCache()
			opt.Estimate(times, 8, len(times))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt.Estimate(times, 8, len(times))
			}
		},
	}
}

func experimentSpec(id string) Spec {
	return Spec{
		Name: "Experiment/" + id + "-quick",
		Run: func(b *testing.B) {
			e, err := experiments.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard, experiments.Options{Quick: true}); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}

// Curated returns the benchmark set, in a fixed order.
func Curated() []Spec {
	// Scaling specs run the full two-phase pipeline on the flat
	// simulator engine — the production configuration after the SoA
	// refactor; SimLoopEvent keeps the float reference engine pinned.
	return []Spec{
		scalingSpec("NoReplication/n=1k", 1_000,
			core.Config{Strategy: core.NoReplication, Engine: sim.EngineFlat}),
		scalingSpec("NoReplication/n=10k", 10_000,
			core.Config{Strategy: core.NoReplication, Engine: sim.EngineFlat}),
		scalingSpec("NoReplication/n=100k", 100_000,
			core.Config{Strategy: core.NoReplication, Engine: sim.EngineFlat}),
		scalingSpec("Groups8/n=10k", 10_000,
			core.Config{Strategy: core.Groups, Groups: 8, Engine: sim.EngineFlat}),
		scalingSpec("Everywhere/n=10k", 10_000,
			core.Config{Strategy: core.ReplicateEverywhere, Engine: sim.EngineFlat}),
		simLoopSpec(100_000),
		simLoopEventSpec(100_000),
		openSimLoopSpec(10_000),
		openSimLoopEventSpec(10_000),
		estimateWarmSpec(),
		experimentSpec("e2"),
		frontTierSpec(32, 6),
	}
}
