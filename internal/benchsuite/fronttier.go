package benchsuite

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/front"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

// loopback routes requests to in-process handlers by host name, so the
// front-tier benchmark measures the software stack (frontd sharding →
// clusterd dispatch → schedd solving) without kernel sockets in the
// timed region.
type loopback map[string]http.Handler

func (l loopback) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := l[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("loopback: unknown host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// frontTierSpec benchmarks one closed-loop loadgen run through the
// whole serving tier: requests per iteration single-item batches,
// content-hash sharded by frontd over two clusterd shards, each
// dispatching to one schedd. The workload is the deterministic loadgen
// stream, so every iteration issues identical requests.
func frontTierSpec(requests, tasks int) Spec {
	return Spec{
		Name:  fmt.Sprintf("FrontTier/loadgen-closed-%d", requests),
		Tasks: requests * tasks,
		Run: func(b *testing.B) {
			schedd := serve.New(serve.Config{}).Handler()
			shards := make(loopback)
			var shardURLs []string
			for i := 0; i < 2; i++ {
				c, err := cluster.New(cluster.Config{
					Backends:       []string{"http://schedd"},
					DisableHedging: true,
					Transport:      loopback{"schedd": schedd},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				host := fmt.Sprintf("shard-%d", i)
				shards[host] = c.Handler()
				shardURLs = append(shardURLs, "http://"+host)
			}
			f, err := front.New(front.Config{Shards: shardURLs, Transport: shards})
			if err != nil {
				b.Fatal(err)
			}
			cfg := loadgen.Config{
				URL:       "http://front",
				Mode:      loadgen.ModeClosed,
				Requests:  requests,
				Workers:   4,
				Seed:      9,
				Tasks:     tasks,
				Transport: loopback{"front": f.Handler()},
			}
			run := func() {
				//lint:ignore ctxflow benchmark bodies have no caller context; the run is bounded by loadgen's own per-request timeouts
				rep, err := loadgen.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if rep.OK != requests {
					b.Fatalf("run not clean: %+v", rep)
				}
			}
			run() // untimed warm-up: pools, transports, registries
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		},
	}
}
