package memaware

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// memInstance draws a workload with both times and sizes and perturbs
// the actual times.
func memInstance(t *testing.T, n, m int, alpha float64, seed uint64) *task.Instance {
	t.Helper()
	in := workload.MustNew(workload.Spec{Name: "uniform", N: n, M: m, Alpha: alpha, Seed: seed})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed+1))
	return in
}

func TestSABOSplitsByDeltaTest(t *testing.T) {
	// Two tasks: one pure compute (size ~0), one pure memory
	// (estimate tiny). With Δ=1 the compute task must land in S1 and
	// the memory task in S2.
	est := []float64{10, 0.001}
	in, err := task.NewEstimated(2, 1.5, est)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetSizes([]float64{0.001, 10}); err != nil {
		t.Fatal(err)
	}
	res, err := SABO(in, Config{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TimeIntensive) != 1 || res.TimeIntensive[0] != 0 {
		t.Fatalf("S1 = %v, want [0]", res.TimeIntensive)
	}
	if len(res.MemoryIntensive) != 1 || res.MemoryIntensive[0] != 1 {
		t.Fatalf("S2 = %v, want [1]", res.MemoryIntensive)
	}
}

func TestDeltaExtremes(t *testing.T) {
	in := memInstance(t, 40, 4, 1.5, 7)
	// Tiny Δ: everything is time-intensive.
	res, err := SABO(in, Config{Delta: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MemoryIntensive) != 0 {
		t.Fatalf("Δ→0 produced %d memory-intensive tasks", len(res.MemoryIntensive))
	}
	// Huge Δ: everything is memory-intensive.
	res, err = SABO(in, Config{Delta: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TimeIntensive) != 0 {
		t.Fatalf("Δ→∞ left %d time-intensive tasks", len(res.TimeIntensive))
	}
}

func TestRejectsBadDelta(t *testing.T) {
	in := memInstance(t, 10, 2, 1.5, 1)
	for _, d := range []float64{0, -1, math.NaN()} {
		if _, err := SABO(in, Config{Delta: d}); err == nil {
			t.Errorf("SABO accepted delta %v", d)
		}
		if _, err := ABO(in, Config{Delta: d}); err == nil {
			t.Errorf("ABO accepted delta %v", d)
		}
	}
}

func TestSABONoReplication(t *testing.T) {
	in := memInstance(t, 30, 4, 2, 3)
	res, err := SABO(in, Config{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.MaxReplication() != 1 {
		t.Fatalf("SABO replicated: %d", res.Placement.MaxReplication())
	}
	if err := res.Schedule.Verify(in, res.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestABOReplicatesOnlyTimeIntensive(t *testing.T) {
	in := memInstance(t, 30, 4, 2, 5)
	res, err := ABO(in, Config{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.TimeIntensive {
		if got := len(res.Placement.Sets[j]); got != 4 {
			t.Fatalf("time-intensive task %d has %d replicas, want m", j, got)
		}
	}
	for _, j := range res.MemoryIntensive {
		if got := len(res.Placement.Sets[j]); got != 1 {
			t.Fatalf("memory-intensive task %d has %d replicas, want 1", j, got)
		}
	}
}

func TestABOMemoryAtLeastSABO(t *testing.T) {
	in := memInstance(t, 60, 5, 1.5, 11)
	sabo, err := SABO(in, Config{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	abo, err := ABO(in, Config{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if abo.MemMax < sabo.MemMax-1e-9 {
		t.Fatalf("ABO memory %v below SABO %v despite replication", abo.MemMax, sabo.MemMax)
	}
}

func TestTheoremGuaranteesSmallInstances(t *testing.T) {
	// Validate Theorems 5–8 against exact optima on small instances,
	// using exact π1/π2 (ρ1 = ρ2 = 1).
	src := rng.New(17)
	for trial := 0; trial < 25; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 10, M: 3, Alpha: 1.4, Seed: src.Uint64(),
		})
		uncertainty.Extremes{}.Perturb(in, nil, rng.New(src.Uint64()))
		cstar, ok := opt.Exact(in.Actuals(), in.M, 20_000_000)
		if !ok {
			t.Fatal("exact makespan solver exhausted")
		}
		memstar, ok := opt.Exact(in.Sizes(), in.M, 20_000_000)
		if !ok {
			t.Fatal("exact memory solver exhausted")
		}
		cfg := Config{Delta: 1, Pi1: ExactMapping, Pi2: ExactMapping}
		alpha := in.Alpha

		sabo, err := SABO(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bound := bounds.SABOMakespan(alpha, 1, 1) * cstar; sabo.Makespan > bound+1e-9 {
			t.Errorf("trial %d: SABO makespan %v > bound %v", trial, sabo.Makespan, bound)
		}
		if bound := bounds.SABOMemory(1, 1) * memstar; sabo.MemMax > bound+1e-9 {
			t.Errorf("trial %d: SABO memory %v > bound %v", trial, sabo.MemMax, bound)
		}

		abo, err := ABO(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bound := bounds.ABOMakespan(in.M, alpha, 1, 1) * cstar; abo.Makespan > bound+1e-9 {
			t.Errorf("trial %d: ABO makespan %v > bound %v", trial, abo.Makespan, bound)
		}
		if bound := bounds.ABOMemory(in.M, 1, 1) * memstar; abo.MemMax > bound+1e-9 {
			t.Errorf("trial %d: ABO memory %v > bound %v", trial, abo.MemMax, bound)
		}
	}
}

func TestMemoryImprovesAcrossDeltaRange(t *testing.T) {
	// Mem_max is not pointwise monotone in Δ (moving one task between
	// the reference schedules can bump a machine), but the endpoints
	// must order: Δ→∞ follows the memory-optimized π2 everywhere and
	// must beat Δ→0, which ignores sizes entirely.
	in := memInstance(t, 80, 5, 1.5, 23)
	timeOnly, err := SABO(in, Config{Delta: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	memOnly, err := SABO(in, Config{Delta: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if memOnly.MemMax >= timeOnly.MemMax {
		t.Fatalf("memory-oriented SABO (%v) not below time-oriented (%v)",
			memOnly.MemMax, timeOnly.MemMax)
	}
	// And every intermediate Δ stays within its theoretical memory
	// guarantee relative to the planned π2 memory.
	for _, d := range []float64{0.1, 0.5, 1, 2, 10} {
		res, err := SABO(in, Config{Delta: d})
		if err != nil {
			t.Fatal(err)
		}
		if limit := (1 + 1/d) * res.PlannedMemory; res.MemMax > limit+1e-9 {
			t.Fatalf("Δ=%v: memory %v exceeds (1+1/Δ)·Mem^π2 = %v", d, res.MemMax, limit)
		}
	}
}

func TestExactMappingOptimal(t *testing.T) {
	weights := []float64{3, 3, 2, 2, 2}
	mapping := ExactMapping(weights, 2)
	loads := make([]float64, 2)
	for j, i := range mapping {
		loads[i] += weights[j]
	}
	max := math.Max(loads[0], loads[1])
	if max != 6 {
		t.Fatalf("ExactMapping achieved %v, optimum 6", max)
	}
}

func TestSBOMatchesSABOSplit(t *testing.T) {
	in := memInstance(t, 20, 3, 1.5, 31)
	a, err := SBO(in, Config{Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SABO(in, Config{Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MemMax != b.MemMax {
		t.Fatalf("SBO and SABO diverged: (%v,%v) vs (%v,%v)",
			a.Makespan, a.MemMax, b.Makespan, b.MemMax)
	}
}

func TestZeroSizeTasksAreTimeIntensive(t *testing.T) {
	est := []float64{1, 2, 3}
	in, err := task.NewEstimated(2, 1.5, est)
	if err != nil {
		t.Fatal(err)
	}
	// Sizes default to zero.
	res, err := SABO(in, Config{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TimeIntensive) != 3 {
		t.Fatalf("zero-size tasks not all time-intensive: %v", res.TimeIntensive)
	}
}

func TestFeasibilityProperty(t *testing.T) {
	f := func(seed uint64, dRaw uint8, useABO bool) bool {
		delta := 0.1 + float64(dRaw)/32
		in := workload.MustNew(workload.Spec{Name: "spmv", N: 40, M: 4, Alpha: 1.6, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed^99))
		var res *Result
		var err error
		if useABO {
			res, err = ABO(in, Config{Delta: delta})
		} else {
			res, err = SABO(in, Config{Delta: delta})
		}
		if err != nil {
			return false
		}
		if err := res.Schedule.Verify(in, res.Placement); err != nil {
			return false
		}
		// Memory accounting: MemMax must equal placement max memory.
		return res.MemMax == res.Placement.MaxMemory(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSABO1e4(b *testing.B) {
	in := workload.MustNew(workload.Spec{Name: "spmv", N: 10000, M: 16, Alpha: 1.5, Seed: 1})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SABO(in, Config{Delta: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABO1e4(b *testing.B) {
	in := workload.MustNew(workload.Spec{Name: "spmv", N: 10000, M: 16, Alpha: 1.5, Seed: 1})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ABO(in, Config{Delta: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
