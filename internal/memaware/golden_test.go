package memaware

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bounds"
	"repro/internal/task"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenInstance is a fixed memory-aware instance: a mix of long
// narrow tasks and short fat ones, with actuals pinned inside the
// α-band so every run is deterministic.
func goldenInstance() *task.Instance {
	alpha := math.Sqrt(2)
	ests := []float64{9, 7, 5, 4, 3, 3, 2, 2, 1, 1}
	facts := []float64{1.2, 0.8, 1.3, 0.9, 1.0, 1.4, 0.75, 1.1, 1.0, 1.3}
	sizes := []float64{1, 2, 8, 6, 1, 7, 5, 1, 4, 2}
	in := &task.Instance{M: 3, Alpha: alpha, Tasks: make([]task.Task, len(ests))}
	for j := range ests {
		in.Tasks[j] = task.Task{ID: j, Estimate: ests[j], Actual: ests[j] * facts[j], Size: sizes[j]}
	}
	return in
}

// TestGoldenBiObjective pins the byte-exact behavior of the Table 2
// algorithms (SABO/SBO/ABO/GABO) on a fixed instance across the Δ
// grid, together with the analytic guarantees they must live under
// (ρ1 = ρ2 = 4/3, LPT's bound). Refresh with:
//
//	go test ./internal/memaware -run TestGolden -update
func TestGoldenBiObjective(t *testing.T) {
	const rho = 4.0 / 3.0
	in := goldenInstance()
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "# algorithm delta planned-makespan planned-memory makespan memmax |S1| |S2| makespan-guarantee memory-guarantee")

	type algo struct {
		name string
		run  func(*task.Instance, Config) (*Result, error)
		mk   func(alpha, delta float64) float64
		mem  func(delta float64) float64
	}
	algos := []algo{
		{"sabo", SABO,
			func(a, d float64) float64 { return bounds.SABOMakespan(a, d, rho) },
			func(d float64) float64 { return bounds.SABOMemory(d, rho) }},
		{"sbo", SBO,
			func(a, d float64) float64 { return bounds.SABOMakespan(a, d, rho) },
			func(d float64) float64 { return bounds.SABOMemory(d, rho) }},
		{"abo", ABO,
			func(a, d float64) float64 { return bounds.ABOMakespan(in.M, a, d, rho) },
			func(d float64) float64 { return bounds.ABOMemory(in.M, d, rho) }},
		{"gabo:3", func(i *task.Instance, c Config) (*Result, error) { return GABO(i, c, 3) },
			func(a, d float64) float64 { return bounds.ABOMakespan(in.M, a, d, rho) },
			func(d float64) float64 { return bounds.ABOMemory(in.M, d, rho) }},
	}
	for _, a := range algos {
		for _, delta := range []float64{0.5, 1, 2} {
			res, err := a.run(in.Clone(), Config{Delta: delta})
			if err != nil {
				t.Fatalf("%s delta=%v: %v", a.name, delta, err)
			}
			fmt.Fprintf(&buf, "%s %.1f %.6f %.6f %.6f %.6f %d %d %.6f %.6f\n",
				a.name, delta,
				res.PlannedMakespan, res.PlannedMemory,
				res.Makespan, res.MemMax,
				len(res.TimeIntensive), len(res.MemoryIntensive),
				a.mk(in.Alpha, delta), a.mem(delta))
		}
	}

	got := buf.Bytes()
	path := filepath.Join("testdata", "golden", "biobjective.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bi-objective output diverged from golden file; run with -update if intentional.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
