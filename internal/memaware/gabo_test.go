package memaware

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func TestGABOKOneMatchesABO(t *testing.T) {
	in := memInstance(t, 40, 4, 1.5, 61)
	abo, err := ABO(in, Config{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	gabo, err := GABO(in, Config{Delta: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gabo.Makespan != abo.Makespan || gabo.MemMax != abo.MemMax {
		t.Fatalf("GABO(k=1) (%v, %v) != ABO (%v, %v)",
			gabo.Makespan, gabo.MemMax, abo.Makespan, abo.MemMax)
	}
}

func TestGABOReplicationDegree(t *testing.T) {
	in := memInstance(t, 40, 6, 1.5, 67)
	gabo, err := GABO(in, Config{Delta: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range gabo.TimeIntensive {
		if got := len(gabo.Placement.Sets[j]); got != 2 { // m/k = 2
			t.Fatalf("time-intensive task %d has %d replicas, want 2", j, got)
		}
	}
	for _, j := range gabo.MemoryIntensive {
		if got := len(gabo.Placement.Sets[j]); got != 1 {
			t.Fatalf("memory-intensive task %d has %d replicas, want 1", j, got)
		}
	}
}

func TestGABOMemoryBetweenSABOAndABO(t *testing.T) {
	// Averaged over draws, GABO's memory sits at or below ABO's (fewer
	// copies of the replicated set) and at or above SABO's (which
	// replicates nothing).
	var sumSABO, sumGABO, sumABO float64
	src := rng.New(71)
	for trial := 0; trial < 10; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "spmv", N: 60, M: 6, Alpha: 1.5, Seed: src.Uint64(),
		})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(src.Uint64()))
		sabo, err := SABO(in, Config{Delta: 1})
		if err != nil {
			t.Fatal(err)
		}
		gabo, err := GABO(in, Config{Delta: 1}, 3)
		if err != nil {
			t.Fatal(err)
		}
		abo, err := ABO(in, Config{Delta: 1})
		if err != nil {
			t.Fatal(err)
		}
		sumSABO += sabo.MemMax
		sumGABO += gabo.MemMax
		sumABO += abo.MemMax
	}
	if !(sumSABO <= sumGABO && sumGABO <= sumABO) {
		t.Fatalf("memory ordering violated: SABO %v, GABO %v, ABO %v",
			sumSABO, sumGABO, sumABO)
	}
}

func TestGABOMakespanCompetitive(t *testing.T) {
	// GABO's makespan should usually sit between ABO's (most freedom)
	// and SABO's (none); check the aggregate ordering holds loosely.
	var mkSABO, mkGABO, mkABO []float64
	src := rng.New(73)
	for trial := 0; trial < 12; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 60, M: 6, Alpha: 2, Seed: src.Uint64(),
		})
		uncertainty.Extremes{}.Perturb(in, nil, rng.New(src.Uint64()))
		sabo, err := SABO(in, Config{Delta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		gabo, err := GABO(in, Config{Delta: 0.5}, 2)
		if err != nil {
			t.Fatal(err)
		}
		abo, err := ABO(in, Config{Delta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		mkSABO = append(mkSABO, sabo.Makespan)
		mkGABO = append(mkGABO, gabo.Makespan)
		mkABO = append(mkABO, abo.Makespan)
	}
	mS, mG, mA := stats.Summarize(mkSABO).Mean, stats.Summarize(mkGABO).Mean, stats.Summarize(mkABO).Mean
	if !(mA <= mG+1e-9) {
		t.Fatalf("ABO mean %v above GABO %v", mA, mG)
	}
	if !(mG <= mS+1e-9) {
		t.Fatalf("GABO mean %v above SABO %v", mG, mS)
	}
}

func TestGABORejectsBadK(t *testing.T) {
	in := memInstance(t, 10, 6, 1.5, 79)
	if _, err := GABO(in, Config{Delta: 1}, 4); err == nil {
		t.Error("non-divisor k accepted")
	}
	if _, err := GABO(in, Config{Delta: 0}, 2); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestGABOFeasible(t *testing.T) {
	in := memInstance(t, 50, 6, 1.7, 83)
	res, err := GABO(in, Config{Delta: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in, res.Placement); err != nil {
		t.Fatal(err)
	}
	if res.MemMax != res.Placement.MaxMemory(in) {
		t.Fatal("memory accounting mismatch")
	}
}
