package memaware_test

import (
	"fmt"

	"repro/internal/memaware"
	"repro/internal/task"
)

// ExampleSABO splits a mixed workload with the Δ-test and pins each
// side to its reference schedule.
func ExampleSABO() {
	// Task 0 is compute-heavy, task 1 memory-heavy, task 2 mixed.
	est := []float64{8, 0.5, 3}
	in, _ := task.NewEstimated(2, 1.5, est)
	_ = in.SetSizes([]float64{0.5, 9, 3})

	res, _ := memaware.SABO(in, memaware.Config{Delta: 1})
	fmt.Printf("time-intensive (S1):   %v\n", res.TimeIntensive)
	fmt.Printf("memory-intensive (S2): %v\n", res.MemoryIntensive)
	fmt.Printf("replication: %d\n", res.Placement.MaxReplication())
	// Output:
	// time-intensive (S1):   [0 2]
	// memory-intensive (S2): [1]
	// replication: 1
}

// ExampleABO replicates the time-intensive side everywhere for online
// dispatch.
func ExampleABO() {
	est := []float64{8, 0.5, 3}
	in, _ := task.NewEstimated(2, 1.5, est)
	_ = in.SetSizes([]float64{0.5, 9, 3})

	res, _ := memaware.ABO(in, memaware.Config{Delta: 1})
	fmt.Printf("replication of task 0: %d machines\n", len(res.Placement.Sets[0]))
	fmt.Printf("replication of task 1: %d machine\n", len(res.Placement.Sets[1]))
	// Output:
	// replication of task 0: 2 machines
	// replication of task 1: 1 machine
}
