package memaware

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/task"
)

// GABO runs a group-replicated variant of ABO_Δ that combines the
// paper's two models — an extension beyond the paper (its conclusion
// calls for replication policies between "one machine" and
// "everywhere" and for replication costs): memory-intensive tasks are
// pinned per π2 exactly as in ABO_Δ, while time-intensive tasks are
// replicated only within one of k machine groups (chosen by list
// scheduling on estimated load, as in LS-Group) instead of on every
// machine. k must divide m.
//
// Intuition for the tradeoff: each time-intensive task costs m/k
// memory copies instead of m, while phase 2 retains within-group
// flexibility. No approximation bound is proved here; experiment e3
// measures the empirical memory–makespan position between SABO_Δ
// (k=m, fully pinned per π1 would be) and ABO_Δ (k=1). With k=1 GABO
// coincides with ABO_Δ.
func GABO(in *task.Instance, cfg Config, k int) (*Result, error) {
	groups, err := placement.PartitionGroups(in.M, k)
	if err != nil {
		return nil, err
	}
	_, pi2, cmax1, mem2, inS2, err := split(in, cfg)
	if err != nil {
		return nil, err
	}

	p := placement.New(in.N(), in.M)
	var s1, s2 []int
	for j := range in.Tasks {
		if inS2[j] {
			p.Assign(j, pi2[j])
			s2 = append(s2, j)
		} else {
			s1 = append(s1, j)
		}
	}
	// Assign time-intensive tasks to groups by estimated load (list
	// scheduling over groups, LS-Group's phase 1).
	loads := make([]float64, k)
	for _, j := range s1 {
		best := 0
		for g := 1; g < k; g++ {
			if loads[g] < loads[best] {
				best = g
			}
		}
		p.AssignSet(j, groups[best])
		loads[best] += in.Tasks[j].Estimate
	}

	// Phase 2: pinned memory tasks first, then the group-replicated
	// time-intensive tasks in list order.
	order := make([]int, 0, in.N())
	order = append(order, s2...)
	order = append(order, s1...)
	d, err := sim.NewListDispatcher(p, order)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(in, d, sim.Options{})
	if err != nil {
		return nil, err
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:       fmt.Sprintf("GABO(Δ=%.3g,k=%d)", cfg.Delta, k),
		Placement:       p,
		Schedule:        res.Schedule,
		Makespan:        res.Schedule.Makespan(),
		MemMax:          p.MaxMemory(in),
		TimeIntensive:   s1,
		MemoryIntensive: s2,
		PlannedMakespan: cmax1,
		PlannedMemory:   mem2,
	}, nil
}
