// Package memaware implements the paper's memory-aware replication
// model: a bi-objective problem minimizing both makespan C_max and
// maximum per-machine memory occupation Mem_max = max_i Σ_{j∈E_i} s_j.
//
// Three algorithms are provided:
//
//   - SBO_Δ — the substrate from the cited IPDPS'08 work: combine a
//     ρ1-approximate makespan schedule π1 with a ρ2-approximate memory
//     schedule π2; task j follows π2 iff
//     p̃_j / C̃^π1_max ≤ Δ · s_j / Mem^π2_max, else π1.
//   - SABO_Δ — "static asymmetric bi-objective": SBO_Δ's split under
//     uncertain times; no replication. Guarantees
//     ((1+Δ)α²ρ1, (1+1/Δ)ρ2) on (makespan, memory).
//   - ABO_Δ — "asymmetric bi-objective": memory-intensive tasks are
//     pinned per π2, processing-time-intensive tasks are replicated on
//     every machine and dispatched online by Graham's List Scheduling
//     after a machine drains its pinned queue. Guarantees
//     (2−1/m+Δα²ρ1, (1+m/Δ)ρ2).
//
// π1 and π2 default to LPT on estimates and LPT on sizes
// (ρ1 = ρ2 = 4/3 − 1/(3m)), and are pluggable so experiments can use
// exact single-objective schedules (ρ = 1) as the paper's Figure 6(b)
// assumes.
package memaware

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/opt"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// MappingFunc produces a task→machine assignment optimizing one
// objective over the given weights (estimates for π1, sizes for π2).
type MappingFunc func(weights []float64, m int) []int

// LPTMapping is the default single-objective scheduler: LPT over the
// weights, a (4/3 − 1/(3m))-approximation for minimizing the maximum
// machine weight.
func LPTMapping(weights []float64, m int) []int {
	_, mapping := opt.LPT(weights, m)
	return mapping
}

// ExactMapping minimizes the maximum machine weight exactly via
// branch-and-bound (falls back to LPT if the search budget runs out).
// Intended for the small instances of guarantee-validation
// experiments, where ρ = 1 is required.
func ExactMapping(weights []float64, m int) []int {
	target, ok := opt.Exact(weights, m, 5_000_000)
	if !ok {
		return LPTMapping(weights, m)
	}
	// Reconstruct an assignment achieving the target via DFS.
	n := len(weights)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	loads := make([]float64, m)
	mapping := make([]int, n)
	const tol = 1e-9
	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		if idx == n {
			return true
		}
		j := order[idx]
		for i := 0; i < m; i++ {
			// Symmetry: skip machines identical in load to an earlier one.
			dup := false
			for i2 := 0; i2 < i; i2++ {
				//lint:ignore floatcmp symmetry pruning wants bit-identical loads; near-equal machines are legitimately distinct
				if loads[i2] == loads[i] {
					dup = true
					break
				}
			}
			if dup || loads[i]+weights[j] > target*(1+tol) {
				continue
			}
			loads[i] += weights[j]
			mapping[j] = i
			if dfs(idx + 1) {
				return true
			}
			loads[i] -= weights[j]
		}
		return false
	}
	if !dfs(0) {
		return LPTMapping(weights, m)
	}
	return mapping
}

// Config parameterizes the bi-objective algorithms.
type Config struct {
	// Delta is the Δ threshold trading makespan for memory; must be
	// positive.
	Delta float64
	// Pi1 builds the makespan-oriented schedule from estimates;
	// nil selects LPTMapping.
	Pi1 MappingFunc
	// Pi2 builds the memory-oriented schedule from sizes; nil selects
	// LPTMapping.
	Pi2 MappingFunc
}

// ErrBadDelta reports a non-positive Δ.
var ErrBadDelta = errors.New("memaware: delta must be positive")

// Result is the outcome of a bi-objective algorithm.
type Result struct {
	// Algorithm names the algorithm.
	Algorithm string
	// Placement is the phase-1 data placement (replica sets).
	Placement *placement.Placement
	// Schedule is the executed schedule.
	Schedule *sched.Schedule
	// Makespan is the executed makespan (actual times).
	Makespan float64
	// MemMax is max_i Σ_{j replicated on i} s_j.
	MemMax float64
	// TimeIntensive lists the tasks in S1 (scheduled for makespan).
	TimeIntensive []int
	// MemoryIntensive lists the tasks in S2 (scheduled for memory).
	MemoryIntensive []int
	// PlannedMakespan is C̃^π1_max, the estimated makespan of π1.
	PlannedMakespan float64
	// PlannedMemory is Mem^π2_max, the memory of π2.
	PlannedMemory float64
}

// split computes S1/S2 and the reference schedules. It returns the
// π1 and π2 mappings, the planned C̃^π1_max and Mem^π2_max, and the
// membership of S2 (memory-intensive).
func split(in *task.Instance, cfg Config) (pi1, pi2 []int, cmax1, mem2 float64, inS2 []bool, err error) {
	if !(cfg.Delta > 0) {
		return nil, nil, 0, 0, nil, fmt.Errorf("%w: got %v", ErrBadDelta, cfg.Delta)
	}
	p1 := cfg.Pi1
	if p1 == nil {
		p1 = LPTMapping
	}
	p2 := cfg.Pi2
	if p2 == nil {
		p2 = LPTMapping
	}
	pi1 = p1(in.Estimates(), in.M)
	pi2 = p2(in.Sizes(), in.M)
	if len(pi1) != in.N() || len(pi2) != in.N() {
		return nil, nil, 0, 0, nil, fmt.Errorf("memaware: mapping length mismatch")
	}
	loads1 := make([]float64, in.M)
	loads2 := make([]float64, in.M)
	for j, t := range in.Tasks {
		loads1[pi1[j]] += t.Estimate
		loads2[pi2[j]] += t.Size
	}
	for i := 0; i < in.M; i++ {
		if loads1[i] > cmax1 {
			cmax1 = loads1[i]
		}
		if loads2[i] > mem2 {
			mem2 = loads2[i]
		}
	}
	if cmax1 <= 0 {
		return nil, nil, 0, 0, nil, fmt.Errorf("memaware: degenerate π1 makespan")
	}
	inS2 = make([]bool, in.N())
	for j, t := range in.Tasks {
		// p̃_j / C̃^π1 ≤ Δ·s_j / Mem^π2 → memory-intensive (S2).
		lhs := t.Estimate / cmax1
		var rhs float64
		if mem2 > 0 {
			rhs = cfg.Delta * t.Size / mem2
		}
		inS2[j] = lhs <= rhs
	}
	return pi1, pi2, cmax1, mem2, inS2, nil
}

// SABO runs the SABO_Δ algorithm: each task is statically pinned to
// its π1 or π2 machine according to the Δ test; phase 2 just executes
// the pinned assignment with actual times.
func SABO(in *task.Instance, cfg Config) (*Result, error) {
	pi1, pi2, cmax1, mem2, inS2, err := split(in, cfg)
	if err != nil {
		return nil, err
	}
	mapping := make([]int, in.N())
	var s1, s2 []int
	for j := range mapping {
		if inS2[j] {
			mapping[j] = pi2[j]
			s2 = append(s2, j)
		} else {
			mapping[j] = pi1[j]
			s1 = append(s1, j)
		}
	}
	p := placement.New(in.N(), in.M)
	for j, i := range mapping {
		p.Assign(j, i)
	}
	s, err := sched.FromMapping(in, mapping)
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:       fmt.Sprintf("SABO(Δ=%.3g)", cfg.Delta),
		Placement:       p,
		Schedule:        s,
		Makespan:        s.Makespan(),
		MemMax:          p.MaxMemory(in),
		TimeIntensive:   s1,
		MemoryIntensive: s2,
		PlannedMakespan: cmax1,
		PlannedMemory:   mem2,
	}, nil
}

// SBO runs the substrate SBO_Δ algorithm for certain processing
// times: identical split to SABO, but the execution is evaluated as
// if estimates were exact. It is exposed for completeness and for
// testing the substrate in isolation.
func SBO(in *task.Instance, cfg Config) (*Result, error) {
	res, err := SABO(in, cfg)
	if err != nil {
		return nil, err
	}
	res.Algorithm = fmt.Sprintf("SBO(Δ=%.3g)", cfg.Delta)
	return res, nil
}

// ABO runs the ABO_Δ algorithm: memory-intensive tasks are pinned per
// π2; time-intensive tasks are replicated on all machines and
// dispatched online with Graham's List Scheduling once a machine has
// drained its pinned queue.
func ABO(in *task.Instance, cfg Config) (*Result, error) {
	_, pi2, cmax1, mem2, inS2, err := split(in, cfg)
	if err != nil {
		return nil, err
	}
	p := placement.New(in.N(), in.M)
	var s1, s2 []int
	for j := range in.Tasks {
		if inS2[j] {
			p.Assign(j, pi2[j])
			s2 = append(s2, j)
		} else {
			all := make([]int, in.M)
			for i := range all {
				all[i] = i
			}
			p.AssignSet(j, all)
			s1 = append(s1, j)
		}
	}
	// Priority: pinned memory tasks first (so machines drain their π2
	// queues), then replicated tasks in list order.
	order := make([]int, 0, in.N())
	order = append(order, s2...)
	order = append(order, s1...)
	d, err := sim.NewListDispatcher(p, order)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(in, d, sim.Options{})
	if err != nil {
		return nil, err
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:       fmt.Sprintf("ABO(Δ=%.3g)", cfg.Delta),
		Placement:       p,
		Schedule:        res.Schedule,
		Makespan:        res.Schedule.Makespan(),
		MemMax:          p.MaxMemory(in),
		TimeIntensive:   s1,
		MemoryIntensive: s2,
		PlannedMakespan: cmax1,
		PlannedMemory:   mem2,
	}, nil
}
