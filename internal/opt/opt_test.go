package opt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLowerBoundsBasics(t *testing.T) {
	times := []float64{5, 3, 3, 3}
	if got := SumLowerBound(times, 2); got != 7 {
		t.Errorf("SumLowerBound = %v, want 7", got)
	}
	if got := MaxLowerBound(times); got != 5 {
		t.Errorf("MaxLowerBound = %v, want 5", got)
	}
	// m=2: 3 largest are 5,3,3; the 2 smallest of those sum to 6.
	if got := PairLowerBound(times, 2); got != 6 {
		t.Errorf("PairLowerBound = %v, want 6", got)
	}
	if got := LowerBound(times, 2); got != 7 {
		t.Errorf("LowerBound = %v, want 7", got)
	}
}

func TestPairLowerBoundFewTasks(t *testing.T) {
	if got := PairLowerBound([]float64{4, 2}, 3); got != 0 {
		t.Errorf("PairLowerBound with n<=m = %v, want 0", got)
	}
}

func TestLPTClassic(t *testing.T) {
	// Graham's classic LPT example: times 7,7,6,6,5,5,4,4,4 on 3
	// machines. Optimum is 16; LPT also achieves 16 here.
	times := []float64{7, 7, 6, 6, 5, 5, 4, 4, 4}
	got, mapping := LPT(times, 3)
	if got != 16 {
		t.Errorf("LPT makespan = %v, want 16", got)
	}
	loads := make([]float64, 3)
	for j, i := range mapping {
		loads[i] += times[j]
	}
	max := 0.0
	for _, l := range loads {
		max = math.Max(max, l)
	}
	if max != got {
		t.Errorf("mapping inconsistent with makespan: %v vs %v", max, got)
	}
}

func TestExactSmall(t *testing.T) {
	cases := []struct {
		times []float64
		m     int
		want  float64
	}{
		{[]float64{3, 3, 2, 2, 2}, 2, 6},
		{[]float64{1, 1, 1, 1}, 2, 2},
		{[]float64{10}, 3, 10},
		{[]float64{5, 4, 3, 3, 3}, 3, 7},
		{[]float64{8, 7, 6, 5, 4}, 2, 15},
		// LPT is suboptimal here: LPT gives 11 (3+3+5? no) — classic
		// instance 5,5,4,4,3,3 on 2 machines: optimum 12.
		{[]float64{5, 5, 4, 4, 3, 3}, 2, 12},
	}
	for _, c := range cases {
		got, ok := Exact(c.times, c.m, 1_000_000)
		if !ok {
			t.Errorf("Exact(%v, %d) exhausted budget", c.times, c.m)
			continue
		}
		if !almostEq(got, c.want) {
			t.Errorf("Exact(%v, %d) = %v, want %v", c.times, c.m, got, c.want)
		}
	}
}

func TestExactBeatsLPTWhenPossible(t *testing.T) {
	// 2 machines, tasks 3,3,2,2,2: LPT yields 7 (3+2+2 vs 3+2),
	// optimum is 6.
	times := []float64{3, 3, 2, 2, 2}
	lpt, _ := LPT(times, 2)
	if lpt != 7 {
		t.Fatalf("LPT = %v, want 7 (sanity)", lpt)
	}
	exact, ok := Exact(times, 2, 1_000_000)
	if !ok || exact != 6 {
		t.Fatalf("Exact = %v (ok=%v), want 6", exact, ok)
	}
}

func TestMultiFitUpperBound(t *testing.T) {
	times := []float64{3, 3, 2, 2, 2}
	mf := MultiFit(times, 2, 30)
	if mf < 6-1e-9 {
		t.Fatalf("MultiFit = %v below optimum 6", mf)
	}
	if mf > 7+1e-9 {
		t.Fatalf("MultiFit = %v above LPT bound 7", mf)
	}
}

func TestEstimateExactForSmall(t *testing.T) {
	r := Estimate([]float64{3, 3, 2, 2, 2}, 2, 20)
	if !r.Exact || !almostEq(r.Value(), 6) {
		t.Fatalf("Estimate = %+v, want exact 6", r)
	}
}

func TestEstimateTrivialCases(t *testing.T) {
	r := Estimate([]float64{4, 2}, 4, 20)
	if !r.Exact || r.Value() != 4 || r.Method != "trivial" {
		t.Fatalf("n<=m Estimate = %+v", r)
	}
	r = Estimate([]float64{4, 2}, 1, 20)
	if !r.Exact || r.Value() != 6 {
		t.Fatalf("m=1 Estimate = %+v", r)
	}
	r = Estimate(nil, 3, 20)
	if !r.Exact || r.Value() != 0 {
		t.Fatalf("empty Estimate = %+v", r)
	}
}

func TestEstimateBoundsBracketForLarge(t *testing.T) {
	src := rng.New(1)
	times := make([]float64, 200)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	r := Estimate(times, 7, 20)
	if r.Lower > r.Upper {
		t.Fatalf("bracket inverted: %+v", r)
	}
	if r.Upper/r.Lower > 13.0/11+1e-6 {
		t.Fatalf("bracket wider than MULTIFIT guarantee: %+v", r)
	}
}

func TestExactMatchesBruteForceProperty(t *testing.T) {
	// Compare branch-and-bound with exhaustive enumeration on tiny
	// instances.
	bruteForce := func(times []float64, m int) float64 {
		n := len(times)
		best := math.Inf(1)
		loads := make([]float64, m)
		var rec func(j int)
		rec = func(j int) {
			if j == n {
				max := 0.0
				for _, l := range loads {
					max = math.Max(max, l)
				}
				best = math.Min(best, max)
				return
			}
			for i := 0; i < m; i++ {
				loads[i] += times[j]
				rec(j + 1)
				loads[i] -= times[j]
			}
		}
		rec(0)
		return best
	}
	src := rng.New(7)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%7) + 2
		m := int(mRaw%3) + 2
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(src.Intn(20) + 1)
		}
		want := bruteForce(times, m)
		got, ok := Exact(times, m, 10_000_000)
		return ok && almostEq(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsSandwichProperty(t *testing.T) {
	// LowerBound ≤ Exact ≤ MultiFit ≤ LPT for random instances.
	src := rng.New(21)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%10) + 3
		m := int(mRaw%4) + 2
		times := make([]float64, n)
		for i := range times {
			times[i] = src.Uniform(1, 50)
		}
		lb := LowerBound(times, m)
		exact, ok := Exact(times, m, 10_000_000)
		if !ok {
			return false
		}
		mf := MultiFit(times, m, 30)
		lpt, _ := LPT(times, m)
		const tol = 1e-9
		return lb <= exact+tol && exact <= mf+tol && mf <= lpt+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestExactBudgetExhaustion(t *testing.T) {
	src := rng.New(5)
	times := make([]float64, 40)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	v, ok := Exact(times, 5, 10)
	if ok {
		t.Skip("search closed within 10 nodes; instance accidentally trivial")
	}
	// Even when exhausted, the incumbent must be a feasible makespan:
	// at least the lower bound.
	if v < LowerBound(times, 5)-1e-9 {
		t.Fatalf("exhausted incumbent %v below lower bound", v)
	}
}

func BenchmarkLPT1000(b *testing.B) {
	src := rng.New(1)
	times := make([]float64, 1000)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LPT(times, 16)
	}
}

func BenchmarkMultiFit1000(b *testing.B) {
	src := rng.New(1)
	times := make([]float64, 1000)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiFit(times, 16, 20)
	}
}

func BenchmarkExact14(b *testing.B) {
	src := rng.New(1)
	times := make([]float64, 14)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(times, 4, 20_000_000)
	}
}
