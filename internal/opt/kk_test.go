package opt

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestKarmarkarKarpTrivial(t *testing.T) {
	if got := KarmarkarKarp(nil, 3); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := KarmarkarKarp([]float64{2, 3}, 1); got != 5 {
		t.Fatalf("m=1 = %v", got)
	}
	if got := KarmarkarKarp([]float64{7}, 3); got != 7 {
		t.Fatalf("single task = %v", got)
	}
}

func TestKarmarkarKarpBeatsLPTOnClassicInstance(t *testing.T) {
	// {8,7,6,5,4} on 2 machines: LPT gives 17, LDM gives 16, optimum 15.
	times := []float64{8, 7, 6, 5, 4}
	lpt, _ := LPT(times, 2)
	kk := KarmarkarKarp(times, 2)
	if lpt != 17 {
		t.Fatalf("LPT = %v, want 17 (sanity)", lpt)
	}
	if kk != 16 {
		t.Fatalf("KK = %v, want 16", kk)
	}
}

func TestKarmarkarKarpIsValidUpperBound(t *testing.T) {
	// KK's value must always be achievable, i.e. ≥ the exact optimum,
	// and ≥ every lower bound.
	src := rng.New(91)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%10) + 3
		m := int(mRaw%4) + 2
		times := make([]float64, n)
		for i := range times {
			times[i] = src.Uniform(1, 40)
		}
		kk := KarmarkarKarp(times, m)
		star, ok := Exact(times, m, 10_000_000)
		if !ok {
			return true
		}
		return kk >= star-1e-9 && kk >= LowerBound(times, m)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKarmarkarKarpConservesWork(t *testing.T) {
	// The final partition's total load must equal Σp (no work lost in
	// merging).
	src := rng.New(93)
	times := make([]float64, 50)
	sum := 0.0
	for i := range times {
		times[i] = src.Uniform(1, 100)
		sum += times[i]
	}
	const m = 4
	kk := KarmarkarKarp(times, m)
	// makespan ≥ average, ≤ sum.
	if kk < sum/m-1e-9 || kk > sum+1e-9 {
		t.Fatalf("KK %v outside [avg=%v, sum=%v]", kk, sum/m, sum)
	}
}

func TestEstimateUsesKK(t *testing.T) {
	// On the classic instance with the exact solver disabled (n >
	// exactLimit... it's small, so force via exactLimit=1), the bracket
	// upper must be ≤ KK's 16, not LPT's 17.
	times := []float64{8, 7, 6, 5, 4}
	r := Estimate(times, 2, 1)
	if r.Upper > 16+1e-9 {
		t.Fatalf("Estimate upper %v, want <= 16 (KK)", r.Upper)
	}
}

// TestKarmarkarKarpTieOrderStable pins the seq tie-break: instances
// made of duplicate times put many equal-spread vectors in the LDM
// heap at once, and the pop order among them must be a function of the
// input alone — earliest-created first — not of sift internals. The
// all-ties instance has a hand-computable merge tree; any tie-break
// drift changes the intermediate pairings and would show up either as
// a different value here or as nondeterminism across repeats.
func TestKarmarkarKarpTieOrderStable(t *testing.T) {
	// 4×1.0 on 2 machines: pairs merge in seq order to [1,1] twice,
	// then to [2,2] — makespan exactly 2.
	if got := KarmarkarKarp([]float64{1, 1, 1, 1}, 2); got != 2 {
		t.Fatalf("all-ties KK = %v, want 2", got)
	}
	// A larger duplicate-heavy instance: only repeatability is asserted,
	// across fresh heaps, many times.
	times := make([]float64, 64)
	for i := range times {
		times[i] = float64(1 + i%4) // heavy duplication: 16 of each value
	}
	want := KarmarkarKarp(times, 5)
	for rep := 0; rep < 50; rep++ {
		if got := KarmarkarKarp(times, 5); got != want {
			t.Fatalf("rep %d: KK = %v, want %v — tied pop order not stable", rep, got, want)
		}
	}
}

func BenchmarkKarmarkarKarp1000(b *testing.B) {
	src := rng.New(1)
	times := make([]float64, 1000)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KarmarkarKarp(times, 16)
	}
}
