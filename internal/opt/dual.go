package opt

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DualApprox implements the Hochbaum–Shmoys dual-approximation scheme
// for P||C_max, which the paper's related-work section cites as the
// way to get arbitrarily good offline approximations ("one can even
// obtain an arbitrarily good approximation algorithm ... with a dual
// approximation algorithm"). It binary-searches a target makespan T;
// for each T a (1+eps)-relaxed feasibility oracle packs the "big"
// tasks (those > eps·T) exactly over rounded size classes and
// greedily adds the small ones. The returned value is a certified
// upper bound on C* within a factor (1+eps)(1+2⁻³⁰) — typically much
// tighter than MULTIFIT's 13/11 for small eps.
//
// Cost grows steeply as eps shrinks (the oracle works over ~1/eps²
// size classes with ≤ 1/eps big tasks per machine), so eps below ~0.1
// is only practical for small instances. The oracle's search is
// budgeted: if its state space explodes, DualApprox falls back to
// min(MULTIFIT, LPT) and reports ok=false.
func DualApprox(times []float64, m int, eps float64) (float64, bool) {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("opt: DualApprox eps %v outside (0,1)", eps))
	}
	if len(times) == 0 {
		return 0, true
	}
	if m <= 1 {
		s := 0.0
		for _, p := range times {
			s += p
		}
		return s, true
	}
	lb := LowerBound(times, m)
	ub, _ := LPT(times, m)
	if mf := MultiFit(times, m, 24); mf < ub {
		ub = mf
	}
	if nearlyEqual(lb, ub) {
		return lb, true
	}

	desc := make([]float64, len(times))
	copy(desc, times)
	sort.Sort(sort.Reverse(sort.Float64Slice(desc)))

	const budget = 4_000_000 // oracle state budget across the whole search
	used := 0

	// Invariant: oracle rejected lo (so C* may exceed lo), oracle
	// accepted hi (so there is a schedule of makespan ≤ (1+eps)·hi).
	// Completeness of the oracle gives: reject(t) ⇒ C* > t. Hence at
	// the end C* > lo ≈ hi, and (1+eps)·hi ≤ (1+eps)·C*·(1+tiny).
	lo, hi := lb, ub
	fits, okb := dualFeasible(desc, m, lo, eps, budget, &used)
	if !okb {
		return ub, false
	}
	if fits {
		return math.Min(lo*(1+eps), ub), true
	}
	for iter := 0; iter < 30 && (hi-lo) > 1e-9*math.Max(1, hi); iter++ {
		mid := (lo + hi) / 2
		fits, okb := dualFeasible(desc, m, mid, eps, budget, &used)
		if !okb {
			return ub, false
		}
		if fits {
			hi = mid
		} else {
			lo = mid
		}
	}
	// hi·(1+eps) certifies the (1+eps)-optimality claim; LPT/MULTIFIT
	// are achievable schedules too, so never report worse than them.
	return math.Min(hi*(1+eps), ub), true
}

// dualFeasible is the (1+eps)-relaxed feasibility oracle: it reports
// fits=true only if the tasks provably fit on m machines of capacity
// (1+eps)·t, and fits=false only if they provably do not fit on m
// machines of capacity t (so C* > t). okb=false means the state
// budget ran out before either could be certified.
//
// desc must be sorted non-increasing.
func dualFeasible(desc []float64, m int, t, eps float64, budget int, used *int) (fits, okb bool) {
	if t <= 0 {
		return false, true
	}
	if desc[0] > t {
		// Even alone, the largest task exceeds capacity t.
		return false, true
	}

	// Partition into big (> eps·t) and small.
	nBig := sort.Search(len(desc), func(i int) bool { return desc[i] <= eps*t })
	big := desc[:nBig]
	small := desc[nBig:]

	// Round big tasks down to multiples of unit = eps²·t; class index
	// i means rounded size i·unit. Big sizes lie in (eps·t, t], so
	// i ∈ [floor(1/eps), 1/eps²].
	unit := eps * eps * t
	realByClass := map[int][]float64{}
	for _, p := range big {
		i := int(p / unit)
		realByClass[i] = append(realByClass[i], p)
	}
	classes := make([]int, 0, len(realByClass))
	for i := range realByClass {
		classes = append(classes, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))

	// Bail out before the configuration space explodes: the scheme is
	// exponential in the class count, and the caller falls back to
	// MULTIFIT/LPT on okb=false.
	if len(classes) > 20 {
		return false, false
	}

	need := make([]int, len(classes))
	for ci, c := range classes {
		need[ci] = len(realByClass[c])
	}
	capUnits := int(t / unit)

	// minMachines: fewest capacity-t machines packing the rounded
	// residual vector exactly. Memoized exhaustive DFS over machine
	// configurations; -1 signals budget exhaustion.
	memo := map[string]int{}
	var minMachines func(res []int) int
	minMachines = func(res []int) int {
		empty := true
		for _, r := range res {
			if r > 0 {
				empty = false
				break
			}
		}
		if empty {
			return 0
		}
		key := intsKey(res)
		if v, ok := memo[key]; ok {
			return v
		}
		*used++
		if *used > budget {
			return -1
		}
		best := math.MaxInt32
		cfg := make([]int, len(res))
		var fill func(ci, capLeft int, any bool)
		fill = func(ci, capLeft int, any bool) {
			*used++
			if *used > budget {
				best = -1
			}
			if best == -1 {
				return
			}
			if ci == len(res) {
				if !any {
					return
				}
				next := make([]int, len(res))
				for i := range res {
					next[i] = res[i] - cfg[i]
				}
				sub := minMachines(next)
				if sub == -1 {
					best = -1
					return
				}
				if sub+1 < best {
					best = sub + 1
				}
				return
			}
			maxTake := res[ci]
			if classes[ci] > 0 {
				if byCap := capLeft / classes[ci]; byCap < maxTake {
					maxTake = byCap
				}
			}
			for take := maxTake; take >= 0; take-- {
				cfg[ci] = take
				fill(ci+1, capLeft-take*classes[ci], any || take > 0)
				if best == -1 {
					return
				}
			}
			cfg[ci] = 0
		}
		fill(0, capUnits, false)
		memo[key] = best
		return best
	}

	q := 0
	if len(need) > 0 {
		q = minMachines(need)
		if q == -1 {
			return false, false
		}
		if q > m {
			// Rounded big tasks need more than m capacity-t machines. If
			// C* ≤ t, the optimal schedule packs the *real* big tasks into
			// m machines of capacity t; rounding down only shrinks them,
			// so the rounded packing would fit too. Hence C* > t.
			return false, true
		}
	}

	// Reconstruct one optimal big packing to obtain real per-machine
	// loads: peel off a configuration whose removal decrements
	// minMachines, assigning real task sizes class by class.
	loads := make([]float64, m)
	if q > 0 {
		res := append([]int(nil), need...)
		realLeft := map[int][]float64{}
		for c, xs := range realByClass {
			realLeft[c] = append([]float64(nil), xs...)
		}
		for machine := 0; machine < q; machine++ {
			remaining := minMachines(res)
			if remaining == -1 {
				return false, false // budget exhausted mid-reconstruction
			}
			target := remaining - 1
			if target < 0 {
				break
			}
			cfg, ok := findConfig(res, classes, capUnits, target, minMachines, budget, used)
			if !ok {
				return false, false
			}
			load := 0.0
			for ci, take := range cfg {
				c := classes[ci]
				for x := 0; x < take; x++ {
					xs := realLeft[c]
					load += xs[len(xs)-1]
					realLeft[c] = xs[:len(xs)-1]
				}
				res[ci] -= take
			}
			loads[machine] = load
		}
	}

	// Greedy small phase: place each small task on any machine whose
	// current load is ≤ t. If none exists, every machine exceeds t, so
	// total work > m·t and C* > t. Placing onto a ≤ t machine keeps
	// its load ≤ t + eps·t.
	for _, p := range small {
		placed := false
		for i := range loads {
			if loads[i] <= t+1e-12 {
				loads[i] += p
				placed = true
				break
			}
		}
		if !placed {
			return false, true
		}
	}
	return true, true
}

// findConfig returns a non-empty machine configuration cfg ≤ res with
// rounded size ≤ capUnits such that minMachines(res − cfg) == target.
func findConfig(res, classes []int, capUnits, target int,
	minMachines func([]int) int, budget int, used *int) ([]int, bool) {
	cfg := make([]int, len(res))
	var found []int
	var dfs func(ci, capLeft int, any bool) bool
	dfs = func(ci, capLeft int, any bool) bool {
		*used++
		if *used > budget {
			return false
		}
		if ci == len(res) {
			if !any {
				return false
			}
			next := make([]int, len(res))
			for i := range res {
				next[i] = res[i] - cfg[i]
			}
			if minMachines(next) == target {
				found = append([]int(nil), cfg...)
				return true
			}
			return false
		}
		maxTake := res[ci]
		if classes[ci] > 0 {
			if byCap := capLeft / classes[ci]; byCap < maxTake {
				maxTake = byCap
			}
		}
		for take := maxTake; take >= 0; take-- {
			cfg[ci] = take
			if dfs(ci+1, capLeft-take*classes[ci], any || take > 0) {
				return true
			}
		}
		cfg[ci] = 0
		return false
	}
	if !dfs(0, capUnits, false) {
		return nil, false
	}
	return found, true
}

func intsKey(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}
