// Package opt estimates the offline optimal makespan C*_max of an
// instance with known processing times. The paper's guarantees compare
// an algorithm's makespan against C*_max, so the experiment harness
// needs trustworthy values of it:
//
//   - combinatorial lower bounds (average load, largest task, and the
//     general "k·m+1 largest tasks" pair bound);
//   - an exact branch-and-bound solver, feasible for the small
//     instances used in guarantee-validation tests;
//   - MULTIFIT (Coffman, Garey, Johnson 1978), a dual-approximation
//     upper bound with worst-case ratio 13/11; and
//   - the LPT upper bound (4/3 − 1/(3m)).
//
// Estimate combines them into a bracketing interval and reports
// whether the value is exact.
package opt

import (
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/loadheap"
	"repro/internal/obs"
)

// Solver invocation metrics (see internal/obs). Estimate results are
// additionally memoized — see cache.go — because experiment sweeps
// re-score identical instances many times.
var (
	estimateCalls = obs.GetCounter("opt.estimate_calls")
	exactSolves   = obs.GetCounter("opt.exact_solves")
	multifitRuns  = obs.GetCounter("opt.multifit_runs")
)

// solveScratch recycles the slices the bound computations sort and
// pack into. The experiment harness calls PairLowerBound and MultiFit
// on every scored trial from every worker; without pooling, each call
// re-allocates an n-sized copy of the times (plus FFD bins) that dies
// immediately after.
type solveScratch struct {
	desc  []float64
	bins  []float64
	loads loadheap.Heap
}

var solvePool = sync.Pool{New: func() any { return new(solveScratch) }}

// appendDesc overwrites buf with a descending-sorted copy of times and
// returns it. The comparator puts NaNs last, matching the previous
// sort.Reverse(sort.Float64Slice) order; equal float64 values are
// interchangeable, so the unstable sort is deterministic.
func appendDesc(times, buf []float64) []float64 {
	buf = append(buf[:0], times...)
	slices.SortFunc(buf, func(a, b float64) int {
		switch {
		case a > b || (math.IsNaN(b) && !math.IsNaN(a)):
			return -1
		case b > a || (math.IsNaN(a) && !math.IsNaN(b)):
			return 1
		}
		return 0
	})
	return buf
}

// lptMakespanDesc returns the LPT makespan for descending-sorted
// times, skipping the task→machine mapping the exported LPT builds.
// Greedily adding each time to the least-loaded machine (lowest index
// on ties) reproduces LPT's assignment sequence exactly — same
// machines, same float accumulation order — so the value is identical.
func lptMakespanDesc(desc []float64, m int, loads *loadheap.Heap) float64 {
	loads.Reset(m)
	for _, p := range desc {
		loads.AddToMin(p)
	}
	return loads.MaxLoad()
}

// SumLowerBound returns Σp / m.
func SumLowerBound(times []float64, m int) float64 {
	sum := 0.0
	for _, p := range times {
		sum += p
	}
	return sum / float64(m)
}

// MaxLowerBound returns max_j p_j.
func MaxLowerBound(times []float64) float64 {
	max := 0.0
	for _, p := range times {
		if p > max {
			max = p
		}
	}
	return max
}

// PairLowerBound returns the strongest bound of the family: among the
// k·m+1 largest tasks some machine must execute at least k+1 of them,
// so C* ≥ sum of the k+1 smallest of those, for every k ≥ 1 with
// k·m+1 ≤ n.
func PairLowerBound(times []float64, m int) float64 {
	n := len(times)
	if n <= m {
		return 0
	}
	s := solvePool.Get().(*solveScratch)
	defer solvePool.Put(s)
	s.desc = appendDesc(times, s.desc)
	desc := s.desc

	best := 0.0
	for k := 1; k*m+1 <= n; k++ {
		// The k·m+1 largest are desc[:k*m+1]; the k+1 smallest of those
		// are desc[k*m-k : k*m+1].
		sum := 0.0
		for i := k*m - k; i <= k*m; i++ {
			sum += desc[i]
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// LowerBound returns the best of the combinatorial lower bounds.
func LowerBound(times []float64, m int) float64 {
	lb := SumLowerBound(times, m)
	if v := MaxLowerBound(times); v > lb {
		lb = v
	}
	if v := PairLowerBound(times, m); v > lb {
		lb = v
	}
	return lb
}

// LPT returns the makespan of Largest Processing Time first on the
// given times, together with the task→machine mapping. LPT is a
// (4/3 − 1/(3m))-approximation, so its makespan is a certified upper
// bound on C*.
func LPT(times []float64, m int) (float64, []int) {
	order := make([]int, len(times))
	for i := range order {
		order[i] = i
	}
	// (time descending, index ascending) is a strict total order, so the
	// unstable sort reproduces the stable sort's permutation exactly.
	slices.SortFunc(order, func(a, b int) int {
		if times[a] != times[b] {
			if times[a] > times[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	var loads loadheap.Heap
	loads.Reset(m)
	mapping := make([]int, len(times))
	for _, j := range order {
		mapping[j] = loads.MinID()
		loads.AddToMin(times[j])
	}
	return loads.MaxLoad(), mapping
}

// ffdFits reports whether first-fit-decreasing packs the tasks into m
// bins of the given capacity. desc must be sorted non-increasing;
// binScratch is reusable storage with capacity ≥ m.
func ffdFits(desc []float64, m int, capacity float64, binScratch []float64) bool {
	const eps = 1e-12
	bins := binScratch[:0]
	for _, p := range desc {
		placed := false
		for i := range bins {
			if bins[i]+p <= capacity*(1+eps) {
				bins[i] += p
				placed = true
				break
			}
		}
		if !placed {
			if len(bins) == m {
				return false
			}
			if p > capacity*(1+eps) {
				return false
			}
			bins = append(bins, p)
		}
	}
	return true
}

// MultiFit runs the MULTIFIT algorithm with the given number of
// binary-search iterations (13 suffices for ~1e-4 relative precision)
// and returns a makespan achievable by FFD packing, which is an upper
// bound on C* within a factor 13/11.
func MultiFit(times []float64, m int, iterations int) float64 {
	multifitRuns.Inc()
	if iterations <= 0 {
		iterations = 20
	}
	s := solvePool.Get().(*solveScratch)
	defer solvePool.Put(s)
	s.desc = appendDesc(times, s.desc)
	desc := s.desc
	if cap(s.bins) < m {
		s.bins = make([]float64, 0, m)
	}

	lo := LowerBound(times, m)
	hi := lptMakespanDesc(desc, m, &s.loads)
	if ffdFits(desc, m, lo, s.bins) {
		return lo
	}
	// Invariant: FFD fits at hi, does not fit at lo.
	for it := 0; it < iterations; it++ {
		mid := (lo + hi) / 2
		if ffdFits(desc, m, mid, s.bins) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Result describes an Estimate outcome.
type Result struct {
	// Lower and Upper bracket C*_max.
	Lower, Upper float64
	// Exact reports Lower == Upper up to floating-point tolerance,
	// i.e. the value is the true optimum.
	Exact bool
	// Method names the source of the reported bracket: "trivial",
	// "exact", or "bounds".
	Method string
}

// Value returns the midpoint of the bracket — the point estimate of
// C*_max experiments divide by.
func (r Result) Value() float64 { return (r.Lower + r.Upper) / 2 }

// Estimate brackets C*_max. Instances with n ≤ exactLimit tasks (after
// quick trivial checks) are solved exactly by branch-and-bound;
// larger ones get [LowerBound, min(MultiFit, LPT)]. exactLimit ≤ 0
// selects the default of 20.
//
// Results for non-trivial instances are memoized in a concurrency-safe
// content-addressed cache (Estimate is a pure function of its inputs),
// so repeated scoring of one instance — e.g. several strategies
// compared on the same perturbed workload — pays for the solve once.
// CacheStats exposes the hit/miss counters.
func Estimate(times []float64, m int, exactLimit int) Result {
	estimateCalls.Inc()
	if exactLimit <= 0 {
		exactLimit = 20
	}
	n := len(times)
	if n == 0 {
		return Result{Method: "trivial", Exact: true}
	}
	if m == 1 {
		s := 0.0
		for _, p := range times {
			s += p
		}
		return Result{Lower: s, Upper: s, Exact: true, Method: "trivial"}
	}
	if n <= m {
		v := MaxLowerBound(times)
		return Result{Lower: v, Upper: v, Exact: true, Method: "trivial"}
	}
	// Only the non-trivial path is worth memoizing.
	key := cacheKey{hash: hashTimes(times), n: n, m: m, exactLimit: exactLimit}
	if res, ok := cacheLookup(key, times); ok {
		return res
	}
	res := estimateUncached(times, m, exactLimit)
	cacheStore(key, times, res)
	return res
}

// estimateUncached is the actual solve behind Estimate's memo cache.
func estimateUncached(times []float64, m int, exactLimit int) Result {
	n := len(times)
	lb := LowerBound(times, m)
	s := solvePool.Get().(*solveScratch)
	s.desc = appendDesc(times, s.desc)
	ub := lptMakespanDesc(s.desc, m, &s.loads)
	solvePool.Put(s)
	if mf := MultiFit(times, m, 24); mf < ub {
		ub = mf
	}
	if kk := KarmarkarKarp(times, m); kk < ub {
		ub = kk
	}
	if nearlyEqual(lb, ub) {
		return Result{Lower: lb, Upper: lb, Exact: true, Method: "bounds"}
	}
	if n <= exactLimit {
		if v, ok := Exact(times, m, 20_000_000); ok {
			return Result{Lower: v, Upper: v, Exact: true, Method: "exact"}
		}
	}
	// Mid-size instances: tighten the upper bound with the
	// Hochbaum–Shmoys dual approximation (certified 1+eps factor).
	if n <= 60 {
		if v, ok := DualApprox(times, m, 0.1); ok && v < ub {
			ub = v
		}
	}
	return Result{Lower: lb, Upper: ub, Method: "bounds"}
}

func nearlyEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// Exact computes the optimal makespan by depth-first branch-and-bound
// with symmetry breaking, seeded with the better of LPT and MULTIFIT.
// It explores at most maxNodes search nodes and reports ok=false when
// the budget is exhausted before the search space is closed.
func Exact(times []float64, m int, maxNodes int) (float64, bool) {
	exactSolves.Inc()
	n := len(times)
	if n == 0 {
		return 0, true
	}
	if m >= n {
		return MaxLowerBound(times), true
	}
	desc := make([]float64, n)
	copy(desc, times)
	sort.Sort(sort.Reverse(sort.Float64Slice(desc)))

	// Suffix sums let the search bound the remaining work.
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + desc[i]
	}
	lb := LowerBound(times, m)
	var lh loadheap.Heap
	best := lptMakespanDesc(desc, m, &lh)
	if mf := MultiFit(times, m, 24); mf < best {
		best = mf
	}
	if nearlyEqual(best, lb) {
		return best, true
	}

	loads := make([]float64, m)
	nodes := 0
	exhausted := false

	var dfs func(j int)
	dfs = func(j int) {
		if exhausted {
			return
		}
		nodes++
		if nodes > maxNodes {
			exhausted = true
			return
		}
		if j == n {
			max := 0.0
			for _, l := range loads {
				if l > max {
					max = l
				}
			}
			if max < best {
				best = max
			}
			return
		}
		// Bound: even spreading the remaining work perfectly cannot beat
		// the current best if the smallest load is already too high.
		minLoad := loads[0]
		for _, l := range loads[1:] {
			if l < minLoad {
				minLoad = l
			}
		}
		if minLoad+desc[j] >= best-1e-12 {
			return // every continuation exceeds the incumbent
		}
		if (suffix[j]+sum(loads))/float64(m) >= best-1e-12 && minLoad >= best-1e-12 {
			return
		}
		seenEmpty := false
		for i := 0; i < m; i++ {
			if loads[i] == 0 {
				if seenEmpty {
					continue // machines are identical: one empty machine suffices
				}
				seenEmpty = true
			}
			if loads[i]+desc[j] >= best-1e-12 {
				continue
			}
			// Symmetry: skip machines with the same load as an earlier one.
			dup := false
			for i2 := 0; i2 < i; i2++ {
				//lint:ignore floatcmp symmetry pruning wants bit-identical loads; near-equal machines are legitimately distinct
				if loads[i2] == loads[i] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			loads[i] += desc[j]
			dfs(j + 1)
			loads[i] -= desc[j]
			if exhausted {
				return
			}
			if nearlyEqual(best, lb) {
				return // proved optimal
			}
		}
	}
	dfs(0)
	if exhausted {
		return best, false
	}
	return best, true
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
