package opt

import (
	"math"
	"sync"

	"repro/internal/obs"
)

// The experiment suite solves the same offline-optimum problems over
// and over: every strategy scored on one instance calls Estimate with
// identical (times, m, exactLimit), and sweeps revisit instances
// across perturbation models. Estimate results are pure functions of
// their inputs, so they memoize safely; the exact branch-and-bound and
// MULTIFIT solves they guard are the expensive part of E2/E3-style
// validation runs.
//
// The cache is keyed by a content hash of the processing-time
// multiset-in-order plus (m, exactLimit); hash buckets store the full
// key (a private copy of times) and compare element-wise, so hash
// collisions can never return a wrong bracket. It is bounded: when a
// shard reaches its entry quota its table is dropped wholesale — the
// access pattern is bursts of repeats within an experiment, for which
// a periodic full flush loses little.
//
// The table is sharded by the top bits of the content hash with one
// RWMutex per shard: the parallel trial loops hit the cache from every
// worker at once, and a single lock — even read-write — serializes the
// lookups that make memoization worthwhile in the first place. Shard
// choice uses the top hash bits, which are independent of the bits the
// per-shard map indexes with.

const (
	// cacheShards is the lock-striping factor; a power of two.
	cacheShards = 16
	// cacheMaxEntries bounds the memo table's total size across shards.
	cacheMaxEntries = 4096
)

type cacheKey struct {
	hash       uint64
	n          int
	m          int
	exactLimit int
}

type cacheEntry struct {
	times []float64 // private copy: full-key collision guard
	res   Result
}

type cacheShard struct {
	sync.RWMutex
	entries map[cacheKey][]cacheEntry
	size    int
}

var cache [cacheShards]cacheShard

func init() {
	for i := range cache {
		cache[i].entries = map[cacheKey][]cacheEntry{}
	}
}

func shardFor(hash uint64) *cacheShard {
	return &cache[(hash>>58)&(cacheShards-1)]
}

var (
	cacheHits   = obs.GetCounter("opt.cache_hits")
	cacheMisses = obs.GetCounter("opt.cache_misses")
)

// hashTimes is FNV-1a over the IEEE-754 bit patterns of times, folded
// word-wise (one xor/multiply per element instead of eight): the full
// 64-bit pattern feeds the accumulator in one step. The weaker
// per-byte diffusion is safe here because the cache compares the full
// key element-wise on every hit — a collision costs a bucket scan,
// never a wrong result.
func hashTimes(times []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range times {
		h ^= math.Float64bits(p)
		h *= prime64
	}
	return h
}

func timesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit equality, not numeric: NaN inputs must hit their own entry
		// rather than never match and grow the bucket unboundedly.
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// cacheLookup returns a memoized Estimate result if present.
func cacheLookup(key cacheKey, times []float64) (Result, bool) {
	s := shardFor(key.hash)
	s.RLock()
	bucket := s.entries[key]
	for _, e := range bucket {
		if timesEqual(e.times, times) {
			s.RUnlock()
			cacheHits.Inc()
			return e.res, true
		}
	}
	s.RUnlock()
	cacheMisses.Inc()
	return Result{}, false
}

// cacheStore memoizes an Estimate result. Concurrent first-misses of
// the same key may both store; the duplicate check keeps the bucket
// from accumulating identical entries.
func cacheStore(key cacheKey, times []float64, res Result) {
	cp := make([]float64, len(times))
	copy(cp, times)
	s := shardFor(key.hash)
	s.Lock()
	defer s.Unlock()
	if s.size >= cacheMaxEntries/cacheShards {
		s.entries = map[cacheKey][]cacheEntry{}
		s.size = 0
	}
	for _, e := range s.entries[key] {
		if timesEqual(e.times, times) {
			return // lost a store race; entry already present
		}
	}
	s.entries[key] = append(s.entries[key], cacheEntry{times: cp, res: res})
	s.size++
}

// CacheStats reports the memo cache's lifetime hit and miss counts.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCache empties the memo cache and zeroes its counters (tests).
func ResetCache() {
	for i := range cache {
		s := &cache[i]
		s.Lock()
		s.entries = map[cacheKey][]cacheEntry{}
		s.size = 0
		s.Unlock()
	}
	cacheHits.Add(-cacheHits.Load())
	cacheMisses.Add(-cacheMisses.Load())
}
