package opt

import (
	"math"
	"sync"

	"repro/internal/obs"
)

// The experiment suite solves the same offline-optimum problems over
// and over: every strategy scored on one instance calls Estimate with
// identical (times, m, exactLimit), and sweeps revisit instances
// across perturbation models. Estimate results are pure functions of
// their inputs, so they memoize safely; the exact branch-and-bound and
// MULTIFIT solves they guard are the expensive part of E2/E3-style
// validation runs.
//
// The cache is keyed by a content hash of the processing-time
// multiset-in-order plus (m, exactLimit); hash buckets store the full
// key (a private copy of times) and compare element-wise, so hash
// collisions can never return a wrong bracket. It is bounded: when it
// reaches cacheMaxEntries the table is dropped wholesale — the access
// pattern is bursts of repeats within an experiment, for which a
// periodic full flush loses little.

// cacheMaxEntries bounds the memo table's size.
const cacheMaxEntries = 4096

type cacheKey struct {
	hash       uint64
	n          int
	m          int
	exactLimit int
}

type cacheEntry struct {
	times []float64 // private copy: full-key collision guard
	res   Result
}

var cache = struct {
	sync.RWMutex
	entries map[cacheKey][]cacheEntry
	size    int
}{entries: map[cacheKey][]cacheEntry{}}

var (
	cacheHits   = obs.GetCounter("opt.cache_hits")
	cacheMisses = obs.GetCounter("opt.cache_misses")
)

// hashTimes is FNV-1a over the IEEE-754 bit patterns of times.
func hashTimes(times []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range times {
		bits := math.Float64bits(p)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (bits >> shift) & 0xff
			h *= prime64
		}
	}
	return h
}

func timesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit equality, not numeric: NaN inputs must hit their own entry
		// rather than never match and grow the bucket unboundedly.
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// cacheLookup returns a memoized Estimate result if present.
func cacheLookup(key cacheKey, times []float64) (Result, bool) {
	cache.RLock()
	bucket := cache.entries[key]
	for _, e := range bucket {
		if timesEqual(e.times, times) {
			cache.RUnlock()
			cacheHits.Inc()
			return e.res, true
		}
	}
	cache.RUnlock()
	cacheMisses.Inc()
	return Result{}, false
}

// cacheStore memoizes an Estimate result. Concurrent first-misses of
// the same key may both store; the duplicate check keeps the bucket
// from accumulating identical entries.
func cacheStore(key cacheKey, times []float64, res Result) {
	cp := make([]float64, len(times))
	copy(cp, times)
	cache.Lock()
	defer cache.Unlock()
	if cache.size >= cacheMaxEntries {
		cache.entries = map[cacheKey][]cacheEntry{}
		cache.size = 0
	}
	for _, e := range cache.entries[key] {
		if timesEqual(e.times, times) {
			return // lost a store race; entry already present
		}
	}
	cache.entries[key] = append(cache.entries[key], cacheEntry{times: cp, res: res})
	cache.size++
}

// CacheStats reports the memo cache's lifetime hit and miss counts.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCache empties the memo cache and zeroes its counters (tests).
func ResetCache() {
	cache.Lock()
	cache.entries = map[cacheKey][]cacheEntry{}
	cache.size = 0
	cache.Unlock()
	cacheHits.Add(-cacheHits.Load())
	cacheMisses.Add(-cacheMisses.Load())
}
