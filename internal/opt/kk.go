package opt

import (
	"sort"
)

// KarmarkarKarp computes an m-way partition of the times by the
// largest differencing method (Karmarkar–Karp) and returns its
// makespan — another certified upper bound on C*. LDM often beats LPT
// on instances with near-equal large tasks (the classic LPT worst
// cases), so Estimate takes the best of both.
//
// The m-way generalization keeps a max-heap of partial solutions
// (m-vectors of loads), repeatedly merging the two with the largest
// spread by pairing the heaviest load of one with the lightest of the
// other. Complexity O(n·(log n + m log m)).
//
// The heap is a specialized inline implementation mirroring
// container/heap's sift procedures operation-for-operation, so the pop
// order among equal-spread vectors — and therefore the returned value —
// is identical to the previous container/heap version, without boxing
// every vector through interface{}. All n initial vectors are carved
// from one slab, and each merge writes into the popped vector instead
// of allocating a fresh one.
func KarmarkarKarp(times []float64, m int) float64 {
	n := len(times)
	if n == 0 {
		return 0
	}
	if m <= 1 {
		s := 0.0
		for _, p := range times {
			s += p
		}
		return s
	}

	slab := make([]float64, n*m) // ascending loads; only the last is non-zero
	h := make(ldmHeap, n)
	for i, p := range times {
		v := slab[i*m : (i+1)*m : (i+1)*m]
		v[m-1] = p
		h[i] = v
	}
	h.init()
	for len(h) > 1 {
		a := h.pop()
		b := h.pop()
		// Pair a's largest with b's smallest and vice versa: cancels the
		// difference. a and b are distinct slab regions, so writing the
		// merge into a while reading b is safe; b's storage is dropped.
		for i := 0; i < m; i++ {
			a[i] += b[m-1-i]
		}
		sort.Float64s(a)
		h.push(a)
	}
	return h[0][m-1] // makespan = largest load
}

// ldmHeap orders partial solutions by descending spread
// (max load − min load). The sift procedures replicate container/heap
// exactly; see KarmarkarKarp.
type ldmHeap [][]float64

func (h ldmHeap) less(a, b int) bool {
	sa := h[a][len(h[a])-1] - h[a][0]
	sb := h[b][len(h[b])-1] - h[b][0]
	return sa > sb
}

func (h ldmHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h ldmHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (h ldmHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h *ldmHeap) push(v []float64) {
	*h = append(*h, v)
	h.up(len(*h) - 1)
}

func (h *ldmHeap) pop() []float64 {
	old := *h
	last := len(old) - 1
	old[0], old[last] = old[last], old[0]
	old.down(0, last)
	v := old[last]
	*h = old[:last]
	return v
}
