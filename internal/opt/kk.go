package opt

import (
	"container/heap"
	"sort"
)

// KarmarkarKarp computes an m-way partition of the times by the
// largest differencing method (Karmarkar–Karp) and returns its
// makespan — another certified upper bound on C*. LDM often beats LPT
// on instances with near-equal large tasks (the classic LPT worst
// cases), so Estimate takes the best of both.
//
// The m-way generalization keeps a max-heap of partial solutions
// (m-vectors of loads), repeatedly merging the two with the largest
// spread by pairing the heaviest load of one with the lightest of the
// other. Complexity O(n·(log n + m log m)).
func KarmarkarKarp(times []float64, m int) float64 {
	n := len(times)
	if n == 0 {
		return 0
	}
	if m <= 1 {
		s := 0.0
		for _, p := range times {
			s += p
		}
		return s
	}

	h := make(ldmHeap, 0, n)
	for _, p := range times {
		v := make([]float64, m) // ascending loads; only the last is non-zero
		v[m-1] = p
		h = append(h, v)
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).([]float64)
		b := heap.Pop(&h).([]float64)
		// Pair a's largest with b's smallest and vice versa: cancels the
		// difference.
		merged := make([]float64, m)
		for i := 0; i < m; i++ {
			merged[i] = a[i] + b[m-1-i]
		}
		sort.Float64s(merged)
		heap.Push(&h, merged)
	}
	final := h[0]
	return final[m-1] // makespan = largest load
}

// ldmHeap orders partial solutions by descending spread
// (max load − min load).
type ldmHeap [][]float64

func (h ldmHeap) Len() int { return len(h) }
func (h ldmHeap) Less(a, b int) bool {
	sa := h[a][len(h[a])-1] - h[a][0]
	sb := h[b][len(h[b])-1] - h[b][0]
	return sa > sb
}
func (h ldmHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *ldmHeap) Push(x interface{}) { *h = append(*h, x.([]float64)) }
func (h *ldmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
