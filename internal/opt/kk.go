package opt

import (
	"sort"
)

// KarmarkarKarp computes an m-way partition of the times by the
// largest differencing method (Karmarkar–Karp) and returns its
// makespan — another certified upper bound on C*. LDM often beats LPT
// on instances with near-equal large tasks (the classic LPT worst
// cases), so Estimate takes the best of both.
//
// The m-way generalization keeps a max-heap of partial solutions
// (m-vectors of loads), repeatedly merging the two with the largest
// spread by pairing the heaviest load of one with the lightest of the
// other. Complexity O(n·(log n + m log m)).
//
// The heap is a specialized inline implementation (no container/heap
// boxing) keyed by (spread descending, creation sequence ascending).
// The sequence tie-break matters: equal spreads are common (duplicate
// task times produce identical singleton vectors), and without it the
// pop order among ties — and therefore the merge tree and the returned
// bound — would be an artifact of heap internals, changing whenever
// the sift procedures do. With it, the pop order is a total order of
// the inputs alone: ties resolve to the earliest-created vector
// (initial vectors in input position order, merged vectors in merge
// order). TestKarmarkarKarpTieOrderStable pins this. All n initial
// vectors are carved from one slab, and each merge writes into the
// popped vector instead of allocating a fresh one.
func KarmarkarKarp(times []float64, m int) float64 {
	n := len(times)
	if n == 0 {
		return 0
	}
	if m <= 1 {
		s := 0.0
		for _, p := range times {
			s += p
		}
		return s
	}

	slab := make([]float64, n*m) // ascending loads; only the last is non-zero
	h := ldmHeap{vec: make([][]float64, n), seq: make([]int32, n)}
	for i, p := range times {
		v := slab[i*m : (i+1)*m : (i+1)*m]
		v[m-1] = p
		h.vec[i] = v
		h.seq[i] = int32(i)
	}
	nextSeq := int32(n)
	h.init()
	for len(h.vec) > 1 {
		a := h.pop()
		b := h.pop()
		// Pair a's largest with b's smallest and vice versa: cancels the
		// difference. a and b are distinct slab regions, so writing the
		// merge into a while reading b is safe; b's storage is dropped.
		for i := 0; i < m; i++ {
			a[i] += b[m-1-i]
		}
		sort.Float64s(a)
		h.push(a, nextSeq)
		nextSeq++
	}
	return h.vec[0][m-1] // makespan = largest load
}

// ldmHeap orders partial solutions by descending spread
// (max load − min load), ties by ascending creation sequence so the
// pop order is total; see KarmarkarKarp.
type ldmHeap struct {
	vec [][]float64
	seq []int32
}

func (h *ldmHeap) less(a, b int) bool {
	sa := h.vec[a][len(h.vec[a])-1] - h.vec[a][0]
	sb := h.vec[b][len(h.vec[b])-1] - h.vec[b][0]
	if sa != sb {
		return sa > sb
	}
	return h.seq[a] < h.seq[b]
}

func (h *ldmHeap) swap(i, j int) {
	h.vec[i], h.vec[j] = h.vec[j], h.vec[i]
	h.seq[i], h.seq[j] = h.seq[j], h.seq[i]
}

func (h *ldmHeap) init() {
	n := len(h.vec)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h *ldmHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h.swap(i, j)
		i = j
	}
}

func (h *ldmHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.less(j, i) {
			return
		}
		h.swap(i, j)
		j = i
	}
}

func (h *ldmHeap) push(v []float64, seq int32) {
	h.vec = append(h.vec, v)
	h.seq = append(h.seq, seq)
	h.up(len(h.vec) - 1)
}

func (h *ldmHeap) pop() []float64 {
	last := len(h.vec) - 1
	h.swap(0, last)
	h.down(0, last)
	v := h.vec[last]
	h.vec = h.vec[:last]
	h.seq = h.seq[:last]
	return v
}
