package opt

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDualApproxTrivial(t *testing.T) {
	if v, ok := DualApprox(nil, 4, 0.2); !ok || v != 0 {
		t.Fatalf("empty = (%v, %v)", v, ok)
	}
	if v, ok := DualApprox([]float64{3, 4}, 1, 0.2); !ok || v != 7 {
		t.Fatalf("m=1 = (%v, %v)", v, ok)
	}
}

func TestDualApproxPanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, -0.5, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v did not panic", eps)
				}
			}()
			DualApprox([]float64{1}, 2, eps)
		}()
	}
}

func TestDualApproxWithinEpsOfOptimum(t *testing.T) {
	src := rng.New(71)
	for trial := 0; trial < 30; trial++ {
		n := src.Intn(12) + 4
		m := src.Intn(3) + 2
		times := make([]float64, n)
		for i := range times {
			times[i] = src.Uniform(1, 40)
		}
		star, ok := Exact(times, m, 20_000_000)
		if !ok {
			t.Fatal("exact solver exhausted")
		}
		for _, eps := range []float64{0.15, 0.3} {
			v, okb := DualApprox(times, m, eps)
			if !okb {
				continue // budget fallback: still an upper bound, no eps claim
			}
			if v < star-1e-9 {
				t.Fatalf("trial %d eps=%v: DualApprox %v below optimum %v", trial, eps, v, star)
			}
			// Binary-search tolerance adds a hair on top of (1+eps).
			if v > star*(1+eps)*(1+1e-6) {
				t.Fatalf("trial %d eps=%v: DualApprox %v above (1+eps)·C* = %v",
					trial, eps, v, star*(1+eps))
			}
		}
	}
}

func TestDualApproxTighterThanMultiFitGuarantee(t *testing.T) {
	// With eps = 0.1 the certified factor (1.1) beats MULTIFIT's 13/11
	// ≈ 1.18. Verify on an instance where LPT/MULTIFIT are loose.
	times := []float64{3, 3, 2, 2, 2} // optimum 6, LPT 7
	v, ok := DualApprox(times, 2, 0.1)
	if !ok {
		t.Skip("budget exhausted on tiny instance (unexpected)")
	}
	if v > 6*1.1*(1+1e-6) {
		t.Fatalf("DualApprox = %v, want <= 6.6", v)
	}
	if v < 6-1e-9 {
		t.Fatalf("DualApprox = %v below optimum 6", v)
	}
}

func TestDualApproxSandwichProperty(t *testing.T) {
	src := rng.New(73)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%10) + 4
		m := int(mRaw%3) + 2
		times := make([]float64, n)
		for i := range times {
			times[i] = src.Uniform(1, 30)
		}
		lb := LowerBound(times, m)
		lpt, _ := LPT(times, m)
		v, ok := DualApprox(times, m, 0.25)
		if !ok {
			return v <= lpt+1e-9 // fallback returns min(MULTIFIT, LPT)
		}
		return v >= lb-1e-9 && v <= lpt*(1.25)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDualApproxLargeInstanceFallsBackGracefully(t *testing.T) {
	src := rng.New(79)
	times := make([]float64, 400)
	for i := range times {
		times[i] = src.Uniform(1, 100)
	}
	v, _ := DualApprox(times, 16, 0.2)
	lb := LowerBound(times, 16)
	lpt, _ := LPT(times, 16)
	if v < lb-1e-9 || v > lpt+1e-9 {
		t.Fatalf("large-instance value %v outside [LB=%v, LPT=%v]", v, lb, lpt)
	}
}

func BenchmarkDualApprox20(b *testing.B) {
	src := rng.New(1)
	times := make([]float64, 20)
	for i := range times {
		times[i] = src.Uniform(1, 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DualApprox(times, 4, 0.2)
	}
}
