package opt

import (
	"testing"

	"repro/internal/rng"
)

// TestEstimateBatchMatchesLoop pins EstimateBatch to a sequential
// Estimate loop at several worker counts, including the single-job
// fast path.
func TestEstimateBatchMatchesLoop(t *testing.T) {
	src := rng.New(7)
	var jobs []Job
	for k := 0; k < 6; k++ {
		times := make([]float64, 5+k*9)
		for i := range times {
			times[i] = src.Uniform(1, 50)
		}
		jobs = append(jobs, Job{Times: times, M: 2 + k, ExactLimit: 8})
	}
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		want[i] = Estimate(j.Times, j.M, j.ExactLimit)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got := EstimateBatch(jobs, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d job %d: %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
	single := EstimateBatch(jobs[:1], 4)
	if len(single) != 1 || single[0] != want[0] {
		t.Fatalf("single-job batch: %+v, want %+v", single, want[0])
	}
}
