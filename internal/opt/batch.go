package opt

import "repro/internal/par"

// Job is one Estimate request in a batch: certify bounds for times on
// m machines, with the exact solver enabled up to exactLimit tasks
// (≤ 0 selects the default, as in Estimate).
type Job struct {
	// Times are the processing times to partition.
	Times []float64
	// M is the machine count.
	M int
	// ExactLimit bounds the exact solver, as in Estimate.
	ExactLimit int
}

// EstimateBatch runs Estimate over jobs on the given number of
// workers (≤ 0 selects GOMAXPROCS) and returns the results in job
// order. A single experiment trial scores several quantities — optimum
// makespan over actuals, optimum memory over sizes, per-strategy
// brackets — that are mutually independent solver calls; batching them
// overlaps the exact/KK work instead of serializing it. Results are
// identical to calling Estimate in a loop: Estimate is pure apart from
// the memo cache, and the cache is sharded and concurrency-safe.
func EstimateBatch(jobs []Job, workers int) []Result {
	if len(jobs) == 1 {
		// Not worth a goroutine handoff; common in small trials.
		return []Result{Estimate(jobs[0].Times, jobs[0].M, jobs[0].ExactLimit)}
	}
	return par.Map(len(jobs), workers, func(i int) Result {
		return Estimate(jobs[i].Times, jobs[i].M, jobs[i].ExactLimit)
	})
}
