package opt

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func randomTimes(n int, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 + 9*src.Float64()
	}
	return out
}

func TestEstimateCacheHitsAndIdenticalResults(t *testing.T) {
	ResetCache()
	times := randomTimes(40, 7)
	first := Estimate(times, 4, 0)
	hits0, misses0 := CacheStats()
	if hits0 != 0 || misses0 != 1 {
		t.Fatalf("after first call: hits=%d misses=%d, want 0/1", hits0, misses0)
	}
	second := Estimate(times, 4, 0)
	hits1, _ := CacheStats()
	if hits1 != 1 {
		t.Fatalf("second identical call did not hit the cache (hits=%d)", hits1)
	}
	if first != second {
		t.Fatalf("cached result %+v differs from computed %+v", second, first)
	}
	// A copy with equal contents must hit too: keying is by content.
	cp := append([]float64(nil), times...)
	if got := Estimate(cp, 4, 0); got != first {
		t.Fatalf("content-equal copy missed or diverged: %+v vs %+v", got, first)
	}
}

func TestEstimateCacheKeysDistinguishMAndLimit(t *testing.T) {
	ResetCache()
	times := randomTimes(30, 3)
	a := Estimate(times, 3, 0)
	b := Estimate(times, 5, 0)
	if a == b {
		t.Fatal("different m produced identical brackets — suspicious key conflation")
	}
	// Same times, same m, different exactLimit: must not serve the
	// heuristic bracket when an exact solve is requested.
	big := randomTimes(30, 4)
	loose := Estimate(big, 4, 1) // exactLimit=1 → heuristic bounds
	tight := Estimate(big, 4, 30)
	if tight.Lower < loose.Lower-1e-12 || tight.Upper > loose.Upper+1e-12 {
		t.Fatalf("exact bracket [%g,%g] not within heuristic [%g,%g]",
			tight.Lower, tight.Upper, loose.Lower, loose.Upper)
	}
}

func TestEstimateCacheTrivialNotCached(t *testing.T) {
	ResetCache()
	Estimate(nil, 4, 0)
	Estimate([]float64{1, 2}, 4, 0) // n <= m
	Estimate([]float64{1, 2}, 1, 0) // m == 1
	hits, misses := CacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("trivial paths touched the cache: hits=%d misses=%d", hits, misses)
	}
}

func TestEstimateCacheConcurrent(t *testing.T) {
	ResetCache()
	times := randomTimes(60, 11)
	want := Estimate(times, 6, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := Estimate(times, 6, 0); got != want {
					t.Errorf("concurrent Estimate diverged: %+v vs %+v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, _ := CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits under concurrent identical calls")
	}
}

func TestHashTimesSensitivity(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3.0000001}
	c := []float64{3, 2, 1} // order matters: the multiset is in-order
	if hashTimes(a) == hashTimes(b) {
		t.Fatal("hash ignores value change")
	}
	if hashTimes(a) == hashTimes(c) {
		t.Fatal("hash ignores order")
	}
	if hashTimes(a) != hashTimes(append([]float64(nil), a...)) {
		t.Fatal("hash not content-deterministic")
	}
}
