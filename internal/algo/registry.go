package algo

import (
	"fmt"
	"strconv"
	"strings"
)

// New resolves an algorithm by name. Recognized names (case
// insensitive):
//
//	lpt-nochoice | ls-nochoice | lpt-norestriction | ls-norestriction |
//	oracle-lpt | ls-group:<k> | lpt-group:<k>
//
// where <k> is the number of machine groups.
func New(name string) (Algorithm, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	switch lower {
	case "lpt-nochoice":
		return LPTNoChoice(), nil
	case "ls-nochoice":
		return LSNoChoice(), nil
	case "lpt-norestriction":
		return LPTNoRestriction(), nil
	case "ls-norestriction":
		return LSNoRestriction(), nil
	case "oracle-lpt":
		return OracleLPT(), nil
	}
	for _, prefix := range []string{"ls-group:", "lpt-group:", "ls-group-balanced:"} {
		if strings.HasPrefix(lower, prefix) {
			k, err := strconv.Atoi(lower[len(prefix):])
			if err != nil || k < 1 {
				return nil, fmt.Errorf("algo: bad group count in %q", name)
			}
			switch prefix {
			case "ls-group:":
				return LSGroup(k), nil
			case "lpt-group:":
				return LPTGroup(k), nil
			default:
				return LSGroupBalanced(k), nil
			}
		}
	}
	if strings.HasPrefix(lower, "tail:") {
		c, err := strconv.Atoi(lower[len("tail:"):])
		if err != nil || c < 0 {
			return nil, fmt.Errorf("algo: bad tail count in %q", name)
		}
		return ReplicateTail(c), nil
	}
	return nil, fmt.Errorf("algo: unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names lists the accepted algorithm name patterns.
func Names() []string {
	return []string{
		"lpt-nochoice", "ls-nochoice", "lpt-norestriction",
		"ls-norestriction", "oracle-lpt", "ls-group:<k>", "lpt-group:<k>",
		"ls-group-balanced:<k>", "tail:<c>",
	}
}
