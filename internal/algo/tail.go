package algo

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/task"
)

// replicateTail implements the model sketched in the paper's
// conclusion ("a more realistic model would introduce a cost of
// replicating a task ... replicate only some critical tasks and limit
// memory usage"): the n−c largest tasks are pinned by LPT on the
// estimates, and only the c smallest tasks are replicated on every
// machine.
//
// Why the *smallest* tasks are the critical ones: flexibility pays off
// at the end of the schedule, when actual durations have revealed
// which machines run slow — the head tasks all start at time 0 on
// idle machines, so replicating them buys nothing (an online
// dispatcher makes the same time-0 choices as LPT placement). The
// flexible tail drains toward whichever machines turned out fast,
// exactly the mechanism behind LPT-No Restriction's guarantee, whose
// Lemma 1 only needs flexibility for the task that finishes last. As
// c→0 this degenerates to LPT-No Choice, as c→n to LPT-No
// Restriction; experiment e6 measures the interior.
type replicateTail struct {
	count int
}

// ReplicateTail returns the tail-replication algorithm: the count
// smallest tasks (by estimate) are replicated everywhere and
// dispatched online after the pinned tasks.
func ReplicateTail(count int) Algorithm {
	return replicateTail{count: count}
}

func (r replicateTail) Name() string {
	return fmt.Sprintf("ReplicateTail(c=%d)", r.count)
}

func (r replicateTail) Place(in *task.Instance) (*placement.Placement, error) {
	if r.count < 0 {
		return nil, fmt.Errorf("algo: tail count %d negative", r.count)
	}
	order := lptOrder(in)
	cut := in.N() - r.count
	if cut < 0 {
		cut = 0
	}

	p := placement.New(in.N(), in.M)
	all := make([]int, in.M)
	for i := range all {
		all[i] = i
	}
	// Pin the head by LPT over the estimates; replicate the tail.
	loads := make([]float64, in.M)
	for pos, j := range order {
		if pos >= cut {
			p.AssignSet(j, all)
			continue
		}
		best := 0
		for i := 1; i < in.M; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		p.Assign(j, best)
		loads[best] += in.Tasks[j].Estimate
	}
	return p, nil
}

// Order is plain LPT order: pinned head tasks have the larger
// estimates and therefore drain first on their machines; the
// replicated tail follows as machines become idle.
func (replicateTail) Order(in *task.Instance) []int { return lptOrder(in) }
