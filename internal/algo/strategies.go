package algo

import (
	"fmt"
	"slices"

	"repro/internal/loadheap"
	"repro/internal/placement"
	"repro/internal/task"
)

// lptNoChoice is strategy 1 of the paper.
type lptNoChoice struct{}

// LPTNoChoice returns the paper's LPT-No Choice algorithm: LPT
// placement on estimates, no replication, no phase-2 freedom.
func LPTNoChoice() Algorithm { return lptNoChoice{} }

func (lptNoChoice) Name() string { return "LPT-NoChoice" }

func (lptNoChoice) Place(in *task.Instance) (*placement.Placement, error) {
	return minLoadPlacement(in, lptOrder(in)), nil
}

func (lptNoChoice) placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error) {
	order := appendLPTOrder(in, orderBuf)
	minLoadPlacementInto(in, order, p)
	return order, nil
}

// Order is irrelevant for singleton replica sets (each machine simply
// drains its own queue), but LPT order keeps traces intuitive.
func (lptNoChoice) Order(in *task.Instance) []int { return lptOrder(in) }

func (lptNoChoice) appendOrder(in *task.Instance, buf []int) []int {
	return appendLPTOrder(in, buf)
}

// lsNoChoice is the List Scheduling baseline without replication.
type lsNoChoice struct{}

// LSNoChoice returns a no-replication baseline that places tasks in
// input order on the least-loaded machine (List Scheduling on
// estimates).
func LSNoChoice() Algorithm { return lsNoChoice{} }

func (lsNoChoice) Name() string { return "LS-NoChoice" }

func (lsNoChoice) Place(in *task.Instance) (*placement.Placement, error) {
	return minLoadPlacement(in, listOrder(in)), nil
}

func (lsNoChoice) placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error) {
	order := appendListOrder(in, orderBuf)
	minLoadPlacementInto(in, order, p)
	return order, nil
}

func (lsNoChoice) Order(in *task.Instance) []int { return listOrder(in) }

func (lsNoChoice) appendOrder(in *task.Instance, buf []int) []int {
	return appendListOrder(in, buf)
}

// lptNoRestriction is strategy 2 of the paper.
type lptNoRestriction struct{}

// LPTNoRestriction returns the paper's LPT-No Restriction algorithm:
// full replication in phase 1, online LPT on estimates in phase 2.
func LPTNoRestriction() Algorithm { return lptNoRestriction{} }

func (lptNoRestriction) Name() string { return "LPT-NoRestriction" }

func (lptNoRestriction) Place(in *task.Instance) (*placement.Placement, error) {
	return placement.Everywhere(in.N(), in.M), nil
}

func (lptNoRestriction) placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error) {
	placement.EverywhereInto(in.N(), in.M, p)
	return orderBuf, nil
}

func (lptNoRestriction) Order(in *task.Instance) []int { return lptOrder(in) }

func (lptNoRestriction) appendOrder(in *task.Instance, buf []int) []int {
	return appendLPTOrder(in, buf)
}

// lsNoRestriction is Graham's online List Scheduling with full
// replication: the 2−1/m baseline.
type lsNoRestriction struct{}

// LSNoRestriction returns Graham's List Scheduling over fully
// replicated data: tasks in input order, first idle machine.
func LSNoRestriction() Algorithm { return lsNoRestriction{} }

func (lsNoRestriction) Name() string { return "LS-NoRestriction" }

func (lsNoRestriction) Place(in *task.Instance) (*placement.Placement, error) {
	return placement.Everywhere(in.N(), in.M), nil
}

func (lsNoRestriction) placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error) {
	placement.EverywhereInto(in.N(), in.M, p)
	return orderBuf, nil
}

func (lsNoRestriction) Order(in *task.Instance) []int { return listOrder(in) }

func (lsNoRestriction) appendOrder(in *task.Instance, buf []int) []int {
	return appendListOrder(in, buf)
}

// group implements strategy 3 (and its LPT and balanced variants).
type group struct {
	k        int
	lpt      bool
	balanced bool
}

// LSGroup returns the paper's LS-Group algorithm with k groups of m/k
// machines: phase 1 list-schedules tasks onto groups by estimated
// group load; phase 2 list-schedules online within each group. k must
// divide m at Place time.
func LSGroup(k int) Algorithm { return group{k: k} }

// LPTGroup is the LPT-based variant of LS-Group the paper mentions:
// both phases process tasks in non-increasing estimate order.
func LPTGroup(k int) Algorithm { return group{k: k, lpt: true} }

// LSGroupBalanced generalizes LS-Group to any k ≤ m by allowing group
// sizes to differ by one machine — lifting the paper's "k divides m"
// simplification. Theorem 4's guarantee formula applies verbatim only
// to the divisible case; for unequal groups it holds with m/k replaced
// by the smallest group size (the phase-2 List Scheduling step only
// weakens).
func LSGroupBalanced(k int) Algorithm { return group{k: k, balanced: true} }

func (g group) Name() string {
	switch {
	case g.lpt:
		return fmt.Sprintf("LPT-Group(k=%d)", g.k)
	case g.balanced:
		return fmt.Sprintf("LS-GroupBalanced(k=%d)", g.k)
	default:
		return fmt.Sprintf("LS-Group(k=%d)", g.k)
	}
}

func (g group) Order(in *task.Instance) []int {
	if g.lpt {
		return lptOrder(in)
	}
	return listOrder(in)
}

func (g group) appendOrder(in *task.Instance, buf []int) []int {
	if g.lpt {
		return appendLPTOrder(in, buf)
	}
	return appendListOrder(in, buf)
}

func (g group) Place(in *task.Instance) (*placement.Placement, error) {
	p := placement.New(in.N(), in.M)
	if _, err := g.placeInto(in, p, nil); err != nil {
		return nil, err
	}
	return p, nil
}

func (g group) placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error) {
	partition := placement.PartitionGroups
	if g.balanced {
		partition = placement.PartitionGroupsBalanced
	}
	groups, err := partition(in.M, g.k)
	if err != nil {
		return orderBuf, err
	}
	p.Reset(in.N(), in.M)
	p.Groups = groups
	p.GroupOf = make([]int, in.N())
	order := g.appendOrder(in, orderBuf)
	var loads loadheap.Heap
	loads.Reset(g.k)
	for _, j := range order {
		best := loads.MinID()
		p.GroupOf[j] = best
		// Groups are already sorted machine lists; share them across
		// tasks instead of copying one per task.
		p.Sets[j] = groups[best]
		loads.AddToMin(in.Tasks[j].Estimate)
	}
	return order, nil
}

// oracleLPT is a clairvoyant baseline: LPT on the *actual* times. It
// breaks the semi-clairvoyant rules on purpose, providing the
// "if we had known" reference the paper's adversary argument compares
// against.
type oracleLPT struct{}

// OracleLPT returns the clairvoyant LPT baseline (places by actual
// processing times; full information). Use only as a reference point.
func OracleLPT() Algorithm { return oracleLPT{} }

func (oracleLPT) Name() string { return "Oracle-LPT" }

func (oracleLPT) Place(in *task.Instance) (*placement.Placement, error) {
	p := placement.New(in.N(), in.M)
	if _, err := (oracleLPT{}).placeInto(in, p, nil); err != nil {
		return nil, err
	}
	return p, nil
}

func (oracleLPT) placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error) {
	order := appendListOrder(in, orderBuf)
	// Sort by actual time, not estimate: this baseline is omniscient.
	// (Actual descending, ID ascending) is a strict total order, so the
	// unstable sort reproduces the stable sort's permutation exactly.
	tasks := in.Tasks
	slices.SortFunc(order, func(a, b int) int {
		pa, pb := tasks[a].Actual, tasks[b].Actual
		if pa != pb {
			if pa > pb {
				return -1
			}
			return 1
		}
		return a - b
	})
	p.Reset(in.N(), in.M)
	var loads loadheap.Heap
	loads.Reset(in.M)
	for _, j := range order {
		p.Assign(j, loads.MinID())
		loads.AddToMin(tasks[j].Actual)
	}
	return order, nil
}

func (oracleLPT) Order(in *task.Instance) []int { return lptOrder(in) }

func (oracleLPT) appendOrder(in *task.Instance, buf []int) []int {
	return appendLPTOrder(in, buf)
}
