package algo

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func TestPartitionGroupsBalancedSizes(t *testing.T) {
	groups, err := placement.PartitionGroupsBalanced(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(groups[0]), len(groups[1]), len(groups[2])}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 2 {
		t.Fatalf("sizes = %v, want [3 2 2]", sizes)
	}
	// Contiguous coverage of all machines exactly once.
	seen := make([]bool, 7)
	for _, g := range groups {
		for _, i := range g {
			if seen[i] {
				t.Fatalf("machine %d in two groups", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("machine %d uncovered", i)
		}
	}
}

func TestPartitionGroupsBalancedRejectsBadK(t *testing.T) {
	if _, err := placement.PartitionGroupsBalanced(5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := placement.PartitionGroupsBalanced(5, 6); err == nil {
		t.Error("k>m accepted")
	}
}

func TestLSGroupBalancedMatchesLSGroupWhenDivisible(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 40, M: 6, Alpha: 1.5, Seed: 3})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(4))
	a, err := Execute(in, LSGroup(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(in, LSGroupBalanced(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("balanced %v != strict %v for divisible k", b.Makespan, a.Makespan)
	}
}

func TestLSGroupBalancedAcceptsNonDivisorK(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 42, M: 7, Alpha: 1.5, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(6))
	// k=3 with m=7: strict LS-Group rejects, balanced accepts.
	if _, err := Execute(in, LSGroup(3)); err == nil {
		t.Fatal("strict LS-Group accepted non-divisor k")
	}
	res, err := Execute(in, LSGroupBalanced(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in, res.Placement); err != nil {
		t.Fatal(err)
	}
	// Replication degree equals the largest group size ⌈m/k⌉ = 3.
	if got := res.Placement.MaxReplication(); got != 3 {
		t.Fatalf("max replication %d, want 3", got)
	}
}

func TestLSGroupBalancedFullSweep(t *testing.T) {
	// Every k from 1 to m must work; makespan trend should improve
	// (non-strictly, on average) as k decreases.
	in := workload.MustNew(workload.Spec{Name: "iterative", N: 70, M: 7, Alpha: 2, Seed: 9})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(10))
	var first, last float64
	for k := 1; k <= 7; k++ {
		res, err := Execute(in, LSGroupBalanced(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if k == 1 {
			first = res.Makespan
		}
		if k == 7 {
			last = res.Makespan
		}
	}
	if first > last {
		t.Fatalf("full replication (%v) worse than none (%v)", first, last)
	}
}

func TestRegistryBalanced(t *testing.T) {
	a, err := New("ls-group-balanced:4")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "LS-GroupBalanced(k=4)" {
		t.Fatalf("Name = %q", a.Name())
	}
	if _, err := New("ls-group-balanced:0"); err == nil {
		t.Fatal("k=0 accepted")
	}
}
