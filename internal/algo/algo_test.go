package algo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func instWithActuals(t *testing.T, m int, alpha float64, est, act []float64) *task.Instance {
	t.Helper()
	in, err := task.New(m, alpha, est, act)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func exactInstance(t *testing.T, m int, times ...float64) *task.Instance {
	t.Helper()
	return instWithActuals(t, m, 1, times, times)
}

func allAlgorithms(m int) []Algorithm {
	algos := []Algorithm{
		LPTNoChoice(), LSNoChoice(), LPTNoRestriction(), LSNoRestriction(), OracleLPT(),
	}
	for k := 1; k <= m; k++ {
		if m%k == 0 {
			algos = append(algos, LSGroup(k), LPTGroup(k))
		}
	}
	return algos
}

func TestLPTNoChoiceMatchesClassicLPT(t *testing.T) {
	// Exact estimates: LPT-No Choice must reproduce offline LPT.
	times := []float64{7, 7, 6, 6, 5, 5, 4, 4, 4}
	in := exactInstance(t, 3, times...)
	res, err := Execute(in, LPTNoChoice())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := opt.LPT(times, 3)
	if res.Makespan != want {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Placement.MaxReplication() != 1 {
		t.Fatalf("no-choice placement replicated: %d", res.Placement.MaxReplication())
	}
}

func TestLPTNoRestrictionAdaptsOnline(t *testing.T) {
	// Two machines; estimates say four equal tasks, but one task
	// quadruples. Full replication lets phase 2 route around the
	// straggler; a fixed LPT placement cannot.
	est := []float64{2, 2, 2, 2}
	act := []float64{4, 1, 1, 1}
	in := instWithActuals(t, 2, 2, est, act)

	fixed, err := Execute(in, LPTNoChoice())
	if err != nil {
		t.Fatal(err)
	}
	free, err := Execute(in, LPTNoRestriction())
	if err != nil {
		t.Fatal(err)
	}
	// LPT-NoChoice pairs tasks (0,1) and (2,3): loads 5 and 2 → 5.
	if fixed.Makespan != 5 {
		t.Fatalf("fixed makespan = %v, want 5", fixed.Makespan)
	}
	// Online: t=0 start 0 on m0, 1 on m1; m1 idles at 1, takes 2; at 2
	// takes 3; loads 4 and 3 → 4.
	if free.Makespan != 4 {
		t.Fatalf("replicated makespan = %v, want 4", free.Makespan)
	}
}

func TestLSGroupOneGroupEqualsNoRestrictionLS(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 60, M: 6, Alpha: 1.5, Seed: 3})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(4))
	a, err := Execute(in, LSGroup(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(in, LSNoRestriction())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("LSGroup(1) %v != LSNoRestriction %v", a.Makespan, b.Makespan)
	}
}

func TestLSGroupMGroupsEqualsNoChoiceLS(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 60, M: 6, Alpha: 1.5, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(6))
	a, err := Execute(in, LSGroup(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(in, LSNoChoice())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("LSGroup(m) %v != LSNoChoice %v", a.Makespan, b.Makespan)
	}
}

func TestLSGroupReplicationDegree(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 30, M: 6, Alpha: 2, Seed: 7})
	for _, k := range []int{1, 2, 3, 6} {
		res, err := Execute(in, LSGroup(k))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Placement.MaxReplication(); got != 6/k {
			t.Errorf("k=%d: replication %d, want %d", k, got, 6/k)
		}
	}
}

func TestLSGroupRejectsNonDivisorK(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 10, M: 6, Alpha: 2, Seed: 1})
	if _, err := Execute(in, LSGroup(4)); err == nil {
		t.Fatal("k=4 with m=6 accepted")
	}
}

func TestOracleLPTBeatsBlindOnAdversarialInstance(t *testing.T) {
	est := []float64{1, 1, 1, 1, 1, 1}
	in, err := task.NewEstimated(2, 2, est)
	if err != nil {
		t.Fatal(err)
	}
	// Phase-1-aware adversary against LPT-NoChoice.
	p, err := LPTNoChoice().Place(in)
	if err != nil {
		t.Fatal(err)
	}
	pref, err := p.SingleMachineOf()
	if err != nil {
		t.Fatal(err)
	}
	uncertainty.LoadedMachineAdversary{}.Perturb(in, &uncertainty.Context{Preferred: pref, M: 2}, rng.New(1))

	blind, err := Execute(in, LPTNoChoice())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Execute(in, OracleLPT())
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Makespan >= blind.Makespan {
		t.Fatalf("oracle %v not better than blind %v", oracle.Makespan, blind.Makespan)
	}
}

func TestAllAlgorithmsProduceFeasibleSchedules(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		in := workload.MustNew(workload.Spec{Name: "zipf", N: 48, M: 6, Alpha: 1.7, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed+1))
		algos := allAlgorithms(6)
		a := algos[int(pick)%len(algos)]
		res, err := Execute(in, a)
		if err != nil {
			return false
		}
		// Makespan at least the average load and at most total work.
		total := in.TotalActual()
		return res.Makespan >= total/6-1e-9 && res.Makespan <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGuaranteesHoldOnSmallInstances(t *testing.T) {
	// Empirically check Theorems 2–4 against the exact optimum for
	// random perturbed instances.
	const m = 4
	src := rng.New(99)
	for trial := 0; trial < 40; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 12, M: m, Alpha: 1.5, Seed: src.Uint64(),
		})
		uncertainty.Extremes{}.Perturb(in, nil, rng.New(src.Uint64()))
		star, ok := opt.Exact(in.Actuals(), m, 20_000_000)
		if !ok {
			t.Fatal("exact solver exhausted on a 12-task instance")
		}
		alpha2 := in.Alpha * in.Alpha
		mf := float64(m)
		checks := []struct {
			algo  Algorithm
			bound float64
		}{
			{LPTNoChoice(), 2 * alpha2 * mf / (2*alpha2 + mf - 1)},
			{LPTNoRestriction(), math.Min(1+(mf-1)/mf*alpha2/2, 2-1/mf)},
			{LSGroup(2), 2*alpha2/(alpha2+1)*(1+1/mf) + (mf-2)/mf},
		}
		for _, c := range checks {
			res, err := Execute(in, c.algo)
			if err != nil {
				t.Fatal(err)
			}
			if ratio := res.Makespan / star; ratio > c.bound+1e-9 {
				t.Errorf("trial %d: %s ratio %v exceeds bound %v", trial, c.algo.Name(), ratio, c.bound)
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{
		"lpt-nochoice", "LS-NoChoice", "lpt-norestriction",
		"ls-norestriction", "oracle-lpt", "ls-group:3", "LPT-Group:2",
	} {
		a, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if a.Name() == "" {
			t.Errorf("New(%q) has empty name", name)
		}
	}
	for _, name := range []string{"", "bogus", "ls-group:", "ls-group:0", "ls-group:x"} {
		if _, err := New(name); err == nil {
			t.Errorf("New(%q) accepted", name)
		}
	}
}

func TestNamesIncludeGroups(t *testing.T) {
	found := false
	for _, n := range Names() {
		if strings.Contains(n, "group") {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing group algorithms")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "mapreduce", N: 100, M: 8, Alpha: 2, Seed: 11})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(12))
	for _, a := range allAlgorithms(8) {
		r1, err := Execute(in, a)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Execute(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Makespan != r2.Makespan {
			t.Errorf("%s not deterministic: %v vs %v", a.Name(), r1.Makespan, r2.Makespan)
		}
	}
}

func TestMoreReplicationNeverHurtsMuchOnAverage(t *testing.T) {
	// The paper's core claim, empirically: averaged over random
	// perturbations, LS-Group with more replication (fewer groups)
	// yields no worse makespan.
	const trials = 30
	sums := map[int]float64{}
	ks := []int{1, 2, 3, 6}
	src := rng.New(31)
	for trial := 0; trial < trials; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "iterative", N: 60, M: 6, Alpha: 2, Seed: src.Uint64(),
		})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(src.Uint64()))
		for _, k := range ks {
			res, err := Execute(in, LSGroup(k))
			if err != nil {
				t.Fatal(err)
			}
			sums[k] += res.Makespan
		}
	}
	// k=1 is full replication; k=6 is none. Expect a clear win.
	if sums[1] >= sums[6] {
		t.Fatalf("full replication (%.4g) not better than none (%.4g)", sums[1], sums[6])
	}
}

func BenchmarkLPTNoRestriction1e4(b *testing.B) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 10000, M: 32, Alpha: 1.5, Seed: 1})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(in, LPTNoRestriction()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSGroup1e4(b *testing.B) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 10000, M: 32, Alpha: 1.5, Seed: 1})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(in, LSGroup(4)); err != nil {
			b.Fatal(err)
		}
	}
}
