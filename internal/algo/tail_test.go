package algo

import (
	"testing"

	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func TestReplicateTailPlacementShape(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "zipf", N: 30, M: 5, Alpha: 2, Seed: 3})
	res, err := Execute(in, ReplicateTail(4))
	if err != nil {
		t.Fatal(err)
	}
	full, single := 0, 0
	for _, set := range res.Placement.Sets {
		switch len(set) {
		case 5:
			full++
		case 1:
			single++
		default:
			t.Fatalf("unexpected replica count %d", len(set))
		}
	}
	if full != 4 || single != 26 {
		t.Fatalf("full=%d single=%d, want 4/26", full, single)
	}
}

func TestReplicateTailReplicatesSmallest(t *testing.T) {
	est := []float64{1, 50, 2, 40, 3}
	in, err := task.NewEstimated(3, 2, est)
	if err != nil {
		t.Fatal(err)
	}
	a := ReplicateTail(2)
	p, err := a.Place(in)
	if err != nil {
		t.Fatal(err)
	}
	// The two smallest tasks (estimates 1 and 2) are replicated.
	if len(p.Sets[0]) != 3 || len(p.Sets[2]) != 3 {
		t.Fatalf("smallest tasks not replicated: %v", p.Sets)
	}
	for _, j := range []int{1, 3, 4} {
		if len(p.Sets[j]) != 1 {
			t.Fatalf("large task %d replicated: %v", j, p.Sets[j])
		}
	}
}

func TestReplicateTailExtremes(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 20, M: 4, Alpha: 1.5, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(6))

	// c=0 degenerates to LPT-No Choice.
	zero, err := Execute(in, ReplicateTail(0))
	if err != nil {
		t.Fatal(err)
	}
	noChoice, err := Execute(in, LPTNoChoice())
	if err != nil {
		t.Fatal(err)
	}
	if zero.Makespan != noChoice.Makespan {
		t.Fatalf("c=0 makespan %v != LPT-NoChoice %v", zero.Makespan, noChoice.Makespan)
	}

	// c >= n degenerates to LPT-No Restriction.
	all, err := Execute(in, ReplicateTail(999))
	if err != nil {
		t.Fatal(err)
	}
	noRestr, err := Execute(in, LPTNoRestriction())
	if err != nil {
		t.Fatal(err)
	}
	if all.Makespan != noRestr.Makespan {
		t.Fatalf("c=n makespan %v != LPT-NoRestriction %v", all.Makespan, noRestr.Makespan)
	}
}

func TestReplicateTailRejectsNegative(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 5, M: 2, Alpha: 1.5, Seed: 1})
	if _, err := Execute(in, ReplicateTail(-1)); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestReplicateTailBeatsNoChoiceUnderAdversary(t *testing.T) {
	// Averaged over adversarial trials, a flexible tail must improve
	// on pure pinning: the deflated machines drain their queues early
	// and absorb the tail while the inflated machine struggles.
	src := rng.New(17)
	var sumNo, sumTail float64
	for trial := 0; trial < 20; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 40, M: 5, Alpha: 2, Seed: src.Uint64(),
		})
		// Placement-aware adversary against the pinned placement.
		p, err := LPTNoChoice().Place(in)
		if err != nil {
			t.Fatal(err)
		}
		pref, err := p.SingleMachineOf()
		if err != nil {
			t.Fatal(err)
		}
		uncertainty.LoadedMachineAdversary{}.Perturb(in,
			&uncertainty.Context{Preferred: pref, M: in.M}, nil)

		no, err := Execute(in, LPTNoChoice())
		if err != nil {
			t.Fatal(err)
		}
		tail, err := Execute(in, ReplicateTail(15))
		if err != nil {
			t.Fatal(err)
		}
		sumNo += no.Makespan
		sumTail += tail.Makespan
	}
	if sumTail >= sumNo {
		t.Fatalf("tail replication (%v) not better than pinning (%v)", sumTail, sumNo)
	}
}

func TestReplicateTailMemoryCostBounded(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "spmv", N: 50, M: 8, Alpha: 1.5, Seed: 9})
	c := 5
	res, err := Execute(in, ReplicateTail(c))
	if err != nil {
		t.Fatal(err)
	}
	// Total replicas = n + c·(m−1).
	want := 50 + c*(8-1)
	if got := res.Placement.TotalReplicas(); got != want {
		t.Fatalf("total replicas %d, want %d", got, want)
	}
}

func TestReplicateTailGuaranteeSanity(t *testing.T) {
	// No formal bound is proved for this extension; sanity-check that
	// its measured ratio stays within the LPT-No Choice guarantee on
	// exactly solvable instances (it only adds flexibility).
	src := rng.New(23)
	for trial := 0; trial < 15; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 12, M: 3, Alpha: 1.5, Seed: src.Uint64(),
		})
		uncertainty.Extremes{}.Perturb(in, nil, rng.New(src.Uint64()))
		star, ok := opt.Exact(in.Actuals(), 3, 20_000_000)
		if !ok {
			t.Fatal("exact exhausted")
		}
		res, err := Execute(in, ReplicateTail(3))
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * in.Alpha * in.Alpha * 3 / (2*in.Alpha*in.Alpha + 2)
		if ratio := res.Makespan / star; ratio > bound+1e-9 {
			t.Fatalf("trial %d: ratio %v above LPT-NoChoice bound %v", trial, ratio, bound)
		}
	}
}

func TestRegistryTail(t *testing.T) {
	a, err := New("tail:7")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "ReplicateTail(c=7)" {
		t.Fatalf("Name = %q", a.Name())
	}
	for _, bad := range []string{"tail:", "tail:-1", "tail:x"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}
