// Package algo implements the paper's two-phase scheduling algorithms
// for the replication-bound model, plus the classical baselines they
// are measured against:
//
//   - LPT-No Choice (§4, strategy 1): phase 1 places each task's data
//     on a single machine by LPT over the estimates; phase 2 has no
//     freedom. Competitive ratio 2α²m/(2α²+m−1) (Theorem 2).
//   - LPT-No Restriction (§5, strategy 2): phase 1 replicates every
//     task everywhere; phase 2 runs online LPT on estimates.
//     Competitive ratio 1 + (m−1)/m · α²/2 (Theorem 3), and also
//     2 − 1/m by the List Scheduling guarantee.
//   - LS-Group (§6, strategy 3): machines are partitioned into k
//     groups; phase 1 list-schedules tasks onto groups by estimated
//     load; phase 2 list-schedules online within each group.
//     Competitive ratio kα²/(α²+k−1)·(1+(k−1)/m) + (m−k)/m (Theorem 4).
//   - LPT-Group: the LPT-based variant of LS-Group the paper discusses
//     (sorting tasks by estimate in both phases); included to measure
//     the paper's conjecture that it would not improve the guarantee
//     much.
//   - LS-No Choice and LS-No Restriction: Graham List Scheduling
//     baselines without/with full replication.
//
// Every algorithm is split into the paper's two phases. Place consumes
// only estimated processing times. Order exposes the phase-2 priority
// list (also estimate-only); Execute wires both into the
// semi-clairvoyant simulator.
package algo

import (
	"fmt"
	"sort"

	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// Algorithm is a two-phase scheduling algorithm for the
// replication-bound model.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Place computes the phase-1 data placement from estimates only.
	Place(in *task.Instance) (*placement.Placement, error)
	// Order returns the phase-2 dispatch priority (task IDs, highest
	// priority first), computed from estimates only.
	Order(in *task.Instance) []int
}

// Result is the outcome of executing an algorithm on an instance.
type Result struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Placement is the phase-1 decision.
	Placement *placement.Placement
	// Schedule is the executed phase-2 schedule.
	Schedule *sched.Schedule
	// Makespan is Schedule.Makespan().
	Makespan float64
}

// Execute runs both phases of the algorithm on the instance and
// verifies the resulting schedule against the placement.
func Execute(in *task.Instance, a Algorithm) (*Result, error) {
	p, err := a.Place(in)
	if err != nil {
		return nil, fmt.Errorf("%s: phase 1: %w", a.Name(), err)
	}
	if err := p.Validate(in); err != nil {
		return nil, fmt.Errorf("%s: invalid placement: %w", a.Name(), err)
	}
	d, err := sim.NewListDispatcher(p, a.Order(in))
	if err != nil {
		return nil, fmt.Errorf("%s: phase 2: %w", a.Name(), err)
	}
	res, err := sim.Run(in, d, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: simulation: %w", a.Name(), err)
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		return nil, fmt.Errorf("%s: infeasible schedule: %w", a.Name(), err)
	}
	return &Result{
		Algorithm: a.Name(),
		Placement: p,
		Schedule:  res.Schedule,
		Makespan:  res.Schedule.Makespan(),
	}, nil
}

// lptOrder returns task IDs sorted by non-increasing estimate, ties
// broken by ID for determinism.
func lptOrder(in *task.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Estimate > in.Tasks[order[b]].Estimate
	})
	return order
}

// listOrder returns task IDs in input order (Graham's list order).
func listOrder(in *task.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	return order
}

// minLoadPlacement assigns tasks (visited in the given order) to the
// machine with the least accumulated estimated load, returning
// singleton replica sets. This is List Scheduling on estimates; with
// order = lptOrder it is LPT on estimates.
func minLoadPlacement(in *task.Instance, order []int) *placement.Placement {
	p := placement.New(in.N(), in.M)
	loads := make([]float64, in.M)
	for _, j := range order {
		best := 0
		for i := 1; i < in.M; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		p.Assign(j, best)
		loads[best] += in.Tasks[j].Estimate
	}
	return p
}
