// Package algo implements the paper's two-phase scheduling algorithms
// for the replication-bound model, plus the classical baselines they
// are measured against:
//
//   - LPT-No Choice (§4, strategy 1): phase 1 places each task's data
//     on a single machine by LPT over the estimates; phase 2 has no
//     freedom. Competitive ratio 2α²m/(2α²+m−1) (Theorem 2).
//   - LPT-No Restriction (§5, strategy 2): phase 1 replicates every
//     task everywhere; phase 2 runs online LPT on estimates.
//     Competitive ratio 1 + (m−1)/m · α²/2 (Theorem 3), and also
//     2 − 1/m by the List Scheduling guarantee.
//   - LS-Group (§6, strategy 3): machines are partitioned into k
//     groups; phase 1 list-schedules tasks onto groups by estimated
//     load; phase 2 list-schedules online within each group.
//     Competitive ratio kα²/(α²+k−1)·(1+(k−1)/m) + (m−k)/m (Theorem 4).
//   - LPT-Group: the LPT-based variant of LS-Group the paper discusses
//     (sorting tasks by estimate in both phases); included to measure
//     the paper's conjecture that it would not improve the guarantee
//     much.
//   - LS-No Choice and LS-No Restriction: Graham List Scheduling
//     baselines without/with full replication.
//
// Every algorithm is split into the paper's two phases. Place consumes
// only estimated processing times. Order exposes the phase-2 priority
// list (also estimate-only); Execute wires both into the
// semi-clairvoyant simulator.
package algo

import (
	"fmt"
	"slices"

	"repro/internal/loadheap"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// Algorithm is a two-phase scheduling algorithm for the
// replication-bound model.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Place computes the phase-1 data placement from estimates only.
	Place(in *task.Instance) (*placement.Placement, error)
	// Order returns the phase-2 dispatch priority (task IDs, highest
	// priority first), computed from estimates only.
	Order(in *task.Instance) []int
}

// Result is the outcome of executing an algorithm on an instance.
type Result struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Placement is the phase-1 decision.
	Placement *placement.Placement
	// Schedule is the executed phase-2 schedule.
	Schedule *sched.Schedule
	// Makespan is Schedule.Makespan().
	Makespan float64
}

// OpenResult is the outcome of executing an algorithm's placement in
// the open-system streaming mode: phase 1 places replicas exactly as
// in the batch model, but phase 2 serves an arrival stream and the
// metric is the response-time distribution (see sim.OpenResult).
type OpenResult struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Placement is the phase-1 decision.
	Placement *placement.Placement
	// Open is the simulator output: responses, winning-replica
	// schedule, cancellation accounting.
	Open *sim.OpenResult
}

// Execute runs both phases of the algorithm on the instance and
// verifies the resulting schedule against the placement. The returned
// Result is freshly allocated and owned by the caller; trial loops
// that execute many instances should reuse a Scratch instead.
func Execute(in *task.Instance, a Algorithm) (*Result, error) {
	var s Scratch // fresh state: the returned buffers are caller-owned
	return s.Execute(in, a)
}

// ExecuteOpen runs phase 1 of the algorithm and serves the arrival
// stream through the open-system simulator. The returned OpenResult is
// freshly allocated and caller-owned; trial loops should reuse a
// Scratch.
func ExecuteOpen(in *task.Instance, a Algorithm, arrive []float64,
	opts sim.OpenOptions) (*OpenResult, error) {
	var s Scratch // fresh state: the returned buffers are caller-owned
	return s.ExecuteOpen(in, a, arrive, opts)
}

// Scratch is reusable two-phase execution state: the phase-1 placement,
// the priority order, the phase-2 dispatcher, and the simulator state
// are all recycled between Execute calls, so a Scratch running
// same-shaped trials in a loop performs near-zero steady-state heap
// allocations.
//
// Ownership contract: the Result returned by Execute — its Placement
// and Schedule included — is owned by the Scratch and valid only until
// the next Execute call. Callers that retain results must copy them,
// or use the package-level Execute. A Scratch is not safe for
// concurrent use; pool Scratches to share across goroutines. Results
// are identical to the package-level Execute: every reused buffer is
// rebuilt from the inputs before use.
type Scratch struct {
	// Engine selects the phase-2 simulator: sim.EngineEvent (default)
	// is the float64 event-heap reference; sim.EngineFlat is the
	// data-oriented fixed-point core. The engines agree on every
	// dispatch decision; flat times are nanotick-quantized (≤ 0.5e-9 s
	// per duration, inside Verify's tolerance).
	Engine sim.Engine
	// SimWorkers is the shard worker count under sim.EngineFlat:
	// 0 or 1 runs shards sequentially (the right default when trials
	// are already parallel), < 0 selects GOMAXPROCS. Ignored by
	// sim.EngineEvent.
	SimWorkers int

	runner     sim.Runner
	flat       sim.FlatRunner
	open       sim.OpenRunner
	flatOpen   sim.FlatOpenRunner
	disp       sim.ListDispatcher
	place      placement.Placement
	order      []int
	placeOrder []int
	res        Result
	openRes    OpenResult
}

// intoPlacer is implemented by algorithms whose phase-1 decision can
// be written into a reusable placement. orderBuf is scratch for the
// phase-1 visiting order; implementations return it (possibly regrown)
// so the caller can keep recycling it. Algorithms without the
// interface fall back to Place, which allocates.
type intoPlacer interface {
	placeInto(in *task.Instance, p *placement.Placement, orderBuf []int) ([]int, error)
}

// orderAppender is implemented by algorithms whose phase-2 priority
// order can be written into a reusable buffer.
type orderAppender interface {
	appendOrder(in *task.Instance, buf []int) []int
}

// plan runs phase 1 (placement, validated) and materializes the
// phase-2 priority order into the Scratch's buffers. It is the shared
// front half of Execute and ExecuteOpen.
func (s *Scratch) plan(in *task.Instance, a Algorithm) (*placement.Placement, error) {
	p := &s.place
	if ip, ok := a.(intoPlacer); ok {
		buf, err := ip.placeInto(in, p, s.placeOrder[:0])
		s.placeOrder = buf
		if err != nil {
			return nil, fmt.Errorf("%s: phase 1: %w", a.Name(), err)
		}
	} else {
		pp, err := a.Place(in)
		if err != nil {
			return nil, fmt.Errorf("%s: phase 1: %w", a.Name(), err)
		}
		p = pp
	}
	if err := p.Validate(in); err != nil {
		return nil, fmt.Errorf("%s: invalid placement: %w", a.Name(), err)
	}
	if oa, ok := a.(orderAppender); ok {
		s.order = oa.appendOrder(in, s.order[:0])
	} else {
		s.order = a.Order(in)
	}
	return p, nil
}

// Execute runs both phases of the algorithm reusing the Scratch's
// buffers; semantics match the package-level Execute.
func (s *Scratch) Execute(in *task.Instance, a Algorithm) (*Result, error) {
	p, err := s.plan(in, a)
	if err != nil {
		return nil, err
	}
	var res *sim.Result
	if s.Engine == sim.EngineFlat {
		workers := s.SimWorkers
		if workers == 0 {
			workers = 1
		}
		res, err = s.flat.RunSharded(in, p, s.order, sim.FlatOptions{}, workers)
	} else {
		if err := s.disp.Reset(p, s.order); err != nil {
			return nil, fmt.Errorf("%s: phase 2: %w", a.Name(), err)
		}
		res, err = s.runner.Run(in, &s.disp, sim.Options{})
	}
	if err != nil {
		return nil, fmt.Errorf("%s: simulation: %w", a.Name(), err)
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		return nil, fmt.Errorf("%s: infeasible schedule: %w", a.Name(), err)
	}
	s.res = Result{
		Algorithm: a.Name(),
		Placement: p,
		Schedule:  res.Schedule,
		Makespan:  res.Schedule.Makespan(),
	}
	return &s.res, nil
}

// ExecuteOpen runs phase 1 of the algorithm and replays the arrival
// stream through the open-system simulator, reusing the Scratch's
// buffers. The Engine field selects the simulator exactly as in
// Execute: sim.EngineFlat routes through the data-oriented
// FlatOpenRunner (sharded by replica-set connectivity, SimWorkers
// controlling parallelism), the default through the float64 event-heap
// OpenRunner. The two agree on every dispatch decision; flat times are
// nanotick-quantized. The schedule is not re-verified here: open-mode
// durations may come from opts.Duration, which sched.Verify (actual
// times only) cannot check.
//
// Ownership matches Execute: the returned OpenResult is valid only
// until the Scratch's next call.
func (s *Scratch) ExecuteOpen(in *task.Instance, a Algorithm, arrive []float64,
	opts sim.OpenOptions) (*OpenResult, error) {
	p, err := s.plan(in, a)
	if err != nil {
		return nil, err
	}
	var res *sim.OpenResult
	if s.Engine == sim.EngineFlat {
		workers := s.SimWorkers
		if workers == 0 {
			workers = 1
		}
		res, err = s.flatOpen.RunSharded(in, p, s.order, arrive, opts, workers)
	} else {
		res, err = s.open.Run(in, p, s.order, arrive, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: open simulation: %w", a.Name(), err)
	}
	s.openRes = OpenResult{
		Algorithm: a.Name(),
		Placement: p,
		Open:      res,
	}
	return &s.openRes, nil
}

// lptOrder returns task IDs sorted by non-increasing estimate, ties
// broken by ID for determinism.
func lptOrder(in *task.Instance) []int {
	return appendLPTOrder(in, nil)
}

// appendLPTOrder writes the LPT priority order into buf (reused when
// its capacity allows) and returns it. The comparator (estimate
// descending, ID ascending) is a strict total order, so the unstable
// slices.SortFunc yields exactly the permutation the previous
// sort.SliceStable produced — minus the reflection-based element swaps
// that dominated the placement profile.
func appendLPTOrder(in *task.Instance, buf []int) []int {
	order := appendListOrder(in, buf)
	tasks := in.Tasks
	slices.SortFunc(order, func(a, b int) int {
		ea, eb := tasks[a].Estimate, tasks[b].Estimate
		if ea != eb {
			if ea > eb {
				return -1
			}
			return 1
		}
		return a - b
	})
	return order
}

// listOrder returns task IDs in input order (Graham's list order).
func listOrder(in *task.Instance) []int {
	return appendListOrder(in, nil)
}

// appendListOrder writes 0..n-1 into buf (reused when its capacity
// allows) and returns it.
func appendListOrder(in *task.Instance, buf []int) []int {
	n := in.N()
	if cap(buf) < n {
		buf = make([]int, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// minLoadPlacement assigns tasks (visited in the given order) to the
// machine with the least accumulated estimated load, returning
// singleton replica sets. This is List Scheduling on estimates; with
// order = lptOrder it is LPT on estimates.
func minLoadPlacement(in *task.Instance, order []int) *placement.Placement {
	p := placement.New(in.N(), in.M)
	minLoadPlacementInto(in, order, p)
	return p
}

// minLoadPlacementInto is minLoadPlacement writing into a reusable
// placement. The (load, machine) heap picks the same machine the
// previous linear scan did — least load, lowest index on ties — in
// O(log m) instead of O(m) per task.
func minLoadPlacementInto(in *task.Instance, order []int, p *placement.Placement) {
	p.Reset(in.N(), in.M)
	var loads loadheap.Heap
	loads.Reset(in.M)
	for _, j := range order {
		p.Assign(j, loads.MinID())
		loads.AddToMin(in.Tasks[j].Estimate)
	}
}
