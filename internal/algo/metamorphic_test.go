package algo

// Metamorphic properties: transformations of the input with known
// effect on the output. These catch subtle unit or ordering bugs that
// point tests miss.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func scaledInstance(in *task.Instance, c float64) *task.Instance {
	out := in.Clone()
	for j := range out.Tasks {
		out.Tasks[j].Estimate *= c
		out.Tasks[j].Actual *= c
	}
	return out
}

// TestScaleInvariance: multiplying every processing time by c > 0
// multiplies every algorithm's makespan by exactly c (all decisions
// compare ratios of times, never absolute values).
func TestScaleInvariance(t *testing.T) {
	algos := []Algorithm{
		LPTNoChoice(), LSNoChoice(), LPTNoRestriction(), LSNoRestriction(),
		LSGroup(2), LPTGroup(3), ReplicateTail(7), OracleLPT(),
	}
	f := func(seed uint64, cRaw uint8, pick uint8) bool {
		// Powers of two scale floats exactly, so tie-breaking decisions
		// inside the algorithms are preserved bit-for-bit.
		c := math.Ldexp(1, int(cRaw%7)-3) // 1/8 .. 8
		in := workload.MustNew(workload.Spec{Name: "zipf", N: 30, M: 6, Alpha: 1.6, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed^3))
		a := algos[int(pick)%len(algos)]
		r1, err := Execute(in, a)
		if err != nil {
			return false
		}
		r2, err := Execute(scaledInstance(in, c), a)
		if err != nil {
			return false
		}
		return math.Abs(r2.Makespan-c*r1.Makespan) <= 1e-9*c*r1.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTaskOrderInvarianceForLPT: LPT-based algorithms sort by
// estimate, so permuting the task IDs leaves the multiset of machine
// loads (and the makespan) unchanged when all estimates are distinct.
func TestTaskOrderInvarianceForLPT(t *testing.T) {
	f := func(seed uint64) bool {
		in := workload.MustNew(workload.Spec{Name: "uniform", N: 24, M: 4, Alpha: 1.5, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed^9))
		// Distinct estimates with overwhelming probability (uniform
		// floats); bail out if not.
		seen := map[float64]bool{}
		for _, tk := range in.Tasks {
			if seen[tk.Estimate] {
				return true
			}
			seen[tk.Estimate] = true
		}
		perm := rng.New(seed ^ 11).Perm(in.N())
		shuffled := in.Clone()
		for j, pj := range perm {
			shuffled.Tasks[pj] = in.Tasks[j]
			shuffled.Tasks[pj].ID = pj
		}
		a, err := Execute(in, LPTNoChoice())
		if err != nil {
			return false
		}
		b, err := Execute(shuffled, LPTNoChoice())
		if err != nil {
			return false
		}
		return math.Abs(a.Makespan-b.Makespan) <= 1e-9*a.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestClairvoyantInstanceMatchesClassicalBounds: when actuals equal
// estimates (α irrelevant), LPT-No Restriction behaves as offline LPT
// and must respect the 4/3 − 1/(3m) guarantee against the best lower
// bound.
func TestClairvoyantInstanceMatchesClassicalBounds(t *testing.T) {
	f := func(seed uint64) bool {
		in := workload.MustNew(workload.Spec{Name: "uniform", N: 20, M: 4, Alpha: 1.8, Seed: seed})
		// No perturbation: actuals stay equal to estimates.
		res, err := Execute(in, LPTNoRestriction())
		if err != nil {
			return false
		}
		lptBound := 4.0/3 - 1.0/12 // 4/3 − 1/(3m), m = 4
		lower := bestLowerBound(in)
		return res.Makespan <= lptBound*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func bestLowerBound(in *task.Instance) float64 {
	sum := in.TotalActual() / float64(in.M)
	if mx := in.MaxActual(); mx > sum {
		return mx
	}
	return sum
}

// TestMemoryScaleInvariance: scaling all sizes by c scales the
// placement's memory occupation by c while leaving makespans alone.
func TestMemoryScaleInvariance(t *testing.T) {
	f := func(seed uint64, cRaw uint8) bool {
		c := 0.5 + float64(cRaw)/16
		in := workload.MustNew(workload.Spec{Name: "spmv", N: 24, M: 4, Alpha: 1.5, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed^17))
		scaled := in.Clone()
		sizes := scaled.Sizes()
		for i := range sizes {
			sizes[i] *= c
		}
		if err := scaled.SetSizes(sizes); err != nil {
			return false
		}
		a, err := Execute(in, ReplicateTail(6))
		if err != nil {
			return false
		}
		b, err := Execute(scaled, ReplicateTail(6))
		if err != nil {
			return false
		}
		memA := a.Placement.MaxMemory(in)
		memB := b.Placement.MaxMemory(scaled)
		return a.Makespan == b.Makespan && math.Abs(memB-c*memA) <= 1e-9*math.Max(1, c*memA)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
