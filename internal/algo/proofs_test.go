package algo

// proofs_test numerically verifies the intermediate inequalities used
// in the paper's proofs, on randomly drawn instances. These are
// stronger checks than end-to-end guarantee validation: if an
// implementation detail diverged from the model (dispatch order,
// tie-breaking, load accounting), some step of the proof chain would
// fail even when the final bound happens to hold.

import (
	"testing"

	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// criticalTask returns the task whose completion defines the makespan
// and the number of tasks on its machine.
func criticalTask(s *sched.Schedule) (taskID, tasksOnMachine int) {
	makespan := s.Makespan()
	taskID = -1
	machine := -1
	for _, a := range s.Assignments {
		if a.End == makespan {
			taskID = a.Task
			machine = a.Machine
			break
		}
	}
	for _, a := range s.Assignments {
		if a.Machine == machine {
			tasksOnMachine++
		}
	}
	return taskID, tasksOnMachine
}

// TestLemma1NoRestriction verifies Lemma 1: if the machine executing
// the C_max-reaching task l under LPT-No Restriction has at least two
// tasks, then C* ≥ (2/α²)·p_l.
func TestLemma1NoRestriction(t *testing.T) {
	src := rng.New(41)
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 14, M: 3, Alpha: 1.6, Seed: src.Uint64(),
		})
		uncertainty.Extremes{}.Perturb(in, nil, rng.New(src.Uint64()))
		res, err := Execute(in, LPTNoRestriction())
		if err != nil {
			t.Fatal(err)
		}
		l, count := criticalTask(res.Schedule)
		if count < 2 {
			continue // lemma's hypothesis not met
		}
		checked++
		star, ok := opt.Exact(in.Actuals(), in.M, 20_000_000)
		if !ok {
			t.Fatal("exact solver exhausted")
		}
		pl := in.Tasks[l].Actual
		if lower := 2 * pl / (in.Alpha * in.Alpha); star < lower-1e-9 {
			t.Fatalf("trial %d: Lemma 1 violated: C*=%v < 2·p_l/α²=%v", trial, star, lower)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances met the lemma's hypothesis", checked)
	}
}

// TestEquation2LPTPlannedMakespan verifies Equation 2 of Theorem 2's
// proof: under LPT on the estimates, the planned makespan satisfies
// C̃_max ≤ (Σp̃ + (m−1)·p̃_l)/m where l is the task reaching C̃_max.
func TestEquation2LPTPlannedMakespan(t *testing.T) {
	src := rng.New(43)
	for trial := 0; trial < 40; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "zipf", N: 25, M: 4, Alpha: 2, Seed: src.Uint64(),
		})
		// Planned schedule = LPT executed on the estimates themselves.
		planned := in.Clone()
		for j := range planned.Tasks {
			planned.Tasks[j].Actual = planned.Tasks[j].Estimate
		}
		res, err := Execute(planned, LPTNoChoice())
		if err != nil {
			t.Fatal(err)
		}
		l, _ := criticalTask(res.Schedule)
		sum := planned.TotalEstimate()
		mf := float64(planned.M)
		bound := (sum + (mf-1)*planned.Tasks[l].Estimate) / mf
		if res.Makespan > bound+1e-9 {
			t.Fatalf("trial %d: Equation 2 violated: C̃=%v > %v", trial, res.Makespan, bound)
		}
	}
}

// TestGrahamStepEquation8 verifies Equation 8 of Theorem 3's proof:
// for any list-scheduling execution, C_max ≤ Σp/m + (m−1)/m·p_l where
// l is the task reaching C_max.
func TestGrahamStepEquation8(t *testing.T) {
	src := rng.New(47)
	for trial := 0; trial < 40; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "bimodal", N: 30, M: 5, Alpha: 1.8, Seed: src.Uint64(),
		})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(src.Uint64()))
		for _, a := range []Algorithm{LSNoRestriction(), LPTNoRestriction()} {
			res, err := Execute(in, a)
			if err != nil {
				t.Fatal(err)
			}
			l, _ := criticalTask(res.Schedule)
			mf := float64(in.M)
			bound := in.TotalActual()/mf + (mf-1)/mf*in.Tasks[l].Actual
			if res.Makespan > bound+1e-9 {
				t.Fatalf("trial %d %s: Equation 8 violated: C=%v > %v",
					trial, a.Name(), res.Makespan, bound)
			}
		}
	}
}

// TestTheorem4GroupLoadGap verifies the phase-1 inequality of
// Theorem 4's proof: after list-scheduling tasks onto groups by
// estimated load, the estimated load difference between any two
// groups is at most max_j p̃_j.
func TestTheorem4GroupLoadGap(t *testing.T) {
	src := rng.New(53)
	for trial := 0; trial < 40; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "zipf", N: 40, M: 6, Alpha: 2, Seed: src.Uint64(),
		})
		for _, k := range []int{2, 3, 6} {
			p, err := LSGroup(k).Place(in)
			if err != nil {
				t.Fatal(err)
			}
			loads := make([]float64, k)
			for j, g := range p.GroupOf {
				loads[g] += in.Tasks[j].Estimate
			}
			min, max := loads[0], loads[0]
			for _, l := range loads[1:] {
				if l < min {
					min = l
				}
				if l > max {
					max = l
				}
			}
			if gap := max - min; gap > in.MaxEstimate()+1e-9 {
				t.Fatalf("trial %d k=%d: group gap %v exceeds max estimate %v",
					trial, k, gap, in.MaxEstimate())
			}
		}
	}
}

// TestTheorem2TwoTaskArgument verifies the argument Theorem 2 borrows
// from LPT's analysis: when the critical machine of the *planned* LPT
// schedule holds at least two tasks, the estimated time of its last
// task is at most half the planned makespan.
func TestTheorem2TwoTaskArgument(t *testing.T) {
	src := rng.New(59)
	for trial := 0; trial < 40; trial++ {
		in := workload.MustNew(workload.Spec{
			Name: "uniform", N: 20, M: 4, Alpha: 1.5, Seed: src.Uint64(),
		})
		planned := in.Clone()
		for j := range planned.Tasks {
			planned.Tasks[j].Actual = planned.Tasks[j].Estimate
		}
		res, err := Execute(planned, LPTNoChoice())
		if err != nil {
			t.Fatal(err)
		}
		l, count := criticalTask(res.Schedule)
		if count < 2 {
			continue
		}
		if pl := planned.Tasks[l].Estimate; pl > res.Makespan/2+1e-9 {
			t.Fatalf("trial %d: last task %v exceeds half the planned makespan %v",
				trial, pl, res.Makespan)
		}
	}
}
