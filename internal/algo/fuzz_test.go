package algo

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/task"
)

// fuzzAlgorithms covers every name family the registry accepts,
// including group variants whose k may or may not fit the fuzzed m.
var fuzzAlgorithms = []string{
	"lpt-nochoice",
	"ls-nochoice",
	"lpt-norestriction",
	"ls-norestriction",
	"oracle-lpt",
	"ls-group:1",
	"ls-group:2",
	"ls-group:3",
	"lpt-group:2",
	"ls-group-balanced:2",
	"tail:1",
	"tail:2",
}

// FuzzExecute drives every registry algorithm over decoded instances:
// no input may panic any phase, every returned schedule must verify
// against its placement, and every makespan must fall in the trivial
// bracket [max_j p_j, Σ_j p_j]. Errors are only acceptable from group
// algorithms whose group count does not fit the instance.
func FuzzExecute(f *testing.F) {
	f.Add([]byte(`{"m":2,"alpha":1.5,"estimates":[4,2,6,1]}`))
	f.Add([]byte(`{"m":3,"alpha":2,"estimates":[5,5,5],"actuals":[10,2.5,7]}`))
	f.Add([]byte(`{"m":1,"alpha":1,"estimates":[1]}`))
	f.Add([]byte(`{"m":4,"alpha":1.25,"estimates":[0.5,8,3,3,3,0.1,9,2],"actuals":[0.625,6.4,3,3.75,2.4,0.125,11.25,1.6]}`))
	f.Add([]byte(`{"m":6,"alpha":3,"estimates":[1e-9,1e9,7,7,7,7,7]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var in task.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return
		}
		// Bound the work per input so the fuzzer explores shapes, not
		// solver runtime.
		if in.N() == 0 || in.N() > 64 || in.M > 16 {
			return
		}
		if err := in.Validate(true); err != nil {
			return
		}
		lo, hi := in.MaxActual(), in.TotalActual()
		for _, name := range fuzzAlgorithms {
			a, err := New(name)
			if err != nil {
				t.Fatalf("registry rejected its own name %q: %v", name, err)
			}
			res, err := Execute(&in, a)
			if err != nil {
				// The only legitimate failure is a group count that does
				// not fit this instance's machine count.
				if strings.Contains(name, "group") {
					continue
				}
				t.Fatalf("%s failed on valid instance: %v\ninput: %s", name, err, data)
			}
			if res.Schedule == nil || res.Placement == nil {
				t.Fatalf("%s returned nil schedule or placement", name)
			}
			if err := res.Schedule.Verify(&in, res.Placement); err != nil {
				t.Fatalf("%s produced unverifiable schedule: %v\ninput: %s", name, err, data)
			}
			mk := res.Makespan
			if math.IsNaN(mk) || math.IsInf(mk, 0) {
				t.Fatalf("%s makespan %v not finite\ninput: %s", name, mk, data)
			}
			if mk < lo-1e-9*math.Max(1, lo) || mk > hi+1e-9*math.Max(1, hi) {
				t.Fatalf("%s makespan %v outside [%v, %v]\ninput: %s", name, mk, lo, hi, data)
			}
		}
	})
}
