// Package tick fixes simulated time to int64 nanoticks so the
// simulator's event queue compares integers instead of floats.
//
// One tick is 1e-9 simulated seconds. The data-oriented simulator core
// (sim.FlatRunner) converts every duration to ticks once at the edge,
// runs the whole event loop on int64 arithmetic — total ordering, no
// NaN, no negative zero, associative addition — and converts back to
// float64 seconds only when materializing the final Schedule. Integer
// time is what makes the sharded runner's merge argument exact: a
// machine's completion time is the int64 sum of its task ticks, which
// is the same value no matter how per-shard event loops interleave, so
// sharded and sequential runs agree bit-for-bit rather than within an
// epsilon.
//
// FromSeconds is the only sanctioned float→tick path in the repo;
// uncertlint's tickconv rule flags any direct conversion of a
// floating-point value to Tick outside this package. Rounding and
// range policy live here, in exactly one place:
//
//   - rounding is to the nearest tick, half away from zero
//     (math.Round), which is monotone: a ≤ b ⇒ FromSeconds(a) ≤
//     FromSeconds(b), so tick comparisons never contradict the float
//     order they quantized — they can only turn a strict < into a tie;
//   - NaN and ±Inf are rejected (ErrNotFinite);
//   - magnitudes at or beyond 2^63 ticks (≈292 simulated years) are
//     rejected (ErrOverflow) instead of silently wrapping;
//   - quantization error is at most half a tick (0.5e-9 s), inside the
//     1e-9 relative tolerance sched.Schedule.Verify already allows.
package tick

import (
	"errors"
	"fmt"
	"math"
)

// Tick is a simulated-time instant or duration in nanoticks
// (1 tick = 1e-9 simulated seconds). Plain int64 comparison operators
// order Ticks; plain + adds them (use SatAdd when the operands are not
// known to be far from the range limit).
type Tick int64

// PerSecond is the number of ticks in one simulated second.
const PerSecond Tick = 1_000_000_000

// Max is the largest representable tick value. SatAdd clamps here, so
// Max acts as "simulated time overflow" — far beyond any meaningful
// schedule, but totally ordered and NaN-free.
const Max Tick = math.MaxInt64

// Conversion errors. FromSeconds wraps them with the offending value;
// match with errors.Is.
var (
	ErrNotFinite = errors.New("tick: time is NaN or infinite")
	ErrOverflow  = errors.New("tick: time overflows the int64 nanotick range")
)

// two63 is 2^63 as a float64 (exactly representable). A rounded
// nanotick magnitude at or beyond it does not fit in int64; the
// comparison must happen in float64, before the conversion, because a
// float→int conversion that overflows has implementation-defined
// results in Go.
const two63 = 9223372036854775808.0

// FromSeconds converts a float64 time in seconds to ticks, rounding to
// the nearest tick half away from zero. It rejects NaN, ±Inf, and any
// value whose rounded magnitude reaches 2^63 ticks. The conversion is
// monotone non-decreasing, and exact whenever s·1e9 is an integer that
// float64 represents exactly — whole-second values up to ~9×10⁶ s
// included, which is what the cross-engine byte-identity tests rely on.
func FromSeconds(s float64) (Tick, error) {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		//lint:ignore hotalloc conversion rejection path: callers abort the run on error
		return 0, fmt.Errorf("%w: %v", ErrNotFinite, s)
	}
	f := math.Round(s * 1e9)
	if f >= two63 || f <= -two63 {
		//lint:ignore hotalloc conversion rejection path: callers abort the run on error
		return 0, fmt.Errorf("%w: %v s", ErrOverflow, s)
	}
	return Tick(f), nil
}

// MustFromSeconds is FromSeconds for values known finite and in range
// (literals, validated instance durations); it panics otherwise.
func MustFromSeconds(s float64) Tick {
	t, err := FromSeconds(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Seconds converts back to float64 seconds. Both steps (int64→float64,
// division by 1e9) are correctly rounded, so Seconds is monotone and
// exact whenever |t| < 2^53.
func (t Tick) Seconds() float64 {
	return float64(t) / 1e9
}

// SatAdd returns a+b clamped at Max instead of wrapping. It requires
// b ≥ 0 (the simulator only ever adds non-negative durations to
// non-negative instants); saturation is deterministic, so a schedule
// that saturates still merges bit-identically across shard layouts.
func SatAdd(a, b Tick) Tick {
	if s := a + b; s >= a {
		return s
	}
	return Max
}
