package tick

import (
	"errors"
	"math"
	"testing"
)

func TestFromSecondsExact(t *testing.T) {
	cases := []struct {
		s    float64
		want Tick
	}{
		{0, 0},
		{1, 1_000_000_000},
		{1.5, 1_500_000_000},
		{5, 5_000_000_000},
		{1e-9, 1},
		{0.5e-9, 1}, // half rounds away from zero
		{0.4e-9, 0}, // below half a tick
		{-1, -1_000_000_000},
		{-0.5e-9, -1},
		{9.2e9, 9_200_000_000_000_000_000}, // near the top of the range
	}
	for _, c := range cases {
		got, err := FromSeconds(c.s)
		if err != nil {
			t.Fatalf("FromSeconds(%v): %v", c.s, err)
		}
		if got != c.want {
			t.Errorf("FromSeconds(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestFromSecondsRejects(t *testing.T) {
	for _, s := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := FromSeconds(s); !errors.Is(err, ErrNotFinite) {
			t.Errorf("FromSeconds(%v) err = %v, want ErrNotFinite", s, err)
		}
	}
	for _, s := range []float64{1e10, -1e10, 9.3e9, math.MaxFloat64, -math.MaxFloat64} {
		if _, err := FromSeconds(s); !errors.Is(err, ErrOverflow) {
			t.Errorf("FromSeconds(%v) err = %v, want ErrOverflow", s, err)
		}
	}
}

func TestMustFromSecondsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromSeconds(NaN) did not panic")
		}
	}()
	MustFromSeconds(math.NaN())
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := Tick(5_000_000_000).Seconds(); got != 5.0 {
		t.Errorf("Seconds(5e9 ticks) = %v, want 5", got)
	}
	if got := PerSecond.Seconds(); got != 1.0 {
		t.Errorf("PerSecond.Seconds() = %v, want 1", got)
	}
	if got := Tick(-1).Seconds(); got != -1e-9 {
		t.Errorf("Seconds(-1 tick) = %v, want -1e-9", got)
	}
}

func TestSatAdd(t *testing.T) {
	if got := SatAdd(3, 4); got != 7 {
		t.Errorf("SatAdd(3,4) = %d", got)
	}
	if got := SatAdd(Max, 1); got != Max {
		t.Errorf("SatAdd(Max,1) = %d, want Max", got)
	}
	if got := SatAdd(Max-5, 10); got != Max {
		t.Errorf("SatAdd(Max-5,10) = %d, want Max", got)
	}
	if got := SatAdd(Max-5, 5); got != Max {
		t.Errorf("SatAdd(Max-5,5) = %d, want Max", got)
	}
}

func TestMonotoneSample(t *testing.T) {
	// A sorted sample across magnitudes must convert to a
	// non-decreasing tick sequence.
	sample := []float64{-9e9, -1, -1e-9, -1e-10, 0, 1e-10, 0.5e-9, 1e-9,
		0.1, 0.3, 1, 1.0000000001, 2, 1e3, 1e6, 9e9}
	prev := Tick(math.MinInt64)
	for _, s := range sample {
		got, err := FromSeconds(s)
		if err != nil {
			t.Fatalf("FromSeconds(%v): %v", s, err)
		}
		if got < prev {
			t.Errorf("FromSeconds(%v) = %d < previous %d: not monotone", s, got, prev)
		}
		prev = got
	}
}

// roundTripBound is the declared round-trip epsilon: half a tick of
// quantization plus a few ulps from the two scalings.
func roundTripBound(s float64) float64 {
	return 0.5e-9 + math.Abs(s)*1e-12
}

// checkOne classifies one float64 through FromSeconds and verifies the
// declared contract for its class. It returns the tick and whether the
// value converted.
func checkOne(t *testing.T, s float64) (Tick, bool) {
	t.Helper()
	tk, err := FromSeconds(s)
	switch {
	case math.IsNaN(s) || math.IsInf(s, 0):
		if !errors.Is(err, ErrNotFinite) {
			t.Fatalf("FromSeconds(%v) err = %v, want ErrNotFinite", s, err)
		}
		return 0, false
	case math.Abs(s) >= 9.3e9:
		// Far past the range limit: must be rejected. (Values between
		// ~9.223e9 and 9.3e9 are near the boundary and may land either
		// side of it after rounding; both outcomes honor the contract.)
		if !errors.Is(err, ErrOverflow) {
			t.Fatalf("FromSeconds(%v) err = %v, want ErrOverflow", s, err)
		}
		return 0, false
	case err != nil:
		if !errors.Is(err, ErrOverflow) {
			t.Fatalf("FromSeconds(%v): unexpected error %v", s, err)
		}
		return 0, false
	}
	back := tk.Seconds()
	if diff := math.Abs(back - s); diff > roundTripBound(s) {
		t.Fatalf("round trip %v -> %d ticks -> %v drifts %v > %v",
			s, tk, back, diff, roundTripBound(s))
	}
	return tk, true
}

// FuzzTimeConv fuzzes the fixed-point conversion contract: NaN/Inf and
// overflow rejected, float64↔tick round trips within the declared
// epsilon, and conversion preserves comparison order (ticks never
// contradict the float order — a strict float < maps to tick ≤, and a
// strict tick < implies the floats were strictly ordered too).
func FuzzTimeConv(f *testing.F) {
	f.Add(0.0, 1e-9)
	f.Add(1.5, 1.5)
	f.Add(0.1, 0.3)
	f.Add(-1.0, 1.0)
	f.Add(9.2e9, 1e10)
	f.Add(1e-18, 2e-18)
	f.Add(math.NaN(), math.Inf(1))
	f.Add(math.MaxFloat64, -math.MaxFloat64)
	f.Fuzz(func(t *testing.T, a, b float64) {
		ta, okA := checkOne(t, a)
		tb, okB := checkOne(t, b)
		if !okA || !okB {
			return
		}
		if a < b && ta > tb {
			t.Fatalf("order broken: %v < %v but %d > %d ticks", a, b, ta, tb)
		}
		if ta < tb && a >= b {
			t.Fatalf("order invented: %d < %d ticks but %v >= %v", ta, tb, a, b)
		}
	})
}
