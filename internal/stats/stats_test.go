package stats

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatalf("empty CI = %v", s.CI95())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P99 != 7 || s.P999 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
	// N==1 contract: no dispersion estimate, so the CI half-width is
	// exactly zero and String renders the ±0 explicitly.
	if s.CI95() != 0 {
		t.Fatalf("single-sample CI = %v, want 0", s.CI95())
	}
	if got := s.String(); !strings.Contains(got, "n=1") || !strings.Contains(got, "±0") {
		t.Fatalf("single-sample String = %q", got)
	}
}

func TestSummarizeRejectsNaNSamples(t *testing.T) {
	// Regression: NaN samples used to be sorted silently (NaN fails
	// every comparison, so sort.Float64s leaves it in an unspecified
	// position) and every quantile came out garbage. They now panic,
	// matching the existing NaN-q contract.
	cases := [][]float64{
		{math.NaN()},
		{1, math.NaN(), 3},
		{1, 2, math.NaN()},
	}
	for _, xs := range cases {
		xs := xs
		t.Run(fmt.Sprintf("%v", xs), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Summarize(%v): expected panic", xs)
				}
			}()
			Summarize(xs)
		})
	}
}

func TestQuantileRejectsNaNSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile with NaN sample: expected panic")
		}
	}()
	Quantile([]float64{1, math.NaN(), 3}, 0.5)
}

func TestStringIncludesP99(t *testing.T) {
	// Regression: Summarize computed P99 but String never printed it.
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if got := s.String(); !strings.Contains(got, "p99=99") {
		t.Fatalf("String missing p99: %q", got)
	}
}

func TestStringEmptySample(t *testing.T) {
	// N==0 contract: a fixed marker, not a row of meaningless zeros.
	if got := (Summary{}).String(); got != "n=0 (empty sample)" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestP999OrderingAndValue(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("quantile ordering violated: p99=%v p999=%v max=%v", s.P99, s.P999, s.Max)
	}
	if math.Abs(s.P999-0.999*9999) > 1e-9 {
		t.Fatalf("p999 = %v, want %v", s.P999, 0.999*9999)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
	}{
		{"empty sample", nil, 0.5},
		{"negative q", []float64{1}, -0.1},
		{"q above one", []float64{1}, 1.1},
		{"NaN q", []float64{1, 2}, math.NaN()},
		{"negative zero minus eps", []float64{1, 2}, math.Nextafter(0, -1)},
		{"one plus eps", []float64{1, 2}, math.Nextafter(1, 2)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v, %v): expected panic", tc.sorted, tc.q)
				}
			}()
			Quantile(tc.sorted, tc.q)
		})
	}
}

func TestQuantileBoundaryValuesAccepted(t *testing.T) {
	// The extreme legal quantiles must not panic and must hit the ends.
	sorted := []float64{2, 4, 8}
	if got := Quantile(sorted, 0); got != 2 {
		t.Fatalf("q=0: %v, want 2", got)
	}
	if got := Quantile(sorted, 1); got != 8 {
		t.Fatalf("q=1: %v, want 8", got)
	}
	if got := Quantile(sorted, math.Copysign(0, -1)); got != 2 {
		t.Fatalf("q=-0: %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.P999 && s.P999 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	var big []float64
	for i := 0; i < 64; i++ {
		big = append(big, []float64{1, 2, 3, 4}...)
	}
	if Summarize(big).CI95() >= small.CI95() {
		t.Fatal("CI did not shrink with sample size")
	}
}
