package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatalf("empty CI = %v", s.CI95())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P99 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	var big []float64
	for i := 0; i < 64; i++ {
		big = append(big, []float64{1, 2, 3, 4}...)
	}
	if Summarize(big).CI95() >= small.CI95() {
		t.Fatal("CI did not shrink with sample size")
	}
}
