// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, standard deviation, quantiles,
// min/max, and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean is the arithmetic mean.
	Mean float64
	// Std is the sample standard deviation (n−1 denominator).
	Std float64
	// Min and Max are the sample extremes.
	Min, Max float64
	// P50, P90, P99, P999 are empirical quantiles (linear
	// interpolation). P999 exists for response-time distributions (the
	// open-system streaming metrics), where the paper-adjacent queueing
	// literature reports the 99.9th percentile tail.
	P50, P90, P99, P999 float64
}

// Summarize computes a Summary of xs. It returns the zero Summary for
// an empty sample and panics if any sample value is NaN: a NaN would
// sort into an unspecified position and silently corrupt every
// quantile, so it is rejected up front — the same contract Quantile
// applies to a NaN q.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	sum := 0.0
	for i, x := range xs {
		if math.IsNaN(x) {
			panic(fmt.Sprintf("stats: NaN sample value at index %d", i))
		}
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	// The loop above already vetted every sample, so the sorted copy
	// can skip Quantile's NaN re-scan.
	s.P50 = quantileSorted(sorted, 0.50)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P99 = quantileSorted(sorted, 0.99)
	s.P999 = quantileSorted(sorted, 0.999)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics if sorted is empty, q
// is NaN or outside [0, 1], or any sample value is NaN — NaN fails
// every ordered comparison, so sorting leaves it in an unspecified
// position and interpolation would return garbage.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	for i, x := range sorted {
		if math.IsNaN(x) {
			panic(fmt.Sprintf("stats: NaN sample value at index %d", i))
		}
	}
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile without the NaN sample scan, for callers
// (Summarize) that already vetted the data.
func quantileSorted(sorted []float64, q float64) float64 {
	// NaN fails every ordered comparison, so the range check below
	// would silently accept it and index with garbage; reject it first.
	if math.IsNaN(q) {
		panic("stats: quantile is NaN")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of a 95% normal-approximation
// confidence interval for the mean. A sample of fewer than two points
// has no dispersion estimate, so N == 0 and N == 1 both return
// exactly 0 — by contract, not by accident of the Std field.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders the summary compactly. The empty sample renders as a
// fixed marker string rather than a row of meaningless zeros; a
// single-point sample renders normally with ±0 and std=0.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0 (empty sample)"
	}
	return fmt.Sprintf("n=%d mean=%.4g±%.2g std=%.3g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.CI95(), s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// GeoMean returns the geometric mean of positive xs (0 for an empty
// sample). Non-positive entries cause a panic: competitive ratios are
// always positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs)))
}
