package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func sampleInstance(seed uint64) *task.Instance {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 40, M: 6, Alpha: 1.5, Seed: seed})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed+1))
	return in
}

func TestRunAllStrategies(t *testing.T) {
	in := sampleInstance(1)
	cfgs := []Config{
		{Strategy: NoReplication},
		{Strategy: ReplicateEverywhere},
		{Strategy: Groups, Groups: 2},
		{Strategy: Groups, Groups: 3, UseLPTWithinGroups: true},
		{Strategy: BaselineLS},
		{Strategy: Oracle},
	}
	for _, cfg := range cfgs {
		out, err := Run(in, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Strategy, err)
		}
		if out.Makespan <= 0 {
			t.Errorf("%v: non-positive makespan", cfg.Strategy)
		}
		if out.RatioLower > out.RatioUpper+1e-12 {
			t.Errorf("%v: ratio bracket inverted: [%v, %v]",
				cfg.Strategy, out.RatioLower, out.RatioUpper)
		}
		if out.RatioLower < 1-1e-9 {
			t.Errorf("%v: ratio lower %v below 1", cfg.Strategy, out.RatioLower)
		}
	}
}

func TestReplicasPerTaskByStrategy(t *testing.T) {
	in := sampleInstance(2)
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Strategy: NoReplication}, 1},
		{Config{Strategy: ReplicateEverywhere}, 6},
		{Config{Strategy: Groups, Groups: 2}, 3},
		{Config{Strategy: Groups, Groups: 6}, 1},
	}
	for _, c := range cases {
		out, err := Run(in, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.ReplicasPerTask != c.want {
			t.Errorf("%v: replicas %d, want %d", c.cfg.Strategy, out.ReplicasPerTask, c.want)
		}
	}
}

func TestGuaranteeValues(t *testing.T) {
	m, alpha := 6, 1.5
	if g := (Config{Strategy: NoReplication}).Guarantee(m, alpha); g <= 1 {
		t.Errorf("NoReplication guarantee = %v", g)
	}
	if g := (Config{Strategy: Oracle}).Guarantee(m, alpha); !math.IsNaN(g) {
		t.Errorf("Oracle guarantee = %v, want NaN", g)
	}
	// Groups guarantee must interpolate between the two extremes.
	full := (Config{Strategy: ReplicateEverywhere}).Guarantee(m, alpha)
	none := (Config{Strategy: NoReplication}).Guarantee(m, alpha)
	mid := (Config{Strategy: Groups, Groups: 2}).Guarantee(m, alpha)
	if mid < full-1e-9 || mid > none+1.0 {
		t.Errorf("Groups guarantee %v outside plausible range [%v, %v+1]", mid, full, none)
	}
}

func TestBadConfigs(t *testing.T) {
	in := sampleInstance(3)
	if _, err := Run(in, Config{Strategy: Groups}); err == nil {
		t.Error("Groups without count accepted")
	}
	if _, err := Run(in, Config{Strategy: Groups, Groups: 4}); err == nil {
		t.Error("non-divisor group count accepted")
	}
	if _, err := Run(in, Config{Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestPlanThenExecuteAdversarially(t *testing.T) {
	// The intended adversarial flow: plan, let the adversary see the
	// placement, then execute.
	in, err := adversary.Theorem1Instance(3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(in, Config{Strategy: NoReplication})
	if err != nil {
		t.Fatal(err)
	}
	if err := adversary.Apply(in, plan.Placement); err != nil {
		t.Fatal(err)
	}
	out, err := plan.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.RatioLower <= 1.3 {
		t.Fatalf("adversarial ratio %v too small", out.RatioLower)
	}
	if out.RatioUpper > out.Guarantee+1e-9 {
		t.Fatalf("ratio %v exceeded guarantee %v", out.RatioUpper, out.Guarantee)
	}
}

func TestRatioNeverExceedsGuaranteeProperty(t *testing.T) {
	f := func(seed uint64, stratRaw uint8) bool {
		in := workload.MustNew(workload.Spec{Name: "bimodal", N: 14, M: 2, Alpha: 1.4, Seed: seed})
		uncertainty.Extremes{}.Perturb(in, nil, rng.New(seed^7))
		cfgs := []Config{
			{Strategy: NoReplication},
			{Strategy: ReplicateEverywhere},
			{Strategy: Groups, Groups: 2},
			{Strategy: BaselineLS},
		}
		cfg := cfgs[int(stratRaw)%len(cfgs)]
		cfg.ExactLimit = 14
		out, err := Run(in, cfg)
		if err != nil {
			return false
		}
		if !out.Optimum.Exact {
			return true // can't certify without exact optimum
		}
		return out.RatioUpper <= out.Guarantee+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareMatchesIndividualRuns(t *testing.T) {
	in := sampleInstance(7)
	cfgs := []Config{
		{Strategy: NoReplication},
		{Strategy: Groups, Groups: 3},
		{Strategy: ReplicateEverywhere},
	}
	outs, err := Compare(in, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(cfgs) {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i, cfg := range cfgs {
		want, err := Run(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i].Makespan != want.Makespan {
			t.Errorf("config %d: Compare %v != Run %v", i, outs[i].Makespan, want.Makespan)
		}
	}
}

func TestCompareSurfacesErrors(t *testing.T) {
	in := sampleInstance(8)
	if _, err := Compare(in, []Config{{Strategy: Groups, Groups: 5}}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		NoReplication:       "no-replication",
		ReplicateEverywhere: "replicate-everywhere",
		Groups:              "groups",
		BaselineLS:          "baseline-ls",
		Oracle:              "oracle",
		Strategy(42):        "Strategy(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestRunMemoryAware(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "spmv", N: 30, M: 4, Alpha: 1.5, Seed: 9})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(10))
	for _, replicate := range []bool{false, true} {
		out, err := RunMemoryAware(in, MemoryAwareConfig{Delta: 1, Replicate: replicate})
		if err != nil {
			t.Fatal(err)
		}
		if out.Result.Makespan <= 0 || out.Result.MemMax <= 0 {
			t.Fatalf("replicate=%v: degenerate outcome %+v", replicate, out.Result)
		}
		if out.MakespanRatioBound <= 1 || out.MemoryRatioBound <= 1 {
			t.Fatalf("replicate=%v: degenerate bounds", replicate)
		}
		// Measured values must respect bound × optimum upper bracket.
		if out.Result.Makespan > out.MakespanRatioBound*out.OptMakespan.Upper+1e-9 {
			t.Fatalf("replicate=%v: makespan %v above bound", replicate, out.Result.Makespan)
		}
		if out.Result.MemMax > out.MemoryRatioBound*out.OptMemory.Upper+1e-9 {
			t.Fatalf("replicate=%v: memory %v above bound", replicate, out.Result.MemMax)
		}
	}
}

func TestRunMemoryAwareExactRho(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 12, M: 3, Alpha: 1.3, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(6))
	out, err := RunMemoryAware(in, MemoryAwareConfig{Delta: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	// With ρ=1 and Δ=2 the memory ratio bound is exactly 1.5.
	if math.Abs(out.MemoryRatioBound-1.5) > 1e-12 {
		t.Fatalf("memory bound = %v, want 1.5", out.MemoryRatioBound)
	}
	if _, err := RunMemoryAware(in, MemoryAwareConfig{Delta: 0}); err == nil {
		t.Fatal("delta=0 accepted")
	}
}
