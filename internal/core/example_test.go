package core_test

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// ExampleRun schedules a workload under group replication and prints
// the scored outcome.
func ExampleRun() {
	in := workload.MustNew(workload.Spec{
		Name: "uniform", N: 60, M: 6, Alpha: 1.5, Seed: 1,
	})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))

	out, err := core.Run(in, core.Config{Strategy: core.Groups, Groups: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("algorithm: %s\n", out.Algorithm)
	fmt.Printf("replicas per task: %d\n", out.ReplicasPerTask)
	fmt.Printf("ratio below guarantee: %v\n", out.RatioUpper <= out.Guarantee)
	// Output:
	// algorithm: LS-Group(k=3)
	// replicas per task: 2
	// ratio below guarantee: true
}

// ExampleNewPlan shows the two-phase API used for adversarial
// evaluation: the placement is fixed before the adversary rewrites
// the actual processing times.
func ExampleNewPlan() {
	in, _ := adversary.Theorem1Instance(3, 6, 2)
	plan, _ := core.NewPlan(in, core.Config{Strategy: core.NoReplication})

	// The adversary inspects the placement, then perturbs.
	_ = adversary.Apply(in, plan.Placement)
	out, _ := plan.Execute(in)

	fmt.Printf("tasks inflated: %d\n", adversary.InflatedCount(in))
	fmt.Printf("makespan: %.3g\n", out.Makespan)
	// Output:
	// tasks inflated: 3
	// makespan: 6
}

// ExampleConfig_Guarantee evaluates the paper's bounds without
// running anything.
func ExampleConfig_Guarantee() {
	m, alpha := 210, 2.0
	fmt.Printf("no replication: %.3f\n",
		core.Config{Strategy: core.NoReplication}.Guarantee(m, alpha))
	fmt.Printf("everywhere:     %.3f\n",
		core.Config{Strategy: core.ReplicateEverywhere}.Guarantee(m, alpha))
	// Output:
	// no replication: 7.742
	// everywhere:     1.995
}
