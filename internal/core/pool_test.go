package core

import (
	"math"
	"reflect"
	"testing"
)

// poolConfigs spans every strategy so a reused Runner crosses
// algorithm boundaries — the placements and schedules it recycles
// differ in shape and group structure between consecutive calls.
func poolConfigs() []Config {
	return []Config{
		{Strategy: NoReplication},
		{Strategy: Groups, Groups: 3},
		{Strategy: ReplicateEverywhere},
		{Strategy: Groups, Groups: 2, UseLPTWithinGroups: true},
		{Strategy: Oracle},
	}
}

// outcomesEqual compares every field of two Outcomes, treating NaN
// guarantees (Oracle) as equal.
func outcomesEqual(t *testing.T, got, want *Outcome) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Errorf("Algorithm = %q, want %q", got.Algorithm, want.Algorithm)
	}
	if !reflect.DeepEqual(got.Placement.Sets, want.Placement.Sets) {
		t.Error("Placement.Sets diverge")
	}
	if !reflect.DeepEqual(got.Schedule.Assignments, want.Schedule.Assignments) {
		t.Error("Schedule.Assignments diverge")
	}
	if got.Makespan != want.Makespan {
		t.Errorf("Makespan = %v, want %v", got.Makespan, want.Makespan)
	}
	if got.Optimum != want.Optimum {
		t.Errorf("Optimum = %+v, want %+v", got.Optimum, want.Optimum)
	}
	if got.RatioLower != want.RatioLower || got.RatioUpper != want.RatioUpper {
		t.Errorf("ratios = (%v, %v), want (%v, %v)",
			got.RatioLower, got.RatioUpper, want.RatioLower, want.RatioUpper)
	}
	gNaN, wNaN := math.IsNaN(got.Guarantee), math.IsNaN(want.Guarantee)
	if gNaN != wNaN || (!gNaN && got.Guarantee != want.Guarantee) {
		t.Errorf("Guarantee = %v, want %v", got.Guarantee, want.Guarantee)
	}
	if got.ReplicasPerTask != want.ReplicasPerTask {
		t.Errorf("ReplicasPerTask = %d, want %d", got.ReplicasPerTask, want.ReplicasPerTask)
	}
}

// TestRunnerMatchesPackageRun is the core-level pooling differential
// test: one Runner reused across strategies and seeds must produce
// outcomes identical in every field to the allocate-fresh package
// entry point. The experiment engine's byte-identical-report golden
// tests build on exactly this equivalence.
func TestRunnerMatchesPackageRun(t *testing.T) {
	var reused Runner
	for _, seed := range []uint64{3, 11, 42} {
		for _, cfg := range poolConfigs() {
			in := sampleInstance(seed)
			got, err := reused.Run(in, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %+v: reused: %v", seed, cfg, err)
			}
			want, err := Run(sampleInstance(seed), cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %+v: fresh: %v", seed, cfg, err)
			}
			outcomesEqual(t, got, want)
		}
	}
}

// TestRunnerExecuteMatchesPlanExecute repeats the check for the
// perturb-then-execute path (plan once, adversary moves, execute):
// Runner.Execute against Plan.Execute.
func TestRunnerExecuteMatchesPlanExecute(t *testing.T) {
	var reused Runner
	for _, seed := range []uint64{5, 19} {
		for _, cfg := range poolConfigs() {
			in := sampleInstance(seed)
			plan, err := NewPlan(in, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %+v: plan: %v", seed, cfg, err)
			}
			got, err := reused.Execute(plan, in)
			if err != nil {
				t.Fatalf("seed %d cfg %+v: reused execute: %v", seed, cfg, err)
			}
			want, err := plan.Execute(in)
			if err != nil {
				t.Fatalf("seed %d cfg %+v: fresh execute: %v", seed, cfg, err)
			}
			outcomesEqual(t, got, want)
		}
	}
}
