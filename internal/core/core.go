// Package core is the public face of the library: it ties the paper's
// two-phase model together into a small API that plans a data
// placement (phase 1, estimates only), executes the online schedule
// (phase 2, semi-clairvoyant), and scores the outcome against the
// offline optimum and the paper's analytic guarantees.
//
// Quick use:
//
//	in, _ := workload.New(workload.Spec{Name: "uniform", N: 100, M: 8, Alpha: 1.5, Seed: 1})
//	uncertainty.Uniform{}.Perturb(in, nil, rng.New(2))
//	out, err := core.Run(in, core.Config{Strategy: core.Groups, Groups: 4})
//	fmt.Println(out.Makespan, out.RatioUpper, out.Guarantee)
//
// The replication-bound strategies map to the paper as follows:
//
//	NoReplication       →  LPT-No Choice        (§4, Theorem 2)
//	ReplicateEverywhere →  LPT-No Restriction   (§5, Theorem 3)
//	Groups              →  LS-Group             (§6, Theorem 4)
//
// The memory-aware algorithms SABO_Δ/ABO_Δ are exposed through
// RunMemoryAware.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/algo"
	"repro/internal/bounds"
	"repro/internal/memaware"
	"repro/internal/opt"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// Strategy selects a replication strategy of the replication-bound
// model.
type Strategy int

// The three strategies of the paper, plus baselines.
const (
	// NoReplication places each task's data on exactly one machine
	// (paper's strategy 1, LPT-No Choice).
	NoReplication Strategy = iota
	// ReplicateEverywhere replicates every task on every machine
	// (strategy 2, LPT-No Restriction).
	ReplicateEverywhere
	// Groups partitions machines into Config.Groups groups and
	// replicates within the assigned group (strategy 3, LS-Group).
	Groups
	// BaselineLS is Graham's List Scheduling over fully replicated
	// data, the paper's 2−1/m baseline.
	BaselineLS
	// Oracle is clairvoyant LPT on actual times; a reference point, not
	// an implementable policy.
	Oracle
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case NoReplication:
		return "no-replication"
	case ReplicateEverywhere:
		return "replicate-everywhere"
	case Groups:
		return "groups"
	case BaselineLS:
		return "baseline-ls"
	case Oracle:
		return "oracle"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config selects and parameterizes a strategy.
type Config struct {
	// Strategy is the replication strategy.
	Strategy Strategy
	// Groups is the number of machine groups k for the Groups
	// strategy; it must divide the instance's machine count.
	Groups int
	// UseLPTWithinGroups switches the Groups strategy to the LPT-based
	// variant the paper discusses (sorted tasks in both phases).
	UseLPTWithinGroups bool
	// ExactLimit caps the instance size for which the outcome's
	// optimum is computed exactly; 0 selects the default (20 tasks).
	ExactLimit int
	// Engine selects the phase-2 simulator implementation: the
	// float64 event-heap reference (sim.EngineEvent, default) or the
	// data-oriented fixed-point core (sim.EngineFlat). Dispatch
	// decisions agree; flat times carry ≤ 0.5e-9 s quantization.
	Engine sim.Engine
	// SimWorkers is the shard worker count under sim.EngineFlat;
	// 0 or 1 is sequential, < 0 selects GOMAXPROCS.
	SimWorkers int
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("core: bad config")

// algorithm resolves the configured algorithm.
func (c Config) algorithm() (algo.Algorithm, error) {
	switch c.Strategy {
	case NoReplication:
		return algo.LPTNoChoice(), nil
	case ReplicateEverywhere:
		return algo.LPTNoRestriction(), nil
	case Groups:
		if c.Groups < 1 {
			return nil, fmt.Errorf("%w: Groups strategy needs Groups >= 1, got %d",
				ErrBadConfig, c.Groups)
		}
		if c.UseLPTWithinGroups {
			return algo.LPTGroup(c.Groups), nil
		}
		return algo.LSGroup(c.Groups), nil
	case BaselineLS:
		return algo.LSNoRestriction(), nil
	case Oracle:
		return algo.OracleLPT(), nil
	default:
		return nil, fmt.Errorf("%w: unknown strategy %v", ErrBadConfig, c.Strategy)
	}
}

// Guarantee returns the paper's competitive-ratio guarantee for the
// configured strategy on an (m, α) system, or NaN when no finite
// guarantee is stated (Oracle).
func (c Config) Guarantee(m int, alpha float64) float64 {
	switch c.Strategy {
	case NoReplication:
		return bounds.LPTNoChoice(m, alpha)
	case ReplicateEverywhere:
		return bounds.LPTNoRestriction(m, alpha)
	case Groups:
		return bounds.LSGroup(m, c.Groups, alpha)
	case BaselineLS:
		return bounds.GrahamLS(m)
	default:
		return math.NaN()
	}
}

// Plan is a phase-1 decision bound to the algorithm that made it.
type Plan struct {
	// Placement is the replica-set assignment.
	Placement *placement.Placement
	// Algorithm names the planning algorithm.
	Algorithm string

	algo algo.Algorithm
	cfg  Config
}

// Outcome is a fully executed and scored run.
type Outcome struct {
	// Algorithm names the executed algorithm.
	Algorithm string
	// Placement is the phase-1 decision.
	Placement *placement.Placement
	// Schedule is the executed phase-2 schedule.
	Schedule *sched.Schedule
	// Makespan is the achieved makespan under actual times.
	Makespan float64
	// Optimum brackets the offline optimal makespan C*_max.
	Optimum opt.Result
	// RatioLower and RatioUpper bracket the empirical competitive
	// ratio Makespan/C*: RatioLower uses the optimum's upper bound,
	// RatioUpper its lower bound.
	RatioLower, RatioUpper float64
	// Guarantee is the analytic bound for the configuration (NaN for
	// Oracle).
	Guarantee float64
	// ReplicasPerTask is the maximum |M_j| of the placement.
	ReplicasPerTask int
}

// NewPlan runs phase 1 only: the placement decision from estimates.
func NewPlan(in *task.Instance, cfg Config) (*Plan, error) {
	a, err := cfg.algorithm()
	if err != nil {
		return nil, err
	}
	p, err := a.Place(in)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(in); err != nil {
		return nil, err
	}
	return &Plan{Placement: p, Algorithm: a.Name(), algo: a, cfg: cfg}, nil
}

// Execute runs phase 2 on a previously planned placement and scores
// the outcome. The instance's actual times may have been perturbed
// between Plan_ and Execute — that is the intended use for
// adversarial experiments.
func (pl *Plan) Execute(in *task.Instance) (*Outcome, error) {
	var r Runner // fresh state: the returned Outcome is caller-owned
	return r.Execute(pl, in)
}

// Run plans and executes in one call. The returned Outcome is freshly
// allocated and owned by the caller; trial loops that score thousands
// of runs should reuse a Runner instead.
func Run(in *task.Instance, cfg Config) (*Outcome, error) {
	var r Runner // fresh state: the returned Outcome is caller-owned
	return r.Run(in, cfg)
}

// Runner is reusable two-phase pipeline state: the phase-1 placement,
// phase-2 dispatcher and simulator buffers, the scoring scratch, and
// the Outcome itself are recycled between calls, so a Runner executing
// same-shaped trials performs near-zero steady-state heap allocations.
// The experiment harness keeps a pool of Runners and routes every
// trial through one.
//
// Ownership contract: the Outcome returned by Run or Execute — its
// Schedule and Placement included — is owned by the Runner and valid
// only until the Runner's next call. Extract scalar results (Makespan,
// ratios) or copy retained structures before reusing the Runner. A
// Runner is not safe for concurrent use; pool Runners to share across
// goroutines. Results are identical to the package-level Run.
type Runner struct {
	scratch algo.Scratch
	actuals []float64
	out     Outcome
	openOut OpenOutcome
}

// Run plans and executes in one call, reusing the Runner's buffers.
func (r *Runner) Run(in *task.Instance, cfg Config) (*Outcome, error) {
	a, err := cfg.algorithm()
	if err != nil {
		return nil, err
	}
	r.scratch.Engine, r.scratch.SimWorkers = cfg.Engine, cfg.SimWorkers
	res, err := r.scratch.Execute(in, a)
	if err != nil {
		return nil, err
	}
	return r.score(in, cfg, res)
}

// Execute runs phase 2 of a previously planned placement, reusing the
// Runner's buffers; the pooled sibling of Plan.Execute.
func (r *Runner) Execute(pl *Plan, in *task.Instance) (*Outcome, error) {
	r.scratch.Engine, r.scratch.SimWorkers = pl.cfg.Engine, pl.cfg.SimWorkers
	res, err := r.scratch.Execute(in, pl.algo)
	if err != nil {
		return nil, err
	}
	return r.score(in, pl.cfg, res)
}

// score mirrors the package-level score with recycled buffers.
func (r *Runner) score(in *task.Instance, cfg Config, res *algo.Result) (*Outcome, error) {
	r.actuals = in.AppendActuals(r.actuals[:0])
	optimum := opt.Estimate(r.actuals, in.M, cfg.ExactLimit)
	r.out = Outcome{
		Algorithm:       res.Algorithm,
		Placement:       res.Placement,
		Schedule:        res.Schedule,
		Makespan:        res.Makespan,
		Optimum:         optimum,
		Guarantee:       cfg.Guarantee(in.M, in.Alpha),
		ReplicasPerTask: res.Placement.MaxReplication(),
	}
	if optimum.Upper > 0 {
		r.out.RatioLower = res.Makespan / optimum.Upper
	}
	if optimum.Lower > 0 {
		r.out.RatioUpper = res.Makespan / optimum.Lower
	}
	return &r.out, nil
}

// OpenConfig parameterizes RunOpenSystem: a strategy configuration
// plus the open-system serving knobs of sim.OpenOptions.
type OpenConfig struct {
	Config
	// Policy selects the replica cancellation policy.
	Policy sim.CancelPolicy
	// CancelCost is the machine-time penalty per cancelled running
	// replica (CancelOnCompletion only).
	CancelCost float64
	// Duration, when non-nil, overrides executed replica durations —
	// the hook for machine-dependent straggler models. Same contract as
	// sim.OpenOptions.Duration.
	Duration func(taskID, machine int) float64
}

// OpenOutcome is an executed open-system run. Unlike Outcome it is not
// scored against the offline makespan optimum: the open-system metric
// is the response-time distribution, which has no single-scalar
// analytic guarantee in the paper's framework.
type OpenOutcome struct {
	// Algorithm names the executed algorithm.
	Algorithm string
	// Placement is the phase-1 decision.
	Placement *placement.Placement
	// Result carries responses, the winning-replica schedule, and the
	// cancellation accounting.
	Result *sim.OpenResult
}

// RunOpenSystem plans a placement with the configured strategy and
// serves the arrival stream through the open-system simulator
// (cfg.Engine selects the event-heap reference or the flat
// data-oriented engine). The returned OpenOutcome is freshly allocated
// and caller-owned; trial loops should reuse a Runner.
func RunOpenSystem(in *task.Instance, arrive []float64, cfg OpenConfig) (*OpenOutcome, error) {
	var r Runner // fresh state: the returned Outcome is caller-owned
	return r.RunOpenSystem(in, arrive, cfg)
}

// RunOpenSystem is the pooled form of the package-level RunOpenSystem;
// the returned OpenOutcome is owned by the Runner and valid only until
// its next call.
func (r *Runner) RunOpenSystem(in *task.Instance, arrive []float64, cfg OpenConfig) (*OpenOutcome, error) {
	a, err := cfg.algorithm()
	if err != nil {
		return nil, err
	}
	r.scratch.Engine, r.scratch.SimWorkers = cfg.Engine, cfg.SimWorkers
	res, err := r.scratch.ExecuteOpen(in, a, arrive, sim.OpenOptions{
		Policy:     cfg.Policy,
		CancelCost: cfg.CancelCost,
		Duration:   cfg.Duration,
	})
	if err != nil {
		return nil, err
	}
	r.openOut = OpenOutcome{
		Algorithm: res.Algorithm,
		Placement: res.Placement,
		Result:    res.Open,
	}
	return &r.openOut, nil
}

// Compare runs several configurations on the same instance and
// returns their outcomes in input order. The instance is only read.
// It is the one-call way to produce the strategy-comparison tables
// shown in the examples.
func Compare(in *task.Instance, cfgs []Config) ([]*Outcome, error) {
	outs := make([]*Outcome, len(cfgs))
	for i, cfg := range cfgs {
		out, err := Run(in, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: config %d (%v): %w", i, cfg.Strategy, err)
		}
		outs[i] = out
	}
	return outs, nil
}

// MemoryAwareConfig parameterizes RunMemoryAware.
type MemoryAwareConfig struct {
	// Delta is the Δ threshold (must be positive).
	Delta float64
	// Replicate selects ABO_Δ (replicating time-intensive tasks);
	// false selects the static SABO_Δ.
	Replicate bool
	// Exact uses exact single-objective reference schedules (ρ = 1)
	// instead of LPT; only sensible for small instances.
	Exact bool
}

// MemoryAwareOutcome is the scored result of a bi-objective run.
type MemoryAwareOutcome struct {
	// Result is the raw algorithm output.
	Result *memaware.Result
	// MakespanBound and MemoryBound are the analytic guarantees
	// (absolute values: ratio × optimal estimate's lower bound).
	MakespanRatioBound, MemoryRatioBound float64
	// OptMakespan and OptMemory bracket the single-objective optima.
	OptMakespan, OptMemory opt.Result
}

// RunMemoryAware executes SABO_Δ or ABO_Δ and scores it against both
// single-objective optima and the paper's Table 2 guarantees.
func RunMemoryAware(in *task.Instance, cfg MemoryAwareConfig) (*MemoryAwareOutcome, error) {
	mc := memaware.Config{Delta: cfg.Delta}
	rho := bounds.LPTOffline(in.M)
	if cfg.Exact {
		mc.Pi1, mc.Pi2 = memaware.ExactMapping, memaware.ExactMapping
		rho = 1
	}
	var res *memaware.Result
	var err error
	if cfg.Replicate {
		res, err = memaware.ABO(in, mc)
	} else {
		res, err = memaware.SABO(in, mc)
	}
	if err != nil {
		return nil, err
	}
	// Makespan and memory optima are independent; batch the solver
	// calls so they run concurrently within the trial.
	optima := opt.EstimateBatch([]opt.Job{
		{Times: in.Actuals(), M: in.M},
		{Times: in.Sizes(), M: in.M},
	}, 2)
	out := &MemoryAwareOutcome{
		Result:      res,
		OptMakespan: optima[0],
		OptMemory:   optima[1],
	}
	if cfg.Replicate {
		out.MakespanRatioBound = bounds.ABOMakespan(in.M, in.Alpha, cfg.Delta, rho)
		out.MemoryRatioBound = bounds.ABOMemory(in.M, cfg.Delta, rho)
	} else {
		out.MakespanRatioBound = bounds.SABOMakespan(in.Alpha, cfg.Delta, rho)
		out.MemoryRatioBound = bounds.SABOMemory(cfg.Delta, rho)
	}
	return out, nil
}
