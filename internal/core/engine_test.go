package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// TestFlatEngineMatchesEventEngine runs every strategy through the
// full pipeline on both simulator engines: dispatch decisions must be
// identical, times within the accumulated nanotick quantization, and
// the flat engine must agree with itself exactly at every worker
// count.
func TestFlatEngineMatchesEventEngine(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "zipf", N: 80, M: 12, Alpha: 1.8, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(55))
	cfgs := []Config{
		{Strategy: NoReplication},
		{Strategy: ReplicateEverywhere},
		{Strategy: Groups, Groups: 4},
		{Strategy: Groups, Groups: 4, UseLPTWithinGroups: true},
		{Strategy: BaselineLS},
	}
	eps := 1e-9 * float64(in.N()+1)
	for _, cfg := range cfgs {
		want, err := Run(in, cfg)
		if err != nil {
			t.Fatalf("%v: event engine: %v", cfg.Strategy, err)
		}
		flatCfg := cfg
		flatCfg.Engine = sim.EngineFlat
		got, err := Run(in, flatCfg)
		if err != nil {
			t.Fatalf("%v: flat engine: %v", cfg.Strategy, err)
		}
		for j, ga := range got.Schedule.Assignments {
			wa := want.Schedule.Assignments[j]
			if ga.Machine != wa.Machine {
				t.Fatalf("%v: task %d machine %d vs %d across engines",
					cfg.Strategy, j, ga.Machine, wa.Machine)
			}
			if math.Abs(ga.Start-wa.Start) > eps || math.Abs(ga.End-wa.End) > eps {
				t.Fatalf("%v: task %d times drift beyond %v across engines", cfg.Strategy, j, eps)
			}
		}
		if math.Abs(got.Makespan-want.Makespan) > eps {
			t.Fatalf("%v: makespan %v vs %v", cfg.Strategy, got.Makespan, want.Makespan)
		}
		// Worker count must be invisible: byte-identical flat outcomes.
		for _, workers := range []int{2, 8, -1} {
			wcfg := flatCfg
			wcfg.SimWorkers = workers
			wout, err := Run(in, wcfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", cfg.Strategy, workers, err)
			}
			if !reflect.DeepEqual(wout.Schedule.Assignments, got.Schedule.Assignments) {
				t.Fatalf("%v: SimWorkers=%d changes the flat schedule", cfg.Strategy, workers)
			}
			if wout.Makespan != got.Makespan {
				t.Fatalf("%v: SimWorkers=%d changes makespan", cfg.Strategy, workers)
			}
		}
	}
}
