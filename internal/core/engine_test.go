package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// TestOpenSystemEngines runs the open-system pipeline on both
// simulator engines across strategies and cancellation policies:
// winning machines and cancellation counts must be identical, response
// times within the accumulated nanotick quantization, and the flat
// engine byte-identical with itself at every worker count.
func TestOpenSystemEngines(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "zipf", N: 80, M: 12, Alpha: 1.8, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(55))
	arrive := workload.MustArrivals(in.N(), workload.ArrivalSpec{
		Process: "poisson", Rate: float64(in.M) / 3, Seed: 9,
	})
	cfgs := []OpenConfig{
		{Config: Config{Strategy: NoReplication}},
		{Config: Config{Strategy: ReplicateEverywhere}, Policy: sim.CancelOnCompletion, CancelCost: 0.25},
		{Config: Config{Strategy: Groups, Groups: 4}, Policy: sim.CancelOnStart},
		{Config: Config{Strategy: Groups, Groups: 4}, Policy: sim.CancelOnCompletion, CancelCost: 0.5},
	}
	eps := 1e-9 * float64(in.N()+1)
	for _, cfg := range cfgs {
		want, err := RunOpenSystem(in, arrive, cfg)
		if err != nil {
			t.Fatalf("%v/%v: event engine: %v", cfg.Strategy, cfg.Policy, err)
		}
		flatCfg := cfg
		flatCfg.Engine = sim.EngineFlat
		got, err := RunOpenSystem(in, arrive, flatCfg)
		if err != nil {
			t.Fatalf("%v/%v: flat engine: %v", cfg.Strategy, cfg.Policy, err)
		}
		if got.Result.CancelledReplicas != want.Result.CancelledReplicas {
			t.Fatalf("%v/%v: cancelled %d vs %d across engines", cfg.Strategy, cfg.Policy,
				got.Result.CancelledReplicas, want.Result.CancelledReplicas)
		}
		for j := range want.Result.Responses {
			ga, wa := got.Result.Schedule.Assignments[j], want.Result.Schedule.Assignments[j]
			if ga.Machine != wa.Machine {
				t.Fatalf("%v/%v: task %d machine %d vs %d across engines",
					cfg.Strategy, cfg.Policy, j, ga.Machine, wa.Machine)
			}
			if math.Abs(got.Result.Responses[j]-want.Result.Responses[j]) > eps {
				t.Fatalf("%v/%v: task %d response drifts beyond %v across engines",
					cfg.Strategy, cfg.Policy, j, eps)
			}
		}
		if math.Abs(got.Result.WastedTime-want.Result.WastedTime) > eps*float64(in.N()) {
			t.Fatalf("%v/%v: wasted time %v vs %v", cfg.Strategy, cfg.Policy,
				got.Result.WastedTime, want.Result.WastedTime)
		}
		// Worker count must be invisible: byte-identical flat outcomes.
		for _, workers := range []int{2, 8, -1} {
			wcfg := flatCfg
			wcfg.SimWorkers = workers
			wout, err := RunOpenSystem(in, arrive, wcfg)
			if err != nil {
				t.Fatalf("%v/%v workers=%d: %v", cfg.Strategy, cfg.Policy, workers, err)
			}
			if !reflect.DeepEqual(wout.Result.Responses, got.Result.Responses) ||
				!reflect.DeepEqual(wout.Result.Schedule.Assignments, got.Result.Schedule.Assignments) ||
				wout.Result.WastedTime != got.Result.WastedTime ||
				wout.Result.CancelledReplicas != got.Result.CancelledReplicas {
				t.Fatalf("%v/%v: SimWorkers=%d changes the flat open outcome",
					cfg.Strategy, cfg.Policy, workers)
			}
		}
	}
}

// TestFlatEngineMatchesEventEngine runs every strategy through the
// full pipeline on both simulator engines: dispatch decisions must be
// identical, times within the accumulated nanotick quantization, and
// the flat engine must agree with itself exactly at every worker
// count.
func TestFlatEngineMatchesEventEngine(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "zipf", N: 80, M: 12, Alpha: 1.8, Seed: 5})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(55))
	cfgs := []Config{
		{Strategy: NoReplication},
		{Strategy: ReplicateEverywhere},
		{Strategy: Groups, Groups: 4},
		{Strategy: Groups, Groups: 4, UseLPTWithinGroups: true},
		{Strategy: BaselineLS},
	}
	eps := 1e-9 * float64(in.N()+1)
	for _, cfg := range cfgs {
		want, err := Run(in, cfg)
		if err != nil {
			t.Fatalf("%v: event engine: %v", cfg.Strategy, err)
		}
		flatCfg := cfg
		flatCfg.Engine = sim.EngineFlat
		got, err := Run(in, flatCfg)
		if err != nil {
			t.Fatalf("%v: flat engine: %v", cfg.Strategy, err)
		}
		for j, ga := range got.Schedule.Assignments {
			wa := want.Schedule.Assignments[j]
			if ga.Machine != wa.Machine {
				t.Fatalf("%v: task %d machine %d vs %d across engines",
					cfg.Strategy, j, ga.Machine, wa.Machine)
			}
			if math.Abs(ga.Start-wa.Start) > eps || math.Abs(ga.End-wa.End) > eps {
				t.Fatalf("%v: task %d times drift beyond %v across engines", cfg.Strategy, j, eps)
			}
		}
		if math.Abs(got.Makespan-want.Makespan) > eps {
			t.Fatalf("%v: makespan %v vs %v", cfg.Strategy, got.Makespan, want.Makespan)
		}
		// Worker count must be invisible: byte-identical flat outcomes.
		for _, workers := range []int{2, 8, -1} {
			wcfg := flatCfg
			wcfg.SimWorkers = workers
			wout, err := Run(in, wcfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", cfg.Strategy, workers, err)
			}
			if !reflect.DeepEqual(wout.Schedule.Assignments, got.Schedule.Assignments) {
				t.Fatalf("%v: SimWorkers=%d changes the flat schedule", cfg.Strategy, workers)
			}
			if wout.Makespan != got.Makespan {
				t.Fatalf("%v: SimWorkers=%d changes makespan", cfg.Strategy, workers)
			}
		}
	}
}
