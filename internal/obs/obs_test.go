package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterIdempotentLookup(t *testing.T) {
	a := GetCounter("test.lookup")
	b := GetCounter("test.lookup")
	if a != b {
		t.Fatal("GetCounter returned distinct instances for one name")
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	c := GetCounter("test.concurrent")
	c.v.Store(0)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestTimerObserve(t *testing.T) {
	tm := GetTimer("test.timer")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(3 * time.Millisecond)
	if tm.Count() < 2 {
		t.Fatalf("timer count = %d, want >= 2", tm.Count())
	}
	if tm.Total() < 5*time.Millisecond {
		t.Fatalf("timer total = %v, want >= 5ms", tm.Total())
	}
	done := tm.Start()
	done()
	if tm.Count() < 3 {
		t.Fatalf("Start/stop did not record")
	}
}

func TestSnapshotSortedAndWrite(t *testing.T) {
	GetCounter("test.zzz").Inc()
	GetCounter("test.aaa").Inc()
	stats := Snapshot()
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Name > stats[i].Name {
			t.Fatalf("snapshot not sorted: %q after %q", stats[i].Name, stats[i-1].Name)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test.aaa") || !strings.Contains(buf.String(), "test.zzz") {
		t.Fatalf("Write output missing metrics:\n%s", buf.String())
	}
}

func TestReset(t *testing.T) {
	c := GetCounter("test.reset")
	c.Add(7)
	tm := GetTimer("test.reset.timer")
	tm.Observe(time.Second)
	Reset()
	if c.Load() != 0 {
		t.Fatalf("counter survived Reset: %d", c.Load())
	}
	if tm.Count() != 0 || tm.Total() != 0 {
		t.Fatalf("timer survived Reset: %d/%v", tm.Count(), tm.Total())
	}
	// The pointer stays registered after Reset.
	if GetCounter("test.reset") != c {
		t.Fatal("Reset dropped the registration")
	}
}
