// Package obs is a lightweight observability layer for the simulator,
// the experiment harness, and the serving daemon: named atomic
// counters, gauges, and wall-clock timers that hot paths can bump
// cheaply, plus a process-wide registry that renders a snapshot table
// on demand (also over HTTP via Handler, for /metrics endpoints).
//
// Metrics never influence results — they are write-only from the
// algorithms' point of view — so instrumented code stays bit-identical
// in its observable output. Reports go to stderr (via the -stats flag
// of cmd/paperfigs and cmd/sweep) precisely so stdout artifacts remain
// byte-comparable against golden files.
//
// Counters and timers are safe for concurrent use. Lookup by name is
// idempotent: Counter("sim.events") returns the same *Counter from
// every goroutine, so packages can grab their metrics at init time or
// lazily in-line without coordination.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous level that can move in both directions —
// in-flight requests, queue depth, open connections. Unlike Counter it
// is not monotone.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Add moves the gauge by d (negative d moves it down).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Timer accumulates wall-clock durations (total nanoseconds and
// observation count).
type Timer struct {
	name  string
	ns    atomic.Int64
	count atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.count.Add(1)
}

// Start begins a measurement; calling the returned func records the
// elapsed time. Typical use:
//
//	defer obs.GetTimer("experiment.e1").Start()()
func (t *Timer) Start() func() {
	begin := time.Now()
	return func() { t.Observe(time.Since(begin)) }
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Name returns the registered name.
func (t *Timer) Name() string { return t.name }

// registry is the process-wide metric table.
var registry = struct {
	sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}{
	counters: map[string]*Counter{},
	gauges:   map[string]*Gauge{},
	timers:   map[string]*Timer{},
}

// GetCounter returns the counter registered under name, creating it on
// first use.
func GetCounter(name string) *Counter {
	registry.Lock()
	defer registry.Unlock()
	c, ok := registry.counters[name]
	if !ok {
		c = &Counter{name: name}
		registry.counters[name] = c
	}
	return c
}

// GetGauge returns the gauge registered under name, creating it on
// first use.
func GetGauge(name string) *Gauge {
	registry.Lock()
	defer registry.Unlock()
	g, ok := registry.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		registry.gauges[name] = g
	}
	return g
}

// GetTimer returns the timer registered under name, creating it on
// first use.
func GetTimer(name string) *Timer {
	registry.Lock()
	defer registry.Unlock()
	t, ok := registry.timers[name]
	if !ok {
		t = &Timer{name: name}
		registry.timers[name] = t
	}
	return t
}

// Stat is one row of a metrics snapshot.
type Stat struct {
	// Name is the metric name.
	Name string
	// Value is the counter value, or the observation count for timers.
	Value int64
	// Elapsed is the accumulated duration (timers only).
	Elapsed time.Duration
	// IsTimer marks timer rows.
	IsTimer bool
	// IsGauge marks gauge rows (instantaneous, non-monotone values).
	IsGauge bool
}

// Snapshot returns all registered metrics sorted by name.
func Snapshot() []Stat {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Stat, 0, len(registry.counters)+len(registry.gauges)+len(registry.timers))
	for _, c := range registry.counters {
		out = append(out, Stat{Name: c.name, Value: c.Load()})
	}
	for _, g := range registry.gauges {
		out = append(out, Stat{Name: g.name, Value: g.Load(), IsGauge: true})
	}
	for _, t := range registry.timers {
		out = append(out, Stat{Name: t.name, Value: t.Count(), Elapsed: t.Total(), IsTimer: true})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Write renders the snapshot as an aligned two-column table. Zero
// metrics are included: a zero that should not be zero is exactly what
// the table is for.
func Write(w io.Writer) error {
	stats := Snapshot()
	width := 0
	for _, s := range stats {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range stats {
		var err error
		if s.IsTimer {
			_, err = fmt.Fprintf(w, "%-*s %12d  %v\n", width, s.Name, s.Value,
				s.Elapsed.Round(time.Microsecond))
		} else {
			_, err = fmt.Fprintf(w, "%-*s %12d\n", width, s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset zeroes every registered metric (the metrics stay registered,
// and pointers held by instrumented code remain valid). Tests use it
// to assert deltas.
func Reset() {
	registry.Lock()
	defer registry.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, t := range registry.timers {
		t.ns.Store(0)
		t.count.Store(0)
	}
}

// Handler returns an http.Handler that renders the current metrics
// snapshot as the plain-text table of Write. It backs the /metrics
// endpoint of cmd/schedd; scraping it is side-effect free.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Errors past this point are client disconnects; nothing to do.
		_ = Write(w)
	})
}
