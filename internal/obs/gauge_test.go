package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestGaugeUpDown(t *testing.T) {
	g := GetGauge("test.gauge.updown")
	g.Set(0)
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(5)
	g.Add(-3)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	if GetGauge("test.gauge.updown") != g {
		t.Fatal("GetGauge not idempotent")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	g := GetGauge("test.gauge.concurrent")
	g.Set(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Fatalf("balanced inc/dec left gauge at %d", got)
	}
}

func TestSnapshotIncludesGauges(t *testing.T) {
	GetGauge("test.gauge.snapshot").Set(7)
	for _, s := range Snapshot() {
		if s.Name == "test.gauge.snapshot" {
			if !s.IsGauge || s.IsTimer || s.Value != 7 {
				t.Fatalf("snapshot row = %+v", s)
			}
			return
		}
	}
	t.Fatal("gauge missing from snapshot")
}

func TestHandlerRendersSnapshot(t *testing.T) {
	GetCounter("test.handler.counter").Add(2)
	GetGauge("test.handler.gauge").Set(4)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"test.handler.counter", "test.handler.gauge"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}
