package bounds

import (
	"math"
	"sort"
)

// Point is one (X, Y) sample of a guarantee curve.
type Point struct {
	X, Y float64
}

// Series is a named guarantee curve.
type Series struct {
	// Name labels the curve in plots and CSV headers.
	Name string
	// Points are the samples, in increasing X.
	Points []Point
}

// Divisors returns the positive divisors of m in increasing order.
func Divisors(m int) []int {
	var ds []int
	for d := 1; d*d <= m; d++ {
		if m%d == 0 {
			ds = append(ds, d)
			if d != m/d {
				ds = append(ds, m/d)
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// RatioReplication builds the data of the paper's Figure 3 for one α:
// guarantee (Y) versus replicas per task |M_j| = m/k (X, log-ish
// axis), for m machines. Returned series:
//
//   - "LS-Group":           one point per divisor k of m, X = m/k
//   - "LPT-NoChoice":       single point at X = 1 (Theorem 2)
//   - "LowerBound":         single point at X = 1 (Theorem 1)
//   - "LPT-NoRestriction":  single point at X = m (Theorem 3)
//   - "Graham-LS":          single point at X = m (2 − 1/m)
func RatioReplication(m int, alpha float64) []Series {
	var group Series
	group.Name = "LS-Group"
	for _, k := range Divisors(m) {
		group.Points = append(group.Points, Point{
			X: float64(m / k),
			Y: LSGroup(m, k, alpha),
		})
	}
	sort.SliceStable(group.Points, func(a, b int) bool { return group.Points[a].X < group.Points[b].X })
	return []Series{
		group,
		{Name: "LPT-NoChoice", Points: []Point{{X: 1, Y: LPTNoChoice(m, alpha)}}},
		{Name: "LowerBound", Points: []Point{{X: 1, Y: LowerBoundNoReplication(m, alpha)}}},
		{Name: "LPT-NoRestriction", Points: []Point{{X: float64(m), Y: LPTNoRestriction(m, alpha)}}},
		{Name: "Graham-LS", Points: []Point{{X: float64(m), Y: GrahamLS(m)}}},
	}
}

// DefaultDeltaGrid is the Δ sweep used for the memory–makespan
// tradeoff curves (Figure 6): log-spaced between 1/16 and 16.
func DefaultDeltaGrid() []float64 {
	var grid []float64
	for d := 1.0 / 16; d <= 16+1e-9; d *= 1.25 {
		grid = append(grid, d)
	}
	return grid
}

// MemoryMakespan builds the data of the paper's Figure 6 for one
// parameterization: each series samples (X = memory guarantee,
// Y = makespan guarantee) as Δ sweeps over the grid.
//
//   - "SABO": ((1+1/Δ)ρ2, (1+Δ)α²ρ1)
//   - "ABO":  ((1+m/Δ)ρ2, 2−1/m+Δα²ρ1)
//   - "Impossibility": the frontier {(1+δ, 1+1/δ)} no
//     schedule-combining algorithm can cross (the bold line of the
//     paper's figure, from the SBO_Δ analysis of the cited IPDPS'08
//     paper).
func MemoryMakespan(m int, alpha2, rho1, rho2 float64, deltas []float64) []Series {
	if deltas == nil {
		deltas = DefaultDeltaGrid()
	}
	alpha := math.Sqrt(alpha2)
	sabo := Series{Name: "SABO"}
	abo := Series{Name: "ABO"}
	for _, d := range deltas {
		sabo.Points = append(sabo.Points, Point{
			X: SABOMemory(d, rho2),
			Y: SABOMakespan(alpha, d, rho1),
		})
		abo.Points = append(abo.Points, Point{
			X: ABOMemory(m, d, rho2),
			Y: ABOMakespan(m, alpha, d, rho1),
		})
	}
	impossible := Series{Name: "Impossibility"}
	for _, d := range deltas {
		impossible.Points = append(impossible.Points, Point{X: 1 + d, Y: 1 + 1/d})
	}
	for _, s := range []*Series{&sabo, &abo, &impossible} {
		sort.SliceStable(s.Points, func(a, b int) bool { return s.Points[a].X < s.Points[b].X })
	}
	return []Series{sabo, abo, impossible}
}
