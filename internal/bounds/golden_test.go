package bounds

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenGuarantees pins the byte-exact values of the paper's
// analytic guarantee formulas over the Table 1 and Table 2 grids. The
// experiments-package golden tests pin the rendered tables; this one
// pins the formulas themselves, so a regression is attributed to the
// bounds layer directly. Refresh with:
//
//	go test ./internal/bounds -run TestGolden -update
func TestGoldenGuarantees(t *testing.T) {
	var buf bytes.Buffer

	// Table 1: makespan guarantees as functions of (m, α, k).
	fmt.Fprintln(&buf, "# Table 1 guarantee formulas")
	fmt.Fprintln(&buf, "# m alpha lower-bound lpt-nochoice lpt-norestriction(thm) lpt-norestriction graham-ls lpt-offline ls-group:2 ls-group:3 ls-group:m")
	for _, m := range []int{6, 12, 210} {
		for _, alpha := range []float64{1.1, 1.5, 2} {
			fmt.Fprintf(&buf, "%d %.1f %.6f %.6f %.6f %.6f %.6f %.6f %.6f %.6f %.6f\n",
				m, alpha,
				LowerBoundNoReplication(m, alpha),
				LPTNoChoice(m, alpha),
				LPTNoRestrictionTheorem(m, alpha),
				LPTNoRestriction(m, alpha),
				GrahamLS(m),
				LPTOffline(m),
				LSGroup(m, 2, alpha),
				LSGroup(m, 3, alpha),
				LSGroup(m, m, alpha))
		}
	}
	fmt.Fprintf(&buf, "# limit alpha->inf lower bound: %.6f %.6f %.6f\n",
		LowerBoundNoReplicationLimit(1.1),
		LowerBoundNoReplicationLimit(1.5),
		LowerBoundNoReplicationLimit(2))

	// Table 2: bi-objective guarantees as functions of (α, Δ, ρ).
	fmt.Fprintln(&buf, "# Table 2 guarantee formulas (m=5)")
	fmt.Fprintln(&buf, "# alpha^2 rho delta sabo-makespan sabo-memory abo-makespan abo-memory")
	for _, alphaSq := range []float64{2, 3} {
		alpha := math.Sqrt(alphaSq)
		for _, rho := range []float64{4.0 / 3.0, 1} {
			for _, delta := range []float64{0.25, 0.5, 1, 2, 4} {
				fmt.Fprintf(&buf, "%.0f %.6f %.2f %.6f %.6f %.6f %.6f\n",
					alphaSq, rho, delta,
					SABOMakespan(alpha, delta, rho),
					SABOMemory(delta, rho),
					ABOMakespan(5, alpha, delta, rho),
					ABOMemory(5, delta, rho))
			}
		}
	}

	compareGolden(t, "guarantees.txt", buf.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged from golden file; run with -update if intentional.\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}
