package bounds

import (
	"math"
	"testing"
)

func TestReplicasToBeatNoReplicationPaperClaim(t *testing.T) {
	// Paper, Figure 3 discussion (α=2, m=210): "LS-Group is able to
	// get a better approximation using less than 50 replications than
	// can be guaranteed by deploying data on a single machine."
	r, ok := ReplicasToBeatNoReplication(210, 2)
	if !ok {
		t.Fatal("no crossover found at alpha=2")
	}
	if r >= 50 {
		t.Fatalf("crossover at %d replicas, paper says < 50", r)
	}
	if r <= 1 {
		t.Fatalf("crossover at %d replicas is implausibly small", r)
	}
}

func TestReplicasToBeatNoReplicationSmallAlpha(t *testing.T) {
	// α=1.1: the gap between LPT-No Choice and the lower bound is
	// large; even full replication's guarantee (≈ 2 − 1/m) exceeds the
	// lower bound (≈ 1.2), so no crossover exists.
	if r, ok := ReplicasToBeatNoReplication(210, 1.1); ok {
		t.Fatalf("unexpected crossover at %d replicas for alpha=1.1", r)
	}
}

func TestMinReplicasForRatioMonotone(t *testing.T) {
	// A looser target never needs more replicas.
	prev := 210 + 1
	for _, target := range []float64{3.0, 3.5, 4.5, 6.0, 7.5} {
		r, ok := MinReplicasForRatio(210, 2, target)
		if !ok {
			continue
		}
		if r > prev {
			t.Fatalf("target %v needs %d replicas, looser than previous %d", target, r, prev)
		}
		prev = r
	}
}

func TestMinReplicasForRatioUnreachable(t *testing.T) {
	if _, ok := MinReplicasForRatio(210, 2, 1.0); ok {
		t.Fatal("ratio 1.0 reported reachable")
	}
}

func TestMinReplicasForRatioTrivial(t *testing.T) {
	// Target above the 1-replica guarantee: one replica suffices.
	loose := LSGroup(210, 210, 2) + 1
	r, ok := MinReplicasForRatio(210, 2, loose)
	if !ok || r != 1 {
		t.Fatalf("got (%d, %v), want (1, true)", r, ok)
	}
}

func TestGuaranteeImprovement(t *testing.T) {
	if got := GuaranteeImprovement(210, 1, 2); got != 0 {
		t.Fatalf("1 replica improvement %v, want 0", got)
	}
	imp3 := GuaranteeImprovement(210, 3, 2)
	imp210 := GuaranteeImprovement(210, 210, 2)
	if !(imp3 > 0.2) {
		t.Fatalf("3-replica improvement %v, expected > 20%% (paper: >7.5 → <6)", imp3)
	}
	if !(imp210 > imp3) {
		t.Fatalf("full replication improvement %v not above 3-replica %v", imp210, imp3)
	}
	if !math.IsNaN(GuaranteeImprovement(210, 4, 2)) {
		t.Fatal("non-divisor replica count accepted")
	}
	if !math.IsNaN(GuaranteeImprovement(210, 0, 2)) {
		t.Fatal("r=0 accepted")
	}
}
