package bounds

import "math"

// MinReplicasForRatio returns the smallest replication degree m/k
// (over divisors k of m) whose LS-Group guarantee is at most target,
// and ok=false if even full replication (k=1) does not reach it.
func MinReplicasForRatio(m int, alpha, target float64) (int, bool) {
	divisors := Divisors(m)
	// Scan k from largest (1 replica) to smallest (m replicas): the
	// guarantee decreases as replication grows (see Theorem 4 tests),
	// so the first k meeting the target gives the fewest replicas.
	for i := len(divisors) - 1; i >= 0; i-- {
		k := divisors[i]
		if LSGroup(m, k, alpha) <= target {
			return m / k, true
		}
	}
	return 0, false
}

// ReplicasToBeatNoReplication returns the smallest replication degree
// whose LS-Group guarantee beats the *best possible* no-replication
// algorithm (the Theorem 1 lower bound) — the paper's α=2 observation
// that fewer than 50 replicas already outperform anything achievable
// with |M_j| = 1. ok=false when no replication level does (small α).
func ReplicasToBeatNoReplication(m int, alpha float64) (int, bool) {
	return MinReplicasForRatio(m, alpha, LowerBoundNoReplication(m, alpha)-1e-12)
}

// GuaranteeImprovement returns the relative guarantee reduction of
// using r replicas per task (r = m/k for some divisor k) instead of
// one: 1 − LSGroup(m, m/r, α)/LSGroup(m, m, α). It returns NaN if r
// does not correspond to a divisor of m.
func GuaranteeImprovement(m, r int, alpha float64) float64 {
	if r < 1 || r > m || m%r != 0 {
		return math.NaN()
	}
	base := LSGroup(m, m, alpha)
	return 1 - LSGroup(m, m/r, alpha)/base
}
