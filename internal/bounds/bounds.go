// Package bounds encodes every analytic guarantee stated in the
// paper, as plain functions of the model parameters. The experiment
// harness evaluates them to regenerate the paper's Table 1, Table 2,
// Figure 3 and Figure 6; the test suite cross-checks them against the
// empirical behaviour of the algorithms in package algo and memaware.
//
// Throughout, m is the machine count, alpha (α ≥ 1) the uncertainty
// factor, k the number of machine groups, delta (Δ > 0) the
// time/memory threshold of the bi-objective algorithms, and rho1/rho2
// (ρ1, ρ2) the approximation factors of the single-objective schedules
// the bi-objective algorithms combine.
package bounds

import (
	"fmt"
	"math"
)

// LowerBoundNoReplication is Theorem 1: with |M_j| = 1 no online
// algorithm has competitive ratio better than α²m/(α²+m−1).
func LowerBoundNoReplication(m int, alpha float64) float64 {
	a2 := alpha * alpha
	mf := float64(m)
	return a2 * mf / (a2 + mf - 1)
}

// LowerBoundNoReplicationLimit is the corollary of Theorem 1: the
// m→∞ limit of the lower bound, α².
func LowerBoundNoReplicationLimit(alpha float64) float64 {
	return alpha * alpha
}

// LPTNoChoice is Theorem 2: LPT-No Choice has competitive ratio
// 2α²m/(2α²+m−1).
func LPTNoChoice(m int, alpha float64) float64 {
	a2 := alpha * alpha
	mf := float64(m)
	return 2 * a2 * mf / (2*a2 + mf - 1)
}

// LPTNoRestrictionTheorem is Theorem 3 as stated: LPT-No Restriction
// has competitive ratio 1 + (m−1)/m · α²/2.
func LPTNoRestrictionTheorem(m int, alpha float64) float64 {
	a2 := alpha * alpha
	mf := float64(m)
	return 1 + (mf-1)/mf*a2/2
}

// GrahamLS is Graham's List Scheduling guarantee 2 − 1/m, which holds
// for LPT-No Restriction regardless of α because it is a variant of
// List Scheduling.
func GrahamLS(m int) float64 {
	return 2 - 1/float64(m)
}

// LPTNoRestriction is the effective guarantee of LPT-No Restriction:
// min(Theorem 3, Graham's 2−1/m), as discussed after Theorem 3.
func LPTNoRestriction(m int, alpha float64) float64 {
	return math.Min(LPTNoRestrictionTheorem(m, alpha), GrahamLS(m))
}

// LPTOffline is Graham's offline LPT guarantee 4/3 − 1/(3m) (no
// uncertainty); quoted in the related-work section and used as ρ1 in
// the memory-aware model.
func LPTOffline(m int) float64 {
	return 4.0/3 - 1/(3*float64(m))
}

// LSGroup is Theorem 4: LS-Group with k groups has competitive ratio
// kα²/(α²+k−1) · (1 + (k−1)/m) + (m−k)/m.
func LSGroup(m, k int, alpha float64) float64 {
	a2 := alpha * alpha
	mf, kf := float64(m), float64(k)
	return kf*a2/(a2+kf-1)*(1+(kf-1)/mf) + (mf-kf)/mf
}

// SABOMakespan is Theorem 5 (SABO_Δ): makespan guarantee
// (1+Δ)·α²·ρ1.
func SABOMakespan(alpha, delta, rho1 float64) float64 {
	return (1 + delta) * alpha * alpha * rho1
}

// SABOMemory is Theorem 6 (SABO_Δ): memory guarantee (1+1/Δ)·ρ2.
func SABOMemory(delta, rho2 float64) float64 {
	return (1 + 1/delta) * rho2
}

// ABOMakespan is Theorem 7 (ABO_Δ): makespan guarantee
// 2 − 1/m + Δ·α²·ρ1.
func ABOMakespan(m int, alpha, delta, rho1 float64) float64 {
	return 2 - 1/float64(m) + delta*alpha*alpha*rho1
}

// ABOMemory is Theorem 8 (ABO_Δ): memory guarantee (1+m/Δ)·ρ2.
func ABOMemory(m int, delta, rho2 float64) float64 {
	return (1 + float64(m)/delta) * rho2
}

// Validate reports an error for parameters outside the model's
// domain. Helper for CLI surfaces.
func Validate(m, k int, alpha float64) error {
	if m < 1 {
		return fmt.Errorf("bounds: m must be >= 1, got %d", m)
	}
	if alpha < 1 {
		return fmt.Errorf("bounds: alpha must be >= 1, got %v", alpha)
	}
	if k != 0 {
		if k < 1 || k > m {
			return fmt.Errorf("bounds: k must be in [1, m], got %d", k)
		}
		if m%k != 0 {
			return fmt.Errorf("bounds: k=%d must divide m=%d", k, m)
		}
	}
	return nil
}
