package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func closeTo(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTheorem1Values(t *testing.T) {
	// α=1: no uncertainty, bound degenerates to m/m = 1.
	if got := LowerBoundNoReplication(10, 1); !closeTo(got, 1) {
		t.Errorf("alpha=1 lower bound = %v, want 1", got)
	}
	// α=2, m=6: 4*6/(4+5) = 24/9.
	if got := LowerBoundNoReplication(6, 2); !closeTo(got, 24.0/9) {
		t.Errorf("lower bound = %v, want %v", got, 24.0/9)
	}
	// m=1: single machine, every schedule identical → ratio 1.
	if got := LowerBoundNoReplication(1, 3); !closeTo(got, 1) {
		t.Errorf("m=1 lower bound = %v, want 1", got)
	}
}

func TestTheorem1Limit(t *testing.T) {
	alpha := 1.7
	limit := LowerBoundNoReplicationLimit(alpha)
	if !closeTo(limit, alpha*alpha) {
		t.Fatalf("limit = %v, want α²", limit)
	}
	if got := LowerBoundNoReplication(1_000_000, alpha); math.Abs(got-limit) > 1e-4 {
		t.Fatalf("large-m bound %v far from limit %v", got, limit)
	}
}

func TestTheorem2Values(t *testing.T) {
	// α=2, m=6: 2*4*6/(8+5) = 48/13.
	if got := LPTNoChoice(6, 2); !closeTo(got, 48.0/13) {
		t.Errorf("LPT-NoChoice bound = %v, want %v", got, 48.0/13)
	}
	// α=1 does NOT give 1: LPT with exact estimates still only
	// guarantees 2m/(m+1) by this analysis.
	if got := LPTNoChoice(3, 1); !closeTo(got, 6.0/4) {
		t.Errorf("alpha=1 LPT-NoChoice bound = %v, want 1.5", got)
	}
}

func TestTheorem2AboveTheorem1(t *testing.T) {
	// Upper bound must dominate the impossibility bound.
	f := func(mRaw uint8, aRaw uint8) bool {
		m := int(mRaw%100) + 1
		alpha := 1 + float64(aRaw)/64
		return LPTNoChoice(m, alpha) >= LowerBoundNoReplication(m, alpha)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem3Values(t *testing.T) {
	// α=1, m→∞: 1 + 1/2 = 1.5.
	if got := LPTNoRestrictionTheorem(1000, 1); math.Abs(got-1.4995) > 1e-9 {
		t.Errorf("theorem3 = %v, want 1.4995", got)
	}
	// Effective bound caps at Graham for large α.
	if got := LPTNoRestriction(4, 3); !closeTo(got, GrahamLS(4)) {
		t.Errorf("effective bound = %v, want Graham %v", got, GrahamLS(4))
	}
	// Small α: theorem bound is the better one (α² < 2).
	if got := LPTNoRestriction(4, 1.2); !closeTo(got, LPTNoRestrictionTheorem(4, 1.2)) {
		t.Errorf("effective bound = %v, want theorem %v", got, LPTNoRestrictionTheorem(4, 1.2))
	}
}

func TestGrahamAndLPTOffline(t *testing.T) {
	if got := GrahamLS(4); !closeTo(got, 1.75) {
		t.Errorf("GrahamLS(4) = %v", got)
	}
	if got := LPTOffline(3); !closeTo(got, 4.0/3-1.0/9) {
		t.Errorf("LPTOffline(3) = %v", got)
	}
}

func TestTheorem4Endpoints(t *testing.T) {
	m, alpha := 210, 1.5
	// k=1 (one group = full replication): kα²/(α²+0)·(1+0) + (m−1)/m
	// = 1 + (m−1)/m... wait: 1·α²/α²·1 + (m−1)/m = 1 + (m−1)/m.
	if got := LSGroup(m, 1, alpha); !closeTo(got, 1+float64(m-1)/float64(m)) {
		t.Errorf("LSGroup k=1 = %v, want %v", got, 1+float64(m-1)/float64(m))
	}
	// k=m (no replication): mα²/(α²+m−1)·(1+(m−1)/m) + 0.
	a2 := alpha * alpha
	mf := float64(m)
	want := mf * a2 / (a2 + mf - 1) * (1 + (mf-1)/mf)
	if got := LSGroup(m, m, alpha); !closeTo(got, want) {
		t.Errorf("LSGroup k=m = %v, want %v", got, want)
	}
	// The paper: at k=m the LS-Group guarantee is close to twice the
	// Theorem 1 lower bound (i.e. near LPT-NoChoice's for large m).
	lb := LowerBoundNoReplication(m, alpha)
	if got := LSGroup(m, m, alpha); math.Abs(got-2*lb*(1+(mf-1)/mf)/2) > 0.1*got {
		t.Logf("informational: LSGroup(m)=%v vs 2*LB=%v", got, 2*lb)
	}
}

func TestTheorem4MonotoneInK(t *testing.T) {
	// More groups = fewer replicas = weaker guarantee. Verify the
	// guarantee increases with k for the paper's m=210 figure across
	// all three α values.
	for _, alpha := range []float64{1.1, 1.5, 2} {
		prev := 0.0
		for _, k := range Divisors(210) {
			got := LSGroup(210, k, alpha)
			if got < prev-1e-9 {
				t.Errorf("alpha=%v: guarantee dropped at k=%d: %v < %v", alpha, k, got, prev)
			}
			prev = got
		}
	}
}

func TestCommentedCorollaryK2(t *testing.T) {
	// The paper's source contains a commented-out corollary: "When
	// there are 2 groups, the competitive ratio is
	// 1 + 2/(1+α²)·(α²−1/m)". Verify it is algebraically identical to
	// Theorem 4 at k=2 (which is why the authors could drop it).
	f := func(mRaw, aRaw uint8) bool {
		m := 2 * (int(mRaw%100) + 1) // even so k=2 divides m
		alpha := 1 + float64(aRaw)/64
		a2 := alpha * alpha
		corollary := 1 + 2/(1+a2)*(a2-1/float64(m))
		return math.Abs(LSGroup(m, 2, alpha)-corollary) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryAwareFormulas(t *testing.T) {
	// Spot values at Δ=1, α²=2, ρ1=ρ2=1, m=5.
	alpha := math.Sqrt2
	if got := SABOMakespan(alpha, 1, 1); !closeTo(got, 4) {
		t.Errorf("SABO makespan = %v, want 4", got)
	}
	if got := SABOMemory(1, 1); !closeTo(got, 2) {
		t.Errorf("SABO memory = %v, want 2", got)
	}
	if got := ABOMakespan(5, alpha, 1, 1); !closeTo(got, 2-0.2+2) {
		t.Errorf("ABO makespan = %v, want 3.8", got)
	}
	if got := ABOMemory(5, 1, 1); !closeTo(got, 6) {
		t.Errorf("ABO memory = %v, want 6", got)
	}
}

func TestABOBeatsSABOOnMakespanWhenAlphaRhoLarge(t *testing.T) {
	// Paper: for αρ1 ≥ 2, ABO always has the better makespan
	// guarantee. Check on a Δ grid with α²=3 (α≈1.73), ρ1=4/3:
	// αρ1 ≈ 2.31 ≥ 2.
	alpha := math.Sqrt(3)
	rho1 := 4.0 / 3
	for _, d := range DefaultDeltaGrid() {
		sabo := SABOMakespan(alpha, d, rho1)
		abo := ABOMakespan(5, alpha, d, rho1)
		if abo > sabo+1e-9 {
			t.Errorf("Δ=%v: ABO %v worse than SABO %v despite αρ1>=2", d, abo, sabo)
		}
	}
}

func TestSABOBeatsABOOnMemoryAlways(t *testing.T) {
	for _, d := range DefaultDeltaGrid() {
		for _, m := range []int{2, 5, 50} {
			if SABOMemory(d, 1) > ABOMemory(m, d, 1)+1e-12 {
				t.Errorf("m=%d Δ=%v: SABO memory worse than ABO", m, d)
			}
		}
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(210)
	want := []int{1, 2, 3, 5, 6, 7, 10, 14, 15, 21, 30, 35, 42, 70, 105, 210}
	if len(got) != len(want) {
		t.Fatalf("Divisors(210) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(210) = %v", got)
		}
	}
}

func TestRatioReplicationShape(t *testing.T) {
	series := RatioReplication(210, 2)
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	group, ok := byName["LS-Group"]
	if !ok {
		t.Fatal("missing LS-Group series")
	}
	if len(group.Points) != len(Divisors(210)) {
		t.Fatalf("LS-Group has %d points", len(group.Points))
	}
	// Guarantee must decrease as replication (X) increases.
	for i := 1; i < len(group.Points); i++ {
		if group.Points[i].Y > group.Points[i-1].Y+1e-9 {
			t.Fatalf("LS-Group guarantee not decreasing in replication at %d", i)
		}
	}
	// Paper's α=2 observation: fewer than 50 replicas already beat the
	// no-replication *lower bound*.
	lb := byName["LowerBound"].Points[0].Y
	crossed := false
	for _, pt := range group.Points {
		if pt.X < 50 && pt.Y < lb {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("α=2: LS-Group never beats the no-replication lower bound below 50 replicas")
	}
	// And the ratio improves from >7.5 at 1 replica to <6 at 3
	// replicas (the paper's concrete numbers).
	var at1, at3 float64
	for _, pt := range group.Points {
		if pt.X == 1 {
			at1 = pt.Y
		}
		if pt.X == 3 {
			at3 = pt.Y
		}
	}
	if at1 <= 7.5 {
		t.Errorf("guarantee at 1 replica = %v, paper says > 7.5", at1)
	}
	if at3 >= 6 {
		t.Errorf("guarantee at 3 replicas = %v, paper says < 6", at3)
	}
}

func TestRatioReplicationAlphaSmallIsFlat(t *testing.T) {
	// Paper (α=1.1): LS-Group provides little improvement over
	// LPT-NoChoice — the curve's total drop is small in absolute terms.
	series := RatioReplication(210, 1.1)
	var group Series
	for _, s := range series {
		if s.Name == "LS-Group" {
			group = s
		}
	}
	drop := group.Points[0].Y - group.Points[len(group.Points)-1].Y
	if drop > 1.3 {
		t.Fatalf("α=1.1 LS-Group drop %v unexpectedly large", drop)
	}
}

func TestMemoryMakespanSeries(t *testing.T) {
	series := MemoryMakespan(5, 3, 1, 1, nil)
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		// Tradeoff curves: makespan guarantee decreases as memory
		// guarantee increases.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X < s.Points[i-1].X {
				t.Fatalf("series %s not sorted by X", s.Name)
			}
			if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
				t.Fatalf("series %s not a tradeoff (Y rises with X)", s.Name)
			}
		}
	}
}

func TestImpossibilityDominatesAlgorithms(t *testing.T) {
	// Every SABO/ABO point must lie on or above the impossibility
	// frontier: makespan ≥ 1 + 1/(mem − 1).
	series := MemoryMakespan(5, 2, 4.0/3, 4.0/3, nil)
	for _, s := range series {
		if s.Name == "Impossibility" {
			continue
		}
		for _, pt := range s.Points {
			if pt.X <= 1 {
				continue
			}
			frontier := 1 + 1/(pt.X-1)
			if pt.Y < frontier-1e-9 {
				t.Fatalf("%s point (%v, %v) below impossibility frontier %v",
					s.Name, pt.X, pt.Y, frontier)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(6, 3, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := Validate(0, 0, 1.5); err == nil {
		t.Error("m=0 accepted")
	}
	if err := Validate(6, 0, 0.5); err == nil {
		t.Error("alpha<1 accepted")
	}
	if err := Validate(6, 4, 1.5); err == nil {
		t.Error("non-divisor k accepted")
	}
	if err := Validate(6, 7, 1.5); err == nil {
		t.Error("k>m accepted")
	}
}

func TestGroupBoundBracketsEndpoints(t *testing.T) {
	// Sanity links between the three strategies' formulas:
	// LSGroup(k=1) should be at most Graham+1-ish and LSGroup(k=m)
	// close to the no-choice regime; in particular the k=1 guarantee
	// must be below the k=m guarantee for α where replication helps.
	f := func(aRaw uint8) bool {
		alpha := 1.2 + float64(aRaw%20)/10
		return LSGroup(210, 1, alpha) <= LSGroup(210, 210, alpha)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
