package bounds_test

import (
	"fmt"

	"repro/internal/bounds"
)

// ExampleLSGroup reproduces the endpoints of the paper's Figure 3
// discussion for α=2, m=210.
func ExampleLSGroup() {
	m, alpha := 210, 2.0
	fmt.Printf("1 replica (k=m):   %.2f\n", bounds.LSGroup(m, m, alpha))
	fmt.Printf("3 replicas (k=70): %.2f\n", bounds.LSGroup(m, 70, alpha))
	fmt.Printf("m replicas (k=1):  %.2f\n", bounds.LSGroup(m, 1, alpha))
	// Output:
	// 1 replica (k=m):   7.87
	// 3 replicas (k=70): 5.76
	// m replicas (k=1):  2.00
}

// ExampleReplicasToBeatNoReplication answers "how many replicas until
// LS-Group beats anything achievable without replication?".
func ExampleReplicasToBeatNoReplication() {
	r, ok := bounds.ReplicasToBeatNoReplication(210, 2)
	fmt.Println(r, ok)
	// Output:
	// 30 true
}

// ExampleSABOMakespan evaluates the memory-aware guarantees at Δ=1.
func ExampleSABOMakespan() {
	alpha, delta, rho := 1.5, 1.0, 1.0
	fmt.Printf("SABO: makespan %.3g, memory %.3g\n",
		bounds.SABOMakespan(alpha, delta, rho), bounds.SABOMemory(delta, rho))
	fmt.Printf("ABO:  makespan %.3g, memory %.3g\n",
		bounds.ABOMakespan(5, alpha, delta, rho), bounds.ABOMemory(5, delta, rho))
	// Output:
	// SABO: makespan 4.5, memory 2
	// ABO:  makespan 4.05, memory 6
}
