package sim

import (
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/task"
)

// fuzzPlacement derives a placement from fuzz bytes: each task's
// replica set is a pseudo-random nonempty machine subset, so the
// partitioner sees arbitrary overlap structure — singletons, chains
// that merge many groups, full-span sets — not just the tidy group:k
// shapes the named strategies emit.
func fuzzPlacement(n, m int, seed uint64) *placement.Placement {
	r := rng.New(seed)
	p := placement.New(n, m)
	set := make([]int, 0, m)
	for j := 0; j < n; j++ {
		size := 1 + r.Intn(m)
		set = set[:0]
		for len(set) < size {
			set = append(set, r.Intn(m))
		}
		p.AssignSet(j, set) // sorts and dedups
	}
	return p
}

// FuzzGroupPartition fuzzes the shard decomposition invariants:
//
//   - exact cover: every machine and every task has exactly one shard
//     ID, dense in [0, nShards);
//   - closure: a task's whole replica set lives in the task's shard;
//   - connectivity soundness: machines sharing any replica set share a
//     shard, and shard IDs follow first-machine order;
//   - and the reassembly property — the sharded run's merged schedule
//     and trace are byte-identical to the sequential flat run, i.e. the
//     merge is a pure reassembly of per-shard results, permuting
//     nothing.
func FuzzGroupPartition(f *testing.F) {
	f.Add(uint8(12), uint8(4), uint64(1))
	f.Add(uint8(40), uint8(8), uint64(2))
	f.Add(uint8(1), uint8(1), uint64(3))
	f.Add(uint8(30), uint8(12), uint64(0xfeed))
	f.Add(uint8(7), uint8(9), uint64(42)) // more machines than tasks: idle shards
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint8, seed uint64) {
		n := 1 + int(nRaw)%48
		m := 1 + int(mRaw)%12
		p := fuzzPlacement(n, m, seed)

		machineShard, taskShard, nShards, err := PartitionShards(p)
		if err != nil {
			t.Fatalf("PartitionShards: %v", err)
		}
		if nShards < 1 || nShards > m {
			t.Fatalf("nShards = %d with %d machines", nShards, m)
		}
		seen := make([]bool, nShards)
		first := -1
		for i, s := range machineShard {
			if s < 0 || s >= nShards {
				t.Fatalf("machine %d shard %d out of range [0,%d)", i, s, nShards)
			}
			if !seen[s] {
				// First appearance of a shard ID must be in increasing ID
				// order (deterministic first-machine labeling).
				if s != first+1 {
					t.Fatalf("shard IDs not in first-appearance order: saw %d after %d", s, first)
				}
				first = s
				seen[s] = true
			}
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("shard %d has no machines: IDs not dense", s)
			}
		}
		for j, s := range taskShard {
			if s < 0 || s >= nShards {
				t.Fatalf("task %d shard %d out of range [0,%d)", j, s, nShards)
			}
			for _, i := range p.Sets[j] {
				if machineShard[i] != s {
					t.Fatalf("task %d in shard %d but replica machine %d in shard %d",
						j, s, i, machineShard[i])
				}
			}
		}

		// Reassembly: sharded == sequential, byte for byte, trace
		// included. durations derived from the same bytes.
		r := rng.New(seed ^ 0xd1ff)
		est := make([]float64, n)
		act := make([]float64, n)
		for j := range act {
			act[j] = r.Uniform(0.1, 10)
			est[j] = act[j]
		}
		in, err := task.New(m, 1, est, act)
		if err != nil {
			t.Fatalf("task.New: %v", err)
		}
		order := lptOrder(in)
		want, err := RunFlat(in, p, order, FlatOptions{Trace: true})
		if err != nil {
			t.Fatalf("RunFlat: %v", err)
		}
		for _, w := range []int{2, 3, 16} {
			got, err := RunFlatSharded(in, p, order, FlatOptions{Trace: true}, w)
			if err != nil {
				t.Fatalf("RunFlatSharded(workers=%d): %v", w, err)
			}
			if !reflect.DeepEqual(got.Schedule.Assignments, want.Schedule.Assignments) {
				t.Fatalf("workers=%d: merged schedule not a reassembly of the sequential run", w)
			}
			if !reflect.DeepEqual(got.Trace, want.Trace) {
				t.Fatalf("workers=%d: merged trace diverges", w)
			}
		}
	})
}
