package sim

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// poolCase builds one (instance, dispatcher inputs) pair for the
// reuse tests. Shapes deliberately vary — n and m both grow and
// shrink across consecutive cases — so a reused Runner's buffers are
// alternately too small and too large, exercising both Reset branches.
func poolCases(t *testing.T) []*task.Instance {
	t.Helper()
	shapes := []struct {
		n, m int
		seed uint64
	}{
		{60, 8, 1}, {25, 4, 2}, {90, 12, 3}, {40, 6, 4}, {90, 12, 5}, {10, 2, 6},
	}
	ins := make([]*task.Instance, len(shapes))
	for i, s := range shapes {
		in := workload.MustNew(workload.Spec{
			Name: "zipf", N: s.n, M: s.m, Alpha: 1.8, Seed: s.seed,
		})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(s.seed^0xbeef))
		ins[i] = in
	}
	return ins
}

// lptInputs builds an LPT-No Restriction phase 2 directly (everywhere
// placement, tasks by non-increasing estimate) — the algo package
// cannot be imported here (it imports sim).
func lptInputs(t *testing.T, in *task.Instance) (Dispatcher, func() Dispatcher) {
	t.Helper()
	p := placement.Everywhere(in.N(), in.M)
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Estimate > in.Tasks[order[b]].Estimate
	})
	mk := func() Dispatcher {
		d, err := NewListDispatcher(p, order)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	return mk(), mk
}

// TestRunnerReuseMatchesFreshRun is the pooling differential test:
// one Runner carried dirty across instances of varying shape must
// produce exactly the schedule and trace of a fresh package-level Run
// — assignment by assignment, event by event. Any field Reset misses
// would surface here as a difference on the first shrink-then-grow
// transition.
func TestRunnerReuseMatchesFreshRun(t *testing.T) {
	var reused Runner
	for ci, in := range poolCases(t) {
		d1, mk := lptInputs(t, in)
		got, err := reused.Run(in, d1, Options{Trace: true})
		if err != nil {
			t.Fatalf("case %d: reused runner: %v", ci, err)
		}
		want, err := Run(in, mk(), Options{Trace: true})
		if err != nil {
			t.Fatalf("case %d: fresh run: %v", ci, err)
		}
		if !reflect.DeepEqual(got.Schedule.Assignments, want.Schedule.Assignments) {
			t.Errorf("case %d: reused runner schedule diverges from fresh run", ci)
		}
		if got.Schedule.M != want.Schedule.M {
			t.Errorf("case %d: M = %d, want %d", ci, got.Schedule.M, want.Schedule.M)
		}
		if !reflect.DeepEqual(got.Trace, want.Trace) {
			t.Errorf("case %d: reused runner trace diverges from fresh run (%d vs %d events)",
				ci, len(got.Trace), len(want.Trace))
		}
	}
}

// TestRunnerReuseMatchesFreshRunWithDuration repeats the differential
// check under a Duration override (the remote-fetch penalty hook),
// the one path where executed time and actual time differ.
func TestRunnerReuseMatchesFreshRunWithDuration(t *testing.T) {
	penalty := func(taskID, machine int) float64 {
		if (taskID+machine)%3 == 0 {
			return 2.5
		}
		return 1.0
	}
	var reused Runner
	for ci, in := range poolCases(t) {
		dur := func(j, i int) float64 { return in.Tasks[j].Actual * penalty(j, i) }
		d1, mk := lptInputs(t, in)
		got, err := reused.Run(in, d1, Options{Trace: true, Duration: dur})
		if err != nil {
			t.Fatalf("case %d: reused runner: %v", ci, err)
		}
		want, err := Run(in, mk(), Options{Trace: true, Duration: dur})
		if err != nil {
			t.Fatalf("case %d: fresh run: %v", ci, err)
		}
		if !reflect.DeepEqual(got.Schedule.Assignments, want.Schedule.Assignments) {
			t.Errorf("case %d: reused runner schedule diverges under Duration hook", ci)
		}
		if !reflect.DeepEqual(got.Trace, want.Trace) {
			t.Errorf("case %d: reused runner trace diverges under Duration hook", ci)
		}
	}
}

// TestRunnerResultInvalidatedByNextRun pins the ownership contract:
// the Result returned by Runner.Run aliases the Runner's internal
// state, so callers must copy anything they keep. The test documents
// the aliasing rather than fighting it — if this ever fails, the
// contract comment on Runner is stale, not the code.
func TestRunnerResultInvalidatedByNextRun(t *testing.T) {
	ins := poolCases(t)
	var r Runner
	d1, _ := lptInputs(t, ins[0])
	first, err := r.Run(ins[0], d1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	firstSched := first.Schedule
	d2, _ := lptInputs(t, ins[1])
	second, err := r.Run(ins[1], d2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if firstSched != second.Schedule {
		t.Fatalf("Runner.Run returned a different *Schedule across calls; the pooling contract assumes reuse")
	}
}

// TestRunnerPoolSharedAcrossGoroutines hammers one sync.Pool of
// Runners from many goroutines under -race: every goroutine runs the
// full case list through pooled runners and checks each schedule
// against the precomputed fresh-run makespans. The race detector
// verifies Get/Put hygiene; the makespan check verifies results are
// not cross-contaminated between goroutines.
func TestRunnerPoolSharedAcrossGoroutines(t *testing.T) {
	ins := poolCases(t)
	want := make([]float64, len(ins))
	mks := make([]func() Dispatcher, len(ins))
	for i, in := range ins {
		var mk func() Dispatcher
		_, mk = lptInputs(t, in)
		mks[i] = mk
		res, err := Run(in, mk(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Schedule.Makespan()
	}

	pool := sync.Pool{New: func() any { return new(Runner) }}
	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i, in := range ins {
					r := pool.Get().(*Runner)
					res, err := r.Run(in, mks[i](), Options{})
					if err != nil {
						errs <- err
						pool.Put(r)
						return
					}
					got := res.Schedule.Makespan()
					pool.Put(r)
					if got != want[i] {
						errs <- errMakespan{i, got, want[i]}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errMakespan struct {
	caseIdx   int
	got, want float64
}

func (e errMakespan) Error() string {
	return "pooled runner makespan mismatch on case " +
		string(rune('0'+e.caseIdx)) + ": got != want"
}

// TestRunnerResetZeroesSchedule locks the Reset contract the reset
// lint rule enforces structurally: after Reset(n, m), no assignment
// from a previous, larger run is visible.
func TestRunnerResetZeroesSchedule(t *testing.T) {
	var r Runner
	in := poolCases(t)[0]
	d, _ := lptInputs(t, in)
	if _, err := r.Run(in, d, Options{Trace: true}); err != nil {
		t.Fatal(err)
	}
	r.Reset(3, 2)
	if len(r.res.Trace) != 0 {
		t.Errorf("Reset left %d trace events", len(r.res.Trace))
	}
	if len(r.sched.Assignments) != 3 || r.sched.M != 2 {
		t.Fatalf("Reset shaped schedule as (%d tasks, M=%d), want (3, 2)",
			len(r.sched.Assignments), r.sched.M)
	}
	for j, a := range r.sched.Assignments {
		if a != (sched.Assignment{}) {
			t.Errorf("assignment %d not zeroed after Reset: %+v", j, a)
		}
	}
	for _, started := range r.started {
		if started {
			t.Error("started bitset not cleared by Reset")
		}
	}
}
