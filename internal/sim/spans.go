package sim

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/tick"
)

// flatScratch is one worker's private event-loop state. Each worker
// owns one, so shards running concurrently never share a heap.
type flatScratch struct {
	heap    []mEvent
	retry   []int32
	crashes []mEvent
}

// runSpan executes shard s to completion, writing only task-, machine-
// and shard-indexed state no other shard touches. Three paths:
//
//   - replayLinear: a one-machine shard with no crashes has no
//     contention at all — its tasks are, provably, exactly its queue in
//     priority order, so execution is a linear replay with a running
//     tick sum and no heap (the none-placement fast path);
//   - runSpanHeap: the general event loop over the shard's machines;
//   - runSpanFailures: the fail-stop port of RunWithFailures, used only
//     for shards that actually contain crashes.
//
// This is the benchmarked FlatRunner event loop: everything statically
// reachable from here must not allocate (the hotalloc rule enforces it).
//
//perf:hotpath
func (r *FlatRunner) runSpan(in *task.Instance, p *placement.Placement, s int,
	sc *flatScratch, opts *FlatOptions) {
	ms := r.shardMachines[r.shardOff[s]:r.shardOff[s+1]]
	if len(r.crashes) > 0 {
		sc.crashes = sc.crashes[:0]
		for _, c := range r.crashes {
			if int(r.shardOf[c.m]) == s {
				sc.crashes = append(sc.crashes, c)
			}
		}
		if len(sc.crashes) > 0 {
			r.runSpanFailures(p, s, ms, sc)
			return
		}
		// No crashes reach this shard: fail-stop semantics reduce to
		// plain list scheduling, and every started task completes.
	}
	if len(ms) == 1 {
		r.replayLinear(s, ms[0], opts)
		return
	}
	r.runSpanHeap(s, ms, sc, opts)
}

// replayLinear executes a one-machine shard without a heap. The
// machine's CSR queue holds its eligible tasks in priority order; a
// singleton shard means every one of those tasks is placed only here
// (any second replica would have merged that machine into a larger
// component), so each is unstarted when scanned and the whole run is
// one pass accumulating a tick clock.
func (r *FlatRunner) replayLinear(s int, mach int32, opts *FlatOptions) {
	q := r.qTasks[r.qOff[mach]:r.qOff[mach+1]]
	var trace []Event
	tr := 0
	if opts.Trace {
		trace = r.res.Trace[2*r.shardTaskOff[s]:]
	}
	now := tick.Tick(0)
	mi := int(mach)
	for k, j := range q {
		var d tick.Tick
		if opts.Duration == nil {
			d = r.durTick[j]
		} else {
			var ok bool
			if d, ok = r.hookTick(s, int(j), mi, mEvent{t: now, m: mach}, opts); !ok {
				r.shardStarted[s] = int32(k)
				return
			}
		}
		end := tick.SatAdd(now, d)
		r.sched.Assignments[j] = sched.Assignment{
			Task: int(j), Machine: mi, Start: now.Seconds(), End: end.Seconds(),
		}
		if opts.Trace {
			trace[tr] = Event{Time: now.Seconds(), Machine: mi, Task: int(j), Kind: "start"}
			trace[tr+1] = Event{Time: end.Seconds(), Machine: mi, Task: int(j), Kind: "finish"}
			tr += 2
		}
		now = end
	}
	r.shardStarted[s] = int32(len(q))
}

// runSpanHeap is the general shard event loop: pop the earliest idle
// machine, hand it the highest-priority unstarted task from its queue,
// push its completion back. Identical decisions to Runner.Run with a
// ListDispatcher — same (time, machine) pop order, same started-skip
// queue scan — just over ticks and flat state.
func (r *FlatRunner) runSpanHeap(s int, ms []int32, sc *flatScratch, opts *FlatOptions) {
	h := sc.heap[:0]
	for _, i := range ms {
		h = append(h, mEvent{t: 0, m: i}) // ascending machines at t=0: already a valid heap
	}
	var trace []Event
	tr := 0
	if opts.Trace {
		trace = r.res.Trace[2*r.shardTaskOff[s]:]
	}
	started := int32(0)
	for len(h) > 0 {
		var ev mEvent
		h, ev = mPop(h)
		i := ev.m
		q := r.qTasks[r.qOff[i]:r.qOff[i+1]]
		j := int32(-1)
		for int(r.head[i]) < len(q) {
			cand := q[r.head[i]]
			r.head[i]++
			if !r.started[cand] {
				j = cand
				break
			}
		}
		if j < 0 {
			continue // queue exhausted: the machine retires
		}
		r.started[j] = true
		started++
		var d tick.Tick
		if opts.Duration == nil {
			d = r.durTick[j]
		} else {
			var ok bool
			if d, ok = r.hookTick(s, int(j), int(i), ev, opts); !ok {
				break
			}
		}
		end := tick.SatAdd(ev.t, d)
		r.sched.Assignments[j] = sched.Assignment{
			Task: int(j), Machine: int(i), Start: ev.t.Seconds(), End: end.Seconds(),
		}
		if opts.Trace {
			trace[tr] = Event{Time: ev.t.Seconds(), Machine: int(i), Task: int(j), Kind: "start"}
			trace[tr+1] = Event{Time: end.Seconds(), Machine: int(i), Task: int(j), Kind: "finish"}
			tr += 2
		}
		h = mPush(h, mEvent{t: end, m: i})
	}
	r.shardStarted[s] = started
	sc.heap = h[:0]
}

// hookTick converts a Duration-hook value to ticks, recording a
// shard error keyed at the current event on failure. The float engine
// trusts the hook's contract (deterministic, non-negative, finite);
// fixed-point time has to enforce it, because a negative or non-finite
// duration has no tick representation.
func (r *FlatRunner) hookTick(s, j, machine int, ev mEvent, opts *FlatOptions) (tick.Tick, bool) {
	sec := opts.Duration(j, machine)
	d, err := tick.FromSeconds(sec)
	if err != nil {
		//lint:ignore hotalloc duration-hook rejection path: the run is over, allocation is fine
		r.shardErrs[s] = spanError{key: ev, err: fmt.Errorf(
			"sim: duration hook for task %d on machine %d: %w", j, machine, err)}
		return 0, false
	}
	if d < 0 {
		//lint:ignore hotalloc duration-hook rejection path: the run is over, allocation is fine
		r.shardErrs[s] = spanError{key: ev, err: fmt.Errorf(
			"sim: duration hook returned negative %v for task %d on machine %d", sec, j, machine)}
		return 0, false
	}
	return d, true
}

// runSpanFailures is the shard-local port of RunWithFailures: same
// retry-ahead-of-queue dispatch, dormant tracking, crash-before-
// equal-time-events interleaving, and strand checks — restricted to
// the shard's machines, tasks, and crashes. The restriction is
// equivalence-preserving: a crash can only strand or free tasks whose
// replicas live in the crashing machine's shard, and waking another
// shard's dormant machine is output-neutral (it finds no work and goes
// dormant again). Trace and Duration are rejected in prepare, so this
// path never consults them.
func (r *FlatRunner) runSpanFailures(p *placement.Placement, s int, ms []int32, sc *flatScratch) {
	h := sc.heap[:0]
	for _, i := range ms {
		h = append(h, mEvent{t: 0, m: i})
	}
	// The loop runs as a separate function so its early error returns
	// and the normal exit share one explicit teardown here — a deferred
	// closure would do the same job but allocates, and this is the
	// benchmarked zero-alloc path.
	completedCount, h, retry := r.failureLoop(p, s, ms, sc, h)
	sc.heap = h[:0]
	sc.retry = retry[:0]
	// In failure mode the per-shard tally is completions, matching
	// the sequential engine's never-completed accounting.
	r.shardStarted[s] = completedCount
}

// failureLoop is runSpanFailures' event loop, returning the completion
// tally and the (possibly regrown) heap and retry slices for reuse.
func (r *FlatRunner) failureLoop(p *placement.Placement, s int, ms []int32,
	sc *flatScratch, h []mEvent) (int32, []mEvent, []int32) {
	retry := sc.retry[:0]
	crashes := sc.crashes
	tasks := r.shardTasks[r.shardTaskOff[s]:r.shardTaskOff[s+1]]
	completedCount := int32(0)

	for len(h) > 0 || len(crashes) > 0 {
		if len(crashes) > 0 && (len(h) == 0 || crashes[0].t <= h[0].t) {
			c := crashes[0]
			crashes = crashes[1:]
			if r.dead[c.m] {
				continue
			}
			r.dead[c.m] = true
			if j := r.runTask[c.m]; j >= 0 {
				switch {
				case r.runEnd[c.m] <= c.t:
					// Finished exactly at (or before) the crash; its idle
					// event will be skipped on the dead machine.
					r.completed[j] = true
					completedCount++
					r.runTask[c.m] = -1
				case !r.completed[j]:
					// In-flight work is lost: erase and re-offer.
					r.sched.Assignments[j] = sched.Assignment{}
					r.runTask[c.m] = -1
					if !survivable(p, int(j), r.dead) {
						//lint:ignore hotalloc unsurvivable-crash error path: the run is over, allocation is fine
						r.shardErrs[s] = spanError{key: c, err: fmt.Errorf(
							"%w: task %d only on machine %d", ErrUnsurvivable, j, c.m)}
						return completedCount, h, retry
					}
					retry = append(retry, j)
					for _, i := range ms {
						if r.dormant[i] && !r.dead[i] {
							r.dormant[i] = false
							t := c.t
							if r.dormantAt[i] > t {
								t = r.dormantAt[i]
							}
							h = mPush(h, mEvent{t: t, m: i})
						}
					}
				}
			}
			// A pending task whose every replica is dead is stranded.
			for _, j := range tasks {
				if !r.completed[j] && !survivable(p, int(j), r.dead) && !r.shardRunningAlive(ms, j) {
					//lint:ignore hotalloc unsurvivable-crash error path: the run is over, allocation is fine
					r.shardErrs[s] = spanError{key: c, err: fmt.Errorf("%w: task %d", ErrUnsurvivable, j)}
					return completedCount, h, retry
				}
			}
			continue
		}
		var ev mEvent
		h, ev = mPop(h)
		i := ev.m
		if r.dead[i] {
			continue
		}
		if j := r.runTask[i]; j >= 0 && r.runEnd[i] <= ev.t {
			r.completed[j] = true
			completedCount++
			r.runTask[i] = -1
		}
		// Dispatch: lost tasks first (highest priority among those
		// eligible here), then the regular queue.
		j := int32(-1)
		bestIdx := -1
		for idx, cand := range retry {
			if (bestIdx < 0 || r.priorityOf[cand] < r.priorityOf[retry[bestIdx]]) &&
				machineEligible(p, int(cand), int(i)) {
				bestIdx = idx
			}
		}
		if bestIdx >= 0 {
			j = retry[bestIdx]
			retry[bestIdx] = retry[len(retry)-1]
			retry = retry[:len(retry)-1]
		} else {
			q := r.qTasks[r.qOff[i]:r.qOff[i+1]]
			for int(r.head[i]) < len(q) {
				cand := q[r.head[i]]
				r.head[i]++
				if !r.started[cand] {
					j = cand
					r.started[cand] = true
					break
				}
			}
		}
		if j < 0 {
			r.dormant[i] = true
			r.dormantAt[i] = ev.t
			continue
		}
		end := tick.SatAdd(ev.t, r.durTick[j])
		r.runTask[i] = j
		r.runEnd[i] = end
		r.sched.Assignments[j] = sched.Assignment{
			Task: int(j), Machine: int(i), Start: ev.t.Seconds(), End: end.Seconds(),
		}
		h = mPush(h, mEvent{t: end, m: i})
	}
	return completedCount, h, retry
}

// shardRunningAlive reports whether task j is in flight on an alive
// machine of the shard.
func (r *FlatRunner) shardRunningAlive(ms []int32, j int32) bool {
	for _, i := range ms {
		if r.runTask[i] == j && !r.dead[i] {
			return true
		}
	}
	return false
}
