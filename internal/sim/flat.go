package sim

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/tick"
)

var (
	simFlatRuns   = obs.GetCounter("sim.flat_runs")
	simFlatShards = obs.GetCounter("sim.flat_shards")
)

// Engine selects a phase-2 simulator implementation. The two engines
// execute the same list-scheduling semantics; they differ in number
// representation and memory layout, and therefore in speed and in the
// last ulp of reported times.
type Engine int

const (
	// EngineEvent is the float64 event-heap reference engine
	// (Runner/ListDispatcher): pluggable Dispatcher interface, exact
	// float arithmetic, the engine every analytic experiment and
	// metamorphic anchor runs on.
	EngineEvent Engine = iota
	// EngineFlat is the data-oriented engine (FlatRunner): flat SoA
	// state, int64 fixed-point time, and per-group sharded execution.
	// Times are quantized to nanoticks (error ≤ 0.5e-9 s per duration,
	// inside sched.Verify's tolerance); list-scheduling decisions match
	// EngineEvent except on sub-nanotick ties.
	EngineFlat
)

// FlatOptions configures a flat-engine run. It is the FlatRunner
// counterpart of Options plus fail-stop crash injection.
type FlatOptions struct {
	// Trace records start/finish events, exactly as Options.Trace.
	Trace bool
	// Duration, when non-nil, overrides the executed duration of a task
	// on a machine, under the same contract as Options.Duration
	// (deterministic, non-negative, exactly once per started task on a
	// successful run; on an error return, shards that were still
	// running may have invoked it for tasks the sequential engine would
	// not have reached).
	Duration func(taskID, machine int) float64
	// Failures injects fail-stop machine crashes with RunWithFailures
	// semantics. Incompatible with Trace and Duration, as in the
	// reference engine (RunWithFailures exposes neither).
	Failures []Failure
}

// spanError is a shard-local error together with the (time, machine)
// event key it was raised at, so the merge can return exactly the
// error a sequential run over the global event order would have hit
// first: the minimum key across shards.
type spanError struct {
	key mEvent
	err error
}

// FlatRunner is the data-oriented simulator core: the hot state of a
// run lives in flat structure-of-arrays slices indexed by task and
// machine IDs (no pointers to chase), simulated time is int64
// fixed-point (tick.Tick), and execution is decomposed into
// independent shards — the connected components of the "shares a
// replica set" relation over machines. Under the paper's group:k
// placement each replica group is one shard; under no-replication
// every machine is its own shard and the event heap disappears
// entirely; under replicate-everywhere there is a single shard and the
// engine degenerates to one global event loop.
//
// Layout:
//
//	tasks    durTick[j]            executed ticks (no Duration hook)
//	         started[j]            handed out yet?
//	         taskShard[j]          owning shard
//	machines qTasks[qOff[i]:qOff[i+1]]  per-machine queue: eligible
//	                               task IDs in priority order (CSR)
//	         head[i]               queue scan position
//	shards   shardMachines[shardOff[s]:shardOff[s+1]]  member machines
//	         shardTaskOff[s]       prefix sums of per-shard task counts
//
// Because tasks never cross shards, every Assignment, trace region,
// and started flag a shard writes is disjoint from every other
// shard's, so shards run on par workers with plain (non-atomic) writes
// and the merged output is byte-identical to the sequential order —
// int64 time makes per-machine completion times exact sums, not
// rounding-order-dependent floats. The differential suite in
// flat_test.go pins that equivalence at every worker count.
//
// The zero value is ready to use. Like Runner, a FlatRunner owns the
// Result it returns (valid until the next call), performs zero
// steady-state allocations across same-shaped runs, and is not safe
// for concurrent use.
type FlatRunner struct {
	// SoA task state.
	durTick    []tick.Tick
	started    []bool
	priorityOf []int32 // failure mode: position of task in the order

	// CSR per-machine queues.
	qTasks []int32
	qOff   []int32
	head   []int32

	// Shard decomposition (shardOf, shardMachines, taskShard, …),
	// shared with FlatOpenRunner.
	shardSet

	// Per-shard outcome slots, written by exactly one worker each.
	shardStarted []int32
	shardErrs    []spanError

	// Failure-mode state, sized only when Failures are present.
	dead      []bool
	dormant   []bool
	dormantAt []tick.Tick
	runTask   []int32
	runEnd    []tick.Tick
	completed []bool
	crashes   []mEvent

	// Per-worker event-loop scratch.
	scratch []flatScratch

	// opts is the caller's FlatOptions for the current run, copied
	// here so the engine passes a pointer to already-heap-resident
	// state around instead of letting a parameter escape per call.
	// run clears it on exit so a caller's Duration closure or
	// Failures slice is not retained past the run that used it.
	opts FlatOptions

	sched sched.Schedule
	res   Result
}

// Reset re-initializes every field of the FlatRunner for an n-task,
// m-machine run, retaining capacity. Slices are truncated here and
// regrown to their exact sizes in prepare; Run calls it internally.
func (r *FlatRunner) Reset(n, m int) {
	r.durTick = r.durTick[:0]
	r.started = r.started[:0]
	r.priorityOf = r.priorityOf[:0]
	r.qTasks = r.qTasks[:0]
	r.qOff = r.qOff[:0]
	r.head = r.head[:0]
	r.shardSet.reset()
	r.shardStarted = r.shardStarted[:0]
	r.shardErrs = r.shardErrs[:0]
	r.dead = r.dead[:0]
	r.dormant = r.dormant[:0]
	r.dormantAt = r.dormantAt[:0]
	r.runTask = r.runTask[:0]
	r.runEnd = r.runEnd[:0]
	r.completed = r.completed[:0]
	r.crashes = r.crashes[:0]
	r.scratch = r.scratch[:0] // backing entries (and their buffers) are reused
	r.opts = FlatOptions{}
	r.sched.Reset(n, m)
	r.res = Result{Schedule: &r.sched, Trace: r.res.Trace[:0]}
}

// RunFlat executes the instance on the flat engine sequentially (one
// global event loop, no shard decomposition). The returned Result is
// freshly allocated and caller-owned.
func RunFlat(in *task.Instance, p *placement.Placement, order []int, opts FlatOptions) (*Result, error) {
	var r FlatRunner
	return r.Run(in, p, order, opts)
}

// RunFlatSharded is RunFlat through the shard decomposition on the
// given number of workers; see FlatRunner.RunSharded.
func RunFlatSharded(in *task.Instance, p *placement.Placement, order []int,
	opts FlatOptions, workers int) (*Result, error) {
	var r FlatRunner
	return r.RunSharded(in, p, order, opts, workers)
}

// Run executes list scheduling over the placement and priority order
// on the flat engine, as a single event loop over all machines — the
// sequential reference the sharded path is differentially tested
// against. Results are byte-identical to RunSharded at every worker
// count.
func (r *FlatRunner) Run(in *task.Instance, p *placement.Placement, order []int,
	opts FlatOptions) (*Result, error) {
	return r.run(in, p, order, opts, 1, false)
}

// RunSharded partitions the instance into independent shards (the
// connected components of machines linked by shared replica sets),
// runs each shard's event loop on one of workers goroutines
// (workers ≤ 0 selects GOMAXPROCS; workers == 1 runs inline with zero
// goroutines), and merges the results. The merged Schedule, Trace,
// and error are byte-identical to Run for every worker count: shards
// share no tasks, int64 tick sums are interleaving-independent, and
// equal-key trace events are same-machine and therefore same-shard.
func (r *FlatRunner) RunSharded(in *task.Instance, p *placement.Placement, order []int,
	opts FlatOptions, workers int) (*Result, error) {
	return r.run(in, p, order, opts, workers, true)
}

func (r *FlatRunner) run(in *task.Instance, p *placement.Placement, order []int,
	o FlatOptions, workers int, sharded bool) (*Result, error) {
	defer func() { r.opts = FlatOptions{} }()
	n, m := in.N(), in.M
	r.Reset(n, m)
	// Copy the options into the reused field instead of taking &o: the
	// address of a parameter escapes and would cost one heap
	// allocation per call, breaking the 0 allocs/op invariant the
	// benchmarks gate. Assigned after Reset (which clears the field)
	// and released on exit by the deferred clear above.
	r.opts = o
	opts := &r.opts
	if err := r.prepare(in, p, order, opts, sharded); err != nil {
		return nil, err
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.nShards {
		workers = r.nShards
	}
	if workers < 1 {
		workers = 1
	}
	r.ensureScratch(workers)
	if workers <= 1 {
		sc := &r.scratch[0]
		for s := 0; s < r.nShards; s++ {
			r.runSpan(in, p, s, sc, opts)
		}
	} else {
		// Striped shard assignment: worker w owns shards w, w+workers,
		// … . Ownership is deterministic but irrelevant to output —
		// every write a shard makes is into task-, machine-, or
		// shard-indexed slots no other shard touches.
		par.Map(workers, workers, func(w int) struct{} {
			sc := &r.scratch[w]
			for s := w; s < r.nShards; s += workers {
				r.runSpan(in, p, s, sc, opts)
			}
			return struct{}{}
		})
	}
	simFlatRuns.Inc()
	simFlatShards.Add(int64(r.nShards))

	// Merge: the error a sequential global event loop would hit first
	// is the one with the minimum (time, machine) key across shards.
	errAt := -1
	for s := 0; s < r.nShards; s++ {
		if r.shardErrs[s].err == nil {
			continue
		}
		if errAt < 0 || mLess(r.shardErrs[s].key, r.shardErrs[errAt].key) {
			errAt = s
		}
	}
	if errAt >= 0 {
		return nil, r.shardErrs[errAt].err
	}
	total := 0
	for s := 0; s < r.nShards; s++ {
		total += int(r.shardStarted[s])
	}
	if total != n {
		if len(r.crashes) > 0 {
			return nil, fmt.Errorf("sim: %d of %d tasks never completed", n-total, n)
		}
		return nil, fmt.Errorf("sim: %d of %d tasks never executed", n-total, n)
	}
	if opts.Trace {
		sortTrace(r.res.Trace)
	}
	return &r.res, nil
}

// prepare validates the inputs and builds the SoA state: durations in
// ticks, CSR queues, the shard decomposition, per-shard slots, and —
// when failures are injected — the crash list and failure-mode arrays.
func (r *FlatRunner) prepare(in *task.Instance, p *placement.Placement, order []int,
	opts *FlatOptions, sharded bool) error {
	n, m := in.N(), in.M
	if p.N() != n || p.M != m {
		return fmt.Errorf("sim: placement %dx%d does not match instance %dx%d",
			p.N(), p.M, n, m)
	}
	if len(order) != n {
		return fmt.Errorf("sim: priority order has %d entries for %d tasks", len(order), n)
	}
	if err := placement.CheckSets(p.Sets, m); err != nil {
		return err
	}
	if len(opts.Failures) > 0 && (opts.Trace || opts.Duration != nil) {
		return fmt.Errorf("sim: failures cannot be combined with Trace or Duration")
	}

	// Permutation check; started doubles as the seen-scratch, exactly
	// as in ListDispatcher.Reset.
	r.started = growBoolZero(r.started, n)
	for _, j := range order {
		if j < 0 || j >= n || r.started[j] {
			return fmt.Errorf("sim: priority order is not a permutation (task %d)", j)
		}
		r.started[j] = true
	}
	clear(r.started)

	// Executed durations in ticks. Under a Duration hook the executed
	// time depends on the machine and is converted at dispatch instead.
	if opts.Duration == nil {
		r.durTick = growTick(r.durTick, n)
		for j := 0; j < n; j++ {
			t, err := tick.FromSeconds(in.Tasks[j].Actual)
			if err != nil {
				return fmt.Errorf("sim: task %d actual time: %w", j, err)
			}
			if t < 0 {
				return fmt.Errorf("sim: task %d has negative actual time %v", j, in.Tasks[j].Actual)
			}
			r.durTick[j] = t
		}
	}

	// CSR queues: queue of machine i is qTasks[qOff[i]:qOff[i+1]],
	// task IDs in priority order — ListDispatcher's [][]int flattened
	// into two slabs.
	r.qOff = growI32Zero(r.qOff, m+1)
	for j := 0; j < n; j++ {
		for _, i := range p.Sets[j] {
			r.qOff[i+1]++
		}
	}
	for i := 0; i < m; i++ {
		r.qOff[i+1] += r.qOff[i]
	}
	r.qTasks = growI32(r.qTasks, int(r.qOff[m]))
	r.head = growI32Zero(r.head, m) // fill cursors here, scan positions during the run
	for _, j := range order {
		for _, i := range p.Sets[j] {
			r.qTasks[r.qOff[i]+r.head[i]] = int32(j)
			r.head[i]++
		}
	}
	clear(r.head)

	if sharded {
		r.partition(p)
	} else {
		r.partitionTrivial(n, m)
	}

	// Per-shard task counts → trace regions and (failure mode) task
	// lists.
	r.buildTaskOffsets(n)
	r.shardStarted = growI32Zero(r.shardStarted, r.nShards)
	r.shardErrs = growSpanErr(r.shardErrs, r.nShards)

	if opts.Trace {
		r.res.Trace = growEvent(r.res.Trace, 2*n)
	}

	if len(opts.Failures) > 0 {
		if err := r.prepareFailures(in, order, opts); err != nil {
			return err
		}
	}
	return nil
}

func (r *FlatRunner) prepareFailures(in *task.Instance, order []int, opts *FlatOptions) error {
	n, m := in.N(), in.M
	r.crashes = r.crashes[:0]
	for _, f := range opts.Failures {
		if f.Machine < 0 || f.Machine >= m {
			return fmt.Errorf("sim: failure on invalid machine %d", f.Machine)
		}
		if f.Time < 0 {
			return fmt.Errorf("sim: failure at negative time %v", f.Time)
		}
		t, err := tick.FromSeconds(f.Time)
		if err != nil {
			return fmt.Errorf("sim: failure time on machine %d: %w", f.Machine, err)
		}
		r.crashes = append(r.crashes, mEvent{t: t, m: int32(f.Machine)})
	}
	// Deterministic crash order: (time, machine), the same total order
	// the event queue uses. Duplicate keys are identical crashes; the
	// second is a no-op on an already-dead machine.
	sort.Slice(r.crashes, func(a, b int) bool { return mLess(r.crashes[a], r.crashes[b]) })

	r.priorityOf = growI32(r.priorityOf, n)
	for pos, j := range order {
		r.priorityOf[j] = int32(pos)
	}
	// shardTasks: tasks grouped by shard (CSR with shardTaskOff), for
	// the per-crash strand checks.
	r.buildTaskLists(n)

	r.dead = growBoolZero(r.dead, m)
	r.dormant = growBoolZero(r.dormant, m)
	r.dormantAt = growTickZero(r.dormantAt, m)
	r.runTask = growI32(r.runTask, m)
	for i := range r.runTask {
		r.runTask[i] = -1
	}
	r.runEnd = growTickZero(r.runEnd, m)
	r.completed = growBoolZero(r.completed, n)
	return nil
}

func (r *FlatRunner) ensureScratch(workers int) {
	if cap(r.scratch) < workers {
		next := make([]flatScratch, workers)
		copy(next, r.scratch[:cap(r.scratch)])
		r.scratch = next
		return
	}
	r.scratch = r.scratch[:workers]
}

// Slice-regrow helpers: retain capacity, reallocate only on growth.
// The Zero variants clear the live region; the plain variants are for
// slices every element of which is overwritten before being read.

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI32Zero(s []int32, n int) []int32 {
	s = growI32(s, n)
	clear(s)
	return s
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growBoolZero(s []bool, n int) []bool {
	s = growBool(s, n)
	clear(s)
	return s
}

func growU32Zero(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growTick(s []tick.Tick, n int) []tick.Tick {
	if cap(s) < n {
		return make([]tick.Tick, n)
	}
	return s[:n]
}

func growTickZero(s []tick.Tick, n int) []tick.Tick {
	s = growTick(s, n)
	clear(s)
	return s
}

func growSpanErr(s []spanError, n int) []spanError {
	if cap(s) < n {
		return make([]spanError, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growEvent(s []Event, n int) []Event {
	if cap(s) < n {
		return make([]Event, n)
	}
	return s[:n]
}
