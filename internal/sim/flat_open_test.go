package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/tick"
	"repro/internal/workload"
)

// openArrivalSpecs is the arrival-process axis of the open
// differential matrix: memoryless, bursty, and replayed-trace traffic.
func openArrivalSpecs(n, m int, seed uint64) []struct {
	name string
	arr  []float64
} {
	traceTimes := make([]float64, n)
	r := rng.New(seed ^ 0x7ace)
	t := 0.0
	for i := range traceTimes {
		t += r.Float64() * 0.8
		traceTimes[i] = t
	}
	rate := float64(m) / 4
	return []struct {
		name string
		arr  []float64
	}{
		{"poisson", workload.MustArrivals(n, workload.ArrivalSpec{
			Process: "poisson", Rate: rate, Seed: seed})},
		{"mmpp", workload.MustArrivals(n, workload.ArrivalSpec{
			Process: "mmpp", Rate: rate, Seed: seed + 1})},
		{"trace", workload.MustArrivals(n, workload.ArrivalSpec{
			Process: "trace", Times: traceTimes})},
	}
}

func openPolicyOptions() []OpenOptions {
	return []OpenOptions{
		{Policy: CancelOnStart},
		{Policy: CancelOnCompletion, CancelCost: 0.25},
		// Zero cancellation cost makes cancelled losers wake at the very
		// tick the winner completed — the same-tick re-dispatch ordering
		// that keeps this configuration off the race-collapse fast path
		// and on the wheel loop, pinning that fallback.
		{Policy: CancelOnCompletion},
	}
}

func requireSameOpenResult(t *testing.T, label string, got, want *OpenResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Schedule.Assignments, want.Schedule.Assignments) {
		t.Fatalf("%s: schedule diverges", label)
	}
	if !reflect.DeepEqual(got.Responses, want.Responses) {
		t.Fatalf("%s: responses diverge", label)
	}
	if got.CancelledReplicas != want.CancelledReplicas {
		t.Fatalf("%s: cancelled %d, want %d", label, got.CancelledReplicas, want.CancelledReplicas)
	}
	if got.WastedTime != want.WastedTime {
		t.Fatalf("%s: wasted %v, want %v", label, got.WastedTime, want.WastedTime)
	}
	if got.End != want.End {
		t.Fatalf("%s: end %v, want %v", label, got.End, want.End)
	}
}

// TestFlatOpenShardedMatchesRun is the open-mode worker-count
// differential: RunSharded at every worker count is byte-identical —
// response by response, assignment by assignment, waste to the last
// bit — to the sequential flat open Run, across the placement ×
// arrival-process × cancel-policy matrix.
func TestFlatOpenShardedMatchesRun(t *testing.T) {
	for _, c := range flatCases(t) {
		n, m := c.in.N(), c.in.M
		for _, arr := range openArrivalSpecs(n, m, 40) {
			for _, opts := range openPolicyOptions() {
				label := c.name + "/" + arr.name + "/" + opts.Policy.String()
				want, err := RunFlatOpen(c.in, c.p, c.order, arr.arr, opts)
				if err != nil {
					t.Fatalf("%s: Run: %v", label, err)
				}
				for _, w := range flatWorkerCounts() {
					got, err := RunFlatOpenSharded(c.in, c.p, c.order, arr.arr, opts, w)
					if err != nil {
						t.Fatalf("%s/workers=%d: RunSharded: %v", label, w, err)
					}
					requireSameOpenResult(t, label+"/workers="+itoa(w), got, want)
				}
			}
		}
	}
}

// openExactInstance builds whole-second estimates and actuals, exact
// in both float64 and ticks, so the flat and float open engines make
// identical decisions and report identical times.
func openExactInstance(t *testing.T, n, m int, seed uint64) *task.Instance {
	t.Helper()
	est := make([]float64, n)
	act := make([]float64, n)
	r := rng.New(seed)
	for j := range act {
		act[j] = float64(1 + r.Intn(9))
		est[j] = float64(1 + r.Intn(9))
	}
	in, err := task.New(m, 9, est, act)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// openExactArrivals draws non-decreasing whole-second arrivals.
func openExactArrivals(n int, seed uint64) []float64 {
	r := rng.New(seed)
	arr := make([]float64, n)
	t := 0.0
	for i := range arr {
		t += float64(r.Intn(3))
		arr[i] = t
	}
	return arr
}

// TestFlatOpenMatchesEventEngineExact pins the flat open engine to the
// reference OpenRunner byte-for-byte on integer durations, arrivals
// and cancel cost, where tick quantization is exact — same replica
// wins, same responses, same waste — across both policies, all
// placement families, and every worker count. This is the open-mode
// cross-engine golden equivalence the issue's acceptance criteria
// name.
func TestFlatOpenMatchesEventEngineExact(t *testing.T) {
	shapes := []struct {
		n, m, k int
		seed    uint64
	}{{40, 8, 2, 51}, {55, 10, 5, 52}, {24, 6, 3, 53}}
	for _, s := range shapes {
		in := openExactInstance(t, s.n, s.m, s.seed)
		order := lptOrder(in)
		arrive := openExactArrivals(s.n, s.seed+9)
		placements := []struct {
			name string
			p    *placement.Placement
		}{
			{"none", nonePlacement(s.n, s.m, s.seed)},
			{"group", groupPlacement(t, s.n, s.m, s.k, s.seed)},
			{"all", placement.Everywhere(s.n, s.m)},
			{"mixed", mixedPlacement(s.n, s.m, s.seed)},
		}
		for _, pc := range placements {
			for _, opts := range []OpenOptions{
				{Policy: CancelOnStart},
				{Policy: CancelOnCompletion, CancelCost: 1},
				{Policy: CancelOnCompletion, CancelCost: 0},
			} {
				label := pc.name + "/" + opts.Policy.String()
				want, err := RunOpen(in, pc.p, order, arrive, opts)
				if err != nil {
					t.Fatalf("%s: event engine: %v", label, err)
				}
				for _, w := range flatWorkerCounts() {
					got, err := RunFlatOpenSharded(in, pc.p, order, arrive, opts, w)
					if err != nil {
						t.Fatalf("%s/workers=%d: flat engine: %v", label, w, err)
					}
					requireSameOpenResult(t, label+"/workers="+itoa(w), got, want)
				}
			}
		}
	}
}

// TestFlatOpenMatchesEventEngineEpsilon compares the engines on
// continuous durations and arrivals, where ticks quantize: decisions
// (winning machine, cancellation count) must still agree and every
// reported time must sit within the accumulated quantization bound.
func TestFlatOpenMatchesEventEngineEpsilon(t *testing.T) {
	for _, c := range flatCases(t) {
		n, m := c.in.N(), c.in.M
		for _, arr := range openArrivalSpecs(n, m, 77) {
			for _, opts := range openPolicyOptions() {
				label := c.name + "/" + arr.name + "/" + opts.Policy.String()
				want, err := RunOpen(c.in, c.p, c.order, arr.arr, opts)
				if err != nil {
					t.Fatalf("%s: event engine: %v", label, err)
				}
				got, err := RunFlatOpen(c.in, c.p, c.order, arr.arr, opts)
				if err != nil {
					t.Fatalf("%s: flat engine: %v", label, err)
				}
				// ≤ 0.5e-9 quantization per summed duration in a machine's
				// chain of at most n tasks, plus float slack for the
				// reference's own sums.
				eps := 1e-9 * float64(n+1)
				if got.CancelledReplicas != want.CancelledReplicas {
					t.Fatalf("%s: cancelled %d, event engine %d",
						label, got.CancelledReplicas, want.CancelledReplicas)
				}
				if math.Abs(got.WastedTime-want.WastedTime) > eps*float64(want.CancelledReplicas+1) {
					t.Fatalf("%s: wasted %v, event engine %v", label, got.WastedTime, want.WastedTime)
				}
				if math.Abs(got.End-want.End) > eps {
					t.Fatalf("%s: end %v, event engine %v", label, got.End, want.End)
				}
				for j, ga := range got.Schedule.Assignments {
					wa := want.Schedule.Assignments[j]
					if ga.Machine != wa.Machine {
						t.Fatalf("%s: task %d won on machine %d, event engine chose %d",
							label, j, ga.Machine, wa.Machine)
					}
					if math.Abs(ga.Start-wa.Start) > eps || math.Abs(ga.End-wa.End) > eps {
						t.Fatalf("%s: task %d times (%v,%v) drift from (%v,%v) beyond %v",
							label, j, ga.Start, ga.End, wa.Start, wa.End, eps)
					}
					if math.Abs(got.Responses[j]-want.Responses[j]) > eps {
						t.Fatalf("%s: task %d response %v drifts from %v",
							label, j, got.Responses[j], want.Responses[j])
					}
				}
			}
		}
	}
}

// TestFlatOpenMatchesBatch extends the open mode's metamorphic anchor
// to the flat engine: with every arrival at t=0 and CancelOnStart, the
// flat open simulator reproduces the batch flat simulator's schedule
// byte-for-byte — at every worker count.
func TestFlatOpenMatchesBatch(t *testing.T) {
	for _, c := range flatCases(t) {
		batch, err := RunFlat(c.in, c.p, c.order, FlatOptions{})
		if err != nil {
			t.Fatalf("%s: batch: %v", c.name, err)
		}
		arrive := make([]float64, c.in.N())
		for _, w := range flatWorkerCounts() {
			open, err := RunFlatOpenSharded(c.in, c.p, c.order, arrive,
				OpenOptions{Policy: CancelOnStart}, w)
			if err != nil {
				t.Fatalf("%s/workers=%d: open: %v", c.name, w, err)
			}
			if !reflect.DeepEqual(open.Schedule.Assignments, batch.Schedule.Assignments) {
				t.Fatalf("%s/workers=%d: open schedule diverged from batch", c.name, w)
			}
			if open.CancelledReplicas != 0 || open.WastedTime != 0 {
				t.Fatalf("%s/workers=%d: cancel-on-start wasted work: %d replicas, %v time",
					c.name, w, open.CancelledReplicas, open.WastedTime)
			}
			for j, a := range batch.Schedule.Assignments {
				if open.Responses[j] != a.End {
					t.Fatalf("%s/workers=%d: task %d response %v != completion %v",
						c.name, w, j, open.Responses[j], a.End)
				}
			}
		}
	}
}

// TestFlatOpenCancelledMachineResumes pins the cancellation semantics
// on the hand-worked scenario of TestOpenCancelledMachineResumes,
// through both the general path (mixed sets) and a Duration hook.
func TestFlatOpenCancelledMachineResumes(t *testing.T) {
	in := &task.Instance{M: 2, Alpha: 1, Tasks: []task.Task{
		{ID: 0, Estimate: 8, Actual: 8},
		{ID: 1, Estimate: 4, Actual: 4},
	}}
	p := placement.New(2, 2)
	p.Sets[0] = []int{0, 1}
	p.Sets[1] = []int{0}
	dur := func(taskID, machine int) float64 {
		if taskID == 0 && machine == 1 {
			return 2
		}
		return in.Tasks[taskID].Actual
	}
	res, err := RunFlatOpen(in, p, []int{0, 1}, []float64{0, 1}, OpenOptions{
		Policy: CancelOnCompletion, CancelCost: 1, Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{2, 6}; !reflect.DeepEqual(res.Responses, want) {
		t.Fatalf("responses = %v, want %v", res.Responses, want)
	}
	if res.CancelledReplicas != 1 || res.WastedTime != 3 {
		t.Fatalf("waste = %d replicas / %v time, want 1 / 3", res.CancelledReplicas, res.WastedTime)
	}
	a := res.Schedule.Assignments[1]
	if a.Machine != 0 || a.Start != 3 || a.End != 7 {
		t.Fatalf("task 1 assignment = %+v, want machine 0, 3→7", a)
	}
}

// TestFlatOpenReuseMatchesFresh carries one FlatOpenRunner dirty
// across instances of varying shape: reuse must be invisible in the
// output.
func TestFlatOpenReuseMatchesFresh(t *testing.T) {
	var reused FlatOpenRunner
	for ci, in := range poolCases(t) {
		p := groupPlacement(t, in.N(), in.M, 2, uint64(ci)+7)
		order := lptOrder(in)
		arrive := workload.MustArrivals(in.N(), workload.ArrivalSpec{
			Process: "poisson", Rate: float64(in.M) / 3, Seed: 600 + uint64(ci),
		})
		opts := OpenOptions{Policy: CancelOnCompletion, CancelCost: 0.25}
		if ci%2 == 0 {
			opts = OpenOptions{Policy: CancelOnStart}
		}
		got, err := reused.RunSharded(in, p, order, arrive, opts, 2)
		if err != nil {
			t.Fatalf("case %d: reused: %v", ci, err)
		}
		want, err := RunFlatOpenSharded(in, p, order, arrive, opts, 2)
		if err != nil {
			t.Fatalf("case %d: fresh: %v", ci, err)
		}
		requireSameOpenResult(t, "reuse case "+itoa(ci), got, want)
	}
}

// TestFlatOpenZeroSteadyStateAllocs asserts the replay loop's pooling
// contract directly: after a warm-up run, repeat runs of the same
// shape allocate nothing. This is the same claim the committed bench
// baseline pins at n=10k; here it gates small shapes in plain go test.
func TestFlatOpenZeroSteadyStateAllocs(t *testing.T) {
	in := openExactInstance(t, 64, 8, 91)
	p := placement.Everywhere(64, 8)
	order := lptOrder(in)
	arrive := openExactArrivals(64, 92)
	opts := OpenOptions{Policy: CancelOnCompletion, CancelCost: 1}
	var r FlatOpenRunner
	if _, err := r.RunSharded(in, p, order, arrive, opts, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.RunSharded(in, p, order, arrive, opts, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/run = %v, want 0", allocs)
	}
}

// TestFlatOpenValidation covers the flat open engine's input
// rejection: the reference engine's checks (same fragments), plus the
// flat-only tick-representability and replica-set requirements.
func TestFlatOpenValidation(t *testing.T) {
	in := openExactInstance(t, 4, 2, 95)
	p := placement.Everywhere(4, 2)
	order := identityOrder(4)
	arrive := make([]float64, 4)
	check := func(name, frag string, run func() error) {
		t.Helper()
		err := run()
		if err == nil {
			t.Errorf("%s: expected error", name)
			return
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: error %q does not contain %q", name, err, frag)
		}
	}
	check("placement shape", "placement shape", func() error {
		_, err := RunFlatOpen(in, placement.New(3, 2), order, arrive, OpenOptions{})
		return err
	})
	check("order length", "priority order", func() error {
		_, err := RunFlatOpen(in, p, []int{0, 1}, arrive, OpenOptions{})
		return err
	})
	check("order not permutation", "not a permutation", func() error {
		_, err := RunFlatOpen(in, p, []int{0, 1, 2, 2}, arrive, OpenOptions{})
		return err
	})
	check("arrive length", "arrival times", func() error {
		_, err := RunFlatOpen(in, p, order, []float64{0}, OpenOptions{})
		return err
	})
	check("arrive NaN", "finite", func() error {
		_, err := RunFlatOpen(in, p, order, []float64{0, math.NaN(), 1, 2}, OpenOptions{})
		return err
	})
	check("arrive unsorted", "not sorted", func() error {
		_, err := RunFlatOpen(in, p, order, []float64{3, 1, 2, 4}, OpenOptions{})
		return err
	})
	check("arrive overflow", "arrival", func() error {
		_, err := RunFlatOpen(in, p, order, []float64{0, 1, 2, 1e18}, OpenOptions{})
		return err
	})
	check("negative cancel cost", "cancel cost", func() error {
		_, err := RunFlatOpen(in, p, order, arrive, OpenOptions{CancelCost: -1})
		return err
	})
	check("unknown policy", "cancel policy", func() error {
		_, err := RunFlatOpen(in, p, order, arrive, OpenOptions{Policy: CancelPolicy(9)})
		return err
	})
	check("invalid replica set", "machine", func() error {
		bad := placement.New(4, 2)
		for j := 0; j < 4; j++ {
			bad.Sets[j] = []int{0}
		}
		bad.Sets[2] = []int{5}
		_, err := RunFlatOpen(in, bad, order, arrive, OpenOptions{})
		return err
	})
	check("empty replica set", "task 3", func() error {
		bad := placement.New(4, 2)
		for j := 0; j < 4; j++ {
			bad.Sets[j] = []int{0}
		}
		bad.Sets[3] = nil
		_, err := RunFlatOpen(in, bad, order, arrive, OpenOptions{})
		return err
	})
	check("NaN actual", "actual time", func() error {
		bad := openExactInstance(t, 4, 2, 95)
		bad.Tasks[1].Actual = math.NaN()
		_, err := RunFlatOpen(bad, p, order, arrive, OpenOptions{})
		return err
	})
	check("negative actual", "negative actual", func() error {
		bad := openExactInstance(t, 4, 2, 95)
		bad.Tasks[2].Actual = -3
		_, err := RunFlatOpen(bad, p, order, arrive, OpenOptions{})
		return err
	})
	check("hook NaN", "duration hook", func() error {
		_, err := RunFlatOpen(in, p, order, arrive,
			OpenOptions{Duration: func(int, int) float64 { return math.NaN() }})
		return err
	})
	check("hook negative", "negative", func() error {
		_, err := RunFlatOpen(in, p, order, arrive,
			OpenOptions{Duration: func(int, int) float64 { return -1 }})
		return err
	})
}

// TestFlatOpenHookErrorDeterministicAcrossWorkers checks that a
// Duration-hook failure surfaces as the same error at every worker
// count (the min-(time,machine) merge rule).
func TestFlatOpenHookErrorDeterministicAcrossWorkers(t *testing.T) {
	in := openExactInstance(t, 30, 6, 97)
	p := groupPlacement(t, 30, 6, 2, 97)
	order := lptOrder(in)
	arrive := openExactArrivals(30, 98)
	dur := func(j, i int) float64 {
		if j%7 == 3 {
			return math.Inf(1)
		}
		return in.Tasks[j].Actual
	}
	opts := OpenOptions{Policy: CancelOnCompletion, CancelCost: 0.5, Duration: dur}
	_, wantErr := RunFlatOpen(in, p, order, arrive, opts)
	if wantErr == nil {
		t.Fatal("expected a duration-hook error")
	}
	for _, w := range flatWorkerCounts() {
		_, err := RunFlatOpenSharded(in, p, order, arrive, opts, w)
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: err %v, want %v", w, err, wantErr)
		}
	}
}

// TestSatAddScaled pins the race-collapse waste batching against its
// specification: cnt repeated tick.SatAdds of each, including the
// clamp-at-Max-and-stay saturation behaviour the differential suite's
// whole-second inputs never reach.
func TestSatAddScaled(t *testing.T) {
	cases := []struct {
		acc, each tick.Tick
		cnt       int32
	}{
		{0, 5, 3},
		{17, 0, 4},
		{17, 9, 0},
		{tick.Max - 10, 7, 2},
		{tick.Max - 10, 5, 2}, // lands exactly on Max
		{tick.Max, 1, 1},
		{tick.Max / 2, tick.Max / 2, 3},
		{3, tick.Max, 1},
	}
	for _, c := range cases {
		want := c.acc
		for k := int32(0); k < c.cnt; k++ {
			want = tick.SatAdd(want, c.each)
		}
		if got := satAddScaled(c.acc, c.each, c.cnt); got != want {
			t.Errorf("satAddScaled(%d, %d, %d) = %d, want %d", c.acc, c.each, c.cnt, got, want)
		}
	}
}
