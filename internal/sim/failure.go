package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/task"
)

// Failure describes a fail-stop machine crash: the machine accepts no
// work at or after Time, and a task running across Time is lost and
// must be re-executed from scratch on another machine holding a
// replica of its data. This models the paper's Hadoop motivation —
// "most Hadoop systems replicate the data for the purpose of
// tolerating hardware faults" — inside the same two-phase model: a
// crash is survivable only if every affected task has a replica
// elsewhere.
type Failure struct {
	// Machine is the crashing machine.
	Machine int
	// Time is the crash instant.
	Time float64
}

// ErrUnsurvivable reports that some task's data lived only on crashed
// machines, so the workload cannot complete.
var ErrUnsurvivable = errors.New("sim: task data lost in crash; no surviving replica")

// RunWithFailures executes the instance under list scheduling over
// the placement and priority order, injecting the given fail-stop
// crashes. The returned schedule contains the final (successful)
// execution of every task; work lost in crashes extends the timeline
// but leaves no assignment record. It returns ErrUnsurvivable if a
// crash strands a task without replicas on surviving machines.
func RunWithFailures(in *task.Instance, p *placement.Placement, order []int,
	failures []Failure) (*sched.Schedule, error) {
	n := in.N()
	if len(order) != n {
		return nil, fmt.Errorf("sim: priority order has %d entries for %d tasks", len(order), n)
	}
	for _, f := range failures {
		if f.Machine < 0 || f.Machine >= in.M {
			return nil, fmt.Errorf("sim: failure on invalid machine %d", f.Machine)
		}
		if f.Time < 0 {
			return nil, fmt.Errorf("sim: failure at negative time %v", f.Time)
		}
	}
	base, err := NewListDispatcher(p, order)
	if err != nil {
		return nil, err
	}
	// priorityOf[j] = position of task j in the order (smaller = higher).
	priorityOf := make([]int, n)
	for pos, j := range order {
		priorityOf[j] = pos
	}
	// retry holds lost tasks, re-offered ahead of the regular queues.
	retry := map[int]bool{}

	running := make([]*runState, in.M)
	dead := make([]bool, in.M)
	dormant := make([]bool, in.M) // alive but found no work earlier
	dormantAt := make([]float64, in.M)

	s := sched.New(n, in.M)
	completed := make([]bool, n)
	completedCount := 0

	// Event queue over machine-idle and crash events. Crashes use
	// machine index -1-f encoding to sort alongside idle events.
	// Machines become idle at time zero in index order, which is
	// already a valid (time, machine) heap.
	q := make(eventQueue, 0, in.M+len(failures))
	for i := 0; i < in.M; i++ {
		q = append(q, idleEvent{time: 0, machine: i})
	}
	crashQ := append([]Failure(nil), failures...)
	// (Time, Machine) — the same total order the event queue uses. A
	// Time-only sort would leave same-instant crashes on different
	// machines in caller order, and the caller's slice order must not
	// be able to change which ErrUnsurvivable a doomed run reports.
	sort.Slice(crashQ, func(a, b int) bool {
		if crashQ[a].Time != crashQ[b].Time {
			return crashQ[a].Time < crashQ[b].Time
		}
		return crashQ[a].Machine < crashQ[b].Machine
	})

	nextRetry := func(machine int) (int, bool) {
		bestTask, bestPos := -1, n
		for j := range retry {
			if priorityOf[j] < bestPos && machineEligible(p, j, machine) {
				bestTask, bestPos = j, priorityOf[j]
			}
		}
		if bestTask < 0 {
			return 0, false
		}
		delete(retry, bestTask)
		return bestTask, true
	}

	dispatch := func(machine int, now float64) bool {
		if dead[machine] {
			return false
		}
		j, ok := nextRetry(machine)
		if !ok {
			j, ok = base.Next(machine, now)
		}
		if !ok {
			dormant[machine] = true
			dormantAt[machine] = now
			return false
		}
		end := now + in.Tasks[j].Actual
		running[machine] = &runState{task: j, end: end}
		s.Assignments[j] = sched.Assignment{Task: j, Machine: machine, Start: now, End: end}
		q.push(idleEvent{time: end, machine: machine})
		return true
	}

	wakeDormant := func(now float64) {
		for i := 0; i < in.M; i++ {
			if dormant[i] && !dead[i] {
				dormant[i] = false
				t := now
				if dormantAt[i] > t {
					t = dormantAt[i]
				}
				q.push(idleEvent{time: t, machine: i})
			}
		}
	}

	crash := func(f Failure) error {
		if dead[f.Machine] {
			return nil
		}
		dead[f.Machine] = true
		if rs := running[f.Machine]; rs != nil {
			switch {
			case rs.end <= f.Time:
				// The task finished exactly at (or before) the crash; its
				// idle event would normally mark completion but will be
				// skipped on the dead machine.
				completed[rs.task] = true
				completedCount++
				running[f.Machine] = nil
			case !completed[rs.task]:
				// The in-flight task is lost: erase its assignment and
				// re-offer it.
				j := rs.task
				s.Assignments[j] = sched.Assignment{}
				running[f.Machine] = nil
				if !survivable(p, j, dead) {
					return fmt.Errorf("%w: task %d only on machine %d", ErrUnsurvivable, j, f.Machine)
				}
				retry[j] = true
				wakeDormant(f.Time)
			}
		}
		// A pending task whose every replica is dead is stranded. (A
		// task running on an alive machine is never stranded: that
		// machine holds a replica.)
		for j := 0; j < n; j++ {
			if !completed[j] && !survivable(p, j, dead) && !runningSomewhereAlive(running, dead, j) {
				return fmt.Errorf("%w: task %d", ErrUnsurvivable, j)
			}
		}
		return nil
	}

	for len(q) > 0 || len(crashQ) > 0 {
		// Interleave crashes with idle events in time order.
		if len(crashQ) > 0 && (len(q) == 0 || crashQ[0].Time <= q[0].time) {
			f := crashQ[0]
			crashQ = crashQ[1:]
			if err := crash(f); err != nil {
				return nil, err
			}
			continue
		}
		ev := q.pop()
		if dead[ev.machine] {
			continue
		}
		if rs := running[ev.machine]; rs != nil && rs.end <= ev.time {
			completed[rs.task] = true
			completedCount++
			running[ev.machine] = nil
		}
		dispatch(ev.machine, ev.time)
	}

	if completedCount != n {
		return nil, fmt.Errorf("sim: %d of %d tasks never completed", n-completedCount, n)
	}
	return s, nil
}

func machineEligible(p *placement.Placement, j, machine int) bool {
	for _, i := range p.Sets[j] {
		if i == machine {
			return true
		}
	}
	return false
}

func survivable(p *placement.Placement, j int, dead []bool) bool {
	for _, i := range p.Sets[j] {
		if !dead[i] {
			return true
		}
	}
	return false
}

// runState tracks a machine's in-flight task.
type runState struct {
	task int
	end  float64
}

func runningSomewhereAlive(running []*runState, dead []bool, j int) bool {
	for i, rs := range running {
		if rs != nil && rs.task == j && !dead[i] {
			return true
		}
	}
	return false
}
