package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// referenceRun is an independent, deliberately naive implementation of
// the phase-2 semantics: keep per-machine clocks, repeatedly give the
// machine with the smallest clock (ties to the lowest index) its next
// task. It exists only to differentially test the event-heap
// simulator.
func referenceRun(in *task.Instance, d Dispatcher) (*sched.Schedule, error) {
	s := sched.New(in.N(), in.M)
	clocks := make([]float64, in.M)
	active := make([]bool, in.M)
	for i := range active {
		active[i] = true
	}
	for {
		best := -1
		for i := 0; i < in.M; i++ {
			if !active[i] {
				continue
			}
			if best == -1 || clocks[i] < clocks[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		j, ok := d.Next(best, clocks[best])
		if !ok {
			active[best] = false
			continue
		}
		start := clocks[best]
		end := start + in.Tasks[j].Actual
		s.Assignments[j] = sched.Assignment{Task: j, Machine: best, Start: start, End: end}
		d.Completed(j, best, end, in.Tasks[j].Actual)
		clocks[best] = end
	}
	return s, nil
}

func TestEventSimulatorMatchesReference(t *testing.T) {
	f := func(seed uint64, kRaw, orderKind uint8) bool {
		const m = 6
		in := workload.MustNew(workload.Spec{Name: "zipf", N: 40, M: m, Alpha: 1.8, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed^1))

		// Random placement style: groups, everywhere, or singletons.
		var p *placement.Placement
		switch kRaw % 3 {
		case 0:
			p = placement.Everywhere(in.N(), m)
		case 1:
			p = placement.New(in.N(), m)
			src := rng.New(seed ^ 2)
			for j := 0; j < in.N(); j++ {
				p.Assign(j, src.Intn(m))
			}
		default:
			groups, err := placement.PartitionGroups(m, 3)
			if err != nil {
				return false
			}
			p = placement.New(in.N(), m)
			p.Groups = groups
			p.GroupOf = make([]int, in.N())
			for j := 0; j < in.N(); j++ {
				g := j % 3
				p.GroupOf[j] = g
				p.AssignSet(j, groups[g])
			}
		}

		order := make([]int, in.N())
		for i := range order {
			order[i] = i
		}
		if orderKind%2 == 0 {
			sort.SliceStable(order, func(a, b int) bool {
				return in.Tasks[order[a]].Estimate > in.Tasks[order[b]].Estimate
			})
		}

		d1, err := NewListDispatcher(p, order)
		if err != nil {
			return false
		}
		eventRes, err := Run(in, d1, Options{})
		if err != nil {
			return false
		}
		d2, err := NewListDispatcher(p, order)
		if err != nil {
			return false
		}
		refSched, err := referenceRun(in, d2)
		if err != nil {
			return false
		}
		// The two implementations must agree on every assignment.
		for j := range eventRes.Schedule.Assignments {
			a, b := eventRes.Schedule.Assignments[j], refSched.Assignments[j]
			if a.Machine != b.Machine || a.Start != b.Start || a.End != b.End {
				t.Logf("task %d: event %+v vs reference %+v", j, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
