package sim

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func TestFailureNoFailuresMatchesPlainRun(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 30, M: 4, Alpha: 1.5, Seed: 3})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(4))
	p := placement.Everywhere(30, 4)
	order := identityOrder(30)

	s, err := RunWithFailures(in, p, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewListDispatcher(p, order)
	want, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != want.Schedule.Makespan() {
		t.Fatalf("failure-free run %v != plain run %v", s.Makespan(), want.Schedule.Makespan())
	}
	if err := s.Verify(in, p); err != nil {
		t.Fatal(err)
	}
}

func TestFailureLosesInFlightWork(t *testing.T) {
	// Two machines, full replication. Tasks: 10, 10, 10. Machine 0
	// crashes at t=5 while running task 0; the task restarts elsewhere.
	est := []float64{10, 10, 10}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.Everywhere(3, 2)
	s, err := RunWithFailures(in, p, identityOrder(3), []Failure{{Machine: 0, Time: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Everything ends up on machine 1: 10+10+10 = 30 sequential.
	if got := s.Makespan(); got != 30 {
		t.Fatalf("makespan = %v, want 30", got)
	}
	for j, a := range s.Assignments {
		if a.Machine != 1 {
			t.Fatalf("task %d ran on dead machine: %+v", j, a)
		}
	}
}

func TestFailureUnsurvivableWithoutReplication(t *testing.T) {
	est := []float64{5, 5}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(2, 2)
	p.Assign(0, 0)
	p.Assign(1, 1)
	_, err = RunWithFailures(in, p, identityOrder(2), []Failure{{Machine: 0, Time: 1}})
	if !errors.Is(err, ErrUnsurvivable) {
		t.Fatalf("got %v, want ErrUnsurvivable", err)
	}
}

func TestFailureSurvivableWithGroups(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 24, M: 4, Alpha: 1.5, Seed: 7})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(8))
	groups, err := placement.PartitionGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(24, 4)
	p.Groups = groups
	p.GroupOf = make([]int, 24)
	for j := 0; j < 24; j++ {
		g := j % 2
		p.GroupOf[j] = g
		p.AssignSet(j, groups[g])
	}
	s, err := RunWithFailures(in, p, identityOrder(24), []Failure{{Machine: 1, Time: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for j, a := range s.Assignments {
		if a.Machine == 1 && a.End > 3 {
			t.Fatalf("task %d still on crashed machine after t=3: %+v", j, a)
		}
	}
	// No task assigned to a machine outside its group.
	if err := s.Verify(in, p); err != nil {
		t.Fatal(err)
	}
}

func TestFailureAfterCompletionIsHarmless(t *testing.T) {
	est := []float64{2, 2}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(2, 2)
	p.Assign(0, 0)
	p.Assign(1, 1)
	s, err := RunWithFailures(in, p, identityOrder(2), []Failure{{Machine: 0, Time: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 2 {
		t.Fatalf("makespan = %v, want 2", s.Makespan())
	}
}

func TestFailureAtTaskBoundary(t *testing.T) {
	// Machine 0's task ends exactly when the crash hits: the task
	// completed; only subsequent work moves.
	est := []float64{4, 4, 4}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.Everywhere(3, 2)
	s, err := RunWithFailures(in, p, identityOrder(3), []Failure{{Machine: 0, Time: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.Assignments[0]; a.Machine != 0 || a.End != 4 {
		t.Fatalf("boundary task moved: %+v", a)
	}
	// Task 2 (started at 4 in the failure-free run on machine 0) must
	// run on machine 1: makespan 4+4+... machine 1 runs task 1 (0-4)
	// then task 2 (4-8).
	if s.Makespan() != 8 {
		t.Fatalf("makespan = %v, want 8", s.Makespan())
	}
}

func TestFailureMultipleCrashes(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 40, M: 6, Alpha: 1.5, Seed: 9})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(10))
	p := placement.Everywhere(40, 6)
	s, err := RunWithFailures(in, p, identityOrder(40),
		[]Failure{{Machine: 0, Time: 10}, {Machine: 3, Time: 25}})
	if err != nil {
		t.Fatal(err)
	}
	for j, a := range s.Assignments {
		if a.Machine == 0 && a.End > 10 {
			t.Fatalf("task %d on machine 0 after its crash: %+v", j, a)
		}
		if a.Machine == 3 && a.End > 25 {
			t.Fatalf("task %d on machine 3 after its crash: %+v", j, a)
		}
	}
}

func TestFailureDormantMachineWakesForRetry(t *testing.T) {
	// Machine 1 has no local work and no stealing rights until the
	// crash re-offers the lost task (full replication makes it
	// eligible). Construct: 2 machines, 2 tasks, both initially on
	// machine 0's queue priority-wise but replicated everywhere —
	// machine 1 takes task 1 at t=0, finishes at 1, goes dormant;
	// machine 0 crashes at t=5 while running task 0 (length 10).
	est := []float64{10, 1}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.Everywhere(2, 2)
	s, err := RunWithFailures(in, p, identityOrder(2), []Failure{{Machine: 0, Time: 5}})
	if err != nil {
		t.Fatal(err)
	}
	a0 := s.Assignments[0]
	if a0.Machine != 1 {
		t.Fatalf("lost task not retried on machine 1: %+v", a0)
	}
	if a0.Start != 5 || a0.End != 15 {
		t.Fatalf("retry timing %+v, want start 5 end 15", a0)
	}
}

func TestFailurePropertyReplicatedAlwaysSurvives(t *testing.T) {
	// For any group-replicated placement (≥2 replicas) and any single
	// crash: the run completes, nothing executes on the dead machine
	// after the crash, every task runs within its replica set, and the
	// makespan is at least the healthy one.
	f := func(seed uint64, failMachineRaw uint8, fracRaw uint8) bool {
		const m, n = 6, 36
		in := workload.MustNew(workload.Spec{Name: "uniform", N: n, M: m, Alpha: 1.5, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed^5))
		groups, err := placement.PartitionGroups(m, 3)
		if err != nil {
			return false
		}
		p := placement.New(n, m)
		p.Groups = groups
		p.GroupOf = make([]int, n)
		for j := 0; j < n; j++ {
			g := j % 3
			p.GroupOf[j] = g
			p.AssignSet(j, groups[g])
		}
		order := identityOrder(n)
		healthy, err := RunWithFailures(in, p, order, nil)
		if err != nil {
			return false
		}
		failMachine := int(failMachineRaw) % m
		failTime := healthy.Makespan() * float64(fracRaw%100) / 100
		crashed, err := RunWithFailures(in, p, order,
			[]Failure{{Machine: failMachine, Time: failTime}})
		if err != nil {
			return false
		}
		if err := crashed.Verify(in, p); err != nil {
			return false
		}
		for _, a := range crashed.Assignments {
			if a.Machine == failMachine && a.End > failTime+1e-9 {
				return false
			}
		}
		return crashed.Makespan() >= healthy.Makespan()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFailureInvalidArgs(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "unit", N: 2, M: 2, Alpha: 1, Seed: 1})
	p := placement.Everywhere(2, 2)
	if _, err := RunWithFailures(in, p, []int{0}, nil); err == nil {
		t.Error("short order accepted")
	}
	if _, err := RunWithFailures(in, p, identityOrder(2), []Failure{{Machine: 9, Time: 1}}); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := RunWithFailures(in, p, identityOrder(2), []Failure{{Machine: 0, Time: -1}}); err == nil {
		t.Error("negative time accepted")
	}
}
