package sim

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/tick"
)

// This file ports the open-system streaming mode (open.go) to the
// data-oriented flat architecture: flat SoA task/machine state on
// tick.Tick fixed-point time, the two-level tick wheel of wheel.go as
// the event structure, and the same per-replica-group shard
// decomposition the batch FlatRunner runs on. The reference OpenRunner
// stays as the differential oracle; flat_open_test.go pins the
// equivalence (exact on tick-exact inputs, byte-identical across
// worker counts).
//
// # Why the union-find partition carries over
//
// Open mode adds arrivals and cancellation to batch list scheduling,
// and neither crosses a shard boundary: an arrival is per-task and
// only touches the machines of that task's replica set, and a
// cancellation race is between replicas of one task — again inside
// one replica set. So the connected components of the "shares a
// replica set" relation are still fully independent simulations, and
// shards run on par workers with plain writes into disjoint task-,
// machine-, and shard-indexed slots. The merged outputs are
// byte-identical to the sequential order because every cross-shard
// reduction is interleaving-independent: responses and assignments are
// per-task, wasted time is an int64 tick sum, End is a max, counts are
// sums.
//
// # Why the per-machine queues became heaps
//
// The reference engine keeps each machine's arrived-eligible tasks as
// a position-sorted slice and inserts by memmove; under replicate-all
// that is O(n) per insertion per machine — O(n²·m) total, and the
// measured 1000× gap to the batch engine. Here a machine's pending
// positions are a binary min-heap in a CSR slab (O(log n) insert), and
// a shard whose every replica set is the whole shard — the
// replicate-all and group:k cases, detected as len(set) == shard size,
// which CheckSets' strictly-ascending invariant makes equivalent to
// set == shard — shares a single heap for the whole shard instead of
// mirroring every arrival into every machine's heap:
//
//   - CancelOnStart: the popped task starts immediately and every other
//     machine would skip it forever after, so a shared pop is exactly
//     the per-machine skip rule.
//   - CancelOnCompletion: racing machines must all see a not-yet-done
//     task, so dispatch peeks the top (popping only entries whose task
//     is done — a permanent, machine-independent condition). A machine
//     is never racing itself: it consults the heap only while idle.
//
// # Race collapse (the uniform CancelOnCompletion fast path)
//
// Without a Duration hook every replica of a task shares one executed
// duration, which makes racing deterministic at dispatch time: the
// replica that starts first completes first (ties by machine index),
// so the winner of a race is the lowest-indexed machine of the first
// dispatch cohort, and every machine that joins a started race is a
// guaranteed loser whose cancellation time (race end), wasted time
// ((race end − join) + cancel cost) and wake-up (race end + cost) are
// all known the moment it joins. replayUniformRace exploits this: only
// winner completions ride the wheel (~1 event per task, no stale
// entries at all), while losers are accounted in O(1) per cohort and
// parked as per-tick machine bitmasks that rejoin the next race as a
// block. That turns the replicate-everywhere benchmark configuration
// from Θ(n·m) wheel events into Θ(n) — the difference between ~200k
// and several million tasks/s at m=64. The path requires a uniform
// shard of ≤ 64 machines (one mask word), CancelOnCompletion, no
// Duration hook, strictly positive durations (a zero-duration race
// could finish inside its own dispatch tick), and a strictly positive
// cancel cost (at zero cost a cancelled loser re-wakes inside its
// race's completion tick, an ordering only the wheel's push sequencing
// reproduces); anything else falls back to the wheel loops below,
// which the differential suite holds byte-identical to this one on
// the overlap.
var (
	flatOpenRuns   = obs.GetCounter("sim.flat_open_runs")
	flatOpenShards = obs.GetCounter("sim.flat_open_shards")
)

// RunFlatOpen executes an open-system run on the flat engine
// sequentially (one global event loop, no shard decomposition) and
// returns caller-owned state. Hot loops should reuse a FlatOpenRunner.
func RunFlatOpen(in *task.Instance, p *placement.Placement, order []int,
	arrive []float64, opts OpenOptions) (*OpenResult, error) {
	var r FlatOpenRunner
	return r.Run(in, p, order, arrive, opts)
}

// RunFlatOpenSharded is RunFlatOpen through the shard decomposition on
// the given number of workers; see FlatOpenRunner.RunSharded.
func RunFlatOpenSharded(in *task.Instance, p *placement.Placement, order []int,
	arrive []float64, opts OpenOptions, workers int) (*OpenResult, error) {
	var r FlatOpenRunner
	return r.RunSharded(in, p, order, arrive, opts, workers)
}

// FlatOpenRunner is the data-oriented open-system simulator: the
// streaming counterpart of FlatRunner and the flat counterpart of
// OpenRunner. Semantics are OpenRunner's exactly — same arrival
// admission rule (arrivals before machine events at equal times), same
// cancellation policies, same dispatch priority — over fixed-point
// time, so times are quantized to nanoticks (error ≤ 0.5e-9 s per
// duration) and list decisions can differ from the float engine only
// on sub-nanotick ties.
//
// The zero value is ready to use. Like the other runners, it owns the
// OpenResult it returns (valid until the next call), performs zero
// steady-state allocations across same-shaped runs, and is not safe
// for concurrent use.
type FlatOpenRunner struct {
	// Shard decomposition (shardOf, shardMachines, taskShard,
	// shardTasks, …), shared with FlatRunner. shardTasks doubles as the
	// per-shard arrival stream: task IDs ascend within a shard and
	// arrival times ascend with task ID.
	shardSet

	// SoA task state.
	durTick []tick.Tick // executed ticks (no Duration hook)
	arrTick []tick.Tick // arrival times in ticks
	posOf   []int32     // position of task in the priority order
	started []bool
	done    []bool

	// SoA machine state.
	seq      []uint32    // current event sequence number (liveness check)
	activeM  []bool      // has a live scheduled event (busy or waking)
	runTask  []int32     // running task, -1 if idle
	runStart []tick.Tick // when the current replica started

	// Per-machine pending-position min-heaps in a CSR slab, built and
	// used only for machines of non-uniform shards.
	qPos []int32
	qOff []int32
	qLen []int32

	// Per-shard shared heaps for uniform shards (every replica set ==
	// the whole shard), in a slab partitioned by shardTaskOff.
	sharedPos []int32
	sharedLen []int32
	uniform   []bool

	// Per-shard outcome slots, written by exactly one worker each.
	shardDone      []int32
	shardCancelled []int32
	shardWasted    []tick.Tick
	shardEnd       []tick.Tick
	shardErrs      []spanError

	// Per-worker event wheels and park scratch (race-collapse cohorts).
	wheels []openWheel
	parks  [][]parkGroup

	// raceEnd[j] is the completion tick of task j's race, valid once
	// started[j] under the race-collapse fast path (raceOK).
	raceEnd []tick.Tick
	raceOK  bool

	order      []int
	cancelTick tick.Tick
	shift      uint
	// opts is the caller's OpenOptions for the current run, copied here
	// so the engine passes a pointer to already-heap-resident state
	// around instead of letting a parameter escape per call; run clears
	// it on exit so a Duration closure is not retained.
	opts OpenOptions

	sched     sched.Schedule
	responses []float64
	res       OpenResult
}

// Reset re-initializes every field of the FlatOpenRunner for an
// n-task, m-machine run, retaining capacity. Slices are truncated here
// and regrown to their exact sizes in prepare; Run calls it
// internally.
func (r *FlatOpenRunner) Reset(n, m int) {
	r.shardSet.reset()
	r.durTick = r.durTick[:0]
	r.arrTick = r.arrTick[:0]
	r.posOf = r.posOf[:0]
	r.started = r.started[:0]
	r.done = r.done[:0]
	r.seq = r.seq[:0]
	r.activeM = r.activeM[:0]
	r.runTask = r.runTask[:0]
	r.runStart = r.runStart[:0]
	r.qPos = r.qPos[:0]
	r.qOff = r.qOff[:0]
	r.qLen = r.qLen[:0]
	r.sharedPos = r.sharedPos[:0]
	r.sharedLen = r.sharedLen[:0]
	r.uniform = r.uniform[:0]
	r.shardDone = r.shardDone[:0]
	r.shardCancelled = r.shardCancelled[:0]
	r.shardWasted = r.shardWasted[:0]
	r.shardEnd = r.shardEnd[:0]
	r.shardErrs = r.shardErrs[:0]
	r.wheels = r.wheels[:0] // backing entries (and their buffers) are reused
	r.parks = r.parks[:0]   // likewise
	r.raceEnd = r.raceEnd[:0]
	r.raceOK = false
	r.order = nil
	r.cancelTick = 0
	r.shift = 0
	r.opts = OpenOptions{}
	r.sched.Reset(n, m)
	if cap(r.responses) < n {
		r.responses = make([]float64, n)
	} else {
		r.responses = r.responses[:n]
		clear(r.responses)
	}
	r.res = OpenResult{Schedule: &r.sched, Responses: r.responses}
}

// Run executes an open-system simulation on the flat engine as a
// single global event loop — the sequential reference the sharded
// path is differentially tested against. Inputs follow
// OpenRunner.Run's contract, with the flat engine's additions: replica
// sets must satisfy placement.CheckSets (the shard decomposition
// requires it), and arrivals, durations and CancelCost must be
// tick-representable.
func (r *FlatOpenRunner) Run(in *task.Instance, p *placement.Placement, order []int,
	arrive []float64, opts OpenOptions) (*OpenResult, error) {
	return r.run(in, p, order, arrive, opts, 1, false)
}

// RunSharded partitions the instance into independent shards (the
// connected components of machines linked by shared replica sets),
// runs each shard's open event loop on one of workers goroutines
// (workers ≤ 0 selects GOMAXPROCS; workers == 1 runs inline with zero
// goroutines), and merges the results. The merged Schedule, Responses,
// CancelledReplicas, WastedTime, End, and error are byte-identical to
// Run for every worker count: shards share no tasks or machines, and
// every cross-shard reduction (per-task writes, int64 tick sums, max,
// counts) is interleaving-independent.
func (r *FlatOpenRunner) RunSharded(in *task.Instance, p *placement.Placement, order []int,
	arrive []float64, opts OpenOptions, workers int) (*OpenResult, error) {
	return r.run(in, p, order, arrive, opts, workers, true)
}

func (r *FlatOpenRunner) run(in *task.Instance, p *placement.Placement, order []int,
	arrive []float64, o OpenOptions, workers int, sharded bool) (*OpenResult, error) {
	defer func() { r.opts = OpenOptions{} }()
	n, m := in.N(), in.M
	r.Reset(n, m)
	// Copy the options into the reused field instead of taking &o, for
	// the same reason as FlatRunner.run: a parameter whose address
	// escapes costs one heap allocation per call.
	r.opts = o
	opts := &r.opts
	if err := r.prepare(in, p, order, arrive, opts, sharded); err != nil {
		return nil, err
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.nShards {
		workers = r.nShards
	}
	if workers < 1 {
		workers = 1
	}
	r.ensureWheels(workers)
	if workers <= 1 {
		w := &r.wheels[0]
		for s := 0; s < r.nShards; s++ {
			r.replaySpan(p, s, w, &r.parks[0], opts)
		}
	} else {
		// Striped shard assignment, exactly as FlatRunner: ownership is
		// deterministic but output-irrelevant.
		par.Map(workers, workers, func(w int) struct{} {
			wh := &r.wheels[w]
			for s := w; s < r.nShards; s += workers {
				r.replaySpan(p, s, wh, &r.parks[w], opts)
			}
			return struct{}{}
		})
	}
	flatOpenRuns.Inc()
	flatOpenShards.Add(int64(r.nShards))

	// Merge. The error a sequential global event loop would hit first
	// is the one with the minimum (time, machine) key across shards.
	errAt := -1
	for s := 0; s < r.nShards; s++ {
		if r.shardErrs[s].err == nil {
			continue
		}
		if errAt < 0 || mLess(r.shardErrs[s].key, r.shardErrs[errAt].key) {
			errAt = s
		}
	}
	if errAt >= 0 {
		return nil, r.shardErrs[errAt].err
	}
	completed := 0
	cancelled := 0
	var wasted, end tick.Tick
	for s := 0; s < r.nShards; s++ {
		completed += int(r.shardDone[s])
		cancelled += int(r.shardCancelled[s])
		wasted = tick.SatAdd(wasted, r.shardWasted[s])
		if end < r.shardEnd[s] {
			end = r.shardEnd[s]
		}
	}
	if completed != n {
		return nil, fmt.Errorf("sim: %d of %d tasks never executed", n-completed, n)
	}
	r.res.CancelledReplicas = cancelled
	r.res.WastedTime = wasted.Seconds()
	r.res.End = end.Seconds()
	return &r.res, nil
}

// prepare validates the inputs and builds the SoA state: arrivals and
// durations in ticks, the shard decomposition with per-shard arrival
// streams, the uniform-shard detection, and the pending-position heap
// slabs.
func (r *FlatOpenRunner) prepare(in *task.Instance, p *placement.Placement, order []int,
	arrive []float64, opts *OpenOptions, sharded bool) error {
	n, m := in.N(), in.M
	if p.N() != n || p.M != m {
		return fmt.Errorf("sim: placement shape (%d tasks, %d machines) does not match instance (%d, %d)", p.N(), p.M, n, m)
	}
	if len(order) != n {
		return fmt.Errorf("sim: priority order has %d entries for %d tasks", len(order), n)
	}
	if len(arrive) != n {
		return fmt.Errorf("sim: %d arrival times for %d tasks", len(arrive), n)
	}
	if err := placement.CheckSets(p.Sets, m); err != nil {
		return err
	}
	if math.IsNaN(opts.CancelCost) || math.IsInf(opts.CancelCost, 0) || opts.CancelCost < 0 {
		return fmt.Errorf("sim: cancel cost %v (want finite, non-negative)", opts.CancelCost)
	}
	ct, err := tick.FromSeconds(opts.CancelCost)
	if err != nil {
		return fmt.Errorf("sim: cancel cost: %w", err)
	}
	r.cancelTick = ct
	if opts.Policy != CancelOnStart && opts.Policy != CancelOnCompletion {
		return fmt.Errorf("sim: unknown cancel policy %d", opts.Policy)
	}

	r.arrTick = growTick(r.arrTick, n)
	prev := 0.0
	for j, t := range arrive {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fmt.Errorf("sim: arrival %d is %v (want finite, non-negative)", j, t)
		}
		if t < prev {
			return fmt.Errorf("sim: arrival times not sorted at task %d", j)
		}
		prev = t
		at, err := tick.FromSeconds(t)
		if err != nil {
			return fmt.Errorf("sim: arrival %d: %w", j, err)
		}
		r.arrTick[j] = at
	}

	// Permutation check, reusing done as scratch (cleared again below).
	r.done = growBoolZero(r.done, n)
	for _, j := range order {
		if j < 0 || j >= n || r.done[j] {
			return fmt.Errorf("sim: priority order is not a permutation (task %d)", j)
		}
		r.done[j] = true
	}
	clear(r.done)
	r.order = order
	r.posOf = growI32(r.posOf, n)
	for pos, j := range order {
		r.posOf[j] = int32(pos)
	}
	r.started = growBoolZero(r.started, n)

	// Executed durations in ticks; under a Duration hook the executed
	// time depends on the machine and is converted at dispatch. The
	// running sum only feeds the wheel-shift heuristic; the minimum
	// gates the race-collapse fast path (see the file comment).
	var sumDur tick.Tick
	minDur := tick.Max
	if opts.Duration == nil {
		r.durTick = growTick(r.durTick, n)
		for j := 0; j < n; j++ {
			t, err := tick.FromSeconds(in.Tasks[j].Actual)
			if err != nil {
				return fmt.Errorf("sim: task %d actual time: %w", j, err)
			}
			if t < 0 {
				return fmt.Errorf("sim: task %d has negative actual time %v", j, in.Tasks[j].Actual)
			}
			r.durTick[j] = t
			sumDur = tick.SatAdd(sumDur, t)
			if t < minDur {
				minDur = t
			}
		}
	}
	r.raceOK = opts.Policy == CancelOnCompletion && opts.Duration == nil &&
		minDur > 0 && r.cancelTick > 0
	if r.raceOK {
		r.raceEnd = growTick(r.raceEnd, n) // written at race start before any read
	}

	r.seq = growU32Zero(r.seq, m)
	r.activeM = growBoolZero(r.activeM, m)
	r.runTask = growI32(r.runTask, m)
	for i := range r.runTask {
		r.runTask[i] = -1
	}
	r.runStart = growTickZero(r.runStart, m)

	if sharded {
		r.partition(p)
	} else {
		r.partitionTrivial(n, m)
	}
	r.buildTaskOffsets(n)
	r.buildTaskLists(n)

	// Uniform detection: a shard where every replica set is the whole
	// shard shares one pending heap (see the file comment).
	r.uniform = growBool(r.uniform, r.nShards)
	for s := range r.uniform {
		r.uniform[s] = true
	}
	anyGeneral := false
	for j := 0; j < n; j++ {
		s := r.taskShard[j]
		if len(p.Sets[j]) != int(r.shardOff[s+1]-r.shardOff[s]) {
			if r.uniform[s] {
				r.uniform[s] = false
				anyGeneral = true
			}
		}
	}
	r.sharedPos = growI32(r.sharedPos, n)
	r.sharedLen = growI32Zero(r.sharedLen, r.nShards)

	// Per-machine heap slab, only for machines of non-uniform shards
	// (slots of uniform-shard machines stay zero-capacity).
	r.qOff = growI32Zero(r.qOff, m+1)
	if anyGeneral {
		for j := 0; j < n; j++ {
			if r.uniform[r.taskShard[j]] {
				continue
			}
			for _, i := range p.Sets[j] {
				r.qOff[i+1]++
			}
		}
		for i := 0; i < m; i++ {
			r.qOff[i+1] += r.qOff[i]
		}
		r.qPos = growI32(r.qPos, int(r.qOff[m]))
	}
	r.qLen = growI32Zero(r.qLen, m)

	r.shardDone = growI32Zero(r.shardDone, r.nShards)
	r.shardCancelled = growI32Zero(r.shardCancelled, r.nShards)
	r.shardWasted = growTickZero(r.shardWasted, r.nShards)
	r.shardEnd = growTickZero(r.shardEnd, r.nShards)
	r.shardErrs = growSpanErr(r.shardErrs, r.nShards)

	// Wheel bucket width from the mean executed duration; under a
	// Duration hook (durations unknown until dispatch) the mean arrival
	// gap stands in. Either way the choice only tunes constants.
	var mean tick.Tick
	if n > 0 {
		if opts.Duration == nil {
			mean = sumDur / tick.Tick(n)
		} else {
			mean = r.arrTick[n-1] / tick.Tick(n)
		}
	}
	r.shift = wheelShift(mean)
	return nil
}

// replaySpan executes shard s to completion, writing only task-,
// machine- and shard-indexed state no other shard touches. This is the
// benchmarked open replay loop: everything statically reachable from
// here must not allocate (the hotalloc rule enforces it).
//
//perf:hotpath
func (r *FlatOpenRunner) replaySpan(p *placement.Placement, s int, w *openWheel,
	parks *[]parkGroup, opts *OpenOptions) {
	ms := r.shardMachines[r.shardOff[s]:r.shardOff[s+1]]
	tasks := r.shardTasks[r.shardTaskOff[s]:r.shardTaskOff[s+1]]
	w.reset(r.shift)
	if r.uniform[s] {
		if r.raceOK && len(ms) <= 64 {
			r.replayUniformRace(s, ms, tasks, w, parks)
		} else {
			r.replayUniform(s, ms, tasks, w, opts)
		}
	} else {
		r.replayGeneral(p, s, ms, tasks, w, opts)
	}
}

// wake schedules a live event for machine i at time t, superseding any
// stale entry still riding the wheel.
func (r *FlatOpenRunner) wake(w *openWheel, i int32, t tick.Tick) {
	r.seq[i]++
	r.activeM[i] = true
	w.push(wEvent{t: t, m: i, seq: r.seq[i]})
}

// complete retires machine i's running replica at time now as the
// winner of task j: record response and assignment, and under
// CancelOnCompletion cancel the losing replicas still running
// elsewhere in the shard. Returns the updated (end, wasted, cancelled)
// accumulators.
func (r *FlatOpenRunner) complete(w *openWheel, ms []int32, i int32, j int32, now tick.Tick,
	onStart bool, end, wasted tick.Tick, cancelled int32) (tick.Tick, tick.Tick, int32) {
	r.runTask[i] = -1
	r.done[j] = true
	r.responses[j] = (now - r.arrTick[j]).Seconds()
	if end < now {
		end = now
	}
	r.sched.Assignments[j] = sched.Assignment{
		Task: int(j), Machine: int(i), Start: r.runStart[i].Seconds(), End: now.Seconds(),
	}
	if !onStart {
		for _, k := range ms {
			if k == i || r.runTask[k] != j {
				continue
			}
			// Cancel the losing replica: its machine time so far plus
			// the cancellation penalty is pure waste, and the machine
			// frees up only after paying the penalty.
			r.runTask[k] = -1
			cancelled++
			wasted = tick.SatAdd(wasted, now-r.runStart[k])
			wasted = tick.SatAdd(wasted, r.cancelTick)
			free := tick.SatAdd(now, r.cancelTick)
			if end < free {
				end = free
			}
			r.wake(w, k, free)
		}
	}
	return end, wasted, cancelled
}

// dispatch starts task j on machine i at time now, scheduling its
// completion. Returns false if the Duration hook produced a
// non-tick-representable value (the shard aborts; the error is staged
// for the merge).
func (r *FlatOpenRunner) dispatch(w *openWheel, s int, i, j int32, now tick.Tick, opts *OpenOptions) bool {
	r.started[j] = true
	r.runTask[i] = j
	r.runStart[i] = now
	var d tick.Tick
	if opts.Duration == nil {
		d = r.durTick[j]
	} else {
		var ok bool
		if d, ok = r.openHookTick(s, int(j), int(i), now, opts); !ok {
			return false
		}
	}
	r.wake(w, i, tick.SatAdd(now, d))
	return true
}

// openHookTick converts a Duration-hook value to ticks, recording a
// shard error keyed at the current event on failure — the open-mode
// twin of FlatRunner.hookTick.
func (r *FlatOpenRunner) openHookTick(s, j, machine int, now tick.Tick, opts *OpenOptions) (tick.Tick, bool) {
	sec := opts.Duration(j, machine)
	d, err := tick.FromSeconds(sec)
	if err != nil {
		//lint:ignore hotalloc duration-hook rejection path: the run is over, allocation is fine
		r.shardErrs[s] = spanError{key: mEvent{t: now, m: int32(machine)}, err: fmt.Errorf(
			"sim: duration hook for task %d on machine %d: %w", j, machine, err)}
		return 0, false
	}
	if d < 0 {
		//lint:ignore hotalloc duration-hook rejection path: the run is over, allocation is fine
		r.shardErrs[s] = spanError{key: mEvent{t: now, m: int32(machine)}, err: fmt.Errorf(
			"sim: duration hook returned negative %v for task %d on machine %d", sec, j, machine)}
		return 0, false
	}
	return d, true
}

// replayUniform is the shard event loop for a uniform shard: every
// replica set is the whole shard, so one shared pending-position heap
// (the slab region at shardTaskOff[s]) serves all machines. Arrivals
// push one entry instead of |set| entries, and dispatch follows the
// policy-split rule from the file comment: CancelOnStart pops
// (started ⇒ skipped-by-everyone), CancelOnCompletion peeks past done
// entries so racing machines all see the front task.
func (r *FlatOpenRunner) replayUniform(s int, ms, tasks []int32, w *openWheel, opts *OpenOptions) {
	base := int(r.shardTaskOff[s])
	hn := 0 // shared heap length
	onStart := opts.Policy == CancelOnStart
	ti := 0
	var completedCount, cancelled int32
	var end, wasted tick.Tick
	for ti < len(tasks) || !w.empty() {
		// Interleave the two sorted streams; arrivals first at ties so
		// a machine going idle at t sees every task arriving at t.
		if ti < len(tasks) {
			j := tasks[ti]
			at := r.arrTick[j]
			if w.empty() || at <= w.peek().t {
				ti++
				posPush(r.sharedPos, base, hn, r.posOf[j])
				hn++
				for _, i := range ms {
					if !r.activeM[i] {
						r.wake(w, i, at)
					}
				}
				continue
			}
		}

		ev := w.pop()
		i := ev.m
		if ev.seq != r.seq[i] {
			continue // superseded by a cancellation re-schedule
		}
		now := ev.t

		// A live event on a busy machine is its replica completing.
		if j := r.runTask[i]; j >= 0 {
			completedCount++
			end, wasted, cancelled = r.complete(w, ms, i, j, now, onStart, end, wasted, cancelled)
		}

		// Dispatch: highest-priority arrived task still worth starting.
		j := int32(-1)
		if onStart {
			for hn > 0 {
				pos := posPop(r.sharedPos, base, hn)
				hn--
				cand := r.order[pos]
				// done ⇒ started, so one flag check covers the
				// reference's done-or-started skip.
				if r.started[cand] {
					continue
				}
				j = int32(cand)
				break
			}
		} else {
			for hn > 0 {
				pos := r.sharedPos[base] // peek: racing replicas all see it
				cand := r.order[pos]
				if r.done[cand] {
					posPop(r.sharedPos, base, hn)
					hn--
					continue
				}
				j = int32(cand)
				break
			}
		}
		if j < 0 {
			r.activeM[i] = false // dormant until an eligible arrival wakes it
			continue
		}
		if !r.dispatch(w, s, i, j, now, opts) {
			return // duration-hook error staged; abandon the shard
		}
	}
	r.shardDone[s] = completedCount
	r.shardCancelled[s] = cancelled
	r.shardWasted[s] = wasted
	r.shardEnd[s] = end
}

// parkGroup is a cohort of shard-local machines (a bitmask) that
// become free at the same tick: cancelled losers waiting out the
// cancellation cost, or dormant machines woken by an arrival. Masks
// are disjoint across a shard's live groups and ticks are unique
// (parkAdd merges equal ticks), so at most 64 groups exist and the
// linear scans below are trivially cheap next to the wheel traffic
// they replace.
type parkGroup struct {
	t    tick.Tick
	mask uint64
}

// parkAdd merges mask into the group at tick t, appending a new group
// if none exists yet. The append reuses capacity across runs.
func parkAdd(parks []parkGroup, t tick.Tick, mask uint64) []parkGroup {
	for i := range parks {
		if parks[i].t == t {
			parks[i].mask |= mask
			return parks
		}
	}
	return append(parks, parkGroup{t: t, mask: mask})
}

// satAddScaled is acc + each×cnt with the saturation behaviour of cnt
// repeated tick.SatAdds of each (clamp at tick.Max and stay there), so
// cohort-batched waste accounting is bit-identical to the reference's
// per-loser accumulation.
func satAddScaled(acc, each tick.Tick, cnt int32) tick.Tick {
	if each <= 0 || cnt <= 0 {
		return acc
	}
	if tick.Tick(cnt) > (tick.Max-acc)/each {
		return tick.Max
	}
	return acc + each*tick.Tick(cnt)
}

// replayUniformRace is replayUniform specialized by the race-collapse
// argument in the file comment: the winner of every race is the
// lowest-indexed machine of its first dispatch cohort, so only winner
// completions ride the wheel — carrying local machine indices and no
// liveness seq, since a winner is never cancelled — and each later
// joiner is accounted as a guaranteed loser in O(1) and parked in a
// per-tick cohort bitmask until its cancellation cost is paid.
func (r *FlatOpenRunner) replayUniformRace(s int, ms, tasks []int32, w *openWheel,
	pp *[]parkGroup) {
	base := int(r.shardTaskOff[s])
	hn := 0 // shared heap length
	ti := 0
	dormant := ^uint64(0) >> (64 - uint(len(ms)))
	parks := (*pp)[:0]
	var completedCount, cancelled int32
	var end, wasted tick.Tick
	for ti < len(tasks) || !w.empty() || len(parks) > 0 {
		// Earliest machine event: wheel top vs parked-cohort minimum.
		// Park ticks are unique, so the minimum is a single group.
		evT := tick.Max
		pi := -1
		for k := range parks {
			if parks[k].t < evT {
				evT = parks[k].t
				pi = k
			}
		}
		wi := int32(-1) // local index of the wheel-top winner if it ties evT
		if !w.empty() {
			if wt := w.peek(); wt.t < evT {
				evT = wt.t
				pi = -1
				wi = wt.m
			} else if wt.t == evT {
				wi = wt.m
			}
		}

		// Arrivals first at ties, as in every engine loop here.
		if ti < len(tasks) {
			j := tasks[ti]
			if at := r.arrTick[j]; at <= evT {
				ti++
				posPush(r.sharedPos, base, hn, r.posOf[j])
				hn++
				if dormant != 0 {
					parks = parkAdd(parks, at, dormant)
					dormant = 0
				}
				continue
			}
		}
		now := evT

		// The batch unit: parked machines below a tying winner wake
		// before its completion (the reference pops equal-tick events in
		// machine order); everything else waits for a later iteration.
		var unit uint64
		if pi >= 0 {
			unit = parks[pi].mask
			if wi >= 0 {
				unit &= uint64(1)<<uint(wi) - 1
			}
			if unit != 0 {
				if parks[pi].mask &^= unit; parks[pi].mask == 0 {
					last := len(parks) - 1
					parks[pi] = parks[last]
					parks = parks[:last]
				}
			}
		}
		if unit == 0 {
			// Winner completion; never stale, winners are never cancelled.
			ev := w.pop()
			i := ms[ev.m]
			j := r.runTask[i]
			r.runTask[i] = -1
			r.done[j] = true
			r.responses[j] = (now - r.arrTick[j]).Seconds()
			if end < now {
				end = now
			}
			r.sched.Assignments[j] = sched.Assignment{
				Task: int(j), Machine: int(i), Start: r.runStart[i].Seconds(), End: now.Seconds(),
			}
			completedCount++
			unit = uint64(1) << uint(ev.m)
		}

		// Dispatch the whole unit against the shared front. The front
		// cannot change inside a unit: arrivals were drained first, and
		// every completion at this tick is outside the unit by the
		// below-the-winner mask.
		j := int32(-1)
		for hn > 0 {
			pos := r.sharedPos[base]
			cand := r.order[pos]
			if r.done[cand] {
				posPop(r.sharedPos, base, hn)
				hn--
				continue
			}
			j = int32(cand)
			break
		}
		if j < 0 {
			dormant |= unit
			continue
		}
		if !r.started[j] {
			// New race: the lowest-indexed machine of the cohort starts
			// first, wins, and is the only replica that ever completes.
			l := bits.TrailingZeros64(unit)
			i := ms[l]
			r.started[j] = true
			r.runTask[i] = j
			r.runStart[i] = now
			re := tick.SatAdd(now, r.durTick[j])
			r.raceEnd[j] = re
			w.push(wEvent{t: re, m: int32(l)})
			unit &^= uint64(1) << uint(l)
		}
		if unit != 0 {
			// Guaranteed losers: cancelled when the race ends, so their
			// waste and wake-up are known now (see the file comment).
			re := r.raceEnd[j]
			cnt := int32(bits.OnesCount64(unit))
			cancelled += cnt
			wasted = satAddScaled(wasted, tick.SatAdd(re-now, r.cancelTick), cnt)
			free := tick.SatAdd(re, r.cancelTick)
			if end < free {
				end = free
			}
			parks = parkAdd(parks, free, unit)
		}
	}
	r.shardDone[s] = completedCount
	r.shardCancelled[s] = cancelled
	r.shardWasted[s] = wasted
	r.shardEnd[s] = end
	*pp = parks // persist the grown capacity for the next shard or run
}

// replayGeneral is the shard event loop for mixed replica sets: each
// machine owns a pending-position min-heap in the qPos CSR slab, and
// an arrival pushes its position into every machine of its set —
// identical eligibility semantics to the reference engine's sorted
// queues, with O(log n) insertion instead of O(n) memmove.
func (r *FlatOpenRunner) replayGeneral(p *placement.Placement, s int, ms, tasks []int32,
	w *openWheel, opts *OpenOptions) {
	onStart := opts.Policy == CancelOnStart
	ti := 0
	var completedCount, cancelled int32
	var end, wasted tick.Tick
	for ti < len(tasks) || !w.empty() {
		if ti < len(tasks) {
			j := tasks[ti]
			at := r.arrTick[j]
			if w.empty() || at <= w.peek().t {
				ti++
				pos := r.posOf[j]
				for _, i := range p.Sets[j] {
					posPush(r.qPos, int(r.qOff[i]), int(r.qLen[i]), pos)
					r.qLen[i]++
					if !r.activeM[i] {
						r.wake(w, int32(i), at)
					}
				}
				continue
			}
		}

		ev := w.pop()
		i := ev.m
		if ev.seq != r.seq[i] {
			continue
		}
		now := ev.t

		if j := r.runTask[i]; j >= 0 {
			completedCount++
			end, wasted, cancelled = r.complete(w, ms, i, j, now, onStart, end, wasted, cancelled)
		}

		// Dispatch. Popping every examined entry matches the reference
		// head-advance: skipped entries are dead permanently (done, or
		// started under CancelOnStart), and the dispatched entry is
		// consumed — under CancelOnCompletion other machines race via
		// their own heap entries.
		j := int32(-1)
		for r.qLen[i] > 0 {
			pos := posPop(r.qPos, int(r.qOff[i]), int(r.qLen[i]))
			r.qLen[i]--
			cand := r.order[pos]
			if r.done[cand] || (onStart && r.started[cand]) {
				continue
			}
			j = int32(cand)
			break
		}
		if j < 0 {
			r.activeM[i] = false
			continue
		}
		if !r.dispatch(w, s, i, j, now, opts) {
			return
		}
	}
	r.shardDone[s] = completedCount
	r.shardCancelled[s] = cancelled
	r.shardWasted[s] = wasted
	r.shardEnd[s] = end
}

func (r *FlatOpenRunner) ensureWheels(workers int) {
	if cap(r.wheels) < workers {
		next := make([]openWheel, workers)
		copy(next, r.wheels[:cap(r.wheels)])
		r.wheels = next
	} else {
		r.wheels = r.wheels[:workers]
	}
	// Park scratch per worker, same reuse discipline: the inner slices
	// keep their ≤ 64-entry capacity across runs.
	if cap(r.parks) < workers {
		next := make([][]parkGroup, workers)
		copy(next, r.parks[:cap(r.parks)])
		r.parks = next
	} else {
		r.parks = r.parks[:workers]
	}
}

// posPush inserts pos into the n-element min-heap living at
// slab[base : base+n]; the caller owns the length bookkeeping. The
// int32 position keys are unique within a heap (one entry per task per
// queue), so pop order is deterministic.
func posPush(slab []int32, base, n int, pos int32) {
	slab[base+n] = pos
	i := n
	for i > 0 {
		parent := (i - 1) / 2
		if slab[base+parent] <= slab[base+i] {
			break
		}
		slab[base+i], slab[base+parent] = slab[base+parent], slab[base+i]
		i = parent
	}
}

// posPop removes and returns the minimum of the n-element heap at
// slab[base : base+n]; the caller decrements its length.
func posPop(slab []int32, base, n int) int32 {
	top := slab[base]
	n--
	slab[base] = slab[base+n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		next := left
		if right := left + 1; right < n && slab[base+right] < slab[base+left] {
			next = right
		}
		if slab[base+i] <= slab[base+next] {
			break
		}
		slab[base+i], slab[base+next] = slab[base+next], slab[base+i]
		i = next
	}
	return top
}
