package sim

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/task"
)

// StealingDispatcher models the alternative to replication the paper
// dismisses as prohibitive for out-of-core systems: running a task on
// a machine that does not hold its data, paying a fetch penalty. An
// idle machine first drains the tasks whose replica set contains it
// (in priority order); once no local work remains it steals the
// highest-priority unstarted task from anywhere, at Penalty times the
// task's actual duration.
//
// With Penalty→∞ this degenerates to pure local execution (machines
// simply retire when local work runs out would be wrong — a stolen
// infinite task never completes; use DurationOf to compare policies
// at finite penalties instead). Experiment e9 sweeps the penalty to
// locate the crossover where replication beats stealing.
type StealingDispatcher struct {
	// Penalty multiplies the duration of remotely executed tasks
	// (must be ≥ 1).
	Penalty float64

	local   [][]int // per machine: positions into order
	headL   []int
	order   []int
	headG   int
	started []bool
	isLocal []map[int]bool // per machine: task set
}

// NewStealingDispatcher builds a stealing dispatcher over a placement
// and a priority order (a permutation of task IDs).
func NewStealingDispatcher(p *placement.Placement, order []int, penalty float64) (*StealingDispatcher, error) {
	if penalty < 1 {
		return nil, fmt.Errorf("sim: stealing penalty %v below 1", penalty)
	}
	base, err := NewListDispatcher(p, order)
	if err != nil {
		return nil, err
	}
	d := &StealingDispatcher{
		Penalty: penalty,
		local:   base.queues,
		headL:   base.head,
		order:   order,
		started: base.startedTask,
		isLocal: make([]map[int]bool, p.M),
	}
	for i := 0; i < p.M; i++ {
		d.isLocal[i] = make(map[int]bool)
	}
	for j, set := range p.Sets {
		for _, i := range set {
			d.isLocal[i][j] = true
		}
	}
	return d, nil
}

// Next implements Dispatcher: local work first, then steal.
func (d *StealingDispatcher) Next(machine int, _ float64) (int, bool) {
	q := d.local[machine]
	for d.headL[machine] < len(q) {
		pos := q[d.headL[machine]]
		j := d.order[pos]
		if !d.started[j] {
			d.started[j] = true
			d.headL[machine]++
			return j, true
		}
		d.headL[machine]++
	}
	for d.headG < len(d.order) {
		j := d.order[d.headG]
		if !d.started[j] {
			d.started[j] = true
			d.headG++
			return j, true
		}
		d.headG++
	}
	return 0, false
}

// Completed implements Dispatcher.
func (d *StealingDispatcher) Completed(int, int, float64, float64) {}

// DurationOf returns the executed duration of a task on a machine:
// the actual time, multiplied by the penalty when the machine holds
// no replica. Pass it as Options.Duration.
func (d *StealingDispatcher) DurationOf(in *task.Instance) func(taskID, machine int) float64 {
	return func(taskID, machine int) float64 {
		dur := in.Tasks[taskID].Actual
		if !d.isLocal[machine][taskID] {
			dur *= d.Penalty
		}
		return dur
	}
}
