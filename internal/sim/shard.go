package sim

import (
	"repro/internal/placement"
	"repro/internal/tick"
)

// mEvent is a machine event (idle or crash) in fixed-point time: the
// flat engine's replacement for idleEvent. Ordering is (tick, machine)
// — two int64-comparable fields, no float compares on the hot loop.
type mEvent struct {
	t tick.Tick
	m int32
}

func mLess(a, b mEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.m < b.m
}

// mPush inserts ev into the binary min-heap h and returns the heap.
// Same specialized sift as eventQueue.push; as there, keys are unique
// (at most one pending event per machine), so pop order is the total
// (tick, machine) order regardless of heap internals.
func mPush(h []mEvent, ev mEvent) []mEvent {
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// mPop removes and returns the minimum event.
func mPop(h []mEvent) ([]mEvent, mEvent) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		next := left
		if right := left + 1; right < last && mLess(h[right], h[left]) {
			next = right
		}
		if !mLess(h[next], h[i]) {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return h, top
}

// partition decomposes the placement into shards: the connected
// components of machines under the "appears in the same replica set"
// relation. Tasks on different shards share no machines and no
// replicas, so their simulations are independent — the structural fact
// the sharded runner exploits and the differential suite verifies.
//
// Shard IDs are assigned in order of each component's lowest machine
// index, so the decomposition (and everything downstream: trace
// regions, merge order) is a deterministic function of the placement
// alone. Within a shard, shardMachines is ascending.
func (r *FlatRunner) partition(p *placement.Placement) {
	n, m := p.N(), p.M
	r.parent = growI32(r.parent, m)
	for i := range r.parent {
		r.parent[i] = int32(i)
	}
	for j := 0; j < n; j++ {
		set := p.Sets[j]
		root := r.find(int32(set[0]))
		for _, i := range set[1:] {
			if ri := r.find(int32(i)); ri != root {
				r.parent[ri] = root
			}
		}
	}

	// Label components by first machine appearance: pass 1 labels the
	// roots, pass 2 propagates the root's label to every member (a
	// member's slot is only ever written once, and a root's slot only
	// with its own label, so reads and writes cannot collide).
	r.shardOf = growI32(r.shardOf, m)
	for i := range r.shardOf {
		r.shardOf[i] = -1
	}
	ns := int32(0)
	for i := 0; i < m; i++ {
		if root := r.find(int32(i)); r.shardOf[root] < 0 {
			r.shardOf[root] = ns
			ns++
		}
	}
	for i := 0; i < m; i++ {
		r.shardOf[i] = r.shardOf[r.find(int32(i))]
	}
	r.nShards = int(ns)

	// CSR of shard members. parent has served its purpose, so its
	// prefix is recycled as the per-shard fill cursor.
	r.shardOff = growI32Zero(r.shardOff, r.nShards+1)
	for i := 0; i < m; i++ {
		r.shardOff[r.shardOf[i]+1]++
	}
	for s := 0; s < r.nShards; s++ {
		r.shardOff[s+1] += r.shardOff[s]
	}
	cur := r.parent[:r.nShards]
	clear(cur)
	r.shardMachines = growI32(r.shardMachines, m)
	for i := 0; i < m; i++ {
		s := r.shardOf[i]
		r.shardMachines[r.shardOff[s]+cur[s]] = int32(i)
		cur[s]++
	}

	r.taskShard = growI32(r.taskShard, n)
	for j := 0; j < n; j++ {
		r.taskShard[j] = r.shardOf[p.Sets[j][0]]
	}
}

// find is union-find root lookup with path compression over parent.
func (r *FlatRunner) find(x int32) int32 {
	root := x
	for r.parent[root] != root {
		root = r.parent[root]
	}
	for r.parent[x] != root {
		r.parent[x], x = root, r.parent[x]
	}
	return root
}

// partitionTrivial is the degenerate one-shard decomposition Run uses:
// a single global event loop over all machines, the sequential
// reference RunSharded is differentially tested against.
func (r *FlatRunner) partitionTrivial(n, m int) {
	r.nShards = 1
	r.shardOf = growI32Zero(r.shardOf, m)
	r.shardMachines = growI32(r.shardMachines, m)
	for i := range r.shardMachines {
		r.shardMachines[i] = int32(i)
	}
	r.shardOff = growI32(r.shardOff, 2)
	r.shardOff[0], r.shardOff[1] = 0, int32(m)
	r.taskShard = growI32Zero(r.taskShard, n)
}

// PartitionShards exposes the shard decomposition for property tests
// and tooling: machineShard[i] and taskShard[j] are shard IDs, and
// nShards is the shard count. IDs are dense, assigned in order of each
// shard's lowest machine index. Every machine and every task belongs
// to exactly one shard, and a task's shard contains its whole replica
// set — the exact-cover property FuzzGroupPartition pins.
func PartitionShards(p *placement.Placement) (machineShard, taskShard []int, nShards int, err error) {
	if err := placement.CheckSets(p.Sets, p.M); err != nil {
		return nil, nil, 0, err
	}
	var r FlatRunner
	r.partition(p)
	machineShard = make([]int, p.M)
	for i, s := range r.shardOf {
		machineShard[i] = int(s)
	}
	taskShard = make([]int, p.N())
	for j, s := range r.taskShard {
		taskShard[j] = int(s)
	}
	return machineShard, taskShard, r.nShards, nil
}
