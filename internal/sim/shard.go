package sim

import (
	"repro/internal/placement"
	"repro/internal/tick"
)

// mEvent is a machine event (idle or crash) in fixed-point time: the
// flat engine's replacement for idleEvent. Ordering is (tick, machine)
// — two int64-comparable fields, no float compares on the hot loop.
type mEvent struct {
	t tick.Tick
	m int32
}

func mLess(a, b mEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.m < b.m
}

// mPush inserts ev into the binary min-heap h and returns the heap.
// Same specialized sift as eventQueue.push; as there, keys are unique
// (at most one pending event per machine), so pop order is the total
// (tick, machine) order regardless of heap internals.
func mPush(h []mEvent, ev mEvent) []mEvent {
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// mPop removes and returns the minimum event.
func mPop(h []mEvent) ([]mEvent, mEvent) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		next := left
		if right := left + 1; right < last && mLess(h[right], h[left]) {
			next = right
		}
		if !mLess(h[next], h[i]) {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return h, top
}

// shardSet is the shard decomposition shared by the flat engines
// (batch FlatRunner and open-system FlatOpenRunner): the connected
// components of machines under the "appears in the same replica set"
// relation, plus the task-side CSR bookkeeping both engines hang their
// per-shard state on. It is embedded, so runners address the fields
// directly (r.shardOf, r.taskShard, …).
type shardSet struct {
	parent        []int32 // union-find scratch over machines
	shardOf       []int32
	shardMachines []int32
	shardOff      []int32
	taskShard     []int32
	shardTaskOff  []int32
	shardTasks    []int32
	nShards       int
}

// reset truncates every slice, retaining capacity.
func (ss *shardSet) reset() {
	ss.parent = ss.parent[:0]
	ss.shardOf = ss.shardOf[:0]
	ss.shardMachines = ss.shardMachines[:0]
	ss.shardOff = ss.shardOff[:0]
	ss.taskShard = ss.taskShard[:0]
	ss.shardTaskOff = ss.shardTaskOff[:0]
	ss.shardTasks = ss.shardTasks[:0]
	ss.nShards = 0
}

// partition decomposes the placement into shards: the connected
// components of machines under the "appears in the same replica set"
// relation. Tasks on different shards share no machines and no
// replicas, so their simulations are independent — the structural fact
// the sharded runners exploit and the differential suites verify.
//
// Shard IDs are assigned in order of each component's lowest machine
// index, so the decomposition (and everything downstream: trace
// regions, merge order) is a deterministic function of the placement
// alone. Within a shard, shardMachines is ascending.
func (ss *shardSet) partition(p *placement.Placement) {
	n, m := p.N(), p.M
	ss.parent = growI32(ss.parent, m)
	for i := range ss.parent {
		ss.parent[i] = int32(i)
	}
	for j := 0; j < n; j++ {
		set := p.Sets[j]
		root := ss.find(int32(set[0]))
		for _, i := range set[1:] {
			if ri := ss.find(int32(i)); ri != root {
				ss.parent[ri] = root
			}
		}
	}

	// Label components by first machine appearance: pass 1 labels the
	// roots, pass 2 propagates the root's label to every member (a
	// member's slot is only ever written once, and a root's slot only
	// with its own label, so reads and writes cannot collide).
	ss.shardOf = growI32(ss.shardOf, m)
	for i := range ss.shardOf {
		ss.shardOf[i] = -1
	}
	ns := int32(0)
	for i := 0; i < m; i++ {
		if root := ss.find(int32(i)); ss.shardOf[root] < 0 {
			ss.shardOf[root] = ns
			ns++
		}
	}
	for i := 0; i < m; i++ {
		ss.shardOf[i] = ss.shardOf[ss.find(int32(i))]
	}
	ss.nShards = int(ns)

	// CSR of shard members. parent has served its purpose, so its
	// prefix is recycled as the per-shard fill cursor.
	ss.shardOff = growI32Zero(ss.shardOff, ss.nShards+1)
	for i := 0; i < m; i++ {
		ss.shardOff[ss.shardOf[i]+1]++
	}
	for s := 0; s < ss.nShards; s++ {
		ss.shardOff[s+1] += ss.shardOff[s]
	}
	cur := ss.parent[:ss.nShards]
	clear(cur)
	ss.shardMachines = growI32(ss.shardMachines, m)
	for i := 0; i < m; i++ {
		s := ss.shardOf[i]
		ss.shardMachines[ss.shardOff[s]+cur[s]] = int32(i)
		cur[s]++
	}

	ss.taskShard = growI32(ss.taskShard, n)
	for j := 0; j < n; j++ {
		ss.taskShard[j] = ss.shardOf[p.Sets[j][0]]
	}
}

// find is union-find root lookup with path compression over parent.
func (ss *shardSet) find(x int32) int32 {
	root := x
	for ss.parent[root] != root {
		root = ss.parent[root]
	}
	for ss.parent[x] != root {
		ss.parent[x], x = root, ss.parent[x]
	}
	return root
}

// partitionTrivial is the degenerate one-shard decomposition the
// sequential entry points use: a single global event loop over all
// machines, the reference the sharded paths are differentially tested
// against.
func (ss *shardSet) partitionTrivial(n, m int) {
	ss.nShards = 1
	ss.shardOf = growI32Zero(ss.shardOf, m)
	ss.shardMachines = growI32(ss.shardMachines, m)
	for i := range ss.shardMachines {
		ss.shardMachines[i] = int32(i)
	}
	ss.shardOff = growI32(ss.shardOff, 2)
	ss.shardOff[0], ss.shardOff[1] = 0, int32(m)
	ss.taskShard = growI32Zero(ss.taskShard, n)
}

// buildTaskOffsets fills shardTaskOff with per-shard task-count prefix
// sums: shard s owns tasks [shardTaskOff[s], shardTaskOff[s+1]) of any
// shard-grouped task CSR. Requires taskShard to be populated.
func (ss *shardSet) buildTaskOffsets(n int) {
	ss.shardTaskOff = growI32Zero(ss.shardTaskOff, ss.nShards+1)
	for j := 0; j < n; j++ {
		ss.shardTaskOff[ss.taskShard[j]+1]++
	}
	for s := 0; s < ss.nShards; s++ {
		ss.shardTaskOff[s+1] += ss.shardTaskOff[s]
	}
}

// buildTaskLists fills shardTasks, the CSR (with buildTaskOffsets'
// offsets) listing each shard's tasks in ascending task ID. Ascending
// IDs matter to the open engine: arrival times are indexed by task ID
// and non-decreasing, so each shard's slice is already its arrival
// stream. The parent prefix is recycled as the fill cursor (the
// union-find is never consulted again after partition).
func (ss *shardSet) buildTaskLists(n int) {
	cur := growI32Zero(ss.parent, ss.nShards)
	ss.parent = cur[:0]
	ss.shardTasks = growI32(ss.shardTasks, n)
	for j := 0; j < n; j++ {
		s := ss.taskShard[j]
		ss.shardTasks[ss.shardTaskOff[s]+cur[s]] = int32(j)
		cur[s]++
	}
}

// PartitionShards exposes the shard decomposition for property tests
// and tooling: machineShard[i] and taskShard[j] are shard IDs, and
// nShards is the shard count. IDs are dense, assigned in order of each
// shard's lowest machine index. Every machine and every task belongs
// to exactly one shard, and a task's shard contains its whole replica
// set — the exact-cover property FuzzGroupPartition pins.
func PartitionShards(p *placement.Placement) (machineShard, taskShard []int, nShards int, err error) {
	if err := placement.CheckSets(p.Sets, p.M); err != nil {
		return nil, nil, 0, err
	}
	var ss shardSet
	ss.partition(p)
	machineShard = make([]int, p.M)
	for i, s := range ss.shardOf {
		machineShard[i] = int(s)
	}
	taskShard = make([]int, p.N())
	for j, s := range ss.taskShard {
		taskShard[j] = int(s)
	}
	return machineShard, taskShard, ss.nShards, nil
}
