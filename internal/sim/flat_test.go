package sim

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// flatWorkerCounts is the satellite-1 matrix: sequential, small,
// oversubscribed, and whatever this host actually has.
func flatWorkerCounts() []int {
	return []int{1, 2, 8, runtime.NumCPU()}
}

// flatCase is one (instance, placement, order) triple for the
// differential suite.
type flatCase struct {
	name  string
	in    *task.Instance
	p     *placement.Placement
	order []int
}

// lptOrder ranks tasks by non-increasing estimate (the paper's LPT
// priority), ties toward lower IDs.
func lptOrder(in *task.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Estimate > in.Tasks[order[b]].Estimate
	})
	return order
}

// nonePlacement maps each task to a single machine — every machine
// becomes its own singleton shard.
func nonePlacement(n, m int, seed uint64) *placement.Placement {
	p := placement.New(n, m)
	r := rng.New(seed)
	for j := 0; j < n; j++ {
		p.Assign(j, r.Intn(m))
	}
	return p
}

// groupPlacement partitions machines into ⌈m/k⌉ groups of size ≤ k and
// places each task on one whole group — the paper's group:k strategy,
// which is exactly the shape the sharded runner decomposes.
func groupPlacement(t *testing.T, n, m, k int, seed uint64) *placement.Placement {
	t.Helper()
	groups, err := placement.PartitionGroups(m, k)
	if err != nil {
		t.Fatalf("PartitionGroups(%d,%d): %v", m, k, err)
	}
	p := placement.New(n, m)
	r := rng.New(seed)
	for j := 0; j < n; j++ {
		p.AssignSet(j, groups[r.Intn(len(groups))])
	}
	return p
}

// mixedPlacement mixes singleton, group, and everywhere sets in one
// instance so a single run exercises replayLinear and runSpanHeap
// shards side by side (plus the big component they all merge into for
// the tasks placed everywhere — exercised in its own case instead).
func mixedPlacement(n, m int, seed uint64) *placement.Placement {
	p := placement.New(n, m)
	r := rng.New(seed)
	half := m / 2
	for j := 0; j < n; j++ {
		switch j % 3 {
		case 0: // singleton on a low machine
			p.Assign(j, r.Intn(half))
		case 1: // pair group among high machines
			a := half + r.Intn(m-half)
			b := half + (a-half+1)%(m-half)
			if a == b {
				p.Assign(j, a)
			} else {
				p.AssignSet(j, []int{a, b})
			}
		default: // singleton on a high machine, densifying shards
			p.Assign(j, half+r.Intn(m-half))
		}
	}
	return p
}

// flatCases builds the none/group:k/all/mixed matrix over a few
// shapes, with perturbed (continuous) durations.
func flatCases(t *testing.T) []flatCase {
	t.Helper()
	var cases []flatCase
	shapes := []struct {
		n, m, k int
		seed    uint64
	}{
		{40, 8, 2, 11},
		{60, 12, 3, 12},
		{25, 5, 5, 13}, // group of m: single shard
		{30, 6, 1, 14}, // group of 1: all singleton shards
	}
	for _, s := range shapes {
		in := workload.MustNew(workload.Spec{
			Name: "zipf", N: s.n, M: s.m, Alpha: 1.8, Seed: s.seed,
		})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(s.seed^0x5eed))
		order := lptOrder(in)
		cases = append(cases,
			flatCase{"none", in, nonePlacement(s.n, s.m, s.seed), order},
			flatCase{"group", in, groupPlacement(t, s.n, s.m, s.k, s.seed), order},
			flatCase{"all", in, placement.Everywhere(s.n, s.m), order},
			flatCase{"mixed", in, mixedPlacement(s.n, s.m, s.seed), order},
		)
	}
	return cases
}

func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Schedule.Assignments, want.Schedule.Assignments) {
		t.Errorf("%s: schedule diverges", label)
	}
	if got.Schedule.M != want.Schedule.M {
		t.Errorf("%s: M = %d, want %d", label, got.Schedule.M, want.Schedule.M)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace[%d] = %+v, want %+v", label, i, got.Trace[i], want.Trace[i])
		}
	}
}

// TestFlatShardedMatchesRun is the core satellite-1 differential:
// RunSharded at every worker count is byte-identical — assignment by
// assignment, trace event by trace event — to the sequential flat Run,
// across all placement families.
func TestFlatShardedMatchesRun(t *testing.T) {
	for _, c := range flatCases(t) {
		want, err := RunFlat(c.in, c.p, c.order, FlatOptions{Trace: true})
		if err != nil {
			t.Fatalf("%s: Run: %v", c.name, err)
		}
		if err := want.Schedule.Verify(c.in, c.p); err != nil {
			t.Fatalf("%s: sequential flat schedule invalid: %v", c.name, err)
		}
		for _, w := range flatWorkerCounts() {
			got, err := RunFlatSharded(c.in, c.p, c.order, FlatOptions{Trace: true}, w)
			if err != nil {
				t.Fatalf("%s/workers=%d: RunSharded: %v", c.name, w, err)
			}
			requireSameResult(t, c.name+"/workers="+itoa(w), got, want)
		}
	}
}

// TestFlatShardedMatchesRunWithDuration repeats the differential under
// a Duration override (the remote-fetch penalty path). The hook is
// pure, as the concurrency contract requires.
func TestFlatShardedMatchesRunWithDuration(t *testing.T) {
	for _, c := range flatCases(t) {
		in := c.in
		dur := func(j, i int) float64 {
			if (j+i)%3 == 0 {
				return in.Tasks[j].Actual * 2.5
			}
			return in.Tasks[j].Actual
		}
		want, err := RunFlat(in, c.p, c.order, FlatOptions{Trace: true, Duration: dur})
		if err != nil {
			t.Fatalf("%s: Run: %v", c.name, err)
		}
		for _, w := range flatWorkerCounts() {
			got, err := RunFlatSharded(in, c.p, c.order, FlatOptions{Trace: true, Duration: dur}, w)
			if err != nil {
				t.Fatalf("%s/workers=%d: RunSharded: %v", c.name, w, err)
			}
			requireSameResult(t, c.name+"/workers="+itoa(w), got, want)
		}
	}
}

// TestFlatMatchesEventEngineExact pins the flat engine to the
// pre-refactor float engine byte-for-byte on integer durations, where
// tick quantization is exact: same dispatch decisions, same start/end
// floats, same trace. This is the cross-engine golden equivalence.
func TestFlatMatchesEventEngineExact(t *testing.T) {
	shapes := []struct {
		n, m, k int
		seed    uint64
	}{{40, 8, 2, 21}, {55, 10, 5, 22}, {24, 6, 3, 23}}
	for _, s := range shapes {
		est := make([]float64, s.n)
		act := make([]float64, s.n)
		r := rng.New(s.seed)
		for j := range act {
			act[j] = float64(1 + r.Intn(9)) // whole seconds: exact in ticks
			est[j] = float64(1 + r.Intn(9))
		}
		in, err := task.New(s.m, 9, est, act)
		if err != nil {
			t.Fatal(err)
		}
		order := lptOrder(in)
		for _, p := range []*placement.Placement{
			nonePlacement(s.n, s.m, s.seed),
			groupPlacement(t, s.n, s.m, s.k, s.seed),
			placement.Everywhere(s.n, s.m),
		} {
			d, err := NewListDispatcher(p, order)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(in, d, Options{Trace: true})
			if err != nil {
				t.Fatalf("event engine: %v", err)
			}
			for _, w := range flatWorkerCounts() {
				got, err := RunFlatSharded(in, p, order, FlatOptions{Trace: true}, w)
				if err != nil {
					t.Fatalf("flat workers=%d: %v", w, err)
				}
				requireSameResult(t, "cross-engine/workers="+itoa(w), got, want)
			}
		}
	}
}

// TestFlatMatchesEventEngineEpsilon compares the engines on continuous
// durations, where ticks quantize: dispatch decisions must still agree
// (the seeds hit no sub-nanotick ties) and every start/end must sit
// within the accumulated quantization bound of half a tick per task in
// the machine's chain.
func TestFlatMatchesEventEngineEpsilon(t *testing.T) {
	for _, c := range flatCases(t) {
		d, err := NewListDispatcher(c.p, c.order)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(c.in, d, Options{})
		if err != nil {
			t.Fatalf("%s: event engine: %v", c.name, err)
		}
		got, err := RunFlat(c.in, c.p, c.order, FlatOptions{})
		if err != nil {
			t.Fatalf("%s: flat engine: %v", c.name, err)
		}
		if err := got.Schedule.Verify(c.in, c.p); err != nil {
			t.Fatalf("%s: flat schedule fails Verify: %v", c.name, err)
		}
		// ≤ 0.5e-9 quantization per task in a chain of at most n tasks,
		// plus float slack for the reference's own sums.
		eps := 1e-9 * float64(c.in.N()+1)
		for j, ga := range got.Schedule.Assignments {
			wa := want.Schedule.Assignments[j]
			if ga.Machine != wa.Machine {
				t.Fatalf("%s: task %d on machine %d, event engine chose %d",
					c.name, j, ga.Machine, wa.Machine)
			}
			if math.Abs(ga.Start-wa.Start) > eps || math.Abs(ga.End-wa.End) > eps {
				t.Fatalf("%s: task %d times (%v,%v) drift from (%v,%v) beyond %v",
					c.name, j, ga.Start, ga.End, wa.Start, wa.End, eps)
			}
		}
	}
}

// crashPlan builds integer-and-half crash times, exactly representable
// in both float64 and ticks, so both engines resolve every
// crash-vs-completion boundary identically.
func crashPlan(p *placement.Placement, seed uint64, count int) []Failure {
	r := rng.New(seed)
	fs := make([]Failure, 0, count)
	for len(fs) < count {
		fs = append(fs, Failure{
			Machine: r.Intn(p.M),
			Time:    float64(r.Intn(20)) * 0.5,
		})
	}
	return fs
}

// TestFlatFailuresMatchSequential differentially tests the fail-stop
// port: flat Run with Failures must match RunWithFailures — same
// surviving schedule or the very same error — and RunSharded must
// match both at every worker count.
func TestFlatFailuresMatchSequential(t *testing.T) {
	shapes := []struct {
		n, m, k int
		seed    uint64
	}{{40, 8, 2, 31}, {60, 12, 3, 32}, {30, 6, 6, 33}}
	for _, s := range shapes {
		est := make([]float64, s.n)
		act := make([]float64, s.n)
		r := rng.New(s.seed)
		for j := range act {
			act[j] = float64(1 + r.Intn(6))
			est[j] = act[j]
		}
		in, err := task.New(s.m, 1, est, act)
		if err != nil {
			t.Fatal(err)
		}
		order := lptOrder(in)
		placements := []*placement.Placement{
			groupPlacement(t, s.n, s.m, s.k, s.seed),
			placement.Everywhere(s.n, s.m),
			nonePlacement(s.n, s.m, s.seed), // mostly unsurvivable: error paths
		}
		for pi, p := range placements {
			for round := uint64(0); round < 4; round++ {
				failures := crashPlan(p, s.seed*101+round, int(round)+1)
				wantSched, wantErr := RunWithFailures(in, p, order, failures)
				for _, w := range flatWorkerCounts() {
					got, err := RunFlatSharded(in, p, order, FlatOptions{Failures: failures}, w)
					if (err == nil) != (wantErr == nil) {
						t.Fatalf("p%d round %d workers=%d: err = %v, sequential err = %v",
							pi, round, w, err, wantErr)
					}
					if err != nil {
						if err.Error() != wantErr.Error() {
							t.Fatalf("p%d round %d workers=%d: err %q, sequential %q",
								pi, round, w, err, wantErr)
						}
						if errors.Is(wantErr, ErrUnsurvivable) != errors.Is(err, ErrUnsurvivable) {
							t.Fatalf("p%d round %d workers=%d: ErrUnsurvivable identity diverges", pi, round, w)
						}
						continue
					}
					if !reflect.DeepEqual(got.Schedule.Assignments, wantSched.Assignments) {
						t.Fatalf("p%d round %d workers=%d: schedule diverges from RunWithFailures",
							pi, round, w)
					}
				}
			}
		}
	}
}

// TestFlatFailureBoundaryCrash pins the exact-boundary branch: a crash
// at precisely a task's completion instant completes the task in both
// engines instead of losing it.
func TestFlatFailureBoundaryCrash(t *testing.T) {
	in := inst(t, 2, 3, 1, 1, 1)
	p := placement.Everywhere(4, 2)
	order := identityOrder(4)
	failures := []Failure{{Machine: 0, Time: 3}}
	want, err := RunWithFailures(in, p, order, failures)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, w := range flatWorkerCounts() {
		got, err := RunFlatSharded(in, p, order, FlatOptions{Failures: failures}, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got.Schedule.Assignments, want.Assignments) {
			t.Errorf("workers=%d: boundary-crash schedule diverges", w)
		}
	}
}

// TestFlatRunnerReuseMatchesFresh carries one FlatRunner dirty across
// instances of varying shape (the pool_test pattern): reuse must be
// invisible in the output.
func TestFlatRunnerReuseMatchesFresh(t *testing.T) {
	var reused FlatRunner
	for ci, in := range poolCases(t) {
		p := groupPlacement(t, in.N(), in.M, 2, uint64(ci)+7)
		order := lptOrder(in)
		got, err := reused.RunSharded(in, p, order, FlatOptions{Trace: true}, 2)
		if err != nil {
			t.Fatalf("case %d: reused: %v", ci, err)
		}
		want, err := RunFlatSharded(in, p, order, FlatOptions{Trace: true}, 2)
		if err != nil {
			t.Fatalf("case %d: fresh: %v", ci, err)
		}
		requireSameResult(t, "reuse case "+itoa(ci), got, want)
	}
}

// TestFlatValidation covers the flat engine's input rejection, with
// messages matching the event engine where the checks coincide.
func TestFlatValidation(t *testing.T) {
	in := inst(t, 2, 1, 2, 3)
	p := placement.Everywhere(3, 2)
	check := func(wantSub string, pp *placement.Placement, order []int, opts FlatOptions, run *task.Instance) {
		t.Helper()
		if _, err := RunFlat(run, pp, order, opts); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("want error containing %q, got %v", wantSub, err)
		}
	}
	check("priority order has", p, []int{0, 1}, FlatOptions{}, in)
	check("not a permutation", p, []int{0, 1, 1}, FlatOptions{}, in)
	check("not a permutation", p, []int{0, 1, 5}, FlatOptions{}, in)
	check("does not match instance", placement.Everywhere(2, 2), identityOrder(3), FlatOptions{}, in)
	check("failures cannot be combined", p, identityOrder(3),
		FlatOptions{Trace: true, Failures: []Failure{{Machine: 0, Time: 1}}}, in)
	check("invalid machine", p, identityOrder(3),
		FlatOptions{Failures: []Failure{{Machine: 9, Time: 1}}}, in)
	check("negative time", p, identityOrder(3),
		FlatOptions{Failures: []Failure{{Machine: 0, Time: -1}}}, in)

	bad := inst(t, 2, 1, 2, 3)
	bad.Tasks[1].Actual = math.NaN() // task.New validates, so corrupt after
	check("actual time", p, identityOrder(3), FlatOptions{}, bad)
	neg := inst(t, 2, 1, 2, 3)
	neg.Tasks[2].Actual = -3
	check("negative actual", p, identityOrder(3), FlatOptions{}, neg)

	check("duration hook", p, identityOrder(3),
		FlatOptions{Duration: func(int, int) float64 { return math.NaN() }}, in)
	check("negative", p, identityOrder(3),
		FlatOptions{Duration: func(int, int) float64 { return -1 }}, in)
}

// TestFlatNoTraceByDefault mirrors TestNoTraceByDefault for the flat
// engine.
func TestFlatNoTraceByDefault(t *testing.T) {
	in := inst(t, 2, 1, 2)
	res, err := RunFlat(in, placement.Everywhere(2, 2), identityOrder(2), FlatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Errorf("trace has %d events without Trace option", len(res.Trace))
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
