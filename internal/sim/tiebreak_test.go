package sim

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/tick"
)

// TestEventQueueTiedPopOrder is the satellite-4 audit regression for
// the float event queue: events pushed in adversarial order — many
// exact time ties across machines — must pop in the total
// (time, machine) order. Per-machine keys are unique in real runs (one
// pending event per machine), so this total order is the full
// determinism claim; a sift change that broke tie handling would
// reorder the equal-time block and fail here.
func TestEventQueueTiedPopOrder(t *testing.T) {
	r := rng.New(99)
	var events []idleEvent
	for machine := 0; machine < 16; machine++ {
		events = append(events, idleEvent{time: float64(r.Intn(4)), machine: machine})
	}
	// Shuffle the push order with a seeded permutation.
	for i := len(events) - 1; i > 0; i-- {
		k := r.Intn(i + 1)
		events[i], events[k] = events[k], events[i]
	}
	var q eventQueue
	for _, ev := range events {
		q.push(ev)
	}
	want := append([]idleEvent(nil), events...)
	sort.Slice(want, func(a, b int) bool { return eventLess(want[a], want[b]) })
	for i, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestTickHeapTiedPopOrder is the same audit for the flat engine's
// mEvent heap: ticks tie exactly (int64 equality, no float fuzz), and
// the machine index must fully resolve the order.
func TestTickHeapTiedPopOrder(t *testing.T) {
	r := rng.New(77)
	var events []mEvent
	for machine := int32(0); machine < 24; machine++ {
		events = append(events, mEvent{t: tick.Tick(r.Intn(3)) * tick.PerSecond, m: machine})
	}
	for i := len(events) - 1; i > 0; i-- {
		k := r.Intn(i + 1)
		events[i], events[k] = events[k], events[i]
	}
	var h []mEvent
	for _, ev := range events {
		h = mPush(h, ev)
	}
	want := append([]mEvent(nil), events...)
	sort.Slice(want, func(a, b int) bool { return mLess(want[a], want[b]) })
	for i, w := range want {
		var got mEvent
		h, got = mPop(h)
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestFailureCrashOrderIndependentOfInput pins the crashQ tie-break
// fix: two same-instant crashes handed to RunWithFailures in either
// caller order must yield the same outcome — previously a Time-only
// sort let the caller's slice order leak into which machine died
// first, and with it which ErrUnsurvivable a doomed run reported.
func TestFailureCrashOrderIndependentOfInput(t *testing.T) {
	in := inst(t, 4, 5, 5, 5, 5, 1, 1)
	p := placement.New(6, 4)
	p.AssignSet(0, []int{0, 1})
	p.AssignSet(1, []int{0, 1})
	p.AssignSet(2, []int{2, 3})
	p.AssignSet(3, []int{2, 3})
	p.AssignSet(4, []int{0, 1})
	p.AssignSet(5, []int{2, 3})
	order := identityOrder(6)

	// Both group {0,1} and group {2,3} fully die at t=2: doomed either
	// way, and the reported task/machine must not depend on input order.
	fwd := []Failure{{Machine: 0, Time: 2}, {Machine: 1, Time: 2}, {Machine: 2, Time: 2}, {Machine: 3, Time: 2}}
	rev := []Failure{{Machine: 3, Time: 2}, {Machine: 2, Time: 2}, {Machine: 1, Time: 2}, {Machine: 0, Time: 2}}
	_, errFwd := RunWithFailures(in, p, order, fwd)
	_, errRev := RunWithFailures(in, p, order, rev)
	if errFwd == nil || errRev == nil {
		t.Fatalf("expected unsurvivable errors, got %v / %v", errFwd, errRev)
	}
	if errFwd.Error() != errRev.Error() {
		t.Fatalf("crash input order leaked into result: %q vs %q", errFwd, errRev)
	}

	// Survivable same-instant ties: schedules must match exactly too,
	// in the sequential engine and the flat engine at several worker
	// counts.
	sfwd := []Failure{{Machine: 1, Time: 2}, {Machine: 3, Time: 2}}
	srev := []Failure{{Machine: 3, Time: 2}, {Machine: 1, Time: 2}}
	wantSched, err := RunWithFailures(in, p, order, sfwd)
	if err != nil {
		t.Fatalf("survivable fwd: %v", err)
	}
	gotSched, err := RunWithFailures(in, p, order, srev)
	if err != nil {
		t.Fatalf("survivable rev: %v", err)
	}
	if !reflect.DeepEqual(gotSched.Assignments, wantSched.Assignments) {
		t.Fatal("sequential schedule depends on crash input order")
	}
	for _, w := range []int{1, 2, 8} {
		for _, fs := range [][]Failure{sfwd, srev} {
			res, err := RunFlatSharded(in, p, order, FlatOptions{Failures: fs}, w)
			if err != nil {
				t.Fatalf("flat workers=%d: %v", w, err)
			}
			if !reflect.DeepEqual(res.Schedule.Assignments, wantSched.Assignments) {
				t.Fatalf("flat workers=%d: schedule depends on crash input order", w)
			}
		}
	}
}
