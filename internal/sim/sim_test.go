package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

func inst(t *testing.T, m int, actuals ...float64) *task.Instance {
	t.Helper()
	est := make([]float64, len(actuals))
	copy(est, actuals)
	in, err := task.New(m, 1, est, actuals)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// identityOrder returns 0..n-1.
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func TestListDispatcherFullReplication(t *testing.T) {
	// 2 machines, tasks of length 3,2,2: greedy list scheduling puts
	// task0 on m0, task1 on m1, task2 on m1 (first idle at t=2).
	in := inst(t, 2, 3, 2, 2)
	p := placement.Everywhere(3, 2)
	d, err := NewListDispatcher(p, identityOrder(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Makespan(); got != 4 {
		t.Fatalf("makespan = %v, want 4", got)
	}
	a2 := res.Schedule.Assignments[2]
	if a2.Machine != 1 || a2.Start != 2 {
		t.Fatalf("task 2 ran %+v, want machine 1 start 2", a2)
	}
}

func TestListDispatcherRespectsReplicaSets(t *testing.T) {
	// Task 0 restricted to machine 1; machine 0 must take task 1.
	in := inst(t, 2, 5, 1)
	p := placement.New(2, 2)
	p.Assign(0, 1)
	p.Assign(1, 0)
	d, err := NewListDispatcher(p, identityOrder(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Assignments[0].Machine != 1 {
		t.Fatalf("task 0 ran on machine %d", res.Schedule.Assignments[0].Machine)
	}
}

func TestRunUsesActualTimes(t *testing.T) {
	est := []float64{2, 2}
	act := []float64{4, 1}
	in, err := task.New(1, 2, est, act)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.Everywhere(2, 1)
	d, _ := NewListDispatcher(p, identityOrder(2))
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Makespan(); got != 5 {
		t.Fatalf("makespan = %v, want 5 (actual times)", got)
	}
}

func TestTieBreakTowardLowerMachine(t *testing.T) {
	in := inst(t, 3, 1)
	p := placement.Everywhere(1, 3)
	d, _ := NewListDispatcher(p, identityOrder(1))
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Assignments[0].Machine; got != 0 {
		t.Fatalf("first task on machine %d, want 0", got)
	}
}

func TestTraceOrdering(t *testing.T) {
	in := inst(t, 2, 2, 1, 1)
	p := placement.Everywhere(3, 2)
	d, _ := NewListDispatcher(p, identityOrder(3))
	res, err := Run(in, d, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 6 {
		t.Fatalf("trace has %d events, want 6", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Time < res.Trace[i-1].Time {
			t.Fatalf("trace out of order at %d: %+v", i, res.Trace)
		}
	}
	starts := 0
	for _, ev := range res.Trace {
		if ev.Kind == "start" {
			starts++
		}
	}
	if starts != 3 {
		t.Fatalf("trace has %d starts, want 3", starts)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	in := inst(t, 1, 1)
	p := placement.Everywhere(1, 1)
	d, _ := NewListDispatcher(p, identityOrder(1))
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without Options.Trace")
	}
}

func TestNewListDispatcherRejectsBadOrder(t *testing.T) {
	p := placement.Everywhere(3, 2)
	if _, err := NewListDispatcher(p, []int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := NewListDispatcher(p, []int{0, 1, 1}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := NewListDispatcher(p, []int{0, 1, 9}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestRunDetectsUnexecutedTasks(t *testing.T) {
	in := inst(t, 1, 1, 1)
	d := &FuncDispatcher{NextFunc: func(int, float64) (int, bool) { return 0, false }}
	if _, err := Run(in, d, Options{}); err == nil {
		t.Fatal("unexecuted tasks not detected")
	}
}

func TestRunDetectsDoubleStart(t *testing.T) {
	in := inst(t, 2, 1, 1)
	d := &FuncDispatcher{NextFunc: func(int, float64) (int, bool) { return 0, true }}
	if _, err := Run(in, d, Options{}); err == nil {
		t.Fatal("double start not detected")
	}
}

func TestRunDetectsInvalidTaskID(t *testing.T) {
	in := inst(t, 1, 1)
	d := &FuncDispatcher{NextFunc: func(int, float64) (int, bool) { return 42, true }}
	if _, err := Run(in, d, Options{}); err == nil {
		t.Fatal("invalid task ID not detected")
	}
}

func TestCompletedCallbackSeesActuals(t *testing.T) {
	est := []float64{2}
	act := []float64{3}
	in, err := task.New(1, 1.5, est, act)
	if err != nil {
		t.Fatal(err)
	}
	var gotActual, gotNow float64
	p := placement.Everywhere(1, 1)
	ld, _ := NewListDispatcher(p, identityOrder(1))
	d := &FuncDispatcher{
		NextFunc: ld.Next,
		CompletedFunc: func(_, _ int, now, actual float64) {
			gotNow, gotActual = now, actual
		},
	}
	if _, err := Run(in, d, Options{}); err != nil {
		t.Fatal(err)
	}
	if gotActual != 3 || gotNow != 3 {
		t.Fatalf("Completed(now=%v, actual=%v), want 3, 3", gotNow, gotActual)
	}
}

func TestGreedyDominanceProperty(t *testing.T) {
	// List scheduling invariant: when some machine still had queued
	// work, no machine idles while eligible tasks wait. For full
	// replication this means the makespan is at most total/m + max.
	f := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw%7) + 1
		in := workload.MustNew(workload.Spec{Name: "uniform", N: 50, M: m, Alpha: 1.5, Seed: seed})
		uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed))
		p := placement.Everywhere(in.N(), m)
		order := identityOrder(in.N())
		sort.Slice(order, func(a, b int) bool {
			return in.Tasks[order[a]].Estimate > in.Tasks[order[b]].Estimate
		})
		d, err := NewListDispatcher(p, order)
		if err != nil {
			return false
		}
		res, err := Run(in, d, Options{})
		if err != nil {
			return false
		}
		if err := res.Schedule.Verify(in, p); err != nil {
			return false
		}
		bound := in.TotalActual()/float64(m) + in.MaxActual()
		return res.Schedule.Makespan() <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupPlacementStaysInGroup(t *testing.T) {
	in := workload.MustNew(workload.Spec{Name: "uniform", N: 40, M: 6, Alpha: 2, Seed: 5})
	groups, err := placement.PartitionGroups(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(40, 6)
	p.Groups = groups
	p.GroupOf = make([]int, 40)
	for j := 0; j < 40; j++ {
		g := j % 2
		p.GroupOf[j] = g
		p.AssignSet(j, groups[g])
	}
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	d, _ := NewListDispatcher(p, identityOrder(40))
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in, p); err != nil {
		t.Fatal(err)
	}
	for j, a := range res.Schedule.Assignments {
		g := p.GroupOf[j]
		lo, hi := g*3, g*3+3
		if a.Machine < lo || a.Machine >= hi {
			t.Fatalf("task %d (group %d) ran on machine %d", j, g, a.Machine)
		}
	}
}
