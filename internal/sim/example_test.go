package sim_test

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/task"
)

// ExampleRun schedules three fully replicated tasks on two machines
// with Graham-style list dispatch.
func ExampleRun() {
	est := []float64{3, 2, 2}
	in, _ := task.New(2, 1, est, est)
	p := placement.Everywhere(3, 2)
	d, _ := sim.NewListDispatcher(p, []int{0, 1, 2})

	res, _ := sim.Run(in, d, sim.Options{})
	fmt.Printf("makespan: %g\n", res.Schedule.Makespan())
	for _, a := range res.Schedule.Assignments {
		fmt.Printf("task %d on machine %d at t=%g\n", a.Task, a.Machine, a.Start)
	}
	// Output:
	// makespan: 4
	// task 0 on machine 0 at t=0
	// task 1 on machine 1 at t=0
	// task 2 on machine 1 at t=2
}

// ExampleRunWithFailures shows a crash losing in-flight work that a
// replica elsewhere absorbs.
func ExampleRunWithFailures() {
	est := []float64{10, 1}
	in, _ := task.New(2, 1, est, est)
	p := placement.Everywhere(2, 2)

	s, err := sim.RunWithFailures(in, p, []int{0, 1},
		[]sim.Failure{{Machine: 0, Time: 5}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a := s.Assignments[0]
	fmt.Printf("task 0 re-ran on machine %d from t=%g to t=%g\n", a.Machine, a.Start, a.End)
	// Output:
	// task 0 re-ran on machine 1 from t=5 to t=15
}

// ExampleStealingDispatcher prices remote execution: machine 1 steals
// a pinned task at double duration once its own queue drains.
func ExampleStealingDispatcher() {
	est := []float64{4, 4, 1}
	in, _ := task.New(2, 1, est, est)
	p := placement.New(3, 2)
	p.Assign(0, 0)
	p.Assign(1, 0)
	p.Assign(2, 1)

	d, _ := sim.NewStealingDispatcher(p, []int{0, 1, 2}, 2)
	res, _ := sim.Run(in, d, sim.Options{Duration: d.DurationOf(in)})
	a := res.Schedule.Assignments[1]
	fmt.Printf("stolen task 1 ran on machine %d for %g time units\n",
		a.Machine, a.End-a.Start)
	// Output:
	// stolen task 1 ran on machine 1 for 8 time units
}
