package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tick"
)

// wheelModel is the oracle for the wheel fuzz: a plain slice with
// linear minimum extraction. Same multiset semantics, no tiers.
type wheelModel []wEvent

func (m *wheelModel) push(ev wEvent) { *m = append(*m, ev) }

// popMin removes and returns an entry with the minimum (t, machine)
// key, preferring one matching seq (the wheel may emit duplicates of
// an equal key in either order; seq disambiguates the assertion).
func (m *wheelModel) popMin(matchSeq uint32) wEvent {
	h := *m
	best := 0
	for i := 1; i < len(h); i++ {
		if wLess(h[i], h[best]) ||
			(!wLess(h[best], h[i]) && h[i].seq == matchSeq && h[best].seq != matchSeq) {
			best = i
		}
	}
	ev := h[best]
	h[best] = h[len(h)-1]
	*m = h[:len(h)-1]
	return ev
}

// wheelTime draws a timestamp in one of three regimes so every tier of
// the wheel is exercised: near the current bucket (active), within the
// ring horizon, and far beyond it (overflow; also forces the
// empty-ring jump when such an event is next).
func wheelTime(r *rng.Source, base tick.Tick, shift uint) tick.Tick {
	span := tick.Tick(1) << shift
	switch r.Intn(4) {
	case 0: // at or near the current bucket
		return base + tick.Tick(r.Intn(int(span)+1))
	case 1, 2: // inside the ring horizon
		return base + tick.Tick(r.Intn(int(span)*wheelBuckets+1))
	default: // beyond the horizon: overflow tier
		return base + tick.Tick(wheelBuckets)*span + tick.Tick(r.Intn(1<<20))
	}
}

// runWheelOps drives an openWheel and the oracle through the same
// random op sequence, checking pop-order totality, the seq-liveness
// rule, and size bookkeeping. Shared by the fuzz target and the
// deterministic coverage test.
func runWheelOps(t *testing.T, ops int, shift uint, seed uint64) {
	t.Helper()
	const machines = 7
	r := rng.New(seed)
	var w openWheel
	w.reset(shift)
	var model wheelModel
	// Caller-side sequence counters and the latest pushed event per
	// machine: when a live event pops, it must be exactly the machine's
	// most recent push (everything older was invalidated or popped).
	var seqNow [machines]uint32
	var last [machines]wEvent
	var clock tick.Tick // lower bound for new pushes, as in the runner

	for op := 0; op < ops; op++ {
		if w.empty() != (len(model) == 0) || w.size != len(model) {
			t.Fatalf("op %d: size %d (empty=%v), model %d", op, w.size, w.empty(), len(model))
		}
		if w.empty() || r.Intn(3) > 0 {
			m := int32(r.Intn(machines))
			// The runner's wake discipline: every push bumps the
			// machine's counter, so any prior entry for m goes stale —
			// at most one live entry per machine at any time.
			seqNow[m]++
			ev := wEvent{t: wheelTime(r, clock, shift), m: m, seq: seqNow[m]}
			w.push(ev)
			model.push(ev)
			last[m] = ev
			continue
		}
		if r.Intn(2) == 0 {
			got := w.peek()
			if want := model.popMin(got.seq); got != want {
				t.Fatalf("op %d: peek %+v, model min %+v", op, got, want)
			} else {
				model.push(want) // peek does not consume
			}
			continue
		}
		got := w.pop()
		want := model.popMin(got.seq)
		if got != want {
			t.Fatalf("op %d: pop %+v, model min %+v", op, got, want)
		}
		if got.t > clock {
			clock = got.t
		}
		if got.seq == seqNow[got.m] && got != last[got.m] {
			t.Fatalf("op %d: live pop %+v is not machine %d's latest push %+v",
				op, got, got.m, last[got.m])
		}
	}
	// Drain: the remaining pops must come out in full (t, machine)
	// order.
	prev := wEvent{t: -1, m: -1}
	for !w.empty() {
		got := w.pop()
		if want := model.popMin(got.seq); got != want {
			t.Fatalf("drain: pop %+v, model min %+v", got, want)
		}
		if wLess(got, prev) {
			t.Fatalf("drain: pop %+v after %+v breaks (t, machine) order", got, prev)
		}
		prev = got
	}
	if len(model) != 0 {
		t.Fatalf("wheel drained with %d events left in the model", len(model))
	}
}

// FuzzOpenWheel fuzzes the calendar-queue invariants of the open
// engine's event structure: pops follow the total (t, machine) order
// across all three tiers (active heap, ring bucket, overflow heap —
// including the empty-ring jump), seq-invalidated entries surface as
// stale exactly once, and size bookkeeping matches a flat oracle under
// arbitrary push/peek/pop interleavings.
func FuzzOpenWheel(f *testing.F) {
	f.Add(uint16(64), uint8(0), uint64(1))
	f.Add(uint16(300), uint8(10), uint64(2))
	f.Add(uint16(200), uint8(20), uint64(0xfeed))
	f.Add(uint16(500), uint8(4), uint64(42))
	f.Add(uint16(31), uint8(62), uint64(7)) // max shift: every event in bucket 0
	f.Fuzz(func(t *testing.T, opsRaw uint16, shiftRaw uint8, seed uint64) {
		ops := 1 + int(opsRaw)%600
		shift := uint(shiftRaw) % 24
		runWheelOps(t, ops, shift, seed)
	})
}

// TestOpenWheelOrdering is the deterministic slice of the fuzz
// property, so plain go test covers all three tiers without -fuzz.
func TestOpenWheelOrdering(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, shift := range []uint{0, 3, 10, 20} {
			runWheelOps(t, 400, shift, 1000+seed)
		}
	}
}

// TestOpenWheelReuse pins the pooling contract: a wheel reused across
// reset cycles behaves identically to a fresh one.
func TestOpenWheelReuse(t *testing.T) {
	var w openWheel
	for round := 0; round < 3; round++ {
		w.reset(5)
		r := rng.New(uint64(round))
		for i := 0; i < 200; i++ {
			w.push(wEvent{t: tick.Tick(r.Intn(1 << 16)), m: int32(i % 9), seq: uint32(i)})
		}
		prev := wEvent{t: -1, m: -1}
		for !w.empty() {
			ev := w.pop()
			if wLess(ev, prev) {
				t.Fatalf("round %d: pop %+v after %+v out of order", round, ev, prev)
			}
			prev = ev
		}
	}
}

func TestWheelShift(t *testing.T) {
	cases := []struct {
		mean tick.Tick
		want uint
	}{
		{0, 0},
		{15, 0},  // mean/16 < 1: minimum bucket
		{16, 0},  // w=1: still the minimum
		{64, 2},  // w=4 → shift 2
		{1 << 30, 26},
		{tick.Max, 58}, // Max/16 = 2^59−1: halves to 1 after 58 shifts
	}
	for _, c := range cases {
		if got := wheelShift(c.mean); got != c.want {
			t.Errorf("wheelShift(%d) = %d, want %d", c.mean, got, c.want)
		}
	}
}
