package sim

import "repro/internal/tick"

// This file implements the open-flat engine's event structure: a
// two-level bucketed tick wheel (a calendar queue over fixed-point
// time). The open-system loop schedules completions and cancellation
// wake-ups whose spread — now to now + service time — is bounded in
// the common case by a few mean durations, which is exactly the regime
// a wheel turns O(log n) heap churn into O(1) bucket appends for. The
// heavy-tailed residue (a Pareto straggler scheduling an event far
// beyond the horizon) falls into an overflow heap instead of forcing a
// giant ring.
//
// # Structure
//
// Every event carries a tick timestamp; its absolute bucket number is
// abn = t >> shift, so a bucket spans 2^shift ticks. Three tiers, by
// abn relative to the wheel's current bucket cur:
//
//	abn ≤ cur                 active: a (t, machine) min-heap
//	cur < abn < cur+nBuckets  ring:   unsorted bucket abn & (nBuckets-1)
//	abn ≥ cur+nBuckets        overflow: a (t, machine) min-heap
//
// The invariant making pops correct is a strict separation: every
// active event has t < (cur+1)<<shift and every ring/overflow event
// has t ≥ (cur+1)<<shift, so the active heap's minimum is the global
// minimum. When the active heap drains, cur advances one bucket at a
// time, dumping ring bucket cur into the active heap (heapified by
// consecutive pushes) and sliding newly-in-horizon overflow events
// into the ring; when the ring is empty too, cur jumps straight to the
// overflow minimum's bucket instead of stepping through empty ticks.
//
// # Cancellation without deletion
//
// Cancelling a machine's scheduled completion never touches the wheel.
// Each event carries the machine's sequence number at push time; the
// machine's live event is the one whose seq matches its current
// counter, and a cancellation simply bumps the counter and pushes a
// replacement. Stale entries ride the wheel until popped and are
// skipped by the caller's seq check — O(1) per cancellation versus
// O(n) search-and-sift for true heap deletion, at the price of at most
// one dead entry per cancellation. The fuzz harness (FuzzOpenWheel)
// pins pop-order totality and the tier-routing invariants under random
// push/pop/invalidate interleavings.

// wheelBuckets is the ring size. Power of two so bucket indexing is a
// mask; 256 buckets × the default bucket width of mean-duration/16
// puts the horizon at 16 mean service times — events beyond that are
// tail stragglers and take the overflow path.
const wheelBuckets = 256

// wEvent is a wheel entry: a scheduled completion or wake-up for
// machine m at tick t. seq is the machine's sequence number at push
// time; the entry is live iff it still matches (see openWheel doc).
type wEvent struct {
	t   tick.Tick
	m   int32
	seq uint32
}

func wLess(a, b wEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.m < b.m
}

// wPush inserts ev into the binary min-heap h and returns the heap.
// Keys are not unique here — a stale entry can share (t, m) with its
// replacement — but at most one entry per machine is live, so the pop
// order of live events is still the total (t, machine) order and heap
// internals cannot change simulation results (same argument as
// openQueue).
func wPush(h []wEvent, ev wEvent) []wEvent {
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// wPop removes and returns the minimum event.
func wPop(h []wEvent) ([]wEvent, wEvent) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		next := left
		if right := left + 1; right < last && wLess(h[right], h[left]) {
			next = right
		}
		if !wLess(h[next], h[i]) {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return h, top
}

// openWheel is the two-level calendar queue described in the file
// comment. The zero value is unusable; call reset first. All buffers
// are retained across resets, so a wheel cycling through same-shaped
// runs performs zero steady-state allocations.
type openWheel struct {
	active    []wEvent   // min-heap, abn ≤ cur
	ring      [][]wEvent // unsorted buckets, cur < abn < cur+wheelBuckets
	overflow  []wEvent   // min-heap, abn ≥ cur+wheelBuckets
	ringCount int        // total events across ring buckets
	size      int        // total events in the wheel
	shift     uint       // bucket width is 1<<shift ticks
	cur       int64      // current absolute bucket number
}

// reset prepares the wheel for a run starting at tick 0 with the given
// bucket-width shift, truncating every buffer in place.
func (w *openWheel) reset(shift uint) {
	w.active = w.active[:0]
	w.overflow = w.overflow[:0]
	if w.ring == nil {
		//lint:ignore hotalloc one-time lazy init on a wheel's first use; every later reset reuses it
		w.ring = make([][]wEvent, wheelBuckets)
	}
	for i := range w.ring {
		w.ring[i] = w.ring[i][:0]
	}
	w.ringCount = 0
	w.size = 0
	w.shift = shift
	w.cur = 0
}

// empty reports whether the wheel holds no entries (live or stale).
func (w *openWheel) empty() bool { return w.size == 0 }

// push inserts an event, routing it to its tier by absolute bucket
// number. Events are never pushed into the past relative to popped
// simulation time, but abn ≤ cur is routine (the current bucket spans
// 1<<shift ticks) and goes to the active heap.
func (w *openWheel) push(ev wEvent) {
	w.size++
	abn := int64(ev.t) >> w.shift
	switch {
	case abn <= w.cur:
		w.active = wPush(w.active, ev)
	case abn < w.cur+wheelBuckets:
		w.ring[abn&(wheelBuckets-1)] = append(w.ring[abn&(wheelBuckets-1)], ev)
		w.ringCount++
	default:
		w.overflow = wPush(w.overflow, ev)
	}
}

// settle restores the invariant that the active heap is non-empty
// whenever the wheel is, by advancing cur. Callers guarantee size > 0.
func (w *openWheel) settle() {
	for len(w.active) == 0 {
		if w.ringCount == 0 {
			// Ring empty: jump cur straight to the overflow minimum's
			// bucket instead of stepping through empty buckets one tick
			// of the ring at a time.
			w.cur = int64(w.overflow[0].t) >> w.shift
		} else {
			w.cur++
		}
		// Bucket cur enters the present: its events (all with abn ==
		// cur — ring residency implies abn uniquely determines the slot
		// within the horizon) heapify into active.
		b := w.ring[w.cur&(wheelBuckets-1)]
		for _, ev := range b {
			w.active = wPush(w.active, ev)
		}
		w.ringCount -= len(b)
		w.ring[w.cur&(wheelBuckets-1)] = b[:0]
		// Overflow events now inside the horizon slide into the ring
		// (or straight to active if their bucket is exactly cur). The
		// overflow heap pops in time order, so draining stops at the
		// first event still beyond the horizon.
		for len(w.overflow) > 0 {
			abn := int64(w.overflow[0].t) >> w.shift
			if abn >= w.cur+wheelBuckets {
				break
			}
			var ev wEvent
			w.overflow, ev = wPop(w.overflow)
			if abn <= w.cur {
				w.active = wPush(w.active, ev)
			} else {
				w.ring[abn&(wheelBuckets-1)] = append(w.ring[abn&(wheelBuckets-1)], ev)
				w.ringCount++
			}
		}
	}
}

// peek returns the earliest entry (live or stale) without removing it.
// The wheel must be non-empty. The open loop uses the peeked time to
// interleave the arrival stream: arrivals at or before the next event
// are admitted first, matching the reference engine's tie rule.
func (w *openWheel) peek() wEvent {
	w.settle()
	return w.active[0]
}

// pop removes and returns the earliest entry. The wheel must be
// non-empty. Liveness (the seq check) is the caller's concern.
func (w *openWheel) pop() wEvent {
	w.settle()
	var ev wEvent
	w.active, ev = wPop(w.active)
	w.size--
	return ev
}

// wheelShift picks the bucket-width shift for a run from the mean
// executed duration in ticks: buckets of roughly mean/16 put ~16
// buckets across a typical service time and the 256-bucket horizon at
// ~16 mean durations. Degenerate means (zero-duration tasks) get the
// minimum 1-tick bucket; the wheel's overflow jump keeps sparse wheels
// cheap regardless of shift, so the choice only tunes constants.
func wheelShift(meanTicks tick.Tick) uint {
	w := int64(meanTicks) / 16
	shift := uint(0)
	for w > 1 && shift < 62 {
		w >>= 1
		shift++
	}
	return shift
}
