package sim

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/task"
)

// This file implements the open-system streaming mode: tasks arrive
// over time instead of all being released at t=0, the metric is the
// per-task response-time distribution instead of makespan, and
// replicated tasks interact through an explicit cancellation policy.
// It is the setting of Wang/Joshi/Wornell (arXiv:1404.1328) and
// Sun/Koksal/Shroff (arXiv:1603.07322) applied to the paper's phase-1
// placements: a task may only run on machines in its replica set, and
// whether replication helps or hurts the tail depends on the
// cancellation policy and the service-time shape.
//
// # Event model
//
// Two deterministic event streams drive the loop: the sorted arrival
// times (indexed by task ID, required non-decreasing) and a binary
// min-heap of machine events ordered by (time, machine index) — the
// same specialization as the batch simulator's eventQueue, extended
// with a per-machine sequence number so that cancellations can
// invalidate a machine's scheduled completion without deleting it from
// the heap (the stale entry is skipped when popped). At equal times
// arrivals are processed before machine events, so a machine going
// idle at time t sees every task that arrived at t.
//
// # Metamorphic anchor
//
// With every arrival at t=0 and CancelOnStart, the open loop is
// observationally identical to the batch simulator under a
// ListDispatcher: arrival processing builds exactly the per-machine
// priority queues of ListDispatcher.Reset, machines wake at time zero
// in index order exactly as Run pushes them, and the dispatch scan
// applies the same skip-started rule. TestOpenMatchesBatch pins this
// byte-for-byte.

var (
	openRuns          = obs.GetCounter("sim.open_runs")
	openEventsPopped  = obs.GetCounter("sim.open_events_popped")
	openStaleSkipped  = obs.GetCounter("sim.open_stale_skipped")
	openCancellations = obs.GetCounter("sim.open_cancelled_replicas")
)

// CancelPolicy selects how redundant replicas of a task are retired.
type CancelPolicy uint8

const (
	// CancelOnStart cancels a task's queued siblings the moment one
	// replica starts executing: at most one copy of a task ever runs,
	// replication only widens the choice of which machine runs it.
	CancelOnStart CancelPolicy = iota
	// CancelOnCompletion lets every machine in the replica set start
	// its own copy as it frees up; the first completion wins and the
	// other running copies are cancelled, each costing CancelCost extra
	// machine time. This trades wasted capacity for tail latency — the
	// regime studied by the cited open-system papers.
	CancelOnCompletion
)

// String returns the policy's experiment-output name.
func (p CancelPolicy) String() string {
	switch p {
	case CancelOnStart:
		return "cancel-on-start"
	case CancelOnCompletion:
		return "cancel-on-completion"
	default:
		return fmt.Sprintf("CancelPolicy(%d)", uint8(p))
	}
}

// ParseCancelPolicy resolves a policy's String() name (the wire and
// flag spelling). The empty string selects CancelOnStart, the
// zero-waste default.
func ParseCancelPolicy(s string) (CancelPolicy, error) {
	switch s {
	case "", "cancel-on-start":
		return CancelOnStart, nil
	case "cancel-on-completion":
		return CancelOnCompletion, nil
	default:
		return 0, fmt.Errorf("sim: unknown cancellation policy %q (want cancel-on-start or cancel-on-completion)", s)
	}
}

// OpenOptions configures an open-system run.
type OpenOptions struct {
	// Policy selects the replica cancellation policy.
	Policy CancelPolicy
	// CancelCost is the machine-time penalty paid by each machine whose
	// running replica is cancelled (it becomes idle at cancel time +
	// CancelCost). Must be non-negative and finite. Only
	// CancelOnCompletion incurs it: CancelOnStart never cancels a
	// running replica.
	CancelCost float64
	// Duration, when non-nil, overrides the executed duration of a
	// replica of a task on a machine; the default is the task's actual
	// processing time. Same contract as Options.Duration: deterministic,
	// non-negative, drives only the clock. Under CancelOnCompletion it
	// is called once per started replica, and per-(task,machine)
	// variation is what makes racing replicas meaningful — identical
	// durations make the extra copies pure waste.
	Duration func(taskID, machine int) float64
}

// OpenResult bundles the outcome of an open-system run. The ownership
// contract matches the batch Runner: results returned by an
// OpenRunner are valid only until its next Run call; the package-level
// RunOpen returns caller-owned state.
type OpenResult struct {
	// Schedule records the winning replica of every task (the copy
	// whose completion defined the task's response time). Cancelled
	// replicas do not appear; their cost shows up in WastedTime.
	Schedule *sched.Schedule
	// Responses is indexed by task ID: completion time − arrival time.
	Responses []float64
	// CancelledReplicas counts replica executions that were cancelled
	// mid-run (always 0 under CancelOnStart).
	CancelledReplicas int
	// WastedTime is the machine time burned on cancelled replicas,
	// including the per-cancellation CancelCost.
	WastedTime float64
	// End is the time the system drains: the last instant any machine
	// is busy (including cancellation penalties).
	End float64
}

// openEvent is a scheduled machine event (a completion or a wake-up).
// seq invalidates superseded events: only the event whose seq matches
// the machine's current sequence number is live, so a cancellation
// re-schedules a machine by pushing a fresh event instead of deleting
// the stale one from the middle of the heap.
type openEvent struct {
	time    float64
	machine int
	seq     uint64
}

// openQueue is the open-mode instantiation of the specialized binary
// min-heap from sim.go, ordered by (time, machine index). Unlike
// eventQueue its (time, machine) keys are not unique — a superseded
// event coexists with its replacement — but at most one event per
// machine is live (seq check), so the pop order of live events is
// still the total (time, machine) order and heap internals cannot
// change simulation results.
type openQueue []openEvent

func openEventLess(a, b openEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.machine < b.machine
}

// push inserts ev, reusing the queue's capacity.
func (q *openQueue) push(ev openEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !openEventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (q *openQueue) pop() openEvent {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		next := left
		if right := left + 1; right < last && openEventLess(h[right], h[left]) {
			next = right
		}
		if !openEventLess(h[next], h[i]) {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return top
}

// RunOpen executes an open-system run and returns caller-owned state.
// Hot loops should reuse an OpenRunner instead.
func RunOpen(in *task.Instance, p *placement.Placement, order []int, arrive []float64, opts OpenOptions) (*OpenResult, error) {
	var r OpenRunner // fresh state: the returned buffers are caller-owned
	return r.Run(in, p, order, arrive, opts)
}

// OpenRunner is reusable open-system simulation state, the streaming
// counterpart of Runner. The zero value is ready to use; each Run
// recycles every buffer from the previous call, so a runner cycling
// through same-shaped instances performs zero steady-state heap
// allocations. Not safe for concurrent use; results are valid only
// until the next Run call and byte-identical to the package-level
// RunOpen.
type OpenRunner struct {
	q openQueue
	// seq[i] is machine i's current event sequence number; a popped
	// event is live iff its seq matches.
	seq []uint64
	// active[i] reports whether machine i has a live scheduled event
	// (it is busy or waking); inactive machines are dormant and must be
	// woken by an arrival.
	active []bool
	// runningTask[i] is the task machine i is executing, -1 if none.
	runningTask []int
	// runStart[i] is when machine i started its current replica.
	runStart []float64
	// queues[i] holds positions into order of tasks eligible on machine
	// i that have arrived, sorted by position (priority). head[i] is the
	// next position to examine; entries before it are dead.
	queues [][]int
	head   []int
	// order is the caller's priority order; started/done are per-task
	// flags (started gates CancelOnStart, done gates both policies).
	order     []int
	started   []bool
	done      []bool
	sched     sched.Schedule
	responses []float64
	res       OpenResult
}

// Reset re-initializes every field of the OpenRunner's reusable state
// for an n-task, m-machine run, retaining capacity. Run calls it
// internally; it is exported only so tests and the reset linter can
// assert the pooling contract directly.
func (r *OpenRunner) Reset(n, m int) {
	r.q = r.q[:0]
	if cap(r.seq) < m {
		r.seq = make([]uint64, m)
	} else {
		r.seq = r.seq[:m]
		clear(r.seq)
	}
	if cap(r.active) < m {
		r.active = make([]bool, m)
	} else {
		r.active = r.active[:m]
		clear(r.active)
	}
	if cap(r.runningTask) < m {
		r.runningTask = make([]int, m)
	} else {
		r.runningTask = r.runningTask[:m]
	}
	for i := range r.runningTask {
		r.runningTask[i] = -1
	}
	if cap(r.runStart) < m {
		r.runStart = make([]float64, m)
	} else {
		r.runStart = r.runStart[:m]
		clear(r.runStart)
	}
	if cap(r.queues) < m {
		r.queues = make([][]int, m)
	} else {
		r.queues = r.queues[:m]
	}
	for i := range r.queues {
		r.queues[i] = r.queues[i][:0]
	}
	if cap(r.head) < m {
		r.head = make([]int, m)
	} else {
		r.head = r.head[:m]
		clear(r.head)
	}
	r.order = nil // set by Run after permutation validation
	if cap(r.started) < n {
		r.started = make([]bool, n)
	} else {
		r.started = r.started[:n]
		clear(r.started)
	}
	if cap(r.done) < n {
		r.done = make([]bool, n)
	} else {
		r.done = r.done[:n]
		clear(r.done)
	}
	r.sched.Reset(n, m)
	if cap(r.responses) < n {
		r.responses = make([]float64, n)
	} else {
		r.responses = r.responses[:n]
		clear(r.responses)
	}
	r.res = OpenResult{Schedule: &r.sched, Responses: r.responses}
}

// wake schedules a live idle event for machine i at time t,
// superseding any stale event still in the heap.
func (r *OpenRunner) wake(i int, t float64) {
	r.seq[i]++
	r.active[i] = true
	r.q.push(openEvent{time: t, machine: i, seq: r.seq[i]})
}

// enqueue inserts priority position pos into machine i's queue,
// keeping the live suffix sorted by position. Entries before head[i]
// are dead and never revisited, so insertion is clamped to the live
// region — a late high-priority arrival sorts to the front of what the
// machine has not yet consumed.
func (r *OpenRunner) enqueue(i, pos int) {
	q := r.queues[i]
	lo, hi := r.head[i], len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid] < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, 0)
	copy(q[lo+1:], q[lo:])
	q[lo] = pos
	r.queues[i] = q
}

// Run executes an open-system simulation: tasks arrive at the given
// times (indexed by task ID, non-decreasing, non-negative and finite),
// may only run on machines in their placement replica set, and within
// a machine are picked in the caller's priority order among arrived
// eligible tasks. It returns an error for invalid inputs or if any
// task is never executed. See the OpenRunner ownership contract for
// the lifetime of the returned OpenResult.
func (r *OpenRunner) Run(in *task.Instance, p *placement.Placement, order []int, arrive []float64, opts OpenOptions) (*OpenResult, error) {
	n := in.N()
	m := in.M
	if p.N() != n || p.M != m {
		return nil, fmt.Errorf("sim: placement shape (%d tasks, %d machines) does not match instance (%d, %d)", p.N(), p.M, n, m)
	}
	if len(order) != n {
		return nil, fmt.Errorf("sim: priority order has %d entries for %d tasks", len(order), n)
	}
	if len(arrive) != n {
		return nil, fmt.Errorf("sim: %d arrival times for %d tasks", len(arrive), n)
	}
	prev := 0.0
	for j, t := range arrive {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return nil, fmt.Errorf("sim: arrival %d is %v (want finite, non-negative)", j, t)
		}
		if t < prev {
			return nil, fmt.Errorf("sim: arrival times not sorted at task %d", j)
		}
		prev = t
	}
	if math.IsNaN(opts.CancelCost) || math.IsInf(opts.CancelCost, 0) || opts.CancelCost < 0 {
		return nil, fmt.Errorf("sim: cancel cost %v (want finite, non-negative)", opts.CancelCost)
	}
	if opts.Policy != CancelOnStart && opts.Policy != CancelOnCompletion {
		return nil, fmt.Errorf("sim: unknown cancel policy %d", opts.Policy)
	}

	r.Reset(n, m)
	// Permutation check, reusing done as scratch (cleared again below).
	seen := r.done
	for _, j := range order {
		if j < 0 || j >= n || seen[j] {
			return nil, fmt.Errorf("sim: priority order is not a permutation (task %d)", j)
		}
		seen[j] = true
	}
	clear(r.done)
	r.order = order

	// Arrival events enqueue priority positions, so they need the
	// inverse permutation of order. It is staged in the schedule's Task
	// fields — dead storage until a task completes, and a task's entry
	// is only overwritten after its arrival has read it — keeping the
	// runner free of a dedicated scratch slice.
	inv := r.sched.Assignments
	for pos, j := range order {
		inv[j].Task = pos
	}

	completed := r.replay(in, p, order, arrive, opts)

	if completed != n {
		return nil, fmt.Errorf("sim: %d of %d tasks never executed", n-completed, n)
	}
	return &r.res, nil
}

// replay is the open-system event loop: admit arrivals and machine
// events in time order, complete or cancel replicas, and dispatch the
// highest-priority arrived eligible task on each idle machine. It
// returns the number of completed tasks. opts travels by value so the
// parameter never forces a heap spill; the Duration hook inside it is
// a dynamic call hotalloc cannot see through, which the bench gate
// backstops. Everything statically reachable from here must not
// allocate (the hotalloc rule enforces it).
//
//perf:hotpath
func (r *OpenRunner) replay(in *task.Instance, p *placement.Placement, order []int, arrive []float64, opts OpenOptions) int {
	n := in.N()
	m := in.M
	// The inverse permutation staged in the Task fields by Run.
	inv := r.sched.Assignments
	completed := 0
	ai := 0 // next arrival to admit
	for ai < n || len(r.q) > 0 {
		// Interleave the two sorted streams; arrivals first at ties so a
		// machine going idle at t sees every task arriving at t.
		if ai < n && (len(r.q) == 0 || arrive[ai] <= r.q[0].time) {
			j := ai
			t := arrive[ai]
			ai++
			pos := inv[j].Task
			for _, i := range p.Sets[j] {
				r.enqueue(i, pos)
				if !r.active[i] {
					r.wake(i, t)
				}
			}
			continue
		}

		ev := r.q.pop()
		openEventsPopped.Inc()
		i := ev.machine
		if ev.seq != r.seq[i] {
			openStaleSkipped.Inc()
			continue // superseded by a cancellation re-schedule
		}
		now := ev.time

		// A live event on a busy machine is its replica completing.
		if j := r.runningTask[i]; j >= 0 {
			r.runningTask[i] = -1
			r.done[j] = true
			completed++
			r.responses[j] = now - arrive[j]
			if r.res.End < now {
				r.res.End = now
			}
			r.sched.Assignments[j] = sched.Assignment{
				Task: j, Machine: i, Start: r.runStart[i], End: now,
			}
			if opts.Policy == CancelOnCompletion {
				for k := 0; k < m; k++ {
					if k == i || r.runningTask[k] != j {
						continue
					}
					// Cancel the losing replica: its machine time so far
					// plus the cancellation penalty is pure waste, and the
					// machine frees up only after paying the penalty.
					r.runningTask[k] = -1
					r.res.CancelledReplicas++
					openCancellations.Inc()
					r.res.WastedTime += (now - r.runStart[k]) + opts.CancelCost
					free := now + opts.CancelCost
					if r.res.End < free {
						r.res.End = free
					}
					r.wake(k, free)
				}
			}
		}

		// Dispatch: highest-priority arrived eligible task not yet dead.
		startedTask := -1
		q := r.queues[i]
		for r.head[i] < len(q) {
			j := order[q[r.head[i]]]
			if r.done[j] || (opts.Policy == CancelOnStart && r.started[j]) {
				r.head[i]++
				continue
			}
			startedTask = j
			r.head[i]++
			break
		}
		if startedTask < 0 {
			r.active[i] = false // dormant until an eligible arrival wakes it
			continue
		}
		j := startedTask
		r.started[j] = true
		r.runningTask[i] = j
		r.runStart[i] = now
		executed := in.Tasks[j].Actual
		if opts.Duration != nil {
			executed = opts.Duration(j, i)
		}
		r.wake(i, now+executed)
	}
	openRuns.Inc()
	return completed
}
