package sim

import (
	"fmt"

	"repro/internal/placement"
)

// ListDispatcher implements Graham-style list scheduling over a
// phase-1 placement: tasks are ranked by a fixed priority order, and
// an idle machine takes the highest-priority unstarted task whose
// replica set contains it. With a full replication placement and tasks
// ordered by non-increasing estimate this is exactly the paper's
// LPT-No Restriction phase 2; with group placements it is LS-Group's
// phase 2; with singleton replica sets it degenerates to executing a
// fixed mapping.
type ListDispatcher struct {
	// queues[i] lists the indices (into the priority order) of tasks
	// eligible on machine i, in priority order.
	queues [][]int
	// head[i] is the next position to examine in queues[i].
	head []int
	// order is the priority order of task IDs.
	order []int
	// startedTask[j] reports whether task j has been handed out.
	startedTask []bool
}

// NewListDispatcher builds a dispatcher from a placement and a
// priority order (a permutation of task IDs; earlier means higher
// priority). It returns an error if order is not a permutation of the
// placement's tasks.
func NewListDispatcher(p *placement.Placement, order []int) (*ListDispatcher, error) {
	d := &ListDispatcher{}
	if err := d.Reset(p, order); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-initializes the dispatcher for a new placement and priority
// order, reusing every internal buffer — per-machine queues included —
// so a dispatcher cycling through same-shaped trials performs zero
// steady-state allocations. All four fields are rebuilt from the
// arguments; no state from the previous run survives.
func (d *ListDispatcher) Reset(p *placement.Placement, order []int) error {
	n := p.N()
	if len(order) != n {
		return fmt.Errorf("sim: priority order has %d entries for %d tasks", len(order), n)
	}
	// startedTask doubles as the permutation-check scratch: it is
	// cleared here and fully rebuilt below either way.
	if cap(d.startedTask) < n {
		d.startedTask = make([]bool, n)
	} else {
		d.startedTask = d.startedTask[:n]
		clear(d.startedTask)
	}
	seen := d.startedTask
	for _, j := range order {
		if j < 0 || j >= n || seen[j] {
			return fmt.Errorf("sim: priority order is not a permutation (task %d)", j)
		}
		seen[j] = true
	}
	clear(d.startedTask)

	if cap(d.queues) < p.M {
		d.queues = make([][]int, p.M)
	} else {
		d.queues = d.queues[:p.M]
	}
	for i := range d.queues {
		d.queues[i] = d.queues[i][:0]
	}
	if cap(d.head) < p.M {
		d.head = make([]int, p.M)
	} else {
		d.head = d.head[:p.M]
		clear(d.head)
	}
	d.order = order
	for pos, j := range order {
		for _, i := range p.Sets[j] {
			d.queues[i] = append(d.queues[i], pos)
		}
	}
	return nil
}

// Next implements Dispatcher.
func (d *ListDispatcher) Next(machine int, _ float64) (int, bool) {
	q := d.queues[machine]
	for d.head[machine] < len(q) {
		pos := q[d.head[machine]]
		j := d.order[pos]
		if !d.startedTask[j] {
			d.startedTask[j] = true
			d.head[machine]++
			return j, true
		}
		d.head[machine]++
	}
	return 0, false
}

// Completed implements Dispatcher. List scheduling ignores completion
// feedback beyond the implicit signal that the machine is idle again.
func (d *ListDispatcher) Completed(int, int, float64, float64) {}

// FuncDispatcher adapts a pair of functions to the Dispatcher
// interface; handy in tests and for custom policies.
type FuncDispatcher struct {
	// NextFunc implements Next.
	NextFunc func(machine int, now float64) (int, bool)
	// CompletedFunc implements Completed; nil means no-op.
	CompletedFunc func(taskID, machine int, now, actual float64)
}

// Next implements Dispatcher.
func (d *FuncDispatcher) Next(machine int, now float64) (int, bool) {
	return d.NextFunc(machine, now)
}

// Completed implements Dispatcher.
func (d *FuncDispatcher) Completed(taskID, machine int, now, actual float64) {
	if d.CompletedFunc != nil {
		d.CompletedFunc(taskID, machine, now, actual)
	}
}
