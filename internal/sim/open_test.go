package sim_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// openShapes is the cross product of instance shapes and placement
// strategies the metamorphic and pooling tests sweep.
var openShapes = []struct {
	name string
	n, m int
	algo algo.Algorithm
}{
	{"none 20x4", 20, 4, algo.LPTNoChoice()},
	{"group2 30x6", 30, 6, algo.LSGroup(2)},
	{"group3 24x6", 24, 6, algo.LSGroup(3)},
	{"all 16x4", 16, 4, algo.LPTNoRestriction()},
	{"all 7x3", 7, 3, algo.LPTNoRestriction()},
}

func openInstance(t *testing.T, n, m int, seed uint64) *task.Instance {
	t.Helper()
	in := workload.MustNew(workload.Spec{
		Name: "uniform", N: n, M: m, Alpha: 1.5, Seed: seed,
	})
	uncertainty.Uniform{}.Perturb(in, nil, rng.New(seed+1))
	return in
}

// TestOpenMatchesBatch is the metamorphic anchor of the open mode:
// with every arrival at t=0 and sim.CancelOnStart, the open simulator must
// reproduce the batch simulator's schedule byte-for-byte across
// placement strategies.
func TestOpenMatchesBatch(t *testing.T) {
	for _, shape := range openShapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				in := openInstance(t, shape.n, shape.m, 100+seed)
				p, err := shape.algo.Place(in)
				if err != nil {
					t.Fatal(err)
				}
				order := shape.algo.Order(in)

				d, err := sim.NewListDispatcher(p, order)
				if err != nil {
					t.Fatal(err)
				}
				batch, err := sim.Run(in, d, sim.Options{})
				if err != nil {
					t.Fatal(err)
				}

				open, err := sim.RunOpen(in, p, order, make([]float64, in.N()), sim.OpenOptions{Policy: sim.CancelOnStart})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(open.Schedule.Assignments, batch.Schedule.Assignments) {
					t.Fatalf("seed %d: open schedule diverged from batch\n open: %+v\nbatch: %+v",
						seed, open.Schedule.Assignments, batch.Schedule.Assignments)
				}
				if open.CancelledReplicas != 0 || open.WastedTime != 0 {
					t.Fatalf("cancel-on-start wasted work: %d replicas, %v time",
						open.CancelledReplicas, open.WastedTime)
				}
				// Batch arrivals: response time == completion time.
				for j, a := range batch.Schedule.Assignments {
					if open.Responses[j] != a.End {
						t.Fatalf("task %d response %v != completion %v", j, open.Responses[j], a.End)
					}
				}
			}
		})
	}
}

// TestOpenResponseTimesHandComputed pins the event interleaving on a
// worked example: 2 machines, full replication, staggered arrivals.
func TestOpenResponseTimesHandComputed(t *testing.T) {
	in := &task.Instance{M: 2, Alpha: 1, Tasks: []task.Task{
		{ID: 0, Estimate: 10, Actual: 10},
		{ID: 1, Estimate: 4, Actual: 4},
		{ID: 2, Estimate: 3, Actual: 3},
	}}
	p := placement.New(3, 2)
	for j := 0; j < 3; j++ {
		p.Sets[j] = []int{0, 1}
	}
	arrive := []float64{0, 1, 2}
	res, err := sim.RunOpen(in, p, []int{0, 1, 2}, arrive, sim.OpenOptions{Policy: sim.CancelOnStart})
	if err != nil {
		t.Fatal(err)
	}
	// t=0: task 0 arrives, wakes both machines; machine 0 starts it
	// (ends 10), machine 1 finds nothing and goes dormant. t=1: task 1
	// arrives, wakes machine 1, runs 1→5. t=2: task 2 arrives; both
	// machines busy. t=5: machine 1 idle, starts task 2, 5→8.
	want := []float64{10 - 0, 5 - 1, 8 - 2}
	if !reflect.DeepEqual(res.Responses, want) {
		t.Fatalf("responses = %v, want %v", res.Responses, want)
	}
	if res.End != 10 {
		t.Fatalf("End = %v, want 10", res.End)
	}
}

// TestOpenCancelPoliciesDiverge builds a scenario where racing
// replicas pay off: the replica on machine 1 is much faster than the
// one machine 0 starts first. Cancel-on-start is stuck with the slow
// copy; cancel-on-completion races both and wins, paying measurable
// waste.
func TestOpenCancelPoliciesDiverge(t *testing.T) {
	in := &task.Instance{M: 2, Alpha: 1, Tasks: []task.Task{
		{ID: 0, Estimate: 10, Actual: 10},
	}}
	p := placement.New(1, 2)
	p.Sets[0] = []int{0, 1}
	dur := func(taskID, machine int) float64 {
		if machine == 1 {
			return 2 // fast replica
		}
		return 10
	}
	slow, err := sim.RunOpen(in, p, []int{0}, []float64{0}, sim.OpenOptions{
		Policy: sim.CancelOnStart, Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sim.RunOpen(in, p, []int{0}, []float64{0}, sim.OpenOptions{
		Policy: sim.CancelOnCompletion, CancelCost: 0.5, Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Responses[0] != 10 {
		t.Fatalf("cancel-on-start response = %v, want 10", slow.Responses[0])
	}
	if fast.Responses[0] != 2 {
		t.Fatalf("cancel-on-completion response = %v, want 2", fast.Responses[0])
	}
	// Machine 0 ran the losing replica for 2 time units, plus the 0.5
	// cancellation penalty.
	if fast.CancelledReplicas != 1 || fast.WastedTime != 2.5 {
		t.Fatalf("waste = %d replicas / %v time, want 1 / 2.5", fast.CancelledReplicas, fast.WastedTime)
	}
	if fast.Schedule.Assignments[0].Machine != 1 {
		t.Fatalf("winning replica on machine %d, want 1", fast.Schedule.Assignments[0].Machine)
	}
	// The cancelled machine is busy until 2 + 0.5.
	if fast.End != 2.5 {
		t.Fatalf("End = %v, want 2.5", fast.End)
	}
}

// TestOpenCancelledMachineResumes checks that a machine freed by a
// cancellation picks up queued work after paying the penalty.
func TestOpenCancelledMachineResumes(t *testing.T) {
	in := &task.Instance{M: 2, Alpha: 1, Tasks: []task.Task{
		{ID: 0, Estimate: 8, Actual: 8},
		{ID: 1, Estimate: 4, Actual: 4},
	}}
	p := placement.New(2, 2)
	p.Sets[0] = []int{0, 1}
	p.Sets[1] = []int{0} // only machine 0 may run task 1
	dur := func(taskID, machine int) float64 {
		if taskID == 0 && machine == 1 {
			return 2
		}
		return in.Tasks[taskID].Actual
	}
	// t=0: task 0 starts on both machines (machine 0 slow at 8, machine
	// 1 fast at 2). Task 1 arrives at t=1, eligible only on busy machine
	// 0. t=2: machine 1 completes task 0; machine 0's replica cancelled,
	// free at 3 after CancelCost=1; t=3 it starts task 1, ends 7.
	res, err := sim.RunOpen(in, p, []int{0, 1}, []float64{0, 1}, sim.OpenOptions{
		Policy: sim.CancelOnCompletion, CancelCost: 1, Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6} // task 1: done at 7, arrived at 1
	if !reflect.DeepEqual(res.Responses, want) {
		t.Fatalf("responses = %v, want %v", res.Responses, want)
	}
	a := res.Schedule.Assignments[1]
	if a.Machine != 0 || a.Start != 3 || a.End != 7 {
		t.Fatalf("task 1 assignment = %+v, want machine 0, 3→7", a)
	}
}

// TestOpenLatePriorityArrival checks that a high-priority task
// arriving late sorts ahead of lower-priority queued work.
func TestOpenLatePriorityArrival(t *testing.T) {
	in := &task.Instance{M: 1, Alpha: 1, Tasks: []task.Task{
		{ID: 0, Estimate: 5, Actual: 5},
		{ID: 1, Estimate: 5, Actual: 5},
		{ID: 2, Estimate: 5, Actual: 5},
	}}
	p := placement.New(3, 1)
	for j := 0; j < 3; j++ {
		p.Sets[j] = []int{0}
	}
	// Priority order: 2 ≻ 1 ≻ 0. Task 0 arrives first and runs; tasks 1
	// then 2 arrive while the machine is busy; at t=5 the machine must
	// pick task 2 (higher priority) despite task 1 arriving earlier.
	res, err := sim.RunOpen(in, p, []int{2, 1, 0}, []float64{0, 1, 2}, sim.OpenOptions{Policy: sim.CancelOnStart})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 14, 8} // task 0: 0→5; task 2: 5→10 (arr 2); task 1: 10→15 (arr 1)
	if !reflect.DeepEqual(res.Responses, want) {
		t.Fatalf("responses = %v, want %v", res.Responses, want)
	}
}

// TestOpenRunnerPoolingDifferential runs the same trials through one
// reused sim.OpenRunner and through fresh package-level calls; results
// must be deeply equal even as shapes vary between runs.
func TestOpenRunnerPoolingDifferential(t *testing.T) {
	var pooled sim.OpenRunner
	for trial := 0; trial < 12; trial++ {
		shape := openShapes[trial%len(openShapes)]
		in := openInstance(t, shape.n, shape.m, 500+uint64(trial))
		p, err := shape.algo.Place(in)
		if err != nil {
			t.Fatal(err)
		}
		order := shape.algo.Order(in)
		arrive := workload.MustArrivals(in.N(), workload.ArrivalSpec{
			Process: "poisson", Rate: 0.7, Seed: 900 + uint64(trial),
		})
		opts := sim.OpenOptions{Policy: sim.CancelOnCompletion, CancelCost: 0.25}
		if trial%2 == 0 {
			opts = sim.OpenOptions{Policy: sim.CancelOnStart}
		}
		fresh, err := sim.RunOpen(in, p, order, arrive, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pooled.Run(in, p, order, arrive, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Schedule.Assignments, fresh.Schedule.Assignments) ||
			!reflect.DeepEqual(got.Responses, fresh.Responses) ||
			got.CancelledReplicas != fresh.CancelledReplicas ||
			got.WastedTime != fresh.WastedTime ||
			got.End != fresh.End {
			t.Fatalf("trial %d (%s): pooled result diverged from fresh", trial, shape.name)
		}
	}
}

// TestOpenReplicationHelpsTail runs a load where racing replicas
// should cut the response-time tail versus no replication, under a
// deterministic per-(task,machine) slowdown.
func TestOpenReplicationHelpsTail(t *testing.T) {
	const n, m = 40, 4
	in := openInstance(t, n, m, 7)
	arrive := workload.MustArrivals(n, workload.ArrivalSpec{Process: "poisson", Rate: 0.05, Seed: 8})
	// A deterministic straggler model: some (task, machine) pairs are
	// 8x slower. Racing replicas dodge the slow pairs.
	dur := func(taskID, machine int) float64 {
		d := in.Tasks[taskID].Actual
		if (rng.New(uint64(taskID)*31 + uint64(machine)).Float64()) < 0.3 {
			return d * 8
		}
		return d
	}
	none := algo.LPTNoChoice()
	pNone, err := none.Place(in)
	if err != nil {
		t.Fatal(err)
	}
	rNone, err := sim.RunOpen(in, pNone, none.Order(in), arrive, sim.OpenOptions{Policy: sim.CancelOnStart, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	all := algo.LPTNoRestriction()
	pAll, err := all.Place(in)
	if err != nil {
		t.Fatal(err)
	}
	rAll, err := sim.RunOpen(in, pAll, all.Order(in), arrive, sim.OpenOptions{Policy: sim.CancelOnCompletion, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	maxResp := func(xs []float64) float64 {
		out := 0.0
		for _, x := range xs {
			if x > out {
				out = x
			}
		}
		return out
	}
	if maxResp(rAll.Responses) >= maxResp(rNone.Responses) {
		t.Fatalf("racing replicas did not cut the tail: all=%v none=%v",
			maxResp(rAll.Responses), maxResp(rNone.Responses))
	}
	if rAll.CancelledReplicas == 0 {
		t.Fatal("cancel-on-completion never cancelled a replica at low load")
	}
}

func TestOpenRunValidation(t *testing.T) {
	in := openInstance(t, 4, 2, 1)
	p := algo.LPTNoRestriction()
	pl, err := p.Place(in)
	if err != nil {
		t.Fatal(err)
	}
	order := p.Order(in)
	arrive := make([]float64, 4)
	cases := []struct {
		name string
		run  func() error
		frag string
	}{
		{"placement shape", func() error {
			bad := placement.New(3, 2)
			_, err := sim.RunOpen(in, bad, order, arrive, sim.OpenOptions{})
			return err
		}, "placement shape"},
		{"order length", func() error {
			_, err := sim.RunOpen(in, pl, []int{0, 1}, arrive, sim.OpenOptions{})
			return err
		}, "priority order"},
		{"order not permutation", func() error {
			_, err := sim.RunOpen(in, pl, []int{0, 1, 2, 2}, arrive, sim.OpenOptions{})
			return err
		}, "not a permutation"},
		{"arrive length", func() error {
			_, err := sim.RunOpen(in, pl, order, []float64{0}, sim.OpenOptions{})
			return err
		}, "arrival times"},
		{"arrive NaN", func() error {
			_, err := sim.RunOpen(in, pl, order, []float64{0, math.NaN(), 1, 2}, sim.OpenOptions{})
			return err
		}, "finite"},
		{"arrive unsorted", func() error {
			_, err := sim.RunOpen(in, pl, order, []float64{3, 1, 2, 4}, sim.OpenOptions{})
			return err
		}, "not sorted"},
		{"negative cancel cost", func() error {
			_, err := sim.RunOpen(in, pl, order, arrive, sim.OpenOptions{CancelCost: -1})
			return err
		}, "cancel cost"},
		{"unknown policy", func() error {
			_, err := sim.RunOpen(in, pl, order, arrive, sim.OpenOptions{Policy: sim.CancelPolicy(9)})
			return err
		}, "cancel policy"},
		{"starved task", func() error {
			bad := placement.New(4, 2)
			for j := 0; j < 4; j++ {
				bad.Sets[j] = []int{0}
			}
			bad.Sets[3] = nil // never eligible anywhere
			_, err := sim.RunOpen(in, bad, order, arrive, sim.OpenOptions{})
			return err
		}, "never executed"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestCancelPolicyString(t *testing.T) {
	if sim.CancelOnStart.String() != "cancel-on-start" ||
		sim.CancelOnCompletion.String() != "cancel-on-completion" {
		t.Fatal("policy names changed")
	}
	if got := sim.CancelPolicy(7).String(); !strings.Contains(got, "7") {
		t.Fatalf("unknown policy String = %q", got)
	}
}

func TestParseCancelPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want sim.CancelPolicy
		ok   bool
	}{
		{"", sim.CancelOnStart, true},
		{"cancel-on-start", sim.CancelOnStart, true},
		{"cancel-on-completion", sim.CancelOnCompletion, true},
		{"CANCEL-ON-START", 0, false},
		{"nope", 0, false},
	}
	for _, tc := range cases {
		got, err := sim.ParseCancelPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseCancelPolicy(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseCancelPolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Round trip: every policy's String parses back to itself.
	for _, p := range []sim.CancelPolicy{sim.CancelOnStart, sim.CancelOnCompletion} {
		got, err := sim.ParseCancelPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
}
