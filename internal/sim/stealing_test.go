package sim

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/task"
)

func TestStealingPrefersLocal(t *testing.T) {
	// Machine 0 owns tasks 0,1; machine 1 owns task 2 (short). After
	// finishing task 2, machine 1 steals task 1 at penalty 2.
	est := []float64{4, 4, 1}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(3, 2)
	p.Assign(0, 0)
	p.Assign(1, 0)
	p.Assign(2, 1)
	d, err := NewStealingDispatcher(p, identityOrder(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, d, Options{Duration: d.DurationOf(in)})
	if err != nil {
		t.Fatal(err)
	}
	a1 := res.Schedule.Assignments[1]
	if a1.Machine != 1 {
		t.Fatalf("task 1 not stolen: ran on machine %d", a1.Machine)
	}
	// Stolen: starts at 1 (after task 2), runs 4·2=8 → ends at 9.
	if a1.Start != 1 || a1.End != 9 {
		t.Fatalf("stolen task timing %+v, want start 1 end 9", a1)
	}
	// Machine 0 runs task 0 locally: ends at 4. Makespan 9.
	if res.Schedule.Makespan() != 9 {
		t.Fatalf("makespan = %v, want 9", res.Schedule.Makespan())
	}
}

func TestStealingPenaltyOneEqualsFullReplication(t *testing.T) {
	est := []float64{5, 3, 2, 2, 1}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	// Arbitrary pinned placement; with penalty 1 stealing is free, so
	// the outcome must match list scheduling over full replication.
	p := placement.New(5, 2)
	for j := 0; j < 5; j++ {
		p.Assign(j, 0)
	}
	d, err := NewStealingDispatcher(p, identityOrder(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, d, Options{Duration: d.DurationOf(in)})
	if err != nil {
		t.Fatal(err)
	}

	full := placement.Everywhere(5, 2)
	ld, _ := NewListDispatcher(full, identityOrder(5))
	want, err := Run(in, ld, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() != want.Schedule.Makespan() {
		t.Fatalf("penalty-1 stealing %v != full replication %v",
			res.Schedule.Makespan(), want.Schedule.Makespan())
	}
}

func TestStealingHighPenaltyDiscourages(t *testing.T) {
	// Balanced pinned placement: with a huge penalty, stealing a task
	// can still happen (machines steal when idle) but the makespan is
	// bounded by the local execution's anyway only if stealing never
	// helps; here we just check it completes and all tasks run.
	est := []float64{3, 3, 3, 3}
	in, err := task.New(2, 1, est, est)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.New(4, 2)
	p.Assign(0, 0)
	p.Assign(1, 0)
	p.Assign(2, 1)
	p.Assign(3, 1)
	d, err := NewStealingDispatcher(p, identityOrder(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, d, Options{Duration: d.DurationOf(in)})
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly balanced: no machine ever idles while work remains, so
	// nothing is stolen and the makespan is 6.
	if res.Schedule.Makespan() != 6 {
		t.Fatalf("makespan = %v, want 6 (no stealing)", res.Schedule.Makespan())
	}
}

func TestStealingRejectsBadPenalty(t *testing.T) {
	p := placement.New(1, 1)
	p.Assign(0, 0)
	if _, err := NewStealingDispatcher(p, []int{0}, 0.5); err == nil {
		t.Fatal("penalty < 1 accepted")
	}
}

func TestDurationHookDefault(t *testing.T) {
	// Without Options.Duration the simulator charges actual times.
	est := []float64{2}
	act := []float64{3}
	in, err := task.New(1, 1.5, est, act)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.Everywhere(1, 1)
	d, _ := NewListDispatcher(p, identityOrder(1))
	res, err := Run(in, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() != 3 {
		t.Fatalf("makespan = %v", res.Schedule.Makespan())
	}
}
