package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCompletedObservesTrueActualUnderDurationOverride is the
// regression test for the semi-clairvoyant information leak: with a
// remote-execution Duration hook in place, the dispatcher must still
// be told the task's true processing time p_j at completion — not the
// penalty-inflated executed duration — while the clock and the
// recorded assignment do use the executed duration.
func TestCompletedObservesTrueActualUnderDurationOverride(t *testing.T) {
	// One machine, two tasks with distinct actual times; every task
	// pays a 3x remote-fetch penalty.
	in := inst(t, 1, 2, 5)
	const penalty = 3.0

	next := 0
	type completion struct {
		task        int
		now, actual float64
	}
	var got []completion
	d := &FuncDispatcher{
		NextFunc: func(machine int, now float64) (int, bool) {
			if next >= in.N() {
				return 0, false
			}
			j := next
			next++
			return j, true
		},
		CompletedFunc: func(taskID, machine int, now, actual float64) {
			got = append(got, completion{taskID, now, actual})
		},
	}
	res, err := Run(in, d, Options{
		Duration: func(taskID, machine int) float64 {
			return in.Tasks[taskID].Actual * penalty
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != 2 {
		t.Fatalf("Completed called %d times, want 2", len(got))
	}
	// The dispatcher observes p_j — the information model the paper's
	// guarantees assume.
	for _, c := range got {
		if want := in.Tasks[c.task].Actual; c.actual != want {
			t.Errorf("Completed(task %d) revealed %v, want true actual %v",
				c.task, c.actual, want)
		}
	}
	// Completion times and assignments reflect the executed (penalized)
	// duration: task0 finishes at 6, task1 at 6+15=21.
	if got[0].now != 6 || got[1].now != 21 {
		t.Errorf("completion times = (%v, %v), want (6, 21)", got[0].now, got[1].now)
	}
	a1 := res.Schedule.Assignments[1]
	if a1.Start != 6 || a1.End != 21 {
		t.Errorf("task 1 assignment [%v,%v], want [6,21]", a1.Start, a1.End)
	}
	// VerifyDurations accepts the schedule under the same hook and
	// rejects it under the raw-actual contract, so the conflation
	// cannot sneak back in through verification either.
	hook := func(taskID, machine int) float64 { return in.Tasks[taskID].Actual * penalty }
	if err := res.Schedule.VerifyDurations(in, nil, hook); err != nil {
		t.Errorf("VerifyDurations with the hook rejected the schedule: %v", err)
	}
	if err := res.Schedule.Verify(in, nil); err == nil {
		t.Error("plain Verify accepted a penalized schedule; durations conflated somewhere")
	}
}

// TestSortTraceAdversarial checks correctness of the trace sort on the
// worst case for the old insertion sort: a large block of equal-time
// events appended in reverse machine order.
func TestSortTraceAdversarial(t *testing.T) {
	const m = 500
	var tr []Event
	for i := m - 1; i >= 0; i-- {
		tr = append(tr,
			Event{Time: 1, Machine: i, Task: i, Kind: "start"},
			Event{Time: 1, Machine: i, Task: i, Kind: "finish"},
		)
	}
	sortTrace(tr)
	for i := 1; i < len(tr); i++ {
		if traceLess(tr[i], tr[i-1]) {
			t.Fatalf("trace out of order at %d: %+v before %+v", i, tr[i-1], tr[i])
		}
	}
	// All finishes precede all starts at the shared time.
	for i, ev := range tr {
		wantKind := "finish"
		if i >= m {
			wantKind = "start"
		}
		if ev.Kind != wantKind {
			t.Fatalf("event %d kind %q, want %q", i, ev.Kind, wantKind)
		}
	}
}

// adversarialTrace builds a trace in which every event shares one
// timestamp — the case that degraded the old insertion sort to O(n²).
func adversarialTrace(n int) []Event {
	r := rand.New(rand.NewSource(1))
	tr := make([]Event, n)
	for i := range tr {
		kind := "start"
		if i%2 == 0 {
			kind = "finish"
		}
		tr[i] = Event{Time: 1, Machine: r.Intn(n), Task: i, Kind: kind}
	}
	return tr
}

// BenchmarkSortTraceAdversarial measures sortTrace on the many-equal-
// time-finishes trace. With the former insertion sort this benchmark
// was quadratic (~n²/4 swaps per op); sort.SliceStable keeps it
// n·polylog(n).
func BenchmarkSortTraceAdversarial(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		src := adversarialTrace(n)
		buf := make([]Event, n)
		b.Run(benchSize(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				sortTrace(buf)
			}
		})
	}
}

// BenchmarkSortTraceNearSorted measures the common case: a trace that
// is already nearly in order, as produced by simulation append order.
func BenchmarkSortTraceNearSorted(b *testing.B) {
	const n = 100_000
	src := make([]Event, n)
	for i := range src {
		kind := "start"
		if i%2 == 1 {
			kind = "finish"
		}
		src[i] = Event{Time: float64(i / 2), Machine: i % 7, Task: i / 2, Kind: kind}
	}
	buf := make([]Event, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sortTrace(buf)
	}
}

func benchSize(n int) string {
	switch n {
	case 1_000:
		return "n=1k"
	case 10_000:
		return "n=10k"
	case 100_000:
		return "n=100k"
	}
	return fmt.Sprintf("n=%d", n)
}
